/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *
 *  1. Clean vs dirty DRAM caches under the same (full) directory:
 *     isolates §IV-A's clean-cache insight from directory effects.
 *  2. Miss predictor: exact MissMap vs counting filter vs disabled.
 *  3. Mapping policy (INT / FT1 / FT2) on the C3D machine.
 *  4. Private vs shared DRAM-cache organization (§II-C), functional
 *     hit-rate comparison.
 *
 * Each study is one declarative grid on the sweep engine; under
 * --json the four result tables are concatenated (variant names
 * carry a study prefix).
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"
#include "cache/capacity_analyzer.hh"

namespace
{

using namespace c3d;
using namespace c3d::bench;

void
ablateCleanVsDirty(const BenchRun &br, exp::ResultTable &all)
{
    exp::SweepGrid grid;
    grid.workloads = {facesimProfile(), nutchProfile(),
                      streamclusterProfile()};
    grid.designs = {Design::Baseline, Design::FullDir,
                    Design::C3DFullDir};
    grid.variants = {{"clean-vs-dirty", nullptr}};
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    all.append(table);
    if (br.jsonOnly())
        return;

    std::printf("\n--- ablation 1: clean (c3d-full-dir) vs dirty "
                "(full-dir) under a full directory ---\n");
    std::printf("%-16s %14s %14s %14s\n", "workload", "dirty(x)",
                "clean(x)", "clean adv.");
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        const double base = ticksAt(table, w, 0, 0);
        const double sd = base / ticksAt(table, w, 0, 1);
        const double sc = base / ticksAt(table, w, 0, 2);
        std::printf("%-16s %14.3f %14.3f %13.1f%%\n",
                    grid.workloads[w].name.c_str(), sd, sc,
                    100.0 * (sc / sd - 1.0));
    }
}

void
ablateMissPredictor(const BenchRun &br, exp::ResultTable &all)
{
    // Two grids: the predictor variants only exist on the C3D
    // machine, and the no-DRAM-cache baseline reference would
    // otherwise be simulated once per variant for identical results.
    exp::SweepGrid ref;
    ref.workloads = {cannealProfile(), streamclusterProfile()};
    ref.designs = {Design::Baseline};
    ref.variants = {{"predictor=reference", nullptr}};
    ref = br.quickened(ref);

    exp::SweepGrid grid;
    grid.workloads = ref.workloads;
    grid.designs = {Design::C3D};
    grid.variants = {
        {"predictor=missmap", nullptr},
        {"predictor=counting",
         [](SystemConfig &c) { c.missPredictorExact = false; }},
        {"predictor=disabled",
         [](SystemConfig &c) { c.missPredictorEnabled = false; }},
    };
    grid = br.quickened(grid);

    const exp::ResultTable base_table = br.run(ref);
    const exp::ResultTable table = br.run(grid);
    all.append(base_table);
    all.append(table);
    if (br.jsonOnly())
        return;

    std::printf("\n--- ablation 2: DRAM-cache miss predictor ---\n");
    std::printf("%-16s %14s %14s %14s\n", "workload", "missmap(x)",
                "counting(x)", "disabled(x)");
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        const double base = ticksAt(base_table, w, 0, 0);
        std::printf("%-16s %14.3f %14.3f %14.3f\n",
                    grid.workloads[w].name.c_str(),
                    base / ticksAt(table, w, 0, 0),
                    base / ticksAt(table, w, 1, 0),
                    base / ticksAt(table, w, 2, 0));
    }
}

void
ablateMappingPolicy(const BenchRun &br, exp::ResultTable &all)
{
    exp::SweepGrid grid;
    grid.workloads = {facesimProfile(), cassandraProfile()};
    grid.designs = {Design::C3D};
    grid.variants = {{"mapping-policy", nullptr}};
    grid.mappings = {MappingPolicy::Interleave,
                     MappingPolicy::FirstTouch1,
                     MappingPolicy::FirstTouch2};
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    all.append(table);
    if (br.jsonOnly())
        return;

    std::printf("\n--- ablation 3: page placement policy under C3D "
                "---\n");
    std::printf("%-16s %14s %14s %14s\n", "workload", "INT ticks",
                "FT1 ticks", "FT2 ticks");
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        std::vector<double> ticks;
        for (std::size_t m = 0; m < grid.mappings.size(); ++m) {
            const exp::ResultRow *row =
                table.find(w, SIZE_MAX, SIZE_MAX, SIZE_MAX, SIZE_MAX,
                           m);
            if (!row)
                c3d_fatal("sweep table is missing an expected row");
            ticks.push_back(
                static_cast<double>(row->metrics.measuredTicks));
        }
        std::printf("%-16s %14.0f %14.0f %14.0f\n",
                    grid.workloads[w].name.c_str(), ticks[0],
                    ticks[1], ticks[2]);
    }
}

void
ablateSharedVsPrivate(const BenchRun &br, exp::ResultTable &all)
{
    exp::SweepGrid grid;
    grid.workloads = {streamclusterProfile(), cannealProfile(),
                      tunkrankProfile()};
    grid.designs = {Design::C3D};
    grid.variants = {{"dram-cache=private", nullptr},
                     {"dram-cache=shared", nullptr}};
    grid.measureOps = 200000;
    grid.warmupOps = 1; // unused by the functional replay
    grid = br.quickened(grid);

    // Functional replay against the (scaled) DRAM-cache capacity:
    // variant 1 pools all sockets' capacity into one shared cache.
    const auto replay = [](const exp::RunSpec &spec) {
        SyntheticWorkload wl(spec.profile.scaled(spec.scale),
                             spec.cfg.totalCores(),
                             spec.cfg.coresPerSocket);
        const CapacityResult r = analyzeCapacity(
            wl, spec.cfg.numSockets, spec.cfg.coresPerSocket,
            spec.cfg.dramCacheBytes, /*ways=*/1,
            /*shared=*/spec.variantIdx == 1, spec.measureOps);
        RunResult m;
        m.instructions = r.references;
        m.memReads = r.cacheMisses;
        m.llcMisses = r.cacheMisses;
        m.remoteMemReads = r.remoteMisses;
        return m;
    };

    const exp::ResultTable table = br.run(grid, replay);
    all.append(table);
    if (br.jsonOnly())
        return;

    std::printf("\n--- ablation 4: shared vs private DRAM-cache "
                "organization (functional, SII-C) ---\n");
    std::printf("%-16s %16s %16s %18s\n", "workload",
                "private miss%", "shared miss%", "private remote%");
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        const exp::ResultRow *priv = table.find(w, 0);
        const exp::ResultRow *shared = table.find(w, 1);
        if (!priv || !shared)
            c3d_fatal("sweep table is missing an expected row");
        const auto miss_rate = [](const exp::ResultRow *r) {
            return r->metrics.instructions
                ? static_cast<double>(r->metrics.llcMisses) /
                    static_cast<double>(r->metrics.instructions)
                : 0.0;
        };
        std::printf("%-16s %15.1f%% %15.1f%% %17.1f%%\n",
                    priv->workload.c_str(), 100.0 * miss_rate(priv),
                    100.0 * miss_rate(shared),
                    priv->metrics.llcMisses
                        ? 100.0 *
                            static_cast<double>(
                                priv->metrics.remoteMemReads) /
                            static_cast<double>(
                                priv->metrics.llcMisses)
                        : 0.0);
    }
    std::printf("(shared pools capacity -> fewer misses, but every "
                "miss to a remote home still crosses sockets;\n"
                " private replicates -> slightly more misses, but "
                "local hits remove inter-socket trips: SII-C)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun br(argc, argv,
                "Ablations: clean property, miss predictor, "
                "placement policy, shared-vs-private",
                "design-choice isolation studies (DESIGN.md 5)");
    if (!br.ok())
        return br.exitCode();

    exp::ResultTable all;
    ablateCleanVsDirty(br, all);
    ablateMissPredictor(br, all);
    ablateMappingPolicy(br, all);
    ablateSharedVsPrivate(br, all);
    br.emit(all);
    return 0;
}
