/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *
 *  1. Clean vs dirty DRAM caches under the same (full) directory:
 *     isolates §IV-A's clean-cache insight from directory effects.
 *  2. Miss predictor: exact MissMap vs counting filter vs disabled.
 *  3. Mapping policy (INT / FT1 / FT2) on the C3D machine.
 *  4. Private vs shared DRAM-cache organization (§II-C), functional
 *     hit-rate comparison.
 */

#include <cstdio>
#include <vector>

#include "cache/capacity_analyzer.hh"
#include "harness.hh"

namespace
{

using namespace c3d;
using namespace c3d::bench;

void
ablateCleanVsDirty()
{
    std::printf("\n--- ablation 1: clean (c3d-full-dir) vs dirty "
                "(full-dir) under a full directory ---\n");
    std::printf("%-16s %14s %14s %14s\n", "workload", "dirty(x)",
                "clean(x)", "clean adv.");
    for (const WorkloadProfile &p :
         {facesimProfile(), nutchProfile(), streamclusterProfile()}) {
        const RunResult base =
            runOne(benchConfig(Design::Baseline), p);
        const RunResult dirty =
            runOne(benchConfig(Design::FullDir), p);
        const RunResult clean =
            runOne(benchConfig(Design::C3DFullDir), p);
        const double sd = static_cast<double>(base.measuredTicks) /
            static_cast<double>(dirty.measuredTicks);
        const double sc = static_cast<double>(base.measuredTicks) /
            static_cast<double>(clean.measuredTicks);
        std::printf("%-16s %14.3f %14.3f %13.1f%%\n", p.name.c_str(),
                    sd, sc, 100.0 * (sc / sd - 1.0));
    }
}

void
ablateMissPredictor()
{
    std::printf("\n--- ablation 2: DRAM-cache miss predictor ---\n");
    std::printf("%-16s %14s %14s %14s\n", "workload", "missmap(x)",
                "counting(x)", "disabled(x)");
    for (const WorkloadProfile &p :
         {cannealProfile(), streamclusterProfile()}) {
        const RunResult base =
            runOne(benchConfig(Design::Baseline), p);
        auto speedup = [&](bool enabled, bool exact) {
            SystemConfig cfg = benchConfig(Design::C3D);
            cfg.missPredictorEnabled = enabled;
            cfg.missPredictorExact = exact;
            const RunResult r = runOne(cfg, p);
            return static_cast<double>(base.measuredTicks) /
                static_cast<double>(r.measuredTicks);
        };
        std::printf("%-16s %14.3f %14.3f %14.3f\n", p.name.c_str(),
                    speedup(true, true), speedup(true, false),
                    speedup(false, false));
    }
}

void
ablateMappingPolicy()
{
    std::printf("\n--- ablation 3: page placement policy under C3D "
                "---\n");
    std::printf("%-16s %14s %14s %14s\n", "workload", "INT ticks",
                "FT1 ticks", "FT2 ticks");
    for (const WorkloadProfile &p :
         {facesimProfile(), cassandraProfile()}) {
        std::vector<double> ticks;
        for (MappingPolicy mp : {MappingPolicy::Interleave,
                                 MappingPolicy::FirstTouch1,
                                 MappingPolicy::FirstTouch2}) {
            SystemConfig cfg = benchConfig(Design::C3D);
            cfg.mapping = mp;
            ticks.push_back(
                static_cast<double>(runOne(cfg, p).measuredTicks));
        }
        std::printf("%-16s %14.0f %14.0f %14.0f\n", p.name.c_str(),
                    ticks[0], ticks[1], ticks[2]);
    }
}

void
ablateSharedVsPrivate()
{
    std::printf("\n--- ablation 4: shared vs private DRAM-cache "
                "organization (functional, SII-C) ---\n");
    std::printf("%-16s %16s %16s %18s\n", "workload",
                "private miss%", "shared miss%", "private remote%");
    for (const WorkloadProfile &p :
         {streamclusterProfile(), cannealProfile(),
          tunkrankProfile()}) {
        const WorkloadProfile sp = p.scaled(Scale);
        SyntheticWorkload wl_p(sp, 32, 8);
        SyntheticWorkload wl_s(sp, 32, 8);
        const std::uint64_t dc_bytes = (1024ull << 20) / Scale;
        const CapacityResult priv = analyzeCapacity(
            wl_p, 4, 8, dc_bytes, 1, /*shared=*/false, 200000);
        const CapacityResult shared = analyzeCapacity(
            wl_s, 4, 8, dc_bytes, 1, /*shared=*/true, 200000);
        std::printf("%-16s %15.1f%% %15.1f%% %17.1f%%\n",
                    p.name.c_str(), 100.0 * priv.missRate(),
                    100.0 * shared.missRate(),
                    priv.cacheMisses
                        ? 100.0 *
                            static_cast<double>(priv.remoteMisses) /
                            static_cast<double>(priv.cacheMisses)
                        : 0.0);
    }
    std::printf("(shared pools capacity -> fewer misses, but every "
                "miss to a remote home still crosses sockets;\n"
                " private replicates -> slightly more misses, but "
                "local hits remove inter-socket trips: SII-C)\n");
}

} // namespace

int
main()
{
    printHeader("Ablations: clean property, miss predictor, "
                "placement policy, shared-vs-private",
                "design-choice isolation studies (DESIGN.md 5)");
    ablateCleanVsDirty();
    ablateMissPredictor();
    ablateMappingPolicy();
    ablateSharedVsPrivate();
    return 0;
}
