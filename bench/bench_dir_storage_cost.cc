/**
 * @file
 * §III-B directory storage-cost analysis.
 *
 * Paper: "a 256MB DRAM cache, even with a minimally-provisioned (1x)
 * sparse directory, would require 16MB of directory storage per
 * socket. For a 2x-provisioned directory ... 32MB for a 256MB cache
 * or a whopping 128MB for a 1GB DRAM cache." C3D's directory only
 * covers the 16 MB LLC.
 *
 * Analytic (no simulation); --json emits the table in a small
 * bench-specific schema (c3d-dir-cost/v1) for machine consumers.
 * --quick and --jobs are accepted for command-line uniformity with
 * the sweep benches but change nothing.
 */

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "core/dir_cost.hh"
#include "exp/json.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;

    bool json = false;
    for (int i = 1; i < argc; ++i) {
        std::string key, value;
        std::uint64_t n = 0;
        const bool is_flag = splitFlag(argv[i], key, value);
        if (is_flag && key == "json") {
            json = true;
        } else if (is_flag && key == "help") {
            std::printf("usage: bench_dir_storage_cost [--json] "
                        "[--quick] [--jobs=N]\n");
            return 0;
        } else if (is_flag &&
                   (key == "quick" ||
                    (key == "jobs" && parseU64(value, n)))) {
            // accepted, no effect: the analysis is instantaneous
        } else {
            std::fprintf(stderr,
                         "usage: bench_dir_storage_cost [--json] "
                         "[--quick] [--jobs=N]\n");
            return 2;
        }
    }

    const std::uint64_t llc = 16ull << 20;
    const std::uint64_t dram_cache = 1024ull << 20;

    if (json) {
        std::printf("{\n  \"schema\": \"c3d-dir-cost/v1\",\n"
                    "  \"rows\": [");
        bool first = true;
        for (const DirCostRow &row :
             directoryCostTable(llc, dram_cache)) {
            std::printf("%s\n    {\"design\": \"%s\", "
                        "\"covers_mb\": %llu, \"directory_mb\": "
                        "%.3f}",
                        first ? "" : ",",
                        exp::jsonEscape(row.design).c_str(),
                        static_cast<unsigned long long>(
                            row.coveredBytes >> 20),
                        static_cast<double>(row.directoryBytes) /
                            (1 << 20));
            first = false;
        }
        std::printf("\n  ]\n}\n");
        return 0;
    }

    std::printf("Directory storage cost per socket (paper SIII-B)\n");
    std::printf("%-28s %14s %14s\n", "organization", "covers (MB)",
                "directory (MB)");

    for (const DirCostRow &row : directoryCostTable(llc, dram_cache)) {
        std::printf("%-28s %14llu %14.1f\n", row.design.c_str(),
                    static_cast<unsigned long long>(
                        row.coveredBytes >> 20),
                    static_cast<double>(row.directoryBytes) /
                        (1 << 20));
    }

    std::printf("\npaper reference points: 256MB@1x -> 16MB, "
                "256MB@2x -> 32MB, 1GB@2x -> 128MB\n");
    std::printf("measured:                256MB@1x -> %.0fMB, "
                "256MB@2x -> %.0fMB, 1GB@2x -> %.0fMB\n",
                static_cast<double>(directoryBytesFor(256ull << 20, 1))
                    / (1 << 20),
                static_cast<double>(directoryBytesFor(256ull << 20, 2))
                    / (1 << 20),
                static_cast<double>(
                    directoryBytesFor(1024ull << 20, 2)) / (1 << 20));
    std::printf("c3d needs only the LLC-covering directory: %.1f MB "
                "at 2x (a %.0fx reduction vs 1GB@2x)\n",
                static_cast<double>(directoryBytesFor(llc, 2)) /
                    (1 << 20),
                static_cast<double>(directoryBytesFor(dram_cache, 2)) /
                    static_cast<double>(directoryBytesFor(llc, 2)));
    return 0;
}
