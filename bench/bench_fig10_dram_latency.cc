/**
 * @file
 * Fig. 10: sensitivity to DRAM-cache access latency (30/40/50 ns).
 *
 * Paper shape: C3D keeps a >1.17x speedup even when the DRAM cache
 * is as slow as main memory (50 ns), because reads never wait on
 * remote DRAM caches; faster stacks (30 ns) push it to ~1.24x.
 * Snoopy and full-dir follow the same trend lower down.
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Fig. 10: speedup vs DRAM-cache latency "
                "(30/40/50 ns, geomean over workloads)",
                "c3d stays above baseline even at memory-equal 50ns "
                "latency (>1.17x)");
    if (!br.ok())
        return br.exitCode();

    // The paper plots the average across its suite; a representative
    // subset keeps the grid affordable. The latency points form a
    // variant axis (the baseline design has no DRAM cache and simply
    // ignores the patch).
    exp::SweepGrid grid;
    grid.workloads = {facesimProfile(), streamclusterProfile(),
                      cannealProfile(), nutchProfile()};
    grid.designs = {Design::Baseline, Design::Snoopy, Design::FullDir,
                    Design::C3D};
    const std::vector<std::uint64_t> lat_ns = {30, 40, 50};
    for (const std::uint64_t ns : lat_ns) {
        grid.variants.push_back(
            {std::to_string(ns) + "ns" + (ns == 40 ? " (default)" : ""),
             [ns](SystemConfig &c) {
                 c.dramCacheLatency = nsToTicks(ns);
             }});
    }
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::vector<std::string> rows;
    std::vector<Series> series;
    for (std::size_t d = 1; d < grid.designs.size(); ++d)
        series.push_back({designName(grid.designs[d]), {}});
    for (std::size_t v = 0; v < grid.variants.size(); ++v) {
        rows.push_back(grid.variants[v].name);
        for (std::size_t d = 1; d < grid.designs.size(); ++d) {
            std::vector<double> speedups;
            for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
                speedups.push_back(ticksAt(table, w, v, 0) /
                                   ticksAt(table, w, v, d));
            }
            series[d - 1].values.push_back(geomean(speedups));
        }
    }

    printTable(rows, series);
    std::printf("\npaper shape: all designs degrade slowly with "
                "latency; c3d stays on top throughout\n");
    return 0;
}
