/**
 * @file
 * Fig. 10: sensitivity to DRAM-cache access latency (30/40/50 ns).
 *
 * Paper shape: C3D keeps a >1.17x speedup even when the DRAM cache
 * is as slow as main memory (50 ns), because reads never wait on
 * remote DRAM caches; faster stacks (30 ns) push it to ~1.24x.
 * Snoopy and full-dir follow the same trend lower down.
 */

#include <cstdio>
#include <vector>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Fig. 10: speedup vs DRAM-cache latency "
                "(30/40/50 ns, geomean over workloads)",
                "c3d stays above baseline even at memory-equal 50ns "
                "latency (>1.17x)");

    const std::vector<std::uint64_t> lat_ns = {30, 40, 50};
    std::vector<std::string> rows;
    std::vector<Series> series = {{"snoopy", {}},
                                  {"full-dir", {}},
                                  {"c3d", {}}};

    // Geomean across a representative workload subset per point (the
    // paper plots the average across its suite).
    const std::vector<WorkloadProfile> workloads = {
        facesimProfile(), streamclusterProfile(), cannealProfile(),
        nutchProfile()};

    for (std::uint64_t ns : lat_ns) {
        rows.push_back(std::to_string(ns) + "ns" +
                       (ns == 40 ? " (default)" : ""));
        std::vector<double> sn, fd, c3;
        for (const WorkloadProfile &p : workloads) {
            SystemConfig base_cfg = benchConfig(Design::Baseline);
            const RunResult base = runOne(base_cfg, p);
            auto speedup = [&](Design d) {
                SystemConfig cfg = benchConfig(d);
                cfg.dramCacheLatency = nsToTicks(ns);
                const RunResult r = runOne(cfg, p);
                return static_cast<double>(base.measuredTicks) /
                    static_cast<double>(r.measuredTicks);
            };
            sn.push_back(speedup(Design::Snoopy));
            fd.push_back(speedup(Design::FullDir));
            c3.push_back(speedup(Design::C3D));
        }
        series[0].values.push_back(geomean(sn));
        series[1].values.push_back(geomean(fd));
        series[2].values.push_back(geomean(c3));
    }

    printTable(rows, series);
    std::printf("\npaper shape: all designs degrade slowly with "
                "latency; c3d stays on top throughout\n");
    return 0;
}
