/**
 * @file
 * Fig. 11: sensitivity to inter-socket hop latency (5/10/20/30 ns).
 *
 * Paper shape: C3D's speedup grows with inter-socket latency (more
 * NUMA pain to remove) but stays >=1.10x even at an unrealistically
 * fast 5 ns; c3d beats full-dir and snoopy at every point.
 */

#include <cstdio>
#include <vector>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Fig. 11: speedup vs inter-socket hop latency "
                "(5/10/20/30 ns, geomean)",
                "c3d >=1.10x even at 5ns; gains grow with latency; "
                "c3d on top throughout");

    const std::vector<std::uint64_t> lat_ns = {5, 10, 20, 30};
    std::vector<std::string> rows;
    std::vector<Series> series = {{"snoopy", {}},
                                  {"full-dir", {}},
                                  {"c3d", {}}};

    const std::vector<WorkloadProfile> workloads = {
        facesimProfile(), streamclusterProfile(), cannealProfile(),
        nutchProfile()};

    for (std::uint64_t ns : lat_ns) {
        rows.push_back(std::to_string(ns) + "ns" +
                       (ns == 20 ? " (default)" : ""));
        std::vector<double> sn, fd, c3;
        for (const WorkloadProfile &p : workloads) {
            SystemConfig base_cfg = benchConfig(Design::Baseline);
            base_cfg.hopLatency = nsToTicks(ns);
            const RunResult base = runOne(base_cfg, p);
            auto speedup = [&](Design d) {
                SystemConfig cfg = benchConfig(d);
                cfg.hopLatency = nsToTicks(ns);
                const RunResult r = runOne(cfg, p);
                return static_cast<double>(base.measuredTicks) /
                    static_cast<double>(r.measuredTicks);
            };
            sn.push_back(speedup(Design::Snoopy));
            fd.push_back(speedup(Design::FullDir));
            c3.push_back(speedup(Design::C3D));
        }
        series[0].values.push_back(geomean(sn));
        series[1].values.push_back(geomean(fd));
        series[2].values.push_back(geomean(c3));
    }

    printTable(rows, series);
    return 0;
}
