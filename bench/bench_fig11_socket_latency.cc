/**
 * @file
 * Fig. 11: sensitivity to inter-socket hop latency (5/10/20/30 ns).
 *
 * Paper shape: C3D's speedup grows with inter-socket latency (more
 * NUMA pain to remove) but stays >=1.10x even at an unrealistically
 * fast 5 ns; c3d beats full-dir and snoopy at every point.
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Fig. 11: speedup vs inter-socket hop latency "
                "(5/10/20/30 ns, geomean)",
                "c3d >=1.10x even at 5ns; gains grow with latency; "
                "c3d on top throughout");
    if (!br.ok())
        return br.exitCode();

    // Hop latency applies to every design including the baseline, so
    // each variant's speedups are computed against the baseline run
    // of the same variant.
    exp::SweepGrid grid;
    grid.workloads = {facesimProfile(), streamclusterProfile(),
                      cannealProfile(), nutchProfile()};
    grid.designs = {Design::Baseline, Design::Snoopy, Design::FullDir,
                    Design::C3D};
    const std::vector<std::uint64_t> lat_ns = {5, 10, 20, 30};
    for (const std::uint64_t ns : lat_ns) {
        grid.variants.push_back(
            {std::to_string(ns) + "ns" + (ns == 20 ? " (default)" : ""),
             [ns](SystemConfig &c) { c.hopLatency = nsToTicks(ns); }});
    }
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::vector<std::string> rows;
    std::vector<Series> series;
    for (std::size_t d = 1; d < grid.designs.size(); ++d)
        series.push_back({designName(grid.designs[d]), {}});
    for (std::size_t v = 0; v < grid.variants.size(); ++v) {
        rows.push_back(grid.variants[v].name);
        for (std::size_t d = 1; d < grid.designs.size(); ++d) {
            std::vector<double> speedups;
            for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
                speedups.push_back(ticksAt(table, w, v, 0) /
                                   ticksAt(table, w, v, d));
            }
            series[d - 1].values.push_back(geomean(speedups));
        }
    }

    printTable(rows, series);
    return 0;
}
