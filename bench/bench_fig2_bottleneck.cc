/**
 * @file
 * Fig. 2: NUMA bottleneck analysis. Speedup of idealized machines
 * over the 4-socket baseline: zero inter-socket latency, infinite
 * memory bandwidth, infinite QPI bandwidth, and both-infinite.
 *
 * Paper: 0-QPI-latency delivers 14-60% speedups; the bandwidth
 * idealizations deliver little -- latency, not bandwidth, is the
 * bottleneck.
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Fig. 2: NUMA bottleneck analysis (baseline machine "
                "idealizations)",
                "zero-QPI-latency speeds up 14-60%; infinite "
                "bandwidth barely helps");
    if (!br.ok())
        return br.exitCode();

    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.designs = {Design::Baseline};
    grid.variants = {
        {"base", nullptr},
        {"0_qpi_lat", [](SystemConfig &c) { c.zeroHopLatency = true; }},
        {"inf_mem_bw",
         [](SystemConfig &c) { c.infiniteMemBandwidth = true; }},
        {"inf_qpi_bw",
         [](SystemConfig &c) { c.infiniteLinkBandwidth = true; }},
        {"inf_both",
         [](SystemConfig &c) {
             c.infiniteMemBandwidth = true;
             c.infiniteLinkBandwidth = true;
         }},
    };
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::vector<std::string> names;
    std::vector<Series> series;
    for (std::size_t v = 1; v < grid.variants.size(); ++v)
        series.push_back({grid.variants[v].name, {}});
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        names.push_back(grid.workloads[w].name);
        const double base = ticksAt(table, w, 0);
        for (std::size_t v = 1; v < grid.variants.size(); ++v)
            series[v - 1].values.push_back(base / ticksAt(table, w, v));
    }
    printTable(names, series);
    std::printf("\npaper shape: 0_qpi_lat in 1.14-1.60x; bandwidth "
                "columns near 1.0x\n");
    return 0;
}
