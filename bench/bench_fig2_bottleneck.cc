/**
 * @file
 * Fig. 2: NUMA bottleneck analysis. Speedup of idealized machines
 * over the 4-socket baseline: zero inter-socket latency, infinite
 * memory bandwidth, infinite QPI bandwidth, and both-infinite.
 *
 * Paper: 0-QPI-latency delivers 14-60% speedups; the bandwidth
 * idealizations deliver little -- latency, not bandwidth, is the
 * bottleneck.
 */

#include <cstdio>
#include <vector>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Fig. 2: NUMA bottleneck analysis (baseline machine "
                "idealizations)",
                "zero-QPI-latency speeds up 14-60%; infinite "
                "bandwidth barely helps");

    std::vector<std::string> names;
    Series zero_lat{"0_qpi_lat", {}};
    Series inf_mem{"inf_mem_bw", {}};
    Series inf_qpi{"inf_qpi_bw", {}};
    Series inf_both{"inf_both", {}};

    for (const WorkloadProfile &p : parallelProfiles()) {
        names.push_back(p.name);
        SystemConfig cfg = benchConfig(Design::Baseline);
        const RunResult base = runOne(cfg, p);

        SystemConfig c1 = cfg;
        c1.zeroHopLatency = true;
        zero_lat.values.push_back(
            static_cast<double>(base.measuredTicks) /
            static_cast<double>(runOne(c1, p).measuredTicks));

        SystemConfig c2 = cfg;
        c2.infiniteMemBandwidth = true;
        inf_mem.values.push_back(
            static_cast<double>(base.measuredTicks) /
            static_cast<double>(runOne(c2, p).measuredTicks));

        SystemConfig c3 = cfg;
        c3.infiniteLinkBandwidth = true;
        inf_qpi.values.push_back(
            static_cast<double>(base.measuredTicks) /
            static_cast<double>(runOne(c3, p).measuredTicks));

        SystemConfig c4 = cfg;
        c4.infiniteMemBandwidth = true;
        c4.infiniteLinkBandwidth = true;
        inf_both.values.push_back(
            static_cast<double>(base.measuredTicks) /
            static_cast<double>(runOne(c4, p).measuredTicks));
    }

    printTable(names, {zero_lat, inf_mem, inf_qpi, inf_both});
    std::printf("\npaper shape: 0_qpi_lat in 1.14-1.60x; bandwidth "
                "columns near 1.0x\n");
    return 0;
}
