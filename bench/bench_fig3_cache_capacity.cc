/**
 * @file
 * Fig. 3: memory accesses as a function of LLC capacity, normalized
 * to a 16 MB LLC (functional cache model; the paper sweeps 64 MB,
 * 256 MB and 1 GB).
 *
 * The capacity points form a variant axis patching llcBytes; the
 * functional replay runs through the sweep engine with a custom run
 * function (no timing simulation), so the four capacity points of
 * each workload execute in parallel under --jobs.
 *
 * Paper: the 256 MB and 1 GB points eliminate 38.6-45.5% of memory
 * accesses on average -- the temporal locality DRAM caches can
 * capture lies beyond today's on-chip capacities.
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"
#include "cache/capacity_analyzer.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Fig. 3: memory accesses vs cache capacity "
                "(normalized to 16 MB LLC)",
                "64MB/256MB/1GB caches remove up to ~45% of memory "
                "accesses on average");
    if (!br.ok())
        return br.exitCode();

    // Functional model: full-size footprints and capacities (scale
    // 1), since no timing is simulated. measureOps = references per
    // core replayed against the tag arrays.
    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.designs = {Design::Baseline};
    grid.scale = 1;
    grid.measureOps = 400000;
    grid.warmupOps = 1; // unused by the replay; avoid the auto quota
    const std::vector<std::uint64_t> sizes_mb = {16, 64, 256, 1024};
    for (const std::uint64_t mb : sizes_mb) {
        grid.variants.push_back(
            {std::to_string(mb) + "MB",
             [mb](SystemConfig &c) { c.llcBytes = mb << 20; }});
    }
    grid = br.quickened(grid);

    const auto replay = [](const exp::RunSpec &spec) {
        SyntheticWorkload wl(spec.profile.scaled(spec.scale),
                             spec.cfg.totalCores(),
                             spec.cfg.coresPerSocket);
        const CapacityResult r = analyzeCapacity(
            wl, spec.cfg.numSockets, spec.cfg.coresPerSocket,
            spec.cfg.llcBytes, spec.cfg.llcWays, /*shared=*/false,
            spec.measureOps);
        RunResult m;
        m.instructions = r.references;
        m.memReads = r.cacheMisses;
        m.llcMisses = r.cacheMisses;
        m.remoteMemReads = r.remoteMisses;
        return m;
    };

    const exp::ResultTable table = br.run(grid, replay);
    if (br.emit(table))
        return 0;

    std::vector<std::string> names;
    std::vector<Series> series;
    for (const exp::ConfigVariant &v : grid.variants)
        series.push_back({v.name, {}});
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        names.push_back(grid.workloads[w].name);
        const exp::ResultRow *base = table.find(w, 0);
        const double base_misses = base
            ? static_cast<double>(base->metrics.llcMisses) : 0.0;
        for (std::size_t v = 0; v < grid.variants.size(); ++v) {
            const exp::ResultRow *row = table.find(w, v);
            series[v].values.push_back(
                row && base_misses > 0
                    ? static_cast<double>(row->metrics.llcMisses) /
                        base_misses
                    : 1.0);
        }
    }
    printTable(names, series);
    std::printf("\npaper shape: monotone decrease; 1GB point around "
                "0.55-0.61 of the 16MB baseline on average\n");
    return 0;
}
