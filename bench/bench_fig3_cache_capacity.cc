/**
 * @file
 * Fig. 3: memory accesses as a function of LLC capacity, normalized
 * to a 16 MB LLC (functional cache model; the paper sweeps 64 MB,
 * 256 MB and 1 GB).
 *
 * Paper: the 256 MB and 1 GB points eliminate 38.6-45.5% of memory
 * accesses on average -- the temporal locality DRAM caches can
 * capture lies beyond today's on-chip capacities.
 */

#include <cstdio>
#include <vector>

#include "cache/capacity_analyzer.hh"
#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Fig. 3: memory accesses vs cache capacity "
                "(normalized to 16 MB LLC)",
                "64MB/256MB/1GB caches remove up to ~45% of memory "
                "accesses on average");

    // Functional model: full-size footprints and capacities, since no
    // timing is simulated.
    constexpr std::uint32_t Sockets = 4, CoresPerSocket = 8;
    constexpr std::uint64_t RefsPerCore = 400000;
    const std::vector<std::uint64_t> sizes_mb = {16, 64, 256, 1024};

    std::vector<std::string> names;
    std::vector<Series> series;
    for (std::uint64_t mb : sizes_mb)
        series.push_back({std::to_string(mb) + "MB", {}});

    for (const WorkloadProfile &p : parallelProfiles()) {
        names.push_back(p.name);
        double base_misses = 0;
        for (std::size_t i = 0; i < sizes_mb.size(); ++i) {
            SyntheticWorkload wl(p, Sockets * CoresPerSocket,
                                 CoresPerSocket);
            const CapacityResult r = analyzeCapacity(
                wl, Sockets, CoresPerSocket, sizes_mb[i] << 20,
                /*ways=*/16, /*shared=*/false, RefsPerCore);
            if (i == 0)
                base_misses = static_cast<double>(r.cacheMisses);
            series[i].values.push_back(
                base_misses > 0
                    ? static_cast<double>(r.cacheMisses) / base_misses
                    : 1.0);
        }
    }

    printTable(names, series);
    std::printf("\npaper shape: monotone decrease; 1GB point around "
                "0.55-0.61 of the 16MB baseline on average\n");
    return 0;
}
