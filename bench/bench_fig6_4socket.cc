/**
 * @file
 * Fig. 6: 4-socket (8 cores/socket) performance comparison. Speedup
 * over the no-DRAM-cache baseline for snoopy, full-dir, c3d and
 * c3d-full-dir.
 *
 * Paper shape: C3D wins everywhere (avg +19.2%, streamcluster
 * +50.7%); snoopy slows most workloads down; full-dir hurts the
 * communication-heavy PARSEC codes but helps server workloads
 * (except nutch); c3d-full-dir is marginally better than c3d
 * (20.3% vs 19.2%).
 */

#include "speedup_common.hh"

int
main(int argc, char **argv)
{
    return c3d::bench::runSpeedupComparison(
        argc, argv,
        "Fig. 6: 4-socket (8 cores/socket) speedup vs baseline",
        "c3d avg ~1.19x (streamcluster 1.51x); snoopy mostly "
        "<1.0x; c3d-full-dir ~1.20x",
        4);
}
