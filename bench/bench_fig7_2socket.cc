/**
 * @file
 * Fig. 7: 2-socket (16 cores/socket) performance comparison.
 *
 * Paper shape: same ordering as the 4-socket machine with larger C3D
 * gains (avg +24.1%, within 3% of the idealized c3d-full-dir's
 * +26.3%) because 16 cores sharing the LLC raise its miss rate and
 * give the DRAM cache more to filter.
 */

#include "speedup_common.hh"

int
main(int argc, char **argv)
{
    return c3d::bench::runSpeedupComparison(
        argc, argv,
        "Fig. 7: 2-socket (16 cores/socket) speedup vs baseline",
        "c3d avg ~1.24x, within 3% of c3d-full-dir (~1.26x)",
        2);
}
