/**
 * @file
 * Fig. 8: C3D memory traffic (reads / writes / total) normalized to
 * the baseline without DRAM caches, 4-socket, 1 GB DRAM cache.
 *
 * Paper shape: up to 98% of memory accesses removed (streamcluster),
 * 49% on average; remote reads drop by 70.9% on average (up to 99%);
 * writes unchanged (clean caches write through).
 */

#include <cstdio>
#include <vector>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Fig. 8: C3D memory traffic normalized to baseline",
                "reads drop ~71% avg (up to 99%); writes ~1.0; total "
                "~0.51 avg");

    std::vector<std::string> names;
    Series reads{"reads", {}};
    Series writes{"writes", {}};
    Series total{"total", {}};
    Series remote_reads{"remote-reads", {}};

    for (const WorkloadProfile &p : parallelProfiles()) {
        names.push_back(p.name);
        const RunResult base =
            runOne(benchConfig(Design::Baseline), p);
        const RunResult c3d = runOne(benchConfig(Design::C3D), p);
        auto ratio = [](std::uint64_t a, std::uint64_t b) {
            return b ? static_cast<double>(a) /
                    static_cast<double>(b)
                     : 1.0;
        };
        reads.values.push_back(ratio(c3d.memReads, base.memReads));
        writes.values.push_back(ratio(c3d.memWrites, base.memWrites));
        total.values.push_back(
            ratio(c3d.memAccesses(), base.memAccesses()));
        remote_reads.values.push_back(
            ratio(c3d.remoteMemReads, base.remoteMemReads));
    }

    printTable(names, {reads, writes, total, remote_reads});
    std::printf("\npaper shape: reads far below 1.0 (streamcluster "
                "~0.02), writes ~=1.0, remote reads ~0.29 avg\n");
    return 0;
}
