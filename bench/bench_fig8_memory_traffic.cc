/**
 * @file
 * Fig. 8: C3D memory traffic (reads / writes / total) normalized to
 * the baseline without DRAM caches, 4-socket, 1 GB DRAM cache.
 *
 * Paper shape: up to 98% of memory accesses removed (streamcluster),
 * 49% on average; remote reads drop by 70.9% on average (up to 99%);
 * writes unchanged (clean caches write through).
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Fig. 8: C3D memory traffic normalized to baseline",
                "reads drop ~71% avg (up to 99%); writes ~1.0; total "
                "~0.51 avg");
    if (!br.ok())
        return br.exitCode();

    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.designs = {Design::Baseline, Design::C3D};
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::vector<std::string> names;
    Series reads{"reads", {}};
    Series writes{"writes", {}};
    Series total{"total", {}};
    Series remote_reads{"remote-reads", {}};

    const auto ratio = [](std::uint64_t a, std::uint64_t b) {
        return b ? static_cast<double>(a) / static_cast<double>(b)
                 : 1.0;
    };
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        names.push_back(grid.workloads[w].name);
        const exp::ResultRow *base = table.find(w, 0, 0);
        const exp::ResultRow *c3d = table.find(w, 0, 1);
        if (!base || !c3d)
            c3d_fatal("sweep table is missing an expected row");
        reads.values.push_back(
            ratio(c3d->metrics.memReads, base->metrics.memReads));
        writes.values.push_back(
            ratio(c3d->metrics.memWrites, base->metrics.memWrites));
        total.values.push_back(ratio(c3d->metrics.memAccesses(),
                                     base->metrics.memAccesses()));
        remote_reads.values.push_back(
            ratio(c3d->metrics.remoteMemReads,
                  base->metrics.remoteMemReads));
    }

    printTable(names, {reads, writes, total, remote_reads});
    std::printf("\npaper shape: reads far below 1.0 (streamcluster "
                "~0.02), writes ~=1.0, remote reads ~0.29 avg\n");
    return 0;
}
