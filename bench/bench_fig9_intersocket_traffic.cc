/**
 * @file
 * Fig. 9: inter-socket traffic of every design normalized to the
 * baseline, 4-socket machine.
 *
 * Paper shape: c3d carries ~35.9% less traffic than baseline and
 * only ~5% more than full-dir / c3d-full-dir; snoopy carries much
 * more (broadcast probes on every miss); c3d even beats full-dir on
 * some workloads (e.g. facesim) because dirty remote hits cost
 * full-dir extra data forwarding.
 */

#include <cstdio>
#include <vector>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Fig. 9: inter-socket traffic normalized to baseline",
                "c3d ~0.64x of baseline, ~5% above full-dir; snoopy "
                "well above 1x");

    std::vector<std::string> names;
    Series snoopy{"snoopy", {}};
    Series fulldir{"full-dir", {}};
    Series c3d{"c3d", {}};
    Series c3dfd{"c3d-full-dir", {}};

    for (const WorkloadProfile &p : parallelProfiles()) {
        names.push_back(p.name);
        const RunResult base =
            runOne(benchConfig(Design::Baseline), p);
        auto ratio = [&](Design d) {
            const RunResult r = runOne(benchConfig(d), p);
            return base.interSocketBytes
                ? static_cast<double>(r.interSocketBytes) /
                    static_cast<double>(base.interSocketBytes)
                : 1.0;
        };
        snoopy.values.push_back(ratio(Design::Snoopy));
        fulldir.values.push_back(ratio(Design::FullDir));
        c3d.values.push_back(ratio(Design::C3D));
        c3dfd.values.push_back(ratio(Design::C3DFullDir));
    }

    printTable(names, {snoopy, fulldir, c3d, c3dfd});
    return 0;
}
