/**
 * @file
 * Fig. 9: inter-socket traffic of every design normalized to the
 * baseline, 4-socket machine.
 *
 * Paper shape: c3d carries ~35.9% less traffic than baseline and
 * only ~5% more than full-dir / c3d-full-dir; snoopy carries much
 * more (broadcast probes on every miss); c3d even beats full-dir on
 * some workloads (e.g. facesim) because dirty remote hits cost
 * full-dir extra data forwarding.
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Fig. 9: inter-socket traffic normalized to baseline",
                "c3d ~0.64x of baseline, ~5% above full-dir; snoopy "
                "well above 1x");
    if (!br.ok())
        return br.exitCode();

    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.designs = {Design::Baseline, Design::Snoopy, Design::FullDir,
                    Design::C3D, Design::C3DFullDir};
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::vector<std::string> names;
    std::vector<Series> series;
    for (std::size_t d = 1; d < grid.designs.size(); ++d)
        series.push_back({designName(grid.designs[d]), {}});
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        names.push_back(grid.workloads[w].name);
        const exp::ResultRow *base = table.find(w, 0, 0);
        if (!base)
            c3d_fatal("sweep table is missing an expected row");
        for (std::size_t d = 1; d < grid.designs.size(); ++d) {
            const exp::ResultRow *row = table.find(w, 0, d);
            if (!row)
                c3d_fatal("sweep table is missing an expected row");
            series[d - 1].values.push_back(
                base->metrics.interSocketBytes
                    ? static_cast<double>(
                          row->metrics.interSocketBytes) /
                        static_cast<double>(
                            base->metrics.interSocketBytes)
                    : 1.0);
        }
    }

    printTable(names, series);
    return 0;
}
