/**
 * @file
 * Sweep-engine front end shared by every paper-figure bench.
 *
 * Each bench declares its study as one or more SweepGrids and hands
 * them to a BenchRun, which owns the common command line:
 *
 *   --jobs=N   run grid points on N worker threads (default 1)
 *   --quick    shrink the grid to a seconds-scale smoke version
 *   --json     emit the raw result table as JSON instead of the
 *              human-readable paper table (machine consumers; the
 *              smoke tests assert this output parses)
 *
 * Because grid expansion order fixes result order, bench output is
 * identical for every --jobs value; the pool only changes wall-clock.
 */

#ifndef C3DSIM_BENCH_BENCH_MAIN_HH
#define C3DSIM_BENCH_BENCH_MAIN_HH

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "exp/sweep_engine.hh"
#include "harness.hh"

namespace c3d::bench
{

/** Common bench command line + engine front end. */
class BenchRun
{
  public:
    BenchRun(int argc, char **argv, const char *experiment,
             const char *claim)
        : experimentName(experiment), claimText(claim)
    {
        for (int i = 1; i < argc; ++i) {
            std::string key, value;
            std::uint64_t n = 0;
            if (!splitFlag(argv[i], key, value)) {
                fail(std::string("unexpected argument '") + argv[i] +
                     "'");
                return;
            }
            if (key == "jobs") {
                if (!parseU64(value, n) || n > 256) {
                    fail("bad --jobs value");
                    return;
                }
                jobCount = static_cast<unsigned>(n);
            } else if (key == "quick") {
                quick = true;
            } else if (key == "json") {
                json = true;
            } else if (key == "help") {
                std::printf("%s\n  --jobs=N  --quick  --json\n",
                            experiment);
                helpShown = true;
            } else {
                fail("unknown flag '--" + key + "'");
                return;
            }
        }
        setQuiet(true);
    }

    bool ok() const { return error.empty() && !helpShown; }
    int exitCode() const { return error.empty() ? 0 : 2; }
    bool jsonOnly() const { return json; }
    bool isQuick() const { return quick; }
    unsigned jobs() const { return jobCount; }

    /**
     * Apply the --quick preset: the shared smoke-scale machine plus
     * a trim to the first two workloads. Benches must route their
     * grid through this BEFORE run() and tabulate from the returned
     * grid, so table indices and axis lengths agree.
     */
    exp::SweepGrid
    quickened(exp::SweepGrid grid) const
    {
        if (!quick)
            return grid;
        if (grid.workloads.size() > 2)
            grid.workloads.resize(2);
        return exp::quickPreset(std::move(grid));
    }

    /** Expand, execute, and collect @p grid on the worker pool. */
    exp::ResultTable
    run(const exp::SweepGrid &grid) const
    {
        maybePrintHeader(grid.scale);
        exp::SweepEngine engine(jobCount);
        return engine.run(grid);
    }

    /** Same, with a custom per-spec run function. */
    exp::ResultTable
    run(const exp::SweepGrid &grid,
        const exp::SweepEngine::RunFn &fn) const
    {
        maybePrintHeader(grid.scale);
        exp::SweepEngine engine(jobCount);
        return engine.run(grid, fn);
    }

    /**
     * Emit @p table as JSON when --json was given. Returns true when
     * the bench should skip its human-readable tabulation.
     */
    bool
    emit(const exp::ResultTable &table) const
    {
        if (!json)
            return false;
        std::fputs(table.toJson().c_str(), stdout);
        return true;
    }

  private:
    void
    fail(const std::string &msg)
    {
        error = msg;
        std::fprintf(stderr, "bench: %s (try --help)\n", msg.c_str());
    }

    /** Header printing waits for the first run(), when the actual
     * machine scale (post --quick) is known. */
    void
    maybePrintHeader(std::uint32_t scale) const
    {
        if (json || helpShown || headerPrinted)
            return;
        printHeader(experimentName, claimText, scale);
        headerPrinted = true;
    }

    const char *experimentName;
    const char *claimText;
    unsigned jobCount = 1;
    bool quick = false;
    bool json = false;
    bool helpShown = false;
    mutable bool headerPrinted = false;
    std::string error;
};

/** Ticks of the row found by table.find(...); fatal when absent. */
inline double
ticksAt(const exp::ResultTable &table, std::size_t workload_idx,
        std::size_t variant_idx = SIZE_MAX,
        std::size_t design_idx = SIZE_MAX,
        std::size_t socket_idx = SIZE_MAX)
{
    const exp::ResultRow *row =
        table.find(workload_idx, variant_idx, design_idx, socket_idx);
    if (!row)
        c3d_fatal("sweep table is missing an expected row");
    return static_cast<double>(row->metrics.measuredTicks);
}

} // namespace c3d::bench

#endif // C3DSIM_BENCH_BENCH_MAIN_HH
