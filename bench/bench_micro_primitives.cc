/**
 * @file
 * Google-benchmark microbenchmarks of the simulator primitives: the
 * event queue, tag array, miss predictor and RNG. These bound the
 * simulator's own throughput (events/second), which determines how
 * large a machine/trace the harness can afford.
 */

#include <benchmark/benchmark.h>

#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "dramcache/miss_predictor.hh"
#include "sim/event_queue.hh"

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    c3d::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<c3d::Tick>(i & 7),
                        [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueSameTickBurst(benchmark::State &state)
{
    // Barrier-style bursts: many events land on one tick and must
    // drain in FIFO order. Exercises single-bucket append/drain.
    c3d::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.schedule(3, [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueSameTickBurst);

void
BM_EventQueueFarFuture(benchmark::State &state)
{
    // Delays beyond the wheel span land in the overflow heap and
    // migrate into the wheel as the base advances -- the pattern a
    // congested memory channel produces with far-future ready times.
    c3d::EventQueue eq;
    std::uint64_t sink = 0;
    const c3d::Tick far = 4 * c3d::EventQueue::WheelSpan;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.schedule(far + static_cast<c3d::Tick>(i & 63),
                        [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueFarFuture);

void
BM_TagArrayLookup(benchmark::State &state)
{
    c3d::TagArray tags;
    tags.init(1 << 20, 16);
    c3d::Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        tags.allocate(rng.below(1 << 20), c3d::CacheState::Shared);
    std::uint64_t hits = 0;
    for (auto _ : state) {
        hits += tags.find(rng.below(1 << 20)) != nullptr;
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayLookup);

void
BM_TagArrayAllocate(benchmark::State &state)
{
    c3d::TagArray tags;
    tags.init(1 << 18, 8);
    c3d::Rng rng(2);
    for (auto _ : state) {
        tags.allocate(rng.below(1 << 22) * c3d::BlockBytes,
                      c3d::CacheState::Shared);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayAllocate);

void
BM_TagArrayAllocateEvict(benchmark::State &state)
{
    // Every allocation displaces a valid LRU victim: the array is
    // pre-filled and the address stream never reuses a block, so this
    // isolates the fused find+victim scan plus eviction bookkeeping.
    c3d::TagArray tags;
    tags.init(1 << 18, 8);
    c3d::Addr next = 0;
    const std::uint64_t blocks = tags.capacityBlocks();
    for (std::uint64_t i = 0; i < blocks; ++i)
        tags.allocate((next++) * c3d::BlockBytes,
                      c3d::CacheState::Shared);
    std::uint64_t evictions = 0;
    for (auto _ : state) {
        evictions += tags.allocate((next++) * c3d::BlockBytes,
                                   c3d::CacheState::Shared).evictedValid;
    }
    benchmark::DoNotOptimize(evictions);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayAllocateEvict);

void
BM_MissPredictor(benchmark::State &state)
{
    c3d::StatGroup stats("bench");
    c3d::MissPredictor pred;
    pred.init(4096, 4096, &stats, "pred");
    c3d::Rng rng(3);
    for (int i = 0; i < 4096; ++i)
        pred.onInsert(rng.below(1u << 30));
    std::uint64_t present = 0;
    for (auto _ : state)
        present += pred.mayBePresent(rng.below(1u << 30));
    benchmark::DoNotOptimize(present);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MissPredictor);

void
BM_RngBelow(benchmark::State &state)
{
    c3d::Rng rng(4);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.below(12345);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngBelow);

} // namespace

BENCHMARK_MAIN();
