/**
 * @file
 * §VI-C: reducing broadcast traffic with TLB private/shared page
 * classification.
 *
 * Paper shape: for the parallel workloads ~5% of broadcasts are
 * filtered and the overall traffic change is negligible (<0.1%); for
 * single-threaded mcf, whose write working set exceeds the LLC, the
 * classification removes essentially all write-related broadcast
 * traffic -- useful but non-essential.
 */

#include <cstdio>
#include <vector>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("SVI-C: TLB page classification vs C3D broadcasts",
                "parallel workloads: ~5% of broadcasts elided, "
                "<0.1% traffic change; mcf: ~all broadcasts elided");

    std::printf("%-16s %12s %12s %10s %12s\n", "workload",
                "bcast base", "bcast +tlb", "elided%", "noc delta%");

    std::vector<WorkloadProfile> workloads = parallelProfiles();
    workloads.push_back(mcfProfile());

    for (const WorkloadProfile &p : workloads) {
        SystemConfig cfg = benchConfig(Design::C3D);
        const RunResult base = runOne(cfg, p);

        SystemConfig tlb_cfg = cfg;
        tlb_cfg.tlbPageClassification = true;
        const RunResult tlb = runOne(tlb_cfg, p);

        const std::uint64_t total_write_misses =
            tlb.broadcasts + tlb.broadcastsElided;
        const double elided_pct = total_write_misses
            ? 100.0 * static_cast<double>(tlb.broadcastsElided) /
                static_cast<double>(total_write_misses)
            : 0.0;
        const double noc_delta = base.interSocketBytes
            ? 100.0 *
                (static_cast<double>(tlb.interSocketBytes) /
                     static_cast<double>(base.interSocketBytes) -
                 1.0)
            : 0.0;
        std::printf("%-16s %12llu %12llu %9.1f%% %11.2f%%\n",
                    p.name.c_str(),
                    static_cast<unsigned long long>(base.broadcasts),
                    static_cast<unsigned long long>(tlb.broadcasts),
                    elided_pct, noc_delta);
    }
    return 0;
}
