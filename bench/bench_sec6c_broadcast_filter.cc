/**
 * @file
 * §VI-C: reducing broadcast traffic with TLB private/shared page
 * classification.
 *
 * Paper shape: for the parallel workloads ~5% of broadcasts are
 * filtered and the overall traffic change is negligible (<0.1%); for
 * single-threaded mcf, whose write working set exceeds the LLC, the
 * classification removes essentially all write-related broadcast
 * traffic -- useful but non-essential.
 */

#include <cstdio>
#include <vector>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "SVI-C: TLB page classification vs C3D broadcasts",
                "parallel workloads: ~5% of broadcasts elided, "
                "<0.1% traffic change; mcf: ~all broadcasts elided");
    if (!br.ok())
        return br.exitCode();

    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.workloads.push_back(mcfProfile());
    grid.designs = {Design::C3D};
    grid.variants = {
        {"base", nullptr},
        {"tlb",
         [](SystemConfig &c) { c.tlbPageClassification = true; }},
    };
    grid = br.quickened(grid);
    if (br.isQuick()) {
        // Keep single-threaded mcf -- the workload the headline
        // claim is about -- instead of the default first-two trim.
        grid.workloads = {facesimProfile(), mcfProfile()};
    }

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::printf("%-16s %12s %12s %10s %12s\n", "workload",
                "bcast base", "bcast +tlb", "elided%", "noc delta%");
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        const exp::ResultRow *base = table.find(w, 0);
        const exp::ResultRow *tlb = table.find(w, 1);
        if (!base || !tlb)
            c3d_fatal("sweep table is missing an expected row");

        const std::uint64_t total_write_misses =
            tlb->metrics.broadcasts + tlb->metrics.broadcastsElided;
        const double elided_pct = total_write_misses
            ? 100.0 *
                static_cast<double>(tlb->metrics.broadcastsElided) /
                static_cast<double>(total_write_misses)
            : 0.0;
        const double noc_delta = base->metrics.interSocketBytes
            ? 100.0 *
                (static_cast<double>(tlb->metrics.interSocketBytes) /
                     static_cast<double>(
                         base->metrics.interSocketBytes) -
                 1.0)
            : 0.0;
        std::printf("%-16s %12llu %12llu %9.1f%% %11.2f%%\n",
                    base->workload.c_str(),
                    static_cast<unsigned long long>(
                        base->metrics.broadcasts),
                    static_cast<unsigned long long>(
                        tlb->metrics.broadcasts),
                    elided_pct, noc_delta);
    }
    return 0;
}
