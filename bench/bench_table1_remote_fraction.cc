/**
 * @file
 * Table I: fraction of memory accesses satisfied by a remote socket's
 * memory under first-touch placement, 4-socket baseline machine.
 *
 * Paper values: facesim 76.6%, streamcluster 73.6%, freqmine 74.6%,
 * fluidanimate 75.2%, canneal 75%, tunkrank 61.6%, nutch 75.2%,
 * cassandra 75.2%, classification 75.2% (average 73.5%, i.e. only
 * ~26.5% of accesses are local).
 */

#include <cstdio>
#include <map>

#include "harness.hh"

int
main()
{
    using namespace c3d;
    using namespace c3d::bench;

    printHeader("Table I: remote-memory access fraction "
                "(first-touch, 4-socket baseline)",
                "61.6-76.6% of memory accesses are satisfied by a "
                "remote socket");

    const std::map<std::string, double> paper = {
        {"facesim", 76.6},      {"streamcluster", 73.6},
        {"freqmine", 74.6},     {"fluidanimate", 75.2},
        {"canneal", 75.0},      {"tunkrank", 61.6},
        {"nutch", 75.2},        {"cassandra", 75.2},
        {"classification", 75.2}};

    std::printf("%-16s %12s %12s\n", "workload", "paper", "measured");
    double sum = 0;
    int n = 0;
    for (const WorkloadProfile &p : parallelProfiles()) {
        SystemConfig cfg = benchConfig(Design::Baseline);
        cfg.mapping = MappingPolicy::FirstTouch2;
        const RunResult r = runOne(cfg, p);
        const double frac = r.memAccesses()
            ? 100.0 * static_cast<double>(r.remoteMemAccesses()) /
                static_cast<double>(r.memAccesses())
            : 0.0;
        std::printf("%-16s %11.1f%% %11.1f%%\n", p.name.c_str(),
                    paper.at(p.name), frac);
        sum += frac;
        ++n;
    }
    std::printf("%-16s %11.1f%% %11.1f%%\n", "average", 73.5,
                sum / n);
    return 0;
}
