/**
 * @file
 * Table I: fraction of memory accesses satisfied by a remote socket's
 * memory under first-touch placement, 4-socket baseline machine.
 *
 * Paper values: facesim 76.6%, streamcluster 73.6%, freqmine 74.6%,
 * fluidanimate 75.2%, canneal 75%, tunkrank 61.6%, nutch 75.2%,
 * cassandra 75.2%, classification 75.2% (average 73.5%, i.e. only
 * ~26.5% of accesses are local).
 */

#include <cstdio>
#include <map>

#include "bench_main.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    using namespace c3d::bench;

    BenchRun br(argc, argv,
                "Table I: remote-memory access fraction "
                "(first-touch, 4-socket baseline)",
                "61.6-76.6% of memory accesses are satisfied by a "
                "remote socket");
    if (!br.ok())
        return br.exitCode();

    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.designs = {Design::Baseline};
    grid.mappings = {MappingPolicy::FirstTouch2};
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    const std::map<std::string, double> paper = {
        {"facesim", 76.6},      {"streamcluster", 73.6},
        {"freqmine", 74.6},     {"fluidanimate", 75.2},
        {"canneal", 75.0},      {"tunkrank", 61.6},
        {"nutch", 75.2},        {"cassandra", 75.2},
        {"classification", 75.2}};

    std::printf("%-16s %12s %12s\n", "workload", "paper", "measured");
    double sum = 0;
    int n = 0;
    for (const exp::ResultRow &r : table.rows()) {
        const double frac = r.metrics.memAccesses()
            ? 100.0 *
                static_cast<double>(r.metrics.remoteMemAccesses()) /
                static_cast<double>(r.metrics.memAccesses())
            : 0.0;
        const auto it = paper.find(r.workload);
        std::printf("%-16s %11.1f%% %11.1f%%\n", r.workload.c_str(),
                    it != paper.end() ? it->second : 0.0, frac);
        sum += frac;
        ++n;
    }
    std::printf("%-16s %11.1f%% %11.1f%%\n", "average", 73.5,
                n ? sum / n : 0.0);
    return 0;
}
