/**
 * @file
 * Shared bench harness: runs workload x design sweeps on the scaled
 * machine and prints paper-style tables with paper-reported reference
 * values alongside measured ones.
 *
 * Scaling: benches run at 1/SCALE of the paper machine (capacities
 * and workload footprints shrink together, preserving hit rates and
 * protocol event mixes; DESIGN.md §4). Reference counts per core are
 * reduced accordingly. Absolute numbers therefore differ from the
 * paper; the shapes (who wins, by roughly what factor, where
 * crossovers fall) are the reproduction target (EXPERIMENTS.md).
 */

#ifndef C3DSIM_BENCH_HARNESS_HH
#define C3DSIM_BENCH_HARNESS_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/runner.hh"
#include "trace/workload.hh"

namespace c3d::bench
{

/** Default bench scale (1/32 of the paper machine). */
constexpr std::uint32_t Scale = 32;
/** References per core: warm-up and measurement windows. */
constexpr std::uint64_t WarmupOps = 12000;
constexpr std::uint64_t MeasureOps = 25000;

/** Paper-machine config at bench scale. */
inline SystemConfig
benchConfig(Design design, std::uint32_t sockets = 4,
            std::uint32_t scale = Scale)
{
    SystemConfig cfg;
    cfg.numSockets = sockets;
    cfg.coresPerSocket = sockets == 2 ? 16 : 8;
    cfg.design = design;
    return cfg.scaled(scale);
}

/**
 * Warm-up quota for a profile: scan-dominated workloads need the
 * rotating partition to cover each socket's DRAM cache (numSockets
 * full iterations) before the window opens, mirroring the paper's
 * 100M-access DRAM-cache warm-up.
 */
inline std::uint64_t
warmupFor(const WorkloadProfile &unscaled)
{
    return unscaled.fracStream > 0.5 ? 45000 : WarmupOps;
}

/** Run one workload under one design. */
inline RunResult
runOne(const SystemConfig &cfg, const WorkloadProfile &unscaled,
       std::uint32_t scale = Scale, std::uint64_t warmup = 0,
       std::uint64_t measure = MeasureOps)
{
    setQuiet(true);
    if (warmup == 0)
        warmup = warmupFor(unscaled);
    return runWorkload(cfg, unscaled.scaled(scale), warmup, measure);
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Print a standard bench header for a run at @p scale. */
inline void
printHeader(const char *experiment, const char *claim,
            std::uint32_t scale = Scale)
{
    std::printf("==================================================="
                "=====================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", claim);
    std::printf("machine scale 1/%u; shapes (not absolute numbers) "
                "are the target\n", scale);
    std::printf("==================================================="
                "=====================\n");
}

/** A named series of per-workload values for table printing. */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/** Print workloads as rows, series as columns. */
inline void
printTable(const std::vector<std::string> &workloads,
           const std::vector<Series> &series,
           const char *value_format = "%12.3f")
{
    std::printf("%-16s", "workload");
    for (const auto &s : series)
        std::printf("%14s", s.name.c_str());
    std::printf("\n");
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%-16s", workloads[w].c_str());
        for (const auto &s : series) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), value_format,
                          s.values.at(w));
            std::printf("%14s", buf);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "geomean");
    for (const auto &s : series) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), value_format,
                      geomean(s.values));
        std::printf("%14s", buf);
    }
    std::printf("\n");
}

} // namespace c3d::bench

#endif // C3DSIM_BENCH_HARNESS_HH
