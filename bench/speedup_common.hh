/**
 * @file
 * Shared driver for the Fig. 6 / Fig. 7 speedup comparisons: a
 * declarative workloads x designs grid on the sweep engine, printed
 * as speedups vs the no-DRAM-cache baseline.
 */

#ifndef C3DSIM_BENCH_SPEEDUP_COMMON_HH
#define C3DSIM_BENCH_SPEEDUP_COMMON_HH

#include <cstdio>
#include <vector>

#include "bench_main.hh"

namespace c3d::bench
{

inline int
runSpeedupComparison(int argc, char **argv, const char *experiment,
                     const char *claim, std::uint32_t sockets)
{
    BenchRun br(argc, argv, experiment, claim);
    if (!br.ok())
        return br.exitCode();

    exp::SweepGrid grid;
    grid.workloads = parallelProfiles();
    grid.designs = {Design::Baseline, Design::Snoopy, Design::FullDir,
                    Design::C3D, Design::C3DFullDir};
    grid.sockets = {sockets};
    grid = br.quickened(grid);

    const exp::ResultTable table = br.run(grid);
    if (br.emit(table))
        return 0;

    std::vector<std::string> names;
    std::vector<Series> series;
    for (std::size_t d = 1; d < grid.designs.size(); ++d)
        series.push_back({designName(grid.designs[d]), {}});
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        names.push_back(grid.workloads[w].name);
        const double base = ticksAt(table, w, 0, 0);
        for (std::size_t d = 1; d < grid.designs.size(); ++d)
            series[d - 1].values.push_back(base /
                                           ticksAt(table, w, 0, d));
    }
    printTable(names, series);
    return 0;
}

} // namespace c3d::bench

#endif // C3DSIM_BENCH_SPEEDUP_COMMON_HH
