/**
 * @file
 * Shared driver for the Fig. 6 / Fig. 7 speedup comparisons: run all
 * nine workloads under all five designs and print speedups vs the
 * baseline without DRAM caches.
 */

#ifndef C3DSIM_BENCH_SPEEDUP_COMMON_HH
#define C3DSIM_BENCH_SPEEDUP_COMMON_HH

#include <cstdio>
#include <vector>

#include "harness.hh"

namespace c3d::bench
{

inline void
runSpeedupComparison(std::uint32_t sockets)
{
    std::vector<std::string> names;
    Series snoopy{"snoopy", {}};
    Series fulldir{"full-dir", {}};
    Series c3d{"c3d", {}};
    Series c3dfd{"c3d-full-dir", {}};

    for (const WorkloadProfile &p : parallelProfiles()) {
        names.push_back(p.name);
        const RunResult base =
            runOne(benchConfig(Design::Baseline, sockets), p);
        auto speedup = [&](Design d) {
            const RunResult r = runOne(benchConfig(d, sockets), p);
            return static_cast<double>(base.measuredTicks) /
                static_cast<double>(r.measuredTicks);
        };
        snoopy.values.push_back(speedup(Design::Snoopy));
        fulldir.values.push_back(speedup(Design::FullDir));
        c3d.values.push_back(speedup(Design::C3D));
        c3dfd.values.push_back(speedup(Design::C3DFullDir));
    }

    printTable(names, {snoopy, fulldir, c3d, c3dfd});
}

} // namespace c3d::bench

#endif // C3DSIM_BENCH_SPEEDUP_COMMON_HH
