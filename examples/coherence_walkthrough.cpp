/**
 * @file
 * Coherence walkthrough: drive individual loads and stores through a
 * small C3D machine and narrate the protocol actions (Fig. 5 of the
 * paper), then verify the abstract protocol with the built-in model
 * checker (§IV-C).
 */

#include <cstdio>

#include "check/model_checker.hh"
#include "coherence/directory_protocols.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "sim/machine.hh"

using namespace c3d;

namespace
{

const char *
stateName(CacheState s)
{
    switch (s) {
      case CacheState::Invalid:
        return "I";
      case CacheState::Shared:
        return "S";
      case CacheState::Modified:
        return "M";
    }
    return "?";
}

/** Issue one access and run the machine until it completes. */
void
access(Machine &m, SocketId socket, bool write, Addr addr,
       const char *what)
{
    bool done = false;
    if (write)
        m.socket(socket).store(0, addr, false, [&] { done = true; });
    else
        m.socket(socket).load(0, addr, [&] { done = true; });
    const Tick start = m.eventQueue().now();
    while (!done && m.eventQueue().step()) {
    }
    m.eventQueue().run(); // quiesce writebacks
    std::printf("  %-28s took %5llu ticks", what,
                static_cast<unsigned long long>(
                    m.eventQueue().now() - start));
    std::printf("  [LLC: s0=%s s1=%s",
                stateName(m.socket(0).llcState(addr)),
                stateName(m.socket(1).llcState(addr)));
    std::printf("  DRAM$: s0=%c s1=%c]\n",
                m.socket(0).dramCache() &&
                        m.socket(0).dramCache()->contains(addr)
                    ? 'V' : '-',
                m.socket(1).dramCache() &&
                        m.socket(1).dramCache()->contains(addr)
                    ? 'V' : '-');
}

} // namespace

int
main()
{
    setQuiet(true);

    SystemConfig cfg;
    cfg.numSockets = 2;
    cfg.coresPerSocket = 1;
    cfg.design = Design::C3D;
    cfg = cfg.scaled(256);

    Machine m(cfg);
    const Addr block = 0x4000; // homed by first touch at socket 0

    std::printf("C3D protocol walkthrough (2 sockets, block 0x%llx)\n\n",
                static_cast<unsigned long long>(block));

    access(m, 0, false, block, "s0 load (cold miss)");
    access(m, 0, false, block, "s0 load (LLC hit)");
    access(m, 1, false, block, "s1 load (remote, from memory)");
    access(m, 1, true, block, "s1 store (GetX, invalidates)");
    access(m, 0, false, block, "s0 load (fwd from s1 owner)");
    access(m, 1, false, block, "s1 load (local again)");

    // Force the block out of socket 1's LLC by conflicting fills so
    // the DRAM cache serves the next access.
    std::printf("\n  ... evicting the block from s1's LLC via "
                "conflicting fills ...\n");
    const std::uint64_t sets =
        cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 0; w <= cfg.llcWays; ++w) {
        const Addr conflict = block + (w + 1) * sets * BlockBytes;
        access(m, 1, false, conflict, "s1 conflicting load");
    }
    access(m, 1, false, block, "s1 load (DRAM cache hit)");

    std::printf("\nModel-checking the abstract protocol "
                "(paper: Murphi, §IV-C):\n");
    for (ModelVariant v : {ModelVariant::C3D, ModelVariant::C3DFullDir,
                           ModelVariant::BugNoBroadcast,
                           ModelVariant::BugNoWriteThrough}) {
        CheckConfig cc;
        cc.variant = v;
        cc.numSockets = 3;
        const CheckResult res = checkProtocol(cc);
        std::printf("  %-22s: %s (%llu states)%s%s\n",
                    modelVariantName(v),
                    res.ok ? "coherent" : "VIOLATION",
                    static_cast<unsigned long long>(
                        res.statesExplored),
                    res.ok ? "" : " - ",
                    res.violation.c_str());
    }
    std::printf("\nThe injected-bug variants show both C3D insights "
                "are load-bearing:\ndropping the broadcast or the "
                "write-through breaks coherence.\n");
    return 0;
}
