/**
 * @file
 * Configurable design shootout: run any workload under any design and
 * machine shape from the command line and print the full metric set.
 *
 *   ./design_shootout --workload=canneal --design=c3d --sockets=4
 *   ./design_shootout --workload=nutch --design=full-dir \
 *       --hop-ns=30 --scale=64
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/log.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    setQuiet(true);

    CliOptions opt = parseCli(argc, argv);
    if (opt.showHelp) {
        std::fputs(cliUsage().c_str(), stdout);
        return 0;
    }
    if (!opt.error.empty()) {
        std::fprintf(stderr, "error: %s\n%s", opt.error.c_str(),
                     cliUsage().c_str());
        return 1;
    }

    WorkloadProfile prof = profileByName(opt.workload);
    prof.seed = opt.seed;
    const WorkloadProfile scaled = prof.scaled(opt.scale);

    SyntheticWorkload wl(scaled, opt.config.totalCores(),
                         opt.config.coresPerSocket);
    Runner runner(opt.config, wl);
    const RunResult r = runner.run(opt.warmupOps, opt.measureOps);

    std::printf("machine:  %u sockets x %u cores, design %s, "
                "mapping %s, scale 1/%u\n",
                opt.config.numSockets, opt.config.coresPerSocket,
                designName(opt.config.design),
                mappingPolicyName(opt.config.mapping), opt.scale);
    std::printf("workload: %s (footprint %.1f MB scaled)\n",
                scaled.name.c_str(),
                static_cast<double>(wl.footprintBytes()) / (1 << 20));
    std::printf("\n");
    std::printf("ticks              %12llu\n",
                static_cast<unsigned long long>(r.measuredTicks));
    std::printf("instructions       %12llu   (IPC %.3f)\n",
                static_cast<unsigned long long>(r.instructions),
                r.ipc());
    std::printf("memory reads       %12llu   (%llu remote)\n",
                static_cast<unsigned long long>(r.memReads),
                static_cast<unsigned long long>(r.remoteMemReads));
    std::printf("memory writes      %12llu   (%llu remote)\n",
                static_cast<unsigned long long>(r.memWrites),
                static_cast<unsigned long long>(r.remoteMemWrites));
    std::printf("DRAM$ hits/misses  %12llu / %llu\n",
                static_cast<unsigned long long>(r.dramCacheHits),
                static_cast<unsigned long long>(r.dramCacheMisses));
    std::printf("LLC misses         %12llu\n",
                static_cast<unsigned long long>(r.llcMisses));
    std::printf("inter-socket bytes %12llu\n",
                static_cast<unsigned long long>(r.interSocketBytes));
    std::printf("broadcasts         %12llu   (%llu elided)\n",
                static_cast<unsigned long long>(r.broadcasts),
                static_cast<unsigned long long>(r.broadcastsElided));
    return 0;
}
