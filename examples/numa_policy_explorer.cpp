/**
 * @file
 * NUMA placement study: how much locality can OS page placement
 * (INT / FT1 / FT2, §V) recover for workloads with shared data --
 * and how much is left for C3D's DRAM caches.
 *
 * Reproduces the paper's motivation (§II, Table I): placement alone
 * cannot localize shared working sets, so most memory accesses stay
 * remote regardless of policy.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/runner.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    setQuiet(true);

    constexpr std::uint32_t Scale = 32;
    const std::string which = argc > 1 ? argv[1] : "facesim";
    const WorkloadProfile prof = profileByName(which).scaled(Scale);

    SystemConfig cfg;
    cfg = cfg.scaled(Scale);
    cfg.design = Design::Baseline;

    std::printf("Placement-policy study, workload '%s' "
                "(baseline machine, no DRAM cache)\n\n",
                prof.name.c_str());
    std::printf("%-6s %14s %14s %16s\n", "policy", "remote reads",
                "total reads", "remote fraction");

    Tick best_ticks = 0;
    MappingPolicy best = MappingPolicy::Interleave;
    for (MappingPolicy p : {MappingPolicy::Interleave,
                            MappingPolicy::FirstTouch1,
                            MappingPolicy::FirstTouch2}) {
        cfg.mapping = p;
        const RunResult r = runWorkload(cfg, prof, 15000, 30000);
        const double frac = r.memAccesses()
            ? static_cast<double>(r.remoteMemAccesses()) /
                static_cast<double>(r.memAccesses())
            : 0.0;
        std::printf("%-6s %14llu %14llu %15.1f%%\n",
                    mappingPolicyName(p),
                    static_cast<unsigned long long>(r.remoteMemReads),
                    static_cast<unsigned long long>(r.memReads),
                    100.0 * frac);
        if (best_ticks == 0 || r.measuredTicks < best_ticks) {
            best_ticks = r.measuredTicks;
            best = p;
        }
    }

    // Now show what a private DRAM cache recovers on top of the best
    // policy (the paper's answer to the placement dead end).
    cfg.mapping = best;
    const RunResult base = runWorkload(cfg, prof, 15000, 30000);
    cfg.design = Design::C3D;
    const RunResult c3d = runWorkload(cfg, prof, 15000, 30000);

    std::printf("\nBest policy: %s. Adding C3D DRAM caches on top:\n",
                mappingPolicyName(best));
    std::printf("  remote memory reads: %llu -> %llu (%.1f%% removed)\n",
                static_cast<unsigned long long>(base.remoteMemReads),
                static_cast<unsigned long long>(c3d.remoteMemReads),
                base.remoteMemReads
                    ? 100.0 * (1.0 -
                          static_cast<double>(c3d.remoteMemReads) /
                          static_cast<double>(base.remoteMemReads))
                    : 0.0);
    std::printf("  runtime: %llu -> %llu ticks (speedup %.2fx)\n",
                static_cast<unsigned long long>(base.measuredTicks),
                static_cast<unsigned long long>(c3d.measuredTicks),
                static_cast<double>(base.measuredTicks) /
                    static_cast<double>(c3d.measuredTicks));
    return 0;
}
