/**
 * @file
 * Quickstart: simulate a quad-socket NUMA machine with and without
 * C3D's coherent DRAM caches and print the headline comparison.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/runner.hh"
#include "trace/workload.hh"

int
main()
{
    using namespace c3d;
    setQuiet(true);

    // A 1/32-scale quad-socket machine: capacities shrink together
    // with workload footprints, preserving hit rates (DESIGN.md §4).
    constexpr std::uint32_t Scale = 32;
    SystemConfig cfg;
    cfg.numSockets = 4;
    cfg.coresPerSocket = 8;
    cfg = cfg.scaled(Scale);

    const WorkloadProfile profile =
        streamclusterProfile().scaled(Scale);

    std::printf("c3dsim quickstart: %u sockets x %u cores, "
                "workload '%s'\n\n",
                cfg.numSockets, cfg.coresPerSocket,
                profile.name.c_str());
    std::printf("%-14s %12s %10s %12s %12s\n", "design",
                "ticks", "IPC", "mem reads", "noc bytes");

    RunResult base;
    for (Design d : {Design::Baseline, Design::Snoopy, Design::FullDir,
                     Design::C3D, Design::C3DFullDir}) {
        cfg.design = d;
        const RunResult r = runWorkload(cfg, profile,
                                        /*warmup=*/45000,
                                        /*measure=*/30000);
        if (d == Design::Baseline)
            base = r;
        const double speedup = base.measuredTicks
            ? static_cast<double>(base.measuredTicks) /
                static_cast<double>(r.measuredTicks)
            : 1.0;
        std::printf("%-14s %12llu %10.3f %12llu %12llu  "
                    "(speedup %.2fx)\n",
                    designName(d),
                    static_cast<unsigned long long>(r.measuredTicks),
                    r.ipc(),
                    static_cast<unsigned long long>(r.memReads),
                    static_cast<unsigned long long>(
                        r.interSocketBytes),
                    speedup);
    }

    std::printf("\nC3D keeps DRAM caches clean so read misses never "
                "probe remote DRAM caches,\nand its non-inclusive "
                "directory never tracks DRAM-cache-only blocks "
                "(paper §IV).\n");
    return 0;
}
