/**
 * @file
 * Record a reference stream to a c3dsim trace file, replay it through
 * the timing simulator, and confirm the replay matches the live run.
 *
 * This is the integration point for real application traces (the
 * paper collected Pin/Simics traces; any tool can emit this format).
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/runner.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace c3d;
    setQuiet(true);

    constexpr std::uint32_t Scale = 64;
    const std::string path = argc > 1 ? argv[1]
                                      : "/tmp/c3dsim_example.trace";

    SystemConfig cfg;
    cfg.numSockets = 4;
    cfg.coresPerSocket = 4;
    cfg.design = Design::C3D;
    cfg = cfg.scaled(Scale);

    const std::uint64_t warmup = 4000, measure = 8000;
    const std::uint32_t cores = cfg.totalCores();

    // The trace format carries references only, not synchronization,
    // so run the live reference without barriers to match.
    WorkloadProfile prof = cannealProfile();
    prof.barrierOps = 0;

    // 1. Record: pull the synthetic stream and write it out.
    {
        SyntheticWorkload wl(prof.scaled(Scale), cores,
                             cfg.coresPerSocket);
        TraceFileWriter writer(path, cores);
        for (std::uint64_t i = 0; i < warmup + measure; ++i) {
            for (CoreId c = 0; c < cores; ++c) {
                const TraceOp op = wl.next(c);
                writer.append({static_cast<std::uint16_t>(c),
                               static_cast<std::uint16_t>(op.gap),
                               op.op, op.addr});
            }
        }
        writer.close();
        std::printf("recorded %llu records to %s\n",
                    static_cast<unsigned long long>(
                        (warmup + measure) * cores),
                    path.c_str());
    }

    // 2. Replay through the timing simulator.
    TraceFileWorkload replay(path);
    Runner runner(cfg, replay);
    const RunResult from_file = runner.run(warmup, measure);

    // 3. Reference: the same stream generated live.
    SyntheticWorkload live(prof.scaled(Scale), cores,
                           cfg.coresPerSocket);
    Runner live_runner(cfg, live);
    const RunResult from_live = live_runner.run(warmup, measure);

    std::printf("replayed run:  %llu ticks, %llu memory reads\n",
                static_cast<unsigned long long>(
                    from_file.measuredTicks),
                static_cast<unsigned long long>(from_file.memReads));
    std::printf("live run:      %llu ticks, %llu memory reads\n",
                static_cast<unsigned long long>(
                    from_live.measuredTicks),
                static_cast<unsigned long long>(from_live.memReads));

    const bool match =
        from_file.measuredTicks == from_live.measuredTicks &&
        from_file.memReads == from_live.memReads;
    std::printf("replay %s the live run\n",
                match ? "exactly reproduces" : "DIVERGES from");
    return match ? 0 : 1;
}
