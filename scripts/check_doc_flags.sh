#!/usr/bin/env bash
# Documentation drift guard: every `--flag` mentioned in docs/*.md
# must appear in the --help output of a shipped binary. A flag that
# was renamed (or removed) without a doc sweep, or documented before
# it exists, fails here with the doc lines that reference it.
#
# Usage: scripts/check_doc_flags.sh [BUILD_DIR]   (default: build)

set -u
build="${1:-build}"

for tool in c3d-sweep c3d-trace example_design_shootout; do
    if [ ! -x "$build/$tool" ]; then
        echo "check_doc_flags: missing $build/$tool (build first)" >&2
        exit 2
    fi
done

# bench-report has no --help; an unknown flag prints its usage line.
help=$(
    "$build/c3d-sweep" --help 2>&1
    "$build/c3d-trace" --help 2>&1
    "$build/example_design_shootout" --help 2>&1
    "$build/bench-report" --no-such-flag 2>&1
    true
)

status=0
for flag in $(grep -rhoE -- '--[a-z][a-z0-9-]+' docs/*.md | sort -u); do
    if ! printf '%s\n' "$help" | grep -qF -- "$flag"; then
        echo "doc drift: $flag is documented but absent from every" \
             "tool's --help" >&2
        grep -rn -- "$flag" docs/*.md | head -3 >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_doc_flags: all documented flags exist"
fi
exit $status
