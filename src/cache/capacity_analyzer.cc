#include "cache/capacity_analyzer.hh"

namespace c3d
{

CapacityResult
analyzeCapacity(Workload &workload, std::uint32_t num_sockets,
                std::uint32_t cores_per_socket,
                std::uint64_t cache_bytes, std::uint32_t ways,
                bool shared_cache, std::uint64_t refs_per_core)
{
    CapacityResult res;

    const std::uint32_t total_cores = num_sockets * cores_per_socket;
    const std::uint32_t active = workload.activeCores(total_cores);

    std::vector<TagArray> caches;
    if (shared_cache) {
        // One pooled cache with the aggregate capacity; a block lives
        // only in its home socket's slice, so there is exactly one
        // copy machine-wide.
        caches.resize(1);
        caches[0].init(cache_bytes * num_sockets, ways);
    } else {
        caches.resize(num_sockets);
        for (auto &c : caches)
            c.init(cache_bytes, ways);
    }

    // Round-robin across cores mimics concurrent execution closely
    // enough for occupancy purposes.
    for (std::uint64_t i = 0; i < refs_per_core; ++i) {
        for (std::uint32_t core = 0; core < active; ++core) {
            const TraceOp op = workload.next(core);
            ++res.references;

            const SocketId socket = core / cores_per_socket;
            const SocketId home = static_cast<SocketId>(
                pageNumber(op.addr) % num_sockets);

            TagArray &cache = shared_cache ? caches[0]
                                           : caches[socket];
            const Addr blk = blockAlign(op.addr);
            if (TagEntry *e = cache.find(blk)) {
                cache.touch(e);
                if (op.op == MemOp::Write)
                    e->state = CacheState::Modified;
                continue;
            }
            ++res.cacheMisses;
            if (home != socket)
                ++res.remoteMisses;
            cache.allocate(blk, op.op == MemOp::Write
                                    ? CacheState::Modified
                                    : CacheState::Shared);
        }
    }
    return res;
}

} // namespace c3d
