/**
 * @file
 * Fast functional cache-capacity analysis (no timing).
 *
 * Backs the paper's capacity studies -- Fig. 3 (memory accesses as a
 * function of LLC size, normalized to 16 MB) and the §II shared-vs-
 * private DRAM-cache hit-rate comparison -- by replaying a workload's
 * reference stream against tag arrays only. Orders of magnitude
 * faster than the timing simulator, which matters for the 1 GB
 * sweep points.
 */

#ifndef C3DSIM_CACHE_CAPACITY_ANALYZER_HH
#define C3DSIM_CACHE_CAPACITY_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "trace/workload.hh"

namespace c3d
{

/** Result of a functional capacity run. */
struct CapacityResult
{
    std::uint64_t references = 0;
    std::uint64_t cacheMisses = 0;   //!< accesses reaching memory
    std::uint64_t remoteMisses = 0;  //!< misses homed at another socket

    double
    missRate() const
    {
        return references
            ? static_cast<double>(cacheMisses) / references : 0.0;
    }
};

/**
 * Replay @p refs_per_core references per core against per-socket
 * caches of @p cache_bytes (@p ways-associative) and report miss
 * counts. @p shared_cache pools all sockets' capacity into one cache
 * (the §II-C "shared organization"); otherwise each socket has a
 * private cache and misses homed remotely count as remote.
 *
 * Page homes use interleaved mapping (the policy-independent
 * comparison the paper's Fig. 3 makes).
 */
CapacityResult
analyzeCapacity(Workload &workload, std::uint32_t num_sockets,
                std::uint32_t cores_per_socket,
                std::uint64_t cache_bytes, std::uint32_t ways,
                bool shared_cache, std::uint64_t refs_per_core);

} // namespace c3d

#endif // C3DSIM_CACHE_CAPACITY_ANALYZER_HH
