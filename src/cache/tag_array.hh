/**
 * @file
 * Generic set-associative tag array with true-LRU replacement.
 *
 * Stores per-block coherence state and an auxiliary word (used by the
 * LLC for its embedded local-directory sharing vector). The array is
 * purely structural: timing is charged by the owning cache model.
 */

#ifndef C3DSIM_CACHE_TAG_ARRAY_HH
#define C3DSIM_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace c3d
{

/** Coherence state of a block in an SRAM cache. */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** One way of one set. */
struct TagEntry
{
    Addr tag = 0;
    CacheState state = CacheState::Invalid;
    /** LLC use: bitmask of cores holding the block in their L1s. */
    std::uint64_t aux = 0;
    /** LRU stamp; larger is more recent. */
    std::uint64_t lastUse = 0;

    bool valid() const { return state != CacheState::Invalid; }
};

/** Result of a lookup-with-allocation. */
struct AllocResult
{
    TagEntry *entry = nullptr; //!< slot now holding the new block
    bool evictedValid = false; //!< a valid victim was displaced
    Addr victimAddr = 0;       //!< block address of the victim
    CacheState victimState = CacheState::Invalid;
    std::uint64_t victimAux = 0;
};

/** Set-associative tag store. */
class TagArray
{
  public:
    TagArray() = default;

    /**
     * Size the array.
     *
     * The requested geometry is kept exactly (capacity is never
     * silently rounded). When the set count is a power of two --
     * every standard configuration: Table II sizes and their
     * power-of-two sweep scalings -- set selection takes a mask fast
     * path; odd geometries (e.g. `--scale=48`) keep the exact modulo
     * mapping.
     *
     * @param capacity_bytes total data capacity
     * @param ways associativity (1 == direct-mapped)
     */
    void
    init(std::uint64_t capacity_bytes, std::uint32_t ways)
    {
        c3d_assert(ways >= 1, "associativity must be >= 1");
        std::uint64_t blocks = capacity_bytes / BlockBytes;
        if (blocks < ways)
            blocks = ways;
        sets = blocks / ways;
        c3d_assert(sets >= 1, "cache too small");
        setsArePow2 = (sets & (sets - 1)) == 0;
        setMask = setsArePow2 ? sets - 1 : 0;
        numWays = ways;
        entries.assign(sets * ways, TagEntry{});
        useStamp = 0;
    }

    std::uint64_t numSets() const { return sets; }
    std::uint32_t associativity() const { return numWays; }
    std::uint64_t capacityBlocks() const { return sets * numWays; }

    /**
     * Find the block containing @p addr.
     * @return entry pointer or nullptr on miss; does NOT update LRU.
     */
    TagEntry *
    find(Addr addr)
    {
        const Addr blk = blockNumber(addr);
        const std::int32_t w = wayOf(blk);
        return w < 0 ? nullptr : &entries[setIndex(blk) + w];
    }

    const TagEntry *
    find(Addr addr) const
    {
        const Addr blk = blockNumber(addr);
        const std::int32_t w = wayOf(blk);
        return w < 0 ? nullptr : &entries[setIndex(blk) + w];
    }

    /** Mark @p entry most-recently used. */
    void
    touch(TagEntry *entry)
    {
        entry->lastUse = ++useStamp;
    }

    /**
     * Allocate a slot for @p addr, evicting the LRU way if the set is
     * full. The returned entry is initialized to @p state and marked
     * most-recently-used. If the block is already present the
     * existing entry is reused (state overwritten, no eviction).
     */
    AllocResult
    allocate(Addr addr, CacheState state)
    {
        AllocResult res;
        const Addr blk = blockNumber(addr);
        TagEntry *set = &entries[setIndex(blk)];

        // One pass finds the hit, the first invalid way, and the
        // true-LRU victim: hit wins, then invalid, then LRU. Ties on
        // lastUse keep the lowest way, matching the two-pass scan
        // this replaces.
        TagEntry *invalid = nullptr;
        TagEntry *lru = nullptr;
        for (std::uint32_t w = 0; w < numWays; ++w) {
            TagEntry &e = set[w];
            if (!e.valid()) {
                if (!invalid)
                    invalid = &e;
                continue;
            }
            if (e.tag == blk) {
                e.state = state;
                touch(&e);
                res.entry = &e;
                return res;
            }
            if (!lru || e.lastUse < lru->lastUse)
                lru = &e;
        }

        TagEntry *victim = invalid;
        if (!victim) {
            victim = lru;
            res.evictedValid = true;
            res.victimAddr = victim->tag << BlockShift;
            res.victimState = victim->state;
            res.victimAux = victim->aux;
        }

        victim->tag = blk;
        victim->state = state;
        victim->aux = 0;
        touch(victim);
        res.entry = victim;
        return res;
    }

    /** Invalidate the block containing @p addr if present. */
    bool
    invalidate(Addr addr)
    {
        if (TagEntry *e = find(addr)) {
            e->state = CacheState::Invalid;
            e->aux = 0;
            return true;
        }
        return false;
    }

    /** Count of valid blocks (linear scan; for tests/inspection). */
    std::uint64_t
    validBlocks() const
    {
        std::uint64_t n = 0;
        for (const auto &e : entries)
            if (e.valid())
                ++n;
        return n;
    }

    /** Visit every valid entry (for recalls / inspection). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &e : entries) {
            if (e.valid())
                fn(e);
        }
    }

  private:
    /** First-entry index of @p blk's set. */
    std::size_t
    setIndex(Addr blk) const
    {
        const std::uint64_t set =
            setsArePow2 ? (blk & setMask) : (blk % sets);
        return static_cast<std::size_t>(set * numWays);
    }

    /** Way holding @p blk within its set, or -1 on miss. */
    std::int32_t
    wayOf(Addr blk) const
    {
        const TagEntry *set = &entries[setIndex(blk)];
        for (std::uint32_t w = 0; w < numWays; ++w) {
            if (set[w].valid() && set[w].tag == blk)
                return static_cast<std::int32_t>(w);
        }
        return -1;
    }

    std::uint64_t sets = 0;
    std::uint64_t setMask = 0;
    bool setsArePow2 = false;
    std::uint32_t numWays = 0;
    std::uint64_t useStamp = 0;
    std::vector<TagEntry> entries;
};

} // namespace c3d

#endif // C3DSIM_CACHE_TAG_ARRAY_HH
