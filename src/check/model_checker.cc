#include "check/model_checker.hh"

#include <cstring>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/log.hh"

namespace c3d
{

const char *
modelVariantName(ModelVariant v)
{
    switch (v) {
      case ModelVariant::C3D:
        return "c3d";
      case ModelVariant::C3DFullDir:
        return "c3d-full-dir";
      case ModelVariant::BugNoBroadcast:
        return "bug-no-broadcast";
      case ModelVariant::BugNoWriteThrough:
        return "bug-no-write-through";
    }
    return "?";
}

namespace
{

constexpr std::uint32_t MaxSockets = 3;

enum LlcState : std::uint8_t { LlcI = 0, LlcS = 1, LlcM = 2 };
enum Pending : std::uint8_t
{
    PendNone = 0,
    PendGetS = 1,
    PendGetX = 2,
    PendUpg = 3,
};

/** Abstract machine state (one block). */
struct State
{
    // Per socket.
    std::uint8_t llc[MaxSockets] = {LlcI, LlcI, LlcI};
    std::uint8_t llcVer[MaxSockets] = {0, 0, 0};
    std::uint8_t dcValid[MaxSockets] = {0, 0, 0};
    std::uint8_t dcVer[MaxSockets] = {0, 0, 0};
    std::uint8_t pending[MaxSockets] = {PendNone, PendNone, PendNone};

    // Global directory (blocking; non-atomic invalidation phase).
    std::uint8_t dirState = 0; //!< 0=I 1=S 2=M
    std::uint8_t sharers = 0;
    std::uint8_t owner = 0;
    std::uint8_t busy = 0;     //!< invalidation phase active
    std::uint8_t busyReq = 0;
    std::uint8_t busyUpg = 0;  //!< busy request was an Upgrade
    std::uint8_t invMask = 0;

    std::uint8_t memVer = 0;
    std::uint8_t curVer = 0;

    std::uint64_t
    pack() const
    {
        std::uint64_t v = 0;
        auto push = [&v](std::uint64_t field, unsigned bits) {
            v = (v << bits) | (field & ((1ull << bits) - 1));
        };
        for (unsigned i = 0; i < MaxSockets; ++i) {
            push(llc[i], 2);
            push(llcVer[i], 2);
            push(dcValid[i], 1);
            push(dcVer[i], 2);
            push(pending[i], 2);
        }
        push(dirState, 2);
        push(sharers, 3);
        push(owner, 2);
        push(busy, 1);
        push(busyReq, 2);
        push(busyUpg, 1);
        push(invMask, 3);
        push(memVer, 2);
        push(curVer, 2);
        return v;
    }
};

/** Rule-based successor generator. */
class Model
{
  public:
    explicit Model(const CheckConfig &cfg)
        : n(cfg.numSockets), vmax(cfg.maxVersion),
          variant(cfg.variant)
    {
        c3d_assert(n >= 2 && n <= MaxSockets,
                   "checker supports 2 or 3 sockets");
        c3d_assert(vmax >= 1 && vmax <= 3, "version bound 1..3");
    }

    bool trackOnRead() const
    {
        return variant == ModelVariant::C3DFullDir;
    }
    bool broadcastOnI() const
    {
        return variant == ModelVariant::C3D ||
            variant == ModelVariant::BugNoWriteThrough;
    }
    bool writeThrough() const
    {
        return variant != ModelVariant::BugNoWriteThrough;
    }

    /**
     * Enumerate successors of @p s into @p out. @return number of
     * enabled transitions.
     */
    std::size_t
    successors(const State &s, std::vector<State> &out) const
    {
        out.clear();

        for (std::uint32_t i = 0; i < n; ++i) {
            // Rule: local DRAM-cache read hit promotes into the LLC.
            if (s.llc[i] == LlcI && s.dcValid[i] &&
                s.pending[i] == PendNone) {
                State t = s;
                t.llc[i] = LlcS;
                t.llcVer[i] = s.dcVer[i];
                out.push_back(t);
            }
            // Rule: issue GetS (LLC and DRAM cache both miss).
            if (s.llc[i] == LlcI && !s.dcValid[i] &&
                s.pending[i] == PendNone) {
                State t = s;
                t.pending[i] = PendGetS;
                out.push_back(t);
            }
            // Rule: issue GetX (no copy) / Upgrade (Shared copy).
            if (s.pending[i] == PendNone && s.curVer < vmax) {
                if (s.llc[i] == LlcI) {
                    State t = s;
                    t.pending[i] = PendGetX;
                    out.push_back(t);
                } else if (s.llc[i] == LlcS) {
                    State t = s;
                    t.pending[i] = PendUpg;
                    out.push_back(t);
                }
            }
            // Rule: store hit on a Modified block.
            if (s.llc[i] == LlcM && s.curVer < vmax) {
                State t = s;
                ++t.curVer;
                t.llcVer[i] = t.curVer;
                out.push_back(t);
            }
            // Rule: silent Shared LLC eviction into the DRAM cache.
            if (s.llc[i] == LlcS) {
                State t = s;
                t.llc[i] = LlcI;
                t.dcValid[i] = 1;
                t.dcVer[i] = s.llcVer[i];
                out.push_back(t);
            }
            // Rule: silent DRAM-cache eviction.
            if (s.dcValid[i]) {
                State t = s;
                t.dcValid[i] = 0;
                t.dcVer[i] = 0;
                out.push_back(t);
            }
            // Rule: Modified LLC eviction -> PutX (blocking dir).
            if (s.llc[i] == LlcM && !s.busy) {
                State t = s;
                t.llc[i] = LlcI;
                t.dcValid[i] = 1;
                t.dcVer[i] = s.llcVer[i];
                if (writeThrough())
                    t.memVer = s.llcVer[i];
                // Directory: M -> I (c3d) or M -> S{i} (full-dir).
                if (trackOnRead()) {
                    t.dirState = 1;
                    t.sharers = 1u << i;
                    t.owner = 0;
                } else {
                    t.dirState = 0;
                    t.sharers = 0;
                    t.owner = 0;
                }
                out.push_back(t);
            }
            // Rule: directory processes a pending request.
            if (s.pending[i] != PendNone && !s.busy)
                processRequest(s, i, out);
        }

        // Rule: deliver one pending invalidation.
        if (s.busy) {
            for (std::uint32_t j = 0; j < n; ++j) {
                if (s.invMask & (1u << j)) {
                    State t = s;
                    t.llc[j] = LlcI;
                    t.llcVer[j] = 0;
                    t.dcValid[j] = 0;
                    t.dcVer[j] = 0;
                    t.invMask &= ~(1u << j);
                    if (t.invMask == 0)
                        completeWrite(t);
                    out.push_back(t);
                }
            }
        }
        return out.size();
    }

    /** Invariant check. @return empty string when OK. */
    std::string
    check(const State &s) const
    {
        // SWMR.
        std::uint32_t m_holders = 0;
        std::uint32_t m_socket = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (s.llc[i] == LlcM) {
                ++m_holders;
                m_socket = i;
            }
        }
        if (m_holders > 1)
            return "SWMR: two Modified holders";
        if (m_holders == 1) {
            for (std::uint32_t j = 0; j < n; ++j) {
                if (j == m_socket)
                    continue;
                if (s.llc[j] != LlcI)
                    return "SWMR: copy alive beside a Modified block";
                if (s.dcValid[j])
                    return "SWMR: DRAM-cache copy beside Modified";
            }
        }

        // Data value: every readable copy carries the latest version.
        for (std::uint32_t i = 0; i < n; ++i) {
            if (s.llc[i] != LlcI && s.llcVer[i] != s.curVer)
                return "data: LLC copy is stale";
            if (s.dcValid[i] && s.dcVer[i] != s.curVer &&
                s.llc[i] != LlcM) {
                return "data: readable DRAM-cache copy is stale";
            }
        }

        // Clean property: memory fresh unless the dir tracks an owner.
        if (s.dirState != 2 && s.memVer != s.curVer)
            return "clean: memory stale without a tracked owner";

        // Shared-state vector is a superset of all holders.
        if (s.dirState == 1) {
            for (std::uint32_t i = 0; i < n; ++i) {
                const bool holds = s.llc[i] != LlcI || s.dcValid[i];
                if (holds && !(s.sharers & (1u << i)))
                    return "vector: holder missing from sharing vector";
            }
        }
        return {};
    }

    bool
    quiescent(const State &s) const
    {
        if (s.busy)
            return false;
        for (std::uint32_t i = 0; i < n; ++i)
            if (s.pending[i] != PendNone)
                return false;
        return true;
    }

    std::uint32_t sockets() const { return n; }

  private:
    /** Handle a pending request at the (idle) directory. */
    void
    processRequest(const State &s, std::uint32_t i,
                   std::vector<State> &out) const
    {
        const std::uint8_t kind = s.pending[i];

        if (kind == PendGetS) {
            State t = s;
            t.pending[i] = PendNone;
            if (s.dirState == 2) {
                // M at owner j: forward; owner downgrades and writes
                // through (DRAM-cache refresh + memory update).
                const std::uint32_t j = s.owner;
                t.llc[j] = (s.llc[j] == LlcM)
                    ? static_cast<std::uint8_t>(LlcS) : s.llc[j];
                t.dcValid[j] = 1;
                t.dcVer[j] = s.llcVer[j];
                t.memVer = s.llcVer[j];
                t.llc[i] = LlcS;
                t.llcVer[i] = s.llcVer[j];
                t.dirState = 1;
                t.sharers = (1u << i) | (1u << j);
                t.owner = 0;
            } else {
                // I or S: memory is fresh (clean property).
                t.llc[i] = LlcS;
                t.llcVer[i] = s.memVer;
                if (s.dirState == 1) {
                    t.sharers |= (1u << i);
                } else if (trackOnRead()) {
                    t.dirState = 1;
                    t.sharers = (1u << i);
                }
            }
            out.push_back(t);
            return;
        }

        // GetX / Upgrade.
        State t = s;
        t.busyReq = i;
        t.busyUpg = (kind == PendUpg) ? 1 : 0;
        t.pending[i] = PendNone;

        if (s.dirState == 2) {
            // Owner transfer: invalidate the owner atomically (the
            // single-target case has no interleaving of interest).
            const std::uint32_t j = s.owner;
            const std::uint8_t data_ver = s.llcVer[j];
            t.llc[j] = LlcI;
            t.llcVer[j] = 0;
            t.dcValid[j] = 0;
            t.dcVer[j] = 0;
            (void)data_ver; // the write overwrites the data anyway
            ++t.curVer;
            t.llc[i] = LlcM;
            t.llcVer[i] = t.curVer;
            t.dirState = 2;
            t.owner = i;
            t.sharers = (1u << i);
            out.push_back(t);
            return;
        }

        std::uint8_t targets = 0;
        if (s.dirState == 1) {
            targets = s.sharers & ~(1u << i);
        } else if (broadcastOnI() &&
                   variant != ModelVariant::BugNoBroadcast) {
            for (std::uint32_t j = 0; j < n; ++j)
                if (j != i)
                    targets |= (1u << j);
        } else if (variant == ModelVariant::BugNoBroadcast ||
                   !broadcastOnI()) {
            targets = 0; // full-dir: I means nobody holds a copy
        }

        if (targets == 0) {
            completeWriteInto(t, i);
            out.push_back(t);
            return;
        }
        t.busy = 1;
        t.invMask = targets;
        out.push_back(t);
    }

    /** Finish the busy write transaction in @p t. */
    void
    completeWrite(State &t) const
    {
        t.busy = 0;
        t.invMask = 0;
        completeWriteInto(t, t.busyReq);
    }

    void
    completeWriteInto(State &t, std::uint32_t i) const
    {
        ++t.curVer;
        t.llc[i] = LlcM;
        t.llcVer[i] = t.curVer;
        // The store makes any clean local DRAM-cache copy stale; the
        // implementation invalidates it on completion.
        t.dcValid[i] = 0;
        t.dcVer[i] = 0;
        t.dirState = 2;
        t.owner = i;
        t.sharers = (1u << i);
        t.busyUpg = 0;
        t.busyReq = 0;
    }

    const std::uint32_t n;
    const std::uint32_t vmax;
    const ModelVariant variant;
};

} // namespace

CheckResult
checkProtocol(const CheckConfig &cfg)
{
    Model model(cfg);
    CheckResult res;

    State init;
    std::unordered_set<std::uint64_t> visited;
    std::deque<State> frontier;

    visited.insert(init.pack());
    frontier.push_back(init);

    std::vector<State> succ;
    while (!frontier.empty()) {
        const State s = frontier.front();
        frontier.pop_front();
        ++res.statesExplored;

        const std::string bad = model.check(s);
        if (!bad.empty()) {
            res.ok = false;
            res.violation = bad;
            return res;
        }

        const std::size_t enabled = model.successors(s, succ);
        if (enabled == 0 && !model.quiescent(s)) {
            res.ok = false;
            res.violation = "deadlock: pending work with no "
                            "enabled transition";
            return res;
        }
        res.transitionsFired += enabled;
        for (const State &t : succ) {
            if (visited.insert(t.pack()).second)
                frontier.push_back(t);
        }
    }

    res.ok = true;
    return res;
}

} // namespace c3d
