/**
 * @file
 * Explicit-state model checker for the abstract C3D protocol.
 *
 * The paper verifies the C3D coherence protocol with Murphi, proving
 * deadlock freedom, the Single-Writer-Multiple-Reader invariant and
 * per-location sequential consistency (§IV-C). c3dsim carries its own
 * explicit-state BFS checker over the same abstract machines: a
 * blocking global directory (Invalid/Shared/Modified with a
 * non-atomic invalidation phase), per-socket LLC (I/S/M) and clean
 * DRAM cache (I/V), with symbolic data modelled as write version
 * numbers.
 *
 * Checked invariants in every reachable state:
 *  - SWMR: at most one socket holds Modified; while one does, no
 *    other socket holds any valid copy (its own DRAM cache may hold a
 *    stale one, exactly as §IV-C permits).
 *  - Data value / per-location SC: every readable copy carries the
 *    latest write version; a stale DRAM-cache copy may only exist
 *    shielded behind the socket's own Modified LLC block.
 *  - Clean property: while the directory is not in Modified, memory
 *    holds the latest version.
 *  - Sharing-vector validity: in Shared, the vector is a superset of
 *    all sockets holding a copy.
 *  - Deadlock freedom: every non-quiescent state has an enabled
 *    transition.
 *
 * Deliberately injectable bugs (for negative testing and to
 * demonstrate the insights' necessity): dropping the write broadcast
 * (an untracked DRAM-cache copy survives a remote write) and dropping
 * the write-through (memory goes stale under a clean-cache read).
 */

#ifndef C3DSIM_CHECK_MODEL_CHECKER_HH
#define C3DSIM_CHECK_MODEL_CHECKER_HH

#include <cstdint>
#include <string>

namespace c3d
{

/** Which abstract protocol to check. */
enum class ModelVariant
{
    C3D,           //!< non-inclusive dir + broadcast on untracked GetX
    C3DFullDir,    //!< inclusive tracking, no broadcasts
    BugNoBroadcast, //!< C3D with the I-state broadcast removed
    BugNoWriteThrough, //!< C3D with the PutX memory update removed
};

const char *modelVariantName(ModelVariant v);

/** Checker parameters. */
struct CheckConfig
{
    ModelVariant variant = ModelVariant::C3D;
    std::uint32_t numSockets = 3; //!< 2 or 3
    std::uint32_t maxVersion = 3; //!< write-depth bound (1..3)
};

/** Verification outcome. */
struct CheckResult
{
    bool ok = false;
    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsFired = 0;
    std::string violation; //!< empty when ok
};

/** Exhaustively explore the protocol state space. */
CheckResult checkProtocol(const CheckConfig &cfg);

} // namespace c3d

#endif // C3DSIM_CHECK_MODEL_CHECKER_HH
