/**
 * @file
 * Per-block transaction serialization at a directory slice.
 *
 * The simulated directories are blocking: at most one coherence
 * transaction per block is in flight; later requests queue in arrival
 * order and start when the active transaction releases the block.
 * Blocking directories are a common commercial design point and keep
 * the transient-state space small enough to verify exhaustively (the
 * model checker in src/check covers the same machines).
 */

#ifndef C3DSIM_COHERENCE_BLOCKING_HH
#define C3DSIM_COHERENCE_BLOCKING_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** Serializes transactions per block address. */
class BlockingTable
{
  public:
    using Start = std::function<void()>;

    void
    init(StatGroup *stats, const std::string &name)
    {
        conflicts.init(stats, name + ".blocked",
                       "transactions that waited for the block");
        admitted.init(stats, name + ".admitted",
                      "transactions admitted");
    }

    /**
     * Acquire the block for a transaction. If the block is free the
     * transaction starts immediately (@p start runs inline);
     * otherwise it queues and runs when released.
     */
    void
    acquire(Addr addr, Start start)
    {
        const Addr blk = blockNumber(addr);
        auto [it, inserted] = table.emplace(blk, Waiters{});
        ++admitted;
        if (inserted) {
            start();
        } else {
            ++conflicts;
            it->second.push_back(std::move(start));
        }
    }

    /**
     * Release the block; the oldest queued transaction (if any)
     * starts inline.
     */
    void
    release(Addr addr)
    {
        const Addr blk = blockNumber(addr);
        auto it = table.find(blk);
        c3d_assert(it != table.end(), "release of unlocked block");
        if (it->second.empty()) {
            table.erase(it);
            return;
        }
        Start next = std::move(it->second.front());
        it->second.pop_front();
        next();
    }

    /** Whether a transaction currently owns @p addr's block. */
    bool
    isBusy(Addr addr) const
    {
        return table.count(blockNumber(addr)) != 0;
    }

    std::size_t activeBlocks() const { return table.size(); }
    std::uint64_t blockedCount() const { return conflicts.value(); }

  private:
    using Waiters = std::deque<Start>;
    std::unordered_map<Addr, Waiters> table;
    Counter conflicts;
    Counter admitted;
};

} // namespace c3d

#endif // C3DSIM_COHERENCE_BLOCKING_HH
