/**
 * @file
 * Global-directory storage structures.
 *
 * Two organizations back the evaluated designs (§III-B, §V-A):
 *
 *  - SparseDirectory: a set-associative cache of directory entries
 *    (AMD-style "sparse 2x/32-way, socket-grain sharing vector",
 *    Table II). Allocation conflicts evict (recall) a victim entry,
 *    which the protocol must resolve by invalidating the victim's
 *    sharers. Used by baseline and C3D.
 *
 *  - FullDirectory: an unbounded map with no recalls, modelling the
 *    paper's idealized inclusive directory (full-dir, c3d-full-dir)
 *    that optimistically keeps a 10-cycle access latency.
 */

#ifndef C3DSIM_COHERENCE_DIRECTORY_HH
#define C3DSIM_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** Stable global-directory states (Fig. 5). */
enum class DirState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** A directory entry: state plus socket-grain sharing vector. */
struct DirEntry
{
    DirState state = DirState::Invalid;
    std::uint64_t sharers = 0; //!< bitmask of sockets
    SocketId owner = InvalidSocket;

    bool
    isSharer(SocketId s) const
    {
        return (sharers >> s) & 1;
    }
    void addSharer(SocketId s) { sharers |= (1ull << s); }
    void removeSharer(SocketId s) { sharers &= ~(1ull << s); }
    std::uint32_t
    sharerCount() const
    {
        return __builtin_popcountll(sharers);
    }
};

/** A directory entry recalled to make room for a new allocation. */
struct DirRecall
{
    bool valid = false;
    Addr addr = 0;
    DirEntry entry;
};

/** Abstract directory-slice storage. */
class DirectoryStore
{
  public:
    virtual ~DirectoryStore() = default;

    /** Look up @p addr; nullptr when untracked. */
    virtual DirEntry *find(Addr addr) = 0;

    /** Filter for recall victims (e.g. "block not locked"). */
    using Evictable = std::function<bool(Addr)>;

    /**
     * Allocate (or find) an entry for @p addr. May displace a victim
     * whose sharers the caller must invalidate. @p evictable, when
     * set, restricts which victims may be recalled -- a block with a
     * transaction in flight must not lose its entry mid-transaction.
     */
    virtual DirEntry *allocate(Addr addr, DirRecall &recall,
                               const Evictable &evictable = {}) = 0;

    /** Drop the entry for @p addr (transition to untracked). */
    virtual void erase(Addr addr) = 0;

    /** Number of tracked blocks. */
    virtual std::uint64_t trackedBlocks() const = 0;

    /** Storage cost of this organization, in bits (§III-B). */
    virtual std::uint64_t storageBits() const = 0;
};

/** Set-associative sparse directory with recalls. */
class SparseDirectory : public DirectoryStore
{
  public:
    /**
     * @param num_entries capacity in entries
     * @param ways associativity
     * @param num_sockets sharing-vector width
     */
    SparseDirectory(std::uint64_t num_entries, std::uint32_t ways,
                    std::uint32_t num_sockets, StatGroup *stats,
                    const std::string &name)
        : numWays(ways), vectorBits(num_sockets)
    {
        c3d_assert(ways >= 1, "directory needs at least one way");
        std::uint64_t entries = num_entries < ways ? ways : num_entries;
        sets = entries / ways;
        slots.assign(sets * ways, Slot{});
        recalls.init(stats, name + ".recalls",
                     "entries displaced by allocation conflicts");
        allocations.init(stats, name + ".allocations",
                         "directory entries allocated");
    }

    DirEntry *
    find(Addr addr) override
    {
        const Addr blk = blockNumber(addr);
        Slot *base = setBase(blk);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            if (base[w].valid && base[w].tag == blk) {
                base[w].lastUse = ++useStamp;
                return &base[w].entry;
            }
        }
        return nullptr;
    }

    DirEntry *
    allocate(Addr addr, DirRecall &recall,
             const Evictable &evictable = {}) override
    {
        recall.valid = false;
        if (DirEntry *e = find(addr))
            return e;

        ++allocations;
        const Addr blk = blockNumber(addr);
        Slot *base = setBase(blk);
        Slot *victim = nullptr;
        for (std::uint32_t w = 0; w < numWays; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
        if (!victim) {
            // Recall the LRU way among those whose block is safe to
            // displace; fall back to plain LRU if none qualifies
            // (vanishingly rare: every way mid-transaction).
            for (std::uint32_t w = 0; w < numWays; ++w) {
                const Addr victim_addr = base[w].tag << BlockShift;
                if (evictable && !evictable(victim_addr))
                    continue;
                if (!victim || base[w].lastUse < victim->lastUse)
                    victim = &base[w];
            }
            if (!victim) {
                victim = &base[0];
                for (std::uint32_t w = 1; w < numWays; ++w) {
                    if (base[w].lastUse < victim->lastUse)
                        victim = &base[w];
                }
            }
            ++recalls;
            recall.valid = true;
            recall.addr = victim->tag << BlockShift;
            recall.entry = victim->entry;
        }
        victim->valid = true;
        victim->tag = blk;
        victim->entry = DirEntry{};
        victim->lastUse = ++useStamp;
        return &victim->entry;
    }

    void
    erase(Addr addr) override
    {
        const Addr blk = blockNumber(addr);
        Slot *base = setBase(blk);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            if (base[w].valid && base[w].tag == blk) {
                base[w] = Slot{};
                return;
            }
        }
    }

    std::uint64_t
    trackedBlocks() const override
    {
        std::uint64_t n = 0;
        for (const auto &s : slots)
            if (s.valid)
                ++n;
        return n;
    }

    std::uint64_t
    storageBits() const override
    {
        // Per entry: tag (assume 48-bit addresses) + state + vector.
        const std::uint64_t tag_bits = 48 - BlockShift;
        const std::uint64_t entry_bits = tag_bits + 2 + vectorBits;
        return slots.size() * entry_bits;
    }

    std::uint64_t recallCount() const { return recalls.value(); }

  private:
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        DirEntry entry;
        std::uint64_t lastUse = 0;
    };

    Slot *
    setBase(Addr blk)
    {
        return &slots[(blk % sets) * numWays];
    }

    std::uint64_t sets = 0;
    const std::uint32_t numWays;
    const std::uint32_t vectorBits;
    std::uint64_t useStamp = 0;
    std::vector<Slot> slots;
    Counter recalls;
    Counter allocations;
};

/** Idealized unbounded directory (no recalls). */
class FullDirectory : public DirectoryStore
{
  public:
    FullDirectory(std::uint32_t num_sockets, StatGroup *stats,
                  const std::string &name)
        : vectorBits(num_sockets)
    {
        allocations.init(stats, name + ".allocations",
                         "directory entries allocated");
        peakTracked.init(stats, name + ".peak_tracked",
                         "high-water mark of tracked blocks");
    }

    DirEntry *
    find(Addr addr) override
    {
        auto it = map.find(blockNumber(addr));
        return it == map.end() ? nullptr : &it->second;
    }

    DirEntry *
    allocate(Addr addr, DirRecall &recall,
             const Evictable & = {}) override
    {
        recall.valid = false;
        auto [it, inserted] = map.emplace(blockNumber(addr), DirEntry{});
        if (inserted) {
            ++allocations;
            if (map.size() > peakTracked.value()) {
                peakTracked += map.size() - peakTracked.value();
            }
        }
        return &it->second;
    }

    void erase(Addr addr) override { map.erase(blockNumber(addr)); }

    std::uint64_t trackedBlocks() const override { return map.size(); }

    std::uint64_t
    storageBits() const override
    {
        // An inclusive directory must provision for everything it may
        // track; report the high-water mark as the practical need.
        const std::uint64_t tag_bits = 48 - BlockShift;
        return peakTracked.value() * (tag_bits + 2 + vectorBits);
    }

  private:
    const std::uint32_t vectorBits;
    std::unordered_map<Addr, DirEntry> map;
    Counter allocations;
    Counter peakTracked;
};

/**
 * Analytic sparse-directory storage-cost model backing the §III-B
 * discussion ("a 256MB DRAM cache with a 1x sparse directory requires
 * 16MB of directory storage per socket; 2x doubles it; 1GB needs
 * 128MB").
 *
 * @param cache_bytes capacity a directory must cover per socket
 * @param provisioning 1x, 2x, ... over-provisioning factor
 * @return directory bytes per socket assuming 32-bit entries
 *         (the paper's 16 MB per 256 MB figure implies 4 B/entry:
 *         tag + state + a socket-grain sharing vector).
 */
inline std::uint64_t
sparseDirectoryBytes(std::uint64_t cache_bytes,
                     std::uint32_t provisioning)
{
    const std::uint64_t blocks = cache_bytes / BlockBytes;
    return blocks * provisioning * 4;
}

} // namespace c3d

#endif // C3DSIM_COHERENCE_DIRECTORY_HH
