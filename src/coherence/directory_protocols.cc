#include "coherence/directory_protocols.hh"

namespace c3d
{

DirectoryProtocol::DirectoryProtocol(Machine &machine, StatGroup *stats,
                                     const char *design_name,
                                     DirPolicy policy,
                                     bool sparse_storage)
    : ProtocolBase(machine, stats), designName(design_name),
      policy(policy)
{
    const SystemConfig &c = cfg();
    dirs.reserve(c.numSockets);
    for (SocketId s = 0; s < c.numSockets; ++s) {
        const std::string nm = "dir" + std::to_string(s);
        if (sparse_storage) {
            // Table II: sparse 2x over one LLC's blocks, 32-way,
            // socket-grain sharing vector.
            const std::uint64_t entries =
                (c.llcBytes / BlockBytes) * c.sparseDirFactor;
            dirs.push_back(std::make_unique<SparseDirectory>(
                entries, c.sparseDirWays, c.numSockets, stats, nm));
        } else {
            dirs.push_back(std::make_unique<FullDirectory>(
                c.numSockets, stats, nm));
        }
    }

    readsFromMemory.init(stats, "proto.reads_from_memory",
                         "GetS served by home memory");
    readsFromOwner.init(stats, "proto.reads_from_owner",
                        "GetS served by a remote owner socket");
    writesServedByOwner.init(stats, "proto.writes_from_owner",
                             "GetX served by a remote owner socket");
}

DirectoryStore::Evictable
DirectoryProtocol::notBusyAt(SocketId home)
{
    return [this, home](Addr a) {
        return !homeLocks[home].isBusy(a);
    };
}

std::function<bool(Addr)>
DirectoryProtocol::trackedAt(SocketId home)
{
    return [this, home](Addr a) {
        return dirs[home]->find(a) != nullptr;
    };
}

// --------------------------------------------------------------------
// GetS
// --------------------------------------------------------------------

void
DirectoryProtocol::getS(SocketId req, Addr addr, ReadDone done)
{
    const SocketId home = m.homeOf(addr, req);
    sendCtrl(req, home, [this, req, home, addr,
                         done = std::move(done)]() mutable {
        homeLocks[home].acquire(addr, [this, req, home, addr,
                                       done = std::move(done)]() mutable {
            queueAt(home).schedule(cfg().globalDirLatency,
                                   [this, req, home, addr,
                                    done = std::move(done)]() mutable {
                handleGetS(req, home, addr, std::move(done));
            });
        });
    });
}

void
DirectoryProtocol::serveFromMemory(SocketId req, SocketId home,
                                   Addr addr,
                                   std::function<void()> deliver)
{
    // The block lock is released when the response *leaves* the home,
    // not when it lands at the requester: the home is the ordering
    // point, and any later transaction's packet toward the same
    // destination departs at least globalDirLatency afterwards on the
    // same deterministic route, so it can never pass the response
    // (per-link FIFO). Previously the lock rode to the requester and
    // was released there with no return message — a whole extra
    // network traversal of artificial serialization on every miss.
    ++readsFromMemory;
    m.socket(home).memory().read(addr, /*remote=*/req != home,
                                 [this, req, home, addr,
                                  deliver = std::move(deliver)]() mutable {
        sendData(home, req, std::move(deliver));
        homeLocks[home].release(addr);
    });
}

void
DirectoryProtocol::handleGetS(SocketId req, SocketId home, Addr addr,
                              ReadDone done)
{
    DirEntry *e = dirs[home]->find(addr);
    if (watchingBlock(addr)) {
        watchTrace(queueAt(home).now(), "handleGetS",
                   "req %u home %u state %d sharers %llx", req, home,
                   e ? static_cast<int>(e->state) : -1,
                   e ? static_cast<unsigned long long>(e->sharers)
                     : 0ull);
    }

    if (e && e->state == DirState::Modified && e->owner != req) {
        // Slow remote hit path (§III-B Fig. 4): forward to the owner.
        // The directory transition (M -> S with {owner, req}) happens
        // here, at the home, at forward time: the entry cannot change
        // underneath the in-flight probe because the block lock is
        // held (victim selection skips busy blocks, and every other
        // transaction for this block queues on the lock). The owner
        // stays in the vector even on a writeback race so any
        // DRAM-cache copy it retains remains covered by future
        // invalidations.
        const SocketId owner = e->owner;
        ++fwdRequests;
        e->state = DirState::Shared;
        e->sharers = 0;
        e->addSharer(owner);
        e->addSharer(req);
        e->owner = InvalidSocket;
        sendCtrl(home, owner, [this, req, home, owner, addr,
                               done = std::move(done)]() mutable {
            m.socket(owner).probeDowngrade(addr,
                                           [this, req, home, owner, addr,
                                            done = std::move(done)]
                                           (bool dirty) mutable {
                if (dirty) {
                    ++dirtyFwds;
                    ++readsFromOwner;
                    // Reflective writeback keeps memory fresh.
                    sendData(owner, home, [this, home, addr] {
                        m.socket(home).memory().write(addr, false);
                    });
                    // Data straight to the requester; the lock rides
                    // home on an unblock ack only after the data has
                    // landed, so no later probe for this block can
                    // pass the fill in flight.
                    sendData(owner, req,
                             [this, req, home, addr,
                              done = std::move(done)]() mutable {
                        done();
                        sendCtrl(req, home, [this, home, addr] {
                            homeLocks[home].release(addr);
                        });
                    });
                } else {
                    // The owner wrote the block back concurrently.
                    // Hand the request back to the home, which owns
                    // the memory being read — the old code read home
                    // memory from the owner's side with zero flight
                    // time.
                    ++fwdRaces;
                    sendCtrl(owner, home,
                             [this, req, home, addr,
                              done = std::move(done)]() mutable {
                        serveFromMemory(req, home, addr,
                                        std::move(done));
                    });
                }
            });
        });
        return;
    }

    if (e && e->state == DirState::Shared) {
        e->addSharer(req);
        serveFromMemory(req, home, addr, std::move(done));
        return;
    }

    if (e && e->state == DirState::Modified && e->owner == req) {
        // Writeback race: the requester's PutX is still in flight.
        // Memory semantically receives that data first; serve it.
        ++fwdRaces;
        e->state = DirState::Shared;
        e->sharers = 0;
        e->addSharer(req);
        e->owner = InvalidSocket;
        serveFromMemory(req, home, addr, std::move(done));
        return;
    }

    // Untracked (Invalid): memory is fresh by the clean-cache /
    // inclusivity invariant of every directory design.
    if (policy.allocateOnRead) {
        DirRecall recall;
        DirEntry *ne = dirs[home]->allocate(addr, recall,
                                            notBusyAt(home));
        ne->state = DirState::Shared;
        ne->sharers = 0;
        ne->addSharer(req);
        resolveRecall(home, recall, trackedAt(home));
    }
    serveFromMemory(req, home, addr, std::move(done));
}

// --------------------------------------------------------------------
// GetX / Upgrade
// --------------------------------------------------------------------

void
DirectoryProtocol::getX(SocketId req, Addr addr, bool has_shared_copy,
                        bool private_page, WriteDone done)
{
    const SocketId home = m.homeOf(addr, req);
    sendCtrl(req, home, [this, req, home, addr, has_shared_copy,
                         private_page, done = std::move(done)]() mutable {
        const Tick lock_req_at = queueAt(home).now();
        homeLocks[home].acquire(addr,
                                [this, req, home, addr, has_shared_copy,
                                 private_page, lock_req_at,
                                 done = std::move(done)]() mutable {
            lockWaitTime.sample(queueAt(home).now() - lock_req_at);
            queueAt(home).schedule(cfg().globalDirLatency,
                                   [this, req, home, addr,
                                    has_shared_copy, private_page,
                                    done = std::move(done)]() mutable {
                handleGetX(req, home, addr, has_shared_copy,
                           private_page, std::move(done));
            });
        });
    });
}

void
DirectoryProtocol::respondWrite(SocketId req, SocketId home, Addr addr,
                                bool with_data, WriteDone done)
{
    if (with_data) {
        serveFromMemory(req, home, addr, std::move(done));
    } else {
        // Upgrade ack: release when the grant leaves the home (same
        // ordering-point argument as serveFromMemory).
        sendCtrl(home, req, std::move(done));
        homeLocks[home].release(addr);
    }
}

void
DirectoryProtocol::handleGetX(SocketId req, SocketId home, Addr addr,
                              bool upgrade, bool private_page,
                              WriteDone done)
{
    DirEntry *e = dirs[home]->find(addr);
    if (watchingBlock(addr)) {
        watchTrace(queueAt(home).now(), "handleGetX",
                   "req %u home %u upg %d state %d sharers %llx", req,
                   home, upgrade ? 1 : 0,
                   e ? static_cast<int>(e->state) : -1,
                   e ? static_cast<unsigned long long>(e->sharers)
                     : 0ull);
    }

    if (e && e->state == DirState::Modified && e->owner != req) {
        // Ownership transfer: invalidate the owner; it forwards the
        // dirty block directly to the requester. As in handleGetS,
        // the directory transition happens at the home at forward
        // time — the block lock pins the entry until the transfer
        // completes.
        const SocketId owner = e->owner;
        ++fwdRequests;
        e->state = DirState::Modified;
        e->owner = req;
        e->sharers = 0;
        e->addSharer(req);
        sendCtrl(home, owner, [this, req, home, owner, addr,
                               done = std::move(done)]() mutable {
            m.socket(owner).probeInvalidate(addr,
                                            [this, req, home, owner,
                                             addr,
                                             done = std::move(done)]
                                            (bool dirty) mutable {
                if (dirty) {
                    ++dirtyFwds;
                    ++writesServedByOwner;
                    // Data straight to the requester; the unblock
                    // ack releases the block lock at the home only
                    // once the fill has landed (so later probes
                    // cannot pass it in flight).
                    sendData(owner, req,
                             [this, req, home, addr,
                              done = std::move(done)]() mutable {
                        done();
                        sendCtrl(req, home, [this, home, addr] {
                            homeLocks[home].release(addr);
                        });
                    });
                } else {
                    // Writeback race: no copy at the owner. Route
                    // back to the home, whose memory serves the
                    // write (the old code read home memory from the
                    // owner's side with zero flight time).
                    ++fwdRaces;
                    sendCtrl(owner, home,
                             [this, req, home, addr,
                              done = std::move(done)]() mutable {
                        serveFromMemory(req, home, addr,
                                        std::move(done));
                    });
                }
            });
        });
        return;
    }

    if (e && e->state == DirState::Modified && e->owner == req) {
        // PutX race: requester is re-acquiring a block whose
        // writeback is still queued. Grant directly.
        ++fwdRaces;
        respondWrite(req, home, addr, /*with_data=*/!upgrade,
                     std::move(done));
        return;
    }

    if (e && e->state == DirState::Shared) {
        const bool req_tracked = e->isSharer(req);
        const std::vector<SocketId> targets = sharersOf(*e, req);
        e->state = DirState::Modified;
        e->owner = req;
        e->sharers = 0;
        e->addSharer(req);
        // The upgrade can only be a permission grant if the
        // requester's copy is still covered by the vector.
        const bool with_data = !(upgrade && req_tracked);
        invalidateSockets(home, targets, addr,
                          [this, req, home, addr, with_data,
                           done = std::move(done)](bool) mutable {
            respondWrite(req, home, addr, with_data, std::move(done));
        });
        return;
    }

    // Untracked (Invalid) write.
    DirRecall recall;
    DirEntry *ne = dirs[home]->allocate(addr, recall,
                                        notBusyAt(home));
    ne->state = DirState::Modified;
    ne->owner = req;
    ne->sharers = 0;
    ne->addSharer(req);
    resolveRecall(home, recall, trackedAt(home));

    const bool with_data = !upgrade;
    if (policy.broadcastOnUntrackedWrite) {
        const bool elide = policy.privatePagesElideBroadcast &&
            cfg().tlbPageClassification && private_page;
        if (!elide) {
            // §IV-C: broadcast invalidations to every remote DRAM
            // cache; the response leaves once both the acks have
            // returned and the memory data (read in parallel with
            // the probes, §V-A) is ready. The whole join lives at
            // the home: the memory read completes here and the acks
            // fan in here, and only when both are in does the single
            // response (data, or a control grant for an upgrade)
            // depart for the requester. The old join cleared its
            // memory flag at the *requester* and could fire the
            // write completion at the home with zero flight time
            // when the acks were the laggard.
            ++broadcasts;
            auto join = std::make_shared<WriteJoin>();
            join->finish = [this, req, home, addr, with_data,
                            done = std::move(done)]() mutable {
                if (with_data) {
                    sendData(home, req, std::move(done));
                } else {
                    sendCtrl(home, req, std::move(done));
                }
                homeLocks[home].release(addr);
            };
            join->memPending = with_data;
            join->acksPending = true;

            if (with_data) {
                ++readsFromMemory;
                m.socket(home).memory().read(
                    addr, req != home, [join] {
                    join->memPending = false;
                    join->tryFinish();
                });
            }
            invalidateSockets(home, othersThan(req), addr,
                              [this, join](bool saw_dirty) {
                if (saw_dirty) {
                    // Clean DRAM caches can never hold dirty data;
                    // a dirty find here means an on-chip M copy
                    // slipped out of tracking (writeback race).
                    ++fwdRaces;
                }
                join->acksPending = false;
                join->tryFinish();
            });
            return;
        }
        ++broadcastsElided;
    }
    respondWrite(req, home, addr, with_data, std::move(done));
}

// --------------------------------------------------------------------
// Writebacks
// --------------------------------------------------------------------

void
DirectoryProtocol::putX(SocketId req, Addr addr)
{
    const SocketId home = m.homeOf(addr, req);
    // Sample the evictor's LLC state now, at the requester, and let
    // the packet carry it: the home-side handler must not reach into
    // another socket's cache (cross-thread under the parallel
    // kernel, and architecturally the writeback message carries the
    // evictor's state anyway). Equivalent to the old home-side read:
    // the block lock serializes every transaction that could change
    // req's state for this block while the writeback is in flight.
    const bool req_still_owner =
        m.socket(req).llcState(addr) == CacheState::Modified;
    sendData(req, home, [this, req, home, addr, req_still_owner] {
        homeLocks[home].acquire(addr, [this, req, home, addr,
                                       req_still_owner] {
            queueAt(home).schedule(cfg().globalDirLatency,
                                   [this, req, home, addr,
                                    req_still_owner] {
                m.socket(home).memory().write(addr,
                                              /*remote=*/req != home);
                if (watchingBlock(addr))
                    watchTrace(queueAt(home).now(), "putX", "from %u",
                               req);
                DirEntry *e = dirs[home]->find(addr);
                if (e && e->state == DirState::Modified &&
                    e->owner == req && !req_still_owner) {
                    if (policy.putXKeepsSharer) {
                        // c3d-full-dir: the evicting socket retains a
                        // clean copy in its DRAM cache; keep it
                        // tracked as a sharer (M -> S).
                        e->state = DirState::Shared;
                        e->sharers = 0;
                        e->addSharer(req);
                        e->owner = InvalidSocket;
                    } else {
                        dirs[home]->erase(addr);
                    }
                }
                homeLocks[home].release(addr);
            });
        });
    });
}

void
DirectoryProtocol::dramCacheEvicted(SocketId req, Addr addr, bool dirty)
{
    const SocketId home = m.homeOf(addr, req);

    if (dirty) {
        // Dirty DRAM-cache victim: write back to home memory and drop
        // the directory entry (dirty designs only).
        sendData(req, home, [this, req, home, addr] {
            homeLocks[home].acquire(addr, [this, req, home, addr] {
                queueAt(home).schedule(cfg().globalDirLatency,
                                       [this, req, home, addr] {
                    m.socket(home).memory().write(
                        addr, /*remote=*/req != home);
                    DirEntry *e = dirs[home]->find(addr);
                    if (e && e->state == DirState::Modified &&
                        e->owner == req) {
                        dirs[home]->erase(addr);
                    }
                    homeLocks[home].release(addr);
                });
            });
        });
        return;
    }

    if (!policy.trackDramCacheEvictions)
        return; // silent clean eviction (sparse / snoop designs)

    // Inclusive directory bookkeeping: clear the sharer bit unless
    // the socket still holds the block on chip. As with putX, the
    // evictor's residual LLC state is sampled here and carried by the
    // notification packet; the block lock keeps it valid until the
    // directory update runs.
    const bool req_gone =
        m.socket(req).llcState(addr) == CacheState::Invalid;
    sendCtrl(req, home, [this, req, home, addr, req_gone] {
        homeLocks[home].acquire(addr, [this, req, home, addr,
                                       req_gone] {
            queueAt(home).schedule(cfg().globalDirLatency,
                                   [this, req, home, addr,
                                    req_gone] {
                DirEntry *e = dirs[home]->find(addr);
                if (e && e->state == DirState::Shared && req_gone) {
                    e->removeSharer(req);
                    if (e->sharerCount() == 0)
                        dirs[home]->erase(addr);
                }
                homeLocks[home].release(addr);
            });
        });
    });
}

// --------------------------------------------------------------------
// Factories
// --------------------------------------------------------------------

std::unique_ptr<GlobalProtocol>
makeBaselineProtocol(Machine &m, StatGroup *stats)
{
    DirPolicy p;
    p.allocateOnRead = true;
    p.broadcastOnUntrackedWrite = false;
    return std::make_unique<DirectoryProtocol>(m, stats, "baseline", p,
                                               /*sparse=*/true);
}

std::unique_ptr<GlobalProtocol>
makeFullDirProtocol(Machine &m, StatGroup *stats)
{
    DirPolicy p;
    p.allocateOnRead = true;
    p.broadcastOnUntrackedWrite = false;
    p.trackDramCacheEvictions = true;
    return std::make_unique<DirectoryProtocol>(m, stats, "full-dir", p,
                                               /*sparse=*/false);
}

std::unique_ptr<GlobalProtocol>
makeC3DProtocol(Machine &m, StatGroup *stats)
{
    DirPolicy p;
    p.allocateOnRead = false; // non-inclusive: reads stay untracked
    p.broadcastOnUntrackedWrite = true;
    p.privatePagesElideBroadcast = true;
    return std::make_unique<DirectoryProtocol>(m, stats, "c3d", p,
                                               /*sparse=*/true);
}

std::unique_ptr<GlobalProtocol>
makeC3DFullDirProtocol(Machine &m, StatGroup *stats)
{
    DirPolicy p;
    p.allocateOnRead = true;
    p.broadcastOnUntrackedWrite = false; // precise vector: no bcast
    p.putXKeepsSharer = true;            // M -> S on writeback
    p.trackDramCacheEvictions = true;
    return std::make_unique<DirectoryProtocol>(m, stats, "c3d-full-dir",
                                               p, /*sparse=*/false);
}

} // namespace c3d
