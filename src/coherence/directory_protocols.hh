/**
 * @file
 * Directory-based inter-socket protocols.
 *
 * DirectoryProtocol is the common MSI transaction engine used by four
 * of the five evaluated designs; the designs differ only in the
 * policy hooks (directory storage, whether reads allocate entries,
 * what happens to untracked writes, and writeback handling):
 *
 *  - baseline      sparse directory over LLCs, no DRAM cache (§V-A)
 *  - full-dir      idealized inclusive directory, dirty DRAM$ (§III-B)
 *  - c3d           sparse non-inclusive directory, clean DRAM$, write
 *                  broadcasts for untracked blocks (§IV)
 *  - c3d-full-dir  clean DRAM$ with an idealized full directory (no
 *                  broadcasts; M -> S on writeback) (§V-A)
 *
 * The snoopy design has no directory and lives in snoopy_protocol.hh.
 */

#ifndef C3DSIM_COHERENCE_DIRECTORY_PROTOCOLS_HH
#define C3DSIM_COHERENCE_DIRECTORY_PROTOCOLS_HH

#include <memory>

#include "coherence/protocol_base.hh"

namespace c3d
{

/** Per-design policy knobs for the directory transaction engine. */
struct DirPolicy
{
    /** Reads to untracked blocks allocate a directory entry. */
    bool allocateOnRead = true;
    /** Writes to untracked (Invalid) blocks must broadcast
     * invalidations to all remote DRAM caches. */
    bool broadcastOnUntrackedWrite = false;
    /** The §IV-D private-page hint may elide those broadcasts. */
    bool privatePagesElideBroadcast = false;
    /** PutX of a clean-design write-through leaves the evicting
     * socket tracked as a sharer (c3d-full-dir keeps M -> S). */
    bool putXKeepsSharer = false;
    /** Clean DRAM-cache evictions notify the home directory (only
     * meaningful for inclusive/full directories). */
    bool trackDramCacheEvictions = false;
};

/** Common MSI directory engine. */
class DirectoryProtocol : public ProtocolBase
{
  public:
    DirectoryProtocol(Machine &machine, StatGroup *stats,
                      const char *design_name, DirPolicy policy,
                      bool sparse_storage);

    void getS(SocketId req, Addr addr, ReadDone done) override;
    void getX(SocketId req, Addr addr, bool has_shared_copy,
              bool private_page, WriteDone done) override;
    void putX(SocketId req, Addr addr) override;
    void dramCacheEvicted(SocketId req, Addr addr, bool dirty) override;

    const char *name() const override { return designName; }

    /** Directory slice for @p home (tests/inspection). */
    DirectoryStore &directory(SocketId home) { return *dirs[home]; }

  private:
    /** Runs at the home once the block lock is held. */
    void handleGetS(SocketId req, SocketId home, Addr addr,
                    ReadDone done);
    void handleGetX(SocketId req, SocketId home, Addr addr,
                    bool upgrade, bool private_page, WriteDone done);

    /** Read memory at home and deliver data to the requester. */
    void serveFromMemory(SocketId req, SocketId home, Addr addr,
                         std::function<void()> deliver);

    /** Send the write response (data or upgrade-ack) to @p req. */
    void respondWrite(SocketId req, SocketId home, Addr addr,
                      bool with_data, WriteDone done);

    /** Join for the parallel memory-read + broadcast write path. */
    struct WriteJoin
    {
        bool memPending = false;
        bool acksPending = false;
        bool fired = false;
        std::function<void()> finish;

        void
        tryFinish()
        {
            if (!fired && !memPending && !acksPending) {
                fired = true;
                finish();
            }
        }
    };

    /** Recall-victim filter: blocks mid-transaction are pinned. */
    DirectoryStore::Evictable notBusyAt(SocketId home);

    /** Recall-mootness check: entry re-established under the lock. */
    std::function<bool(Addr)> trackedAt(SocketId home);

    const char *designName;
    const DirPolicy policy;
    std::vector<std::unique_ptr<DirectoryStore>> dirs;

    Counter readsFromMemory;
    Counter readsFromOwner;
    Counter writesServedByOwner;
};

/** Factory helpers for the four directory-based designs. */
std::unique_ptr<GlobalProtocol>
makeBaselineProtocol(Machine &m, StatGroup *stats);
std::unique_ptr<GlobalProtocol>
makeFullDirProtocol(Machine &m, StatGroup *stats);
std::unique_ptr<GlobalProtocol>
makeC3DProtocol(Machine &m, StatGroup *stats);
std::unique_ptr<GlobalProtocol>
makeC3DFullDirProtocol(Machine &m, StatGroup *stats);

} // namespace c3d

#endif // C3DSIM_COHERENCE_DIRECTORY_PROTOCOLS_HH
