/**
 * @file
 * Inter-socket coherence protocol interface.
 *
 * A protocol fields the requests that escape a socket (LLC + local
 * DRAM-cache misses, upgrades, writebacks) and is responsible for all
 * inter-socket messaging, directory bookkeeping, memory accesses and
 * remote cache probes. One implementation exists per evaluated design
 * (§V-A): baseline, snoopy, full-dir, c3d, c3d-full-dir.
 */

#ifndef C3DSIM_COHERENCE_PROTOCOL_HH
#define C3DSIM_COHERENCE_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

class Machine;

/** Completion callback for a read request: state granted is Shared. */
using ReadDone = std::function<void()>;

/** Completion callback for a write/upgrade request. */
using WriteDone = std::function<void()>;

/** The socket-boundary coherence interface. */
class GlobalProtocol
{
  public:
    virtual ~GlobalProtocol() = default;

    /**
     * Read request (GetS) from socket @p req for the block at
     * @p addr; both the LLC and (if the design has one) the local
     * DRAM cache have missed. @p done fires when the data has
     * arrived at the requesting socket.
     */
    virtual void getS(SocketId req, Addr addr, ReadDone done) = 0;

    /**
     * Write-permission request from socket @p req. @p has_shared_copy
     * distinguishes Upgrade (LLC holds Shared) from GetX.
     * @p private_page is the §IV-D TLB classification hint (only
     * meaningful when the optimization is enabled).
     */
    virtual void getX(SocketId req, Addr addr, bool has_shared_copy,
                      bool private_page, WriteDone done) = 0;

    /**
     * The socket evicted a Modified block from its LLC.
     * Baseline: plain writeback to home memory. Clean designs: the
     * write-through that accompanies retaining a clean copy in the
     * local DRAM cache (§IV-A). Dirty designs never call this (the
     * dirty block sinks into the DRAM cache instead).
     */
    virtual void putX(SocketId req, Addr addr) = 0;

    /**
     * The socket's DRAM cache displaced a block.
     * @p dirty requires a memory writeback (dirty designs only);
     * clean displacements matter only to designs with an inclusive
     * directory, which must drop the sharer bit.
     */
    virtual void dramCacheEvicted(SocketId req, Addr addr,
                                  bool dirty) = 0;

    /** Human-readable design name. */
    virtual const char *name() const = 0;
};

/** Factory: build the protocol implementation for @p design. */
std::unique_ptr<GlobalProtocol>
makeProtocol(Design design, Machine &machine, StatGroup *stats);

} // namespace c3d

#endif // C3DSIM_COHERENCE_PROTOCOL_HH
