/**
 * @file
 * Shared machinery for the global-protocol implementations: packet
 * helpers, per-home blocking tables, invalidation fan-out/fan-in, and
 * the common stat set.
 */

#ifndef C3DSIM_COHERENCE_PROTOCOL_BASE_HH
#define C3DSIM_COHERENCE_PROTOCOL_BASE_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/blocking.hh"
#include "coherence/directory.hh"
#include "coherence/protocol.hh"
#include "common/stats.hh"
#include "sim/machine.hh"

namespace c3d
{

/** Common protocol plumbing. */
class ProtocolBase : public GlobalProtocol
{
  public:
    ProtocolBase(Machine &machine, StatGroup *stats)
        : m(machine)
    {
        homeLocks.resize(m.numSockets());
        for (SocketId s = 0; s < m.numSockets(); ++s) {
            homeLocks[s].init(stats,
                              "proto.home" + std::to_string(s));
        }
        fwdRequests.init(stats, "proto.forwards",
                         "requests forwarded to an owner socket");
        fwdRaces.init(stats, "proto.forward_races",
                      "forwards that found no copy (writeback race)");
        invsSent.init(stats, "proto.invalidations",
                      "invalidation probes sent");
        broadcasts.init(stats, "proto.broadcasts",
                        "write misses that broadcast invalidations");
        broadcastsElided.init(stats, "proto.broadcasts_elided",
                              "broadcasts skipped via private pages");
        recallInvs.init(stats, "proto.recall_invalidations",
                        "sharers invalidated by directory recalls");
        dirtyFwds.init(stats, "proto.dirty_forwards",
                       "dirty blocks supplied by a remote socket");
        invPhaseTime.init(stats, "proto.inv_phase_time",
                          "invalidation fan-out ticks (send to all-"
                          "acked)");
        lockWaitTime.init(stats, "proto.lock_wait_time",
                          "ticks a request waited for the block lock");
    }

  protected:
    /**
     * The queue socket @p s executes on. Protocol handlers are
     * home-pinned under the parallel kernel: every piece of home
     * state (directory slice, block locks, home memory) is only
     * touched by events on the home's queue, so scheduling must
     * always name the socket whose state the continuation reads.
     */
    EventQueue &queueAt(SocketId s) { return m.queueAt(s); }
    const SystemConfig &cfg() const { return m.config(); }

    /**
     * Packet helpers. @p cb runs at @p dst as the arrival event —
     * it must only touch dst-side state. Forwarding templates so the
     * callable lands directly in the event's inline storage instead
     * of a std::function heap node.
     */
    template <typename F>
    void
    sendCtrl(SocketId src, SocketId dst, F &&cb)
    {
        m.interconnect().send(src, dst, PacketKind::Control,
                              std::forward<F>(cb));
    }

    template <typename F>
    void
    sendData(SocketId src, SocketId dst, F &&cb)
    {
        m.interconnect().send(src, dst, PacketKind::Data,
                              std::forward<F>(cb));
    }

    /**
     * Fan out invalidation probes to @p targets; @p done runs at the
     * home socket once every ack has returned. Dirty finds are
     * reported through @p on_dirty (at most one in a correct run).
     */
    void
    invalidateSockets(SocketId home, const std::vector<SocketId> &targets,
                      Addr addr, std::function<void(bool)> done)
    {
        if (targets.empty()) {
            queueAt(home).schedule(0,
                                   [done = std::move(done)] {
                                       done(false);
                                   });
            return;
        }
        auto state = std::make_shared<FanIn>();
        state->remaining = targets.size();
        const Tick phase_start = queueAt(home).now();
        state->done = [this, home, phase_start,
                       done = std::move(done)](bool dirty) {
            invPhaseTime.sample(queueAt(home).now() - phase_start);
            done(dirty);
        };
        for (SocketId t : targets) {
            ++invsSent;
            sendCtrl(home, t, [this, t, addr, home, state] {
                m.socket(t).probeInvalidate(addr,
                                            [this, t, home, state]
                                            (bool dirty) {
                    // Ack back to the home.
                    sendCtrl(t, home, [state, dirty] {
                        if (dirty)
                            state->sawDirty = true;
                        if (--state->remaining == 0)
                            state->done(state->sawDirty);
                    });
                });
            });
        }
    }

    /** All sockets except @p exclude. */
    std::vector<SocketId>
    othersThan(SocketId exclude) const
    {
        std::vector<SocketId> v;
        for (SocketId s = 0; s < m.numSockets(); ++s)
            if (s != exclude)
                v.push_back(s);
        return v;
    }

    /** Sharer-vector sockets except @p exclude. */
    std::vector<SocketId>
    sharersOf(const DirEntry &e, SocketId exclude) const
    {
        std::vector<SocketId> v;
        for (SocketId s = 0; s < m.numSockets(); ++s)
            if (s != exclude && e.isSharer(s))
                v.push_back(s);
        return v;
    }

    /**
     * Resolve a directory recall: invalidate the victim entry's
     * holders and write dirty data back to memory. Runs entirely off
     * the requester's critical path.
     */
    /**
     * Resolve a directory recall: invalidate the victim entry's
     * holders and write dirty data back to memory. Runs under the
     * victim block's lock, off the requester's critical path.
     * @param reallocated queried under the lock; a truthy result
     *        means a new transaction already re-established an entry
     *        for the block, making the recall moot.
     */
    void
    resolveRecall(SocketId home, const DirRecall &recall,
                  std::function<bool(Addr)> reallocated = {})
    {
        if (!recall.valid)
            return;
        std::vector<SocketId> targets;
        if (recall.entry.state == DirState::Modified) {
            targets.push_back(recall.entry.owner);
        } else {
            targets = sharersOf(recall.entry, InvalidSocket);
        }
        recallInvs += targets.size();
        const Addr addr = recall.addr;
        // Serialize against any transaction in flight for the
        // recalled block (we hold a different block's lock, so this
        // deferred acquisition cannot deadlock).
        homeLocks[home].acquire(
            addr, [this, home, addr, targets,
                   reallocated = std::move(reallocated)] {
            if (reallocated && reallocated(addr)) {
                homeLocks[home].release(addr);
                return;
            }
            invalidateSockets(home, targets, addr,
                              [this, home, addr](bool dirty) {
                if (dirty) {
                    m.socket(home).memory().write(addr,
                                                  /*remote=*/false);
                }
                homeLocks[home].release(addr);
            });
        });
    }

    Machine &m;
    std::vector<BlockingTable> homeLocks;

    Counter fwdRequests;
    Counter fwdRaces;
    Counter invsSent;
    Counter broadcasts;
    Counter broadcastsElided;
    Counter recallInvs;
    Counter dirtyFwds;
    Histogram invPhaseTime;
    Histogram lockWaitTime;

  private:
    struct FanIn
    {
        std::size_t remaining = 0;
        bool sawDirty = false;
        std::function<void(bool)> done;
    };
};

} // namespace c3d

#endif // C3DSIM_COHERENCE_PROTOCOL_BASE_HH
