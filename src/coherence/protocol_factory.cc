/**
 * @file
 * Name-keyed protocol registry.
 *
 * Dispatch runs through a table rather than a bare switch so an
 * out-of-range value produces a diagnostic naming the offending
 * value and the valid set. c3d_panic throws SimError, so a sweep
 * under --fail-policy=skip/retry contains a bad spec instead of
 * tearing the whole process down.
 */

#include <cstdio>
#include <cstring>

#include "coherence/protocol.hh"

#include "coherence/directory_protocols.hh"
#include "coherence/snoopy_protocol.hh"
#include "common/log.hh"

namespace c3d
{

namespace
{

using ProtocolFactory =
    std::unique_ptr<GlobalProtocol> (*)(Machine &, StatGroup *);

struct DesignEntry
{
    Design design;
    const char *name;
    ProtocolFactory make;
};

const DesignEntry kDesignRegistry[] = {
    {Design::Baseline, "baseline", makeBaselineProtocol},
    {Design::Snoopy, "snoopy", makeSnoopyProtocol},
    {Design::FullDir, "full-dir", makeFullDirProtocol},
    {Design::C3D, "c3d", makeC3DProtocol},
    {Design::C3DFullDir, "c3d-full-dir", makeC3DFullDirProtocol},
};

/** "baseline, snoopy, full-dir, ..." for diagnostics. */
void
validDesignSet(char *buf, std::size_t cap)
{
    std::size_t off = 0;
    for (const DesignEntry &e : kDesignRegistry) {
        const int n = std::snprintf(buf + off, cap - off, "%s%s",
                                    off ? ", " : "", e.name);
        if (n < 0 || static_cast<std::size_t>(n) >= cap - off)
            break;
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

std::unique_ptr<GlobalProtocol>
makeProtocol(Design design, Machine &machine, StatGroup *stats)
{
    for (const DesignEntry &e : kDesignRegistry) {
        if (e.design == design)
            return e.make(machine, stats);
    }
    char valid[128];
    validDesignSet(valid, sizeof(valid));
    c3d_panic("unknown design %d (valid: %s)",
              static_cast<int>(design), valid);
}

} // namespace c3d
