#include "coherence/protocol.hh"

#include "coherence/directory_protocols.hh"
#include "coherence/snoopy_protocol.hh"
#include "common/log.hh"

namespace c3d
{

std::unique_ptr<GlobalProtocol>
makeProtocol(Design design, Machine &machine, StatGroup *stats)
{
    switch (design) {
      case Design::Baseline:
        return makeBaselineProtocol(machine, stats);
      case Design::Snoopy:
        return makeSnoopyProtocol(machine, stats);
      case Design::FullDir:
        return makeFullDirProtocol(machine, stats);
      case Design::C3D:
        return makeC3DProtocol(machine, stats);
      case Design::C3DFullDir:
        return makeC3DFullDirProtocol(machine, stats);
    }
    c3d_panic("unknown design");
}

} // namespace c3d
