#include "coherence/snoopy_protocol.hh"

namespace c3d
{

SnoopyProtocol::SnoopyProtocol(Machine &machine, StatGroup *stats,
                               std::unique_ptr<SnoopVariant> var)
    : ProtocolBase(machine, stats), variant(std::move(var))
{
    snoops.init(stats, "proto.snoops", "snoop probes sent");
    snoopHitsDirty.init(stats, "proto.snoop_dirty_hits",
                        "snoops that supplied dirty data");
    snoopMemoryServed.init(stats, "proto.snoop_memory_served",
                           "snoop transactions served by memory");
    cleanForwards.init(stats, "proto.snoop_clean_forwards",
                       "clean cache-to-cache forwards (MESIF F "
                       "state / owner supply)");
    supplierFallbacks.init(stats, "proto.snoop_supplier_fallbacks",
                           "designated suppliers that had silently "
                           "lost the copy (fallback memory read)");
    updatesSent.init(stats, "proto.snoop_updates",
                     "update data packets sent to sharers (Dragon)");
    wbEnqueued.init(stats, "proto.wb_enqueued",
                    "writes accepted by a store write buffer");
    wbDrained.init(stats, "proto.wb_drained",
                   "writes drained from a store write buffer");
    wbFullStalls.init(stats, "proto.wb_full_stalls",
                      "store-buffer pushes that found it full");

    homeLines.resize(m.numSockets());
    writeBuffers.resize(m.numSockets());
    for (SocketId s = 0; s < m.numSockets(); ++s) {
        writeBuffers[s].init(&m.queueAt(s), &m.socket(s).memory(),
                             cfg().storeWriteBufferDepth,
                             cfg().memLatency, &wbEnqueued,
                             &wbDrained, &wbFullStalls);
    }
}

namespace
{

/** Join state for a broadcast transaction. */
struct SnoopJoin
{
    std::size_t pendingProbes = 0;
    bool memPending = false;
    bool dataArrived = false;
    bool completed = false;
    std::function<void()> done;

    void
    tryComplete()
    {
        if (completed)
            return;
        // Complete as soon as supplied data arrives (a dirty owner
        // or clean forwarder sent the block), or when every ack and
        // the memory data are in.
        if (dataArrived || (pendingProbes == 0 && !memPending)) {
            completed = true;
            done();
        }
    }
};

} // namespace

HomeLineState &
SnoopyProtocol::lineAt(SocketId home, Addr addr)
{
    return homeLines[home][blockAlign(addr)];
}

void
SnoopyProtocol::memWrite(SocketId home, Addr addr, bool remote)
{
    writeBuffers[home].push(addr, remote);
}

void
SnoopyProtocol::requestTransaction(SocketId req, Addr addr,
                                   bool is_write,
                                   bool has_shared_copy,
                                   std::function<void()> done)
{
    // The home socket is the ordering point (home-snoop flavour, as
    // in QPI): same-block transactions serialize there, which keeps
    // concurrent GetX from creating two owners. The variant's plan
    // is computed under the block lock, on the home's queue -- the
    // only place the per-line home state may be read.
    const SocketId home = m.homeOf(addr, req);
    sendCtrl(req, home, [this, req, home, addr, is_write,
                         has_shared_copy,
                         done = std::move(done)]() mutable {
        homeLocks[home].acquire(
            addr, [this, req, home, addr, is_write, has_shared_copy,
                   done = std::move(done)]() mutable {
                const SnoopPlan plan = variant->plan(
                    lineAt(home, addr), req, is_write,
                    has_shared_copy);
                // The join completes at the requester (every ack and
                // data packet lands there), so the completion wrapper
                // runs req-side. The home lock and line state are
                // home state: releasing or committing from the
                // requester both races under the parallel kernel and
                // lets a later transaction's probes depart the
                // ordering point before this transaction's fill has
                // landed. Send an explicit completion notice back to
                // the home and commit+release on its arrival — the
                // one extra control packet is the price of a real
                // ordering point.
                const bool update = plan.updateCopies;
                runBroadcast(req, home, addr, plan,
                             [this, req, home, addr, is_write,
                              update, done = std::move(done)] {
                    done();
                    if (req == home) {
                        commitAndRelease(home, req, addr, is_write,
                                         update);
                    } else {
                        sendCtrl(req, home, [this, req, home, addr,
                                             is_write, update] {
                            commitAndRelease(home, req, addr,
                                             is_write, update);
                        });
                    }
                });
            });
    });
}

void
SnoopyProtocol::commitAndRelease(SocketId home, SocketId req,
                                 Addr addr, bool is_write,
                                 bool update_copies)
{
    HomeLineState &line = lineAt(home, addr);
    if (update_copies) {
        // Dragon: the ordering point redistributes the new data to
        // every believed copy; they stay valid (update, not
        // invalidate). Pure timing traffic at the receiving socket.
        const std::uint32_t stale = line.copies & ~(1u << req);
        for (SocketId t = 0; t < m.numSockets(); ++t) {
            if (stale & (1u << t)) {
                ++updatesSent;
                sendData(home, t, [] {});
            }
        }
    }
    variant->complete(line, req, is_write);
    homeLocks[home].release(addr);
}

void
SnoopyProtocol::runBroadcast(SocketId req, SocketId home, Addr addr,
                             const SnoopPlan &plan,
                             std::function<void()> done)
{
    auto join = std::make_shared<SnoopJoin>();
    join->done = std::move(done);

    const std::vector<SocketId> targets = othersThan(req);
    join->pendingProbes = targets.size();
    join->memPending = plan.withMemoryRead;

    // Parallel memory access at the home socket (§V-A: "we access
    // the memory in parallel with probing remote caches").
    if (plan.withMemoryRead) {
        m.socket(home).memory().read(addr, req != home,
                                     [this, req, home, join] {
            sendData(home, req, [join] {
                join->memPending = false;
                join->tryComplete();
            });
        });
    }

    const bool probe_invalidate = plan.invalidateOthers;
    const bool retain = plan.supplierRetainsDirty;
    const bool reflective = plan.reflectiveWrite;
    for (SocketId t : targets) {
        ++snoops;
        const bool is_supplier =
            plan.supplier == static_cast<std::int32_t>(t);
        // Probes fan out from the ordering point; the home "probing
        // itself" is a local action (no interconnect traffic).
        sendCtrl(home, t, [this, req, home, t, addr, probe_invalidate,
                           retain, reflective, is_supplier, join] {
            m.socket(t).snoopProbe(addr, probe_invalidate,
                                   [this, req, home, t, addr,
                                    reflective, is_supplier, join]
                                   (SnoopResult res) {
                if (res.suppliedDirty) {
                    ++snoopHitsDirty;
                    ++dirtyFwds;
                    if (reflective) {
                        // Dirty data goes straight to the requester;
                        // memory is refreshed reflectively.
                        const SocketId hm = m.homeOf(addr, req);
                        sendData(t, hm, [this, hm, addr] {
                            memWrite(hm, addr, false);
                        });
                    }
                    sendData(t, req, [join] {
                        --join->pendingProbes;
                        join->dataArrived = true;
                        join->tryComplete();
                    });
                } else if (is_supplier && res.present) {
                    // MESIF-style clean forward: the designated
                    // supplier still holds the block and sends it in
                    // memory's stead.
                    ++cleanForwards;
                    sendData(t, req, [join] {
                        --join->pendingProbes;
                        join->dataArrived = true;
                        join->tryComplete();
                    });
                } else if (is_supplier) {
                    // The believed supplier silently lost its copy:
                    // recover with a fallback memory read at the
                    // home. Deterministic — the stale home state
                    // costs latency, never correctness.
                    ++supplierFallbacks;
                    sendCtrl(t, home, [this, req, home, addr, join] {
                        ++snoopMemoryServed;
                        m.socket(home).memory().read(
                            addr, req != home,
                            [this, req, home, join] {
                            sendData(home, req, [join] {
                                --join->pendingProbes;
                                join->dataArrived = true;
                                join->tryComplete();
                            });
                        });
                    });
                } else {
                    sendCtrl(t, req, [join] {
                        --join->pendingProbes;
                        join->tryComplete();
                    });
                }
            }, retain);
        });
    }

    if (targets.empty() && !plan.withMemoryRead) {
        // Single-socket machines only (othersThan(req) is never
        // empty otherwise), so this stays on the sequential kernel;
        // still pin to the home queue for uniformity.
        queueAt(home).schedule(0, [join] { join->tryComplete(); });
    }
}

void
SnoopyProtocol::getS(SocketId req, Addr addr, ReadDone done)
{
    requestTransaction(req, addr, /*is_write=*/false,
                       /*has_shared_copy=*/false, std::move(done));
}

void
SnoopyProtocol::getX(SocketId req, Addr addr, bool has_shared_copy,
                     bool /*private_page*/, WriteDone done)
{
    // An upgrade needs no data: invalidation acks suffice. A full
    // GetX reads memory in parallel with the (in)validating probes.
    requestTransaction(req, addr, /*is_write=*/true, has_shared_copy,
                       std::move(done));
}

void
SnoopyProtocol::putX(SocketId req, Addr addr)
{
    // Only the baseline/clean designs emit PutX; snoopy sinks dirty
    // LLC victims into the DRAM cache. Reaching here means the
    // machine was configured without a DRAM cache: write to memory
    // (through the home's store buffer) and retire the line from the
    // home's books.
    const SocketId home = m.homeOf(addr, req);
    sendData(req, home, [this, req, home, addr] {
        variant->evicted(lineAt(home, addr), req);
        memWrite(home, addr, req != home);
    });
}

void
SnoopyProtocol::dramCacheEvicted(SocketId req, Addr addr, bool dirty)
{
    if (!dirty)
        return; // silent clean eviction (home state goes stale)
    const SocketId home = m.homeOf(addr, req);
    sendData(req, home, [this, req, home, addr] {
        variant->evicted(lineAt(home, addr), req);
        memWrite(home, addr, req != home);
    });
}

std::unique_ptr<GlobalProtocol>
makeSnoopyProtocol(Machine &m, StatGroup *stats)
{
    return std::make_unique<SnoopyProtocol>(
        m, stats, makeSnoopVariant(m.config().protocol));
}

} // namespace c3d
