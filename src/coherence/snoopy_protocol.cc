#include "coherence/snoopy_protocol.hh"

namespace c3d
{

SnoopyProtocol::SnoopyProtocol(Machine &machine, StatGroup *stats)
    : ProtocolBase(machine, stats)
{
    snoops.init(stats, "proto.snoops", "snoop probes sent");
    snoopHitsDirty.init(stats, "proto.snoop_dirty_hits",
                        "snoops that supplied dirty data");
    snoopMemoryServed.init(stats, "proto.snoop_memory_served",
                           "snoop transactions served by memory");
}

namespace
{

/** Join state for a broadcast transaction. */
struct SnoopJoin
{
    std::size_t pendingProbes = 0;
    bool memPending = false;
    bool dirtyDataArrived = false;
    bool completed = false;
    std::function<void()> done;

    void
    tryComplete()
    {
        if (completed)
            return;
        // Complete as soon as dirty data arrives (the owner supplied
        // the block), or when every ack and the memory data are in.
        if (dirtyDataArrived ||
            (pendingProbes == 0 && !memPending)) {
            completed = true;
            done();
        }
    }
};

} // namespace

void
SnoopyProtocol::broadcastTransaction(SocketId req, Addr addr,
                                     bool is_write,
                                     bool with_memory_read,
                                     std::function<void()> done)
{
    // The home socket is the ordering point (home-snoop flavour, as
    // in QPI): same-block transactions serialize there, which keeps
    // concurrent GetX from creating two owners.
    const SocketId home = m.homeOf(addr, req);
    sendCtrl(req, home, [this, req, home, addr, is_write,
                         with_memory_read,
                         done = std::move(done)]() mutable {
        homeLocks[home].acquire(
            addr, [this, req, home, addr, is_write, with_memory_read,
                   done = std::move(done)]() mutable {
                // The join completes at the requester (every ack and
                // data packet lands there), so the completion wrapper
                // runs req-side. The home lock, however, is home
                // state: releasing it from the requester both races
                // under the parallel kernel and lets a later
                // transaction's probes depart the ordering point
                // before this transaction's fill has landed. Send an
                // explicit completion notice back to the home and
                // release on its arrival — the one extra control
                // packet is the price of a real ordering point.
                runBroadcast(req, home, addr, is_write,
                             with_memory_read,
                             [this, req, home, addr,
                              done = std::move(done)] {
                    done();
                    if (req == home) {
                        homeLocks[home].release(addr);
                    } else {
                        sendCtrl(req, home, [this, home, addr] {
                            homeLocks[home].release(addr);
                        });
                    }
                });
            });
    });
}

void
SnoopyProtocol::runBroadcast(SocketId req, SocketId home, Addr addr,
                             bool is_write, bool with_memory_read,
                             std::function<void()> done)
{
    auto join = std::make_shared<SnoopJoin>();
    join->done = std::move(done);

    const std::vector<SocketId> targets = othersThan(req);
    join->pendingProbes = targets.size();
    join->memPending = with_memory_read;

    // Parallel memory access at the home socket (§V-A: "we access
    // the memory in parallel with probing remote caches").
    if (with_memory_read) {
        m.socket(home).memory().read(addr, req != home,
                                     [this, req, home, join] {
            sendData(home, req, [join] {
                join->memPending = false;
                join->tryComplete();
            });
        });
    }

    for (SocketId t : targets) {
        ++snoops;
        // Probes fan out from the ordering point; the home "probing
        // itself" is a local action (no interconnect traffic).
        sendCtrl(home, t, [this, req, t, addr, is_write, join] {
            m.socket(t).snoopProbe(addr, is_write,
                                   [this, req, t, addr, join]
                                   (SnoopResult res) {
                if (res.suppliedDirty) {
                    ++snoopHitsDirty;
                    ++dirtyFwds;
                    // Dirty data goes straight to the requester;
                    // memory is refreshed reflectively.
                    const SocketId hm = m.homeOf(addr, req);
                    sendData(t, hm, [this, hm, addr] {
                        m.socket(hm).memory().write(addr, false);
                    });
                    sendData(t, req, [join] {
                        --join->pendingProbes;
                        join->dirtyDataArrived = true;
                        join->tryComplete();
                    });
                } else {
                    sendCtrl(t, req, [join] {
                        --join->pendingProbes;
                        join->tryComplete();
                    });
                }
            });
        });
    }

    if (targets.empty() && !with_memory_read) {
        // Single-socket machines only (othersThan(req) is never
        // empty otherwise), so this stays on the sequential kernel;
        // still pin to the home queue for uniformity.
        queueAt(home).schedule(0, [join] { join->tryComplete(); });
    }
}

void
SnoopyProtocol::getS(SocketId req, Addr addr, ReadDone done)
{
    broadcastTransaction(req, addr, /*is_write=*/false,
                         /*with_memory_read=*/true, std::move(done));
}

void
SnoopyProtocol::getX(SocketId req, Addr addr, bool has_shared_copy,
                     bool /*private_page*/, WriteDone done)
{
    // An upgrade needs no data: invalidation acks suffice. A full
    // GetX reads memory in parallel with the invalidating probes.
    broadcastTransaction(req, addr, /*is_write=*/true,
                         /*with_memory_read=*/!has_shared_copy,
                         std::move(done));
}

void
SnoopyProtocol::putX(SocketId req, Addr addr)
{
    // Only the baseline/clean designs emit PutX; snoopy sinks dirty
    // LLC victims into the DRAM cache. Reaching here means the
    // machine was configured without a DRAM cache: write to memory.
    const SocketId home = m.homeOf(addr, req);
    sendData(req, home, [this, req, home, addr] {
        m.socket(home).memory().write(addr, req != home);
    });
}

void
SnoopyProtocol::dramCacheEvicted(SocketId req, Addr addr, bool dirty)
{
    if (!dirty)
        return; // silent clean eviction
    const SocketId home = m.homeOf(addr, req);
    sendData(req, home, [this, req, home, addr] {
        m.socket(home).memory().write(addr, req != home);
    });
}

std::unique_ptr<GlobalProtocol>
makeSnoopyProtocol(Machine &m, StatGroup *stats)
{
    return std::make_unique<SnoopyProtocol>(m, stats);
}

} // namespace c3d
