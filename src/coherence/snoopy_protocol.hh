/**
 * @file
 * Snoopy inter-socket coherence (§III-A).
 *
 * Every local miss broadcasts probes to all remote sockets while the
 * home memory is accessed in parallel. All remote sockets must search
 * their DRAM caches (miss predictor permitting), so the furthest
 * socket's response latency sits on the critical path -- the "slow
 * remote hit" pathology -- even when no socket holds a copy.
 */

#ifndef C3DSIM_COHERENCE_SNOOPY_PROTOCOL_HH
#define C3DSIM_COHERENCE_SNOOPY_PROTOCOL_HH

#include <memory>

#include "coherence/protocol_base.hh"

namespace c3d
{

/** Broadcast-snooping protocol over dirty DRAM caches. */
class SnoopyProtocol : public ProtocolBase
{
  public:
    SnoopyProtocol(Machine &machine, StatGroup *stats);

    void getS(SocketId req, Addr addr, ReadDone done) override;
    void getX(SocketId req, Addr addr, bool has_shared_copy,
              bool private_page, WriteDone done) override;
    void putX(SocketId req, Addr addr) override;
    void dramCacheEvicted(SocketId req, Addr addr, bool dirty) override;

    const char *name() const override { return "snoopy"; }

  private:
    /** Route to the home ordering point, then broadcast. */
    void broadcastTransaction(SocketId req, Addr addr, bool is_write,
                              bool with_memory_read,
                              std::function<void()> done);

    /** The broadcast itself, run with the home block lock held. */
    void runBroadcast(SocketId req, SocketId home, Addr addr,
                      bool is_write, bool with_memory_read,
                      std::function<void()> done);

    Counter snoops;
    Counter snoopHitsDirty;
    Counter snoopMemoryServed;
};

std::unique_ptr<GlobalProtocol>
makeSnoopyProtocol(Machine &m, StatGroup *stats);

} // namespace c3d

#endif // C3DSIM_COHERENCE_SNOOPY_PROTOCOL_HH
