/**
 * @file
 * Snoopy inter-socket coherence (§III-A).
 *
 * Every local miss routes to the home ordering point and broadcasts
 * probes to all remote sockets. All remote sockets must search their
 * DRAM caches (miss predictor permitting), so the furthest socket's
 * response latency sits on the critical path -- the "slow remote
 * hit" pathology -- even when no socket holds a copy.
 *
 * One broadcast engine serves the whole protocol family: the
 * per-line state machine behind it (coherence/snoopy_variants.hh)
 * selects MESI, MESIF, MOESI or Dragon per SystemConfig::protocol,
 * and all variants share the per-home store write buffer
 * (coherence/store_buffer.hh). See docs/coherence.md.
 */

#ifndef C3DSIM_COHERENCE_SNOOPY_PROTOCOL_HH
#define C3DSIM_COHERENCE_SNOOPY_PROTOCOL_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/protocol_base.hh"
#include "coherence/snoopy_variants.hh"
#include "coherence/store_buffer.hh"

namespace c3d
{

/** Broadcast-snooping protocol family over dirty DRAM caches. */
class SnoopyProtocol : public ProtocolBase
{
  public:
    SnoopyProtocol(Machine &machine, StatGroup *stats,
                   std::unique_ptr<SnoopVariant> var);

    void getS(SocketId req, Addr addr, ReadDone done) override;
    void getX(SocketId req, Addr addr, bool has_shared_copy,
              bool private_page, WriteDone done) override;
    void putX(SocketId req, Addr addr) override;
    void dramCacheEvicted(SocketId req, Addr addr, bool dirty) override;

    const char *name() const override { return variant->name(); }

  private:
    /** Route to the home ordering point, plan, then broadcast. */
    void requestTransaction(SocketId req, Addr addr, bool is_write,
                            bool has_shared_copy,
                            std::function<void()> done);

    /** The broadcast itself, run with the home block lock held. */
    void runBroadcast(SocketId req, SocketId home, Addr addr,
                      const SnoopPlan &plan,
                      std::function<void()> done);

    /**
     * Commit the transaction's home-side line state (sending Dragon
     * update packets first) and release the block lock. Runs at the
     * home, on the completion notice's arrival.
     */
    void commitAndRelease(SocketId home, SocketId req, Addr addr,
                          bool is_write, bool update_copies);

    /** Home-side per-line state (home-queue events only). */
    HomeLineState &lineAt(SocketId home, Addr addr);

    /** Route a home-side memory write through the store buffer. */
    void memWrite(SocketId home, Addr addr, bool remote);

    std::unique_ptr<SnoopVariant> variant;
    std::vector<std::unordered_map<Addr, HomeLineState>> homeLines;
    std::vector<StoreBuffer> writeBuffers;

    Counter snoops;
    Counter snoopHitsDirty;
    Counter snoopMemoryServed;
    Counter cleanForwards;
    Counter supplierFallbacks;
    Counter updatesSent;
    Counter wbEnqueued;
    Counter wbDrained;
    Counter wbFullStalls;
};

std::unique_ptr<GlobalProtocol>
makeSnoopyProtocol(Machine &m, StatGroup *stats);

} // namespace c3d

#endif // C3DSIM_COHERENCE_SNOOPY_PROTOCOL_HH
