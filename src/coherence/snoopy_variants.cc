#include "coherence/snoopy_variants.hh"

#include "common/log.hh"

namespace c3d
{

namespace
{

/**
 * MESI: the plan ignores the home state entirely -- memory is read
 * in parallel with every data-carrying broadcast and a dirty find is
 * forwarded with a reflective memory write. This is exactly the
 * pre-matrix snoopy protocol, so `--protocol=mesi` rows are byte
 * identical to the seed's. The state commits are bookkeeping only.
 */
class MesiVariant : public SnoopVariant
{
  public:
    Protocol protocol() const override { return Protocol::Mesi; }

    SnoopPlan
    plan(const HomeLineState &, SocketId, bool is_write,
         bool has_shared_copy) const override
    {
        SnoopPlan p;
        p.withMemoryRead = is_write ? !has_shared_copy : true;
        p.invalidateOthers = is_write;
        return p;
    }

    void
    complete(HomeLineState &line, SocketId req,
             bool is_write) const override
    {
        if (is_write) {
            line.copies = 1u << req;
            line.owner = -1;
            line.forwarder = -1;
        } else {
            line.add(req);
        }
    }
};

/**
 * MESIF: one believed sharer is the forwarder; a read it can serve
 * skips the memory access and takes a clean cache-to-cache forward
 * instead. The most recent reader inherits F. Writes behave as MESI.
 */
class MesifVariant : public SnoopVariant
{
  public:
    Protocol protocol() const override { return Protocol::Mesif; }

    SnoopPlan
    plan(const HomeLineState &line, SocketId req, bool is_write,
         bool has_shared_copy) const override
    {
        SnoopPlan p;
        p.invalidateOthers = is_write;
        if (is_write) {
            p.withMemoryRead = !has_shared_copy;
            return p;
        }
        const std::int32_t r = static_cast<std::int32_t>(req);
        if (line.forwarder >= 0 && line.forwarder != r) {
            p.supplier = line.forwarder;
            p.withMemoryRead = false;
        } else if (line.owner >= 0 && line.owner != r) {
            // A dirty owner supplies through the normal dirty path.
            p.withMemoryRead = false;
            p.supplier = line.owner;
        } else {
            p.withMemoryRead = true;
        }
        return p;
    }

    void
    complete(HomeLineState &line, SocketId req,
             bool is_write) const override
    {
        if (is_write) {
            line.copies = 1u << req;
            line.owner = -1;
        } else {
            line.add(req);
            if (line.owner >= 0)
                line.owner = -1; // dirty supply cleaned the owner
        }
        line.forwarder = static_cast<std::int32_t>(req);
    }
};

/**
 * MOESI: a dirty owner supplies readers and *keeps* its dirty copy
 * (owned state); no reflective memory write, memory goes stale until
 * the owner's dirty copy is finally evicted. An owner-less read is
 * served by memory as in MESI.
 */
class MoesiVariant : public SnoopVariant
{
  public:
    Protocol protocol() const override { return Protocol::Moesi; }

    SnoopPlan
    plan(const HomeLineState &line, SocketId req, bool is_write,
         bool has_shared_copy) const override
    {
        SnoopPlan p;
        p.invalidateOthers = is_write;
        p.reflectiveWrite = false;
        p.supplierRetainsDirty = !is_write;
        const std::int32_t r = static_cast<std::int32_t>(req);
        if (is_write) {
            p.withMemoryRead = !has_shared_copy;
        } else if (line.owner >= 0 && line.owner != r) {
            p.supplier = line.owner;
            p.withMemoryRead = false;
        } else {
            p.withMemoryRead = true;
        }
        return p;
    }

    void
    complete(HomeLineState &line, SocketId req,
             bool is_write) const override
    {
        if (is_write) {
            line.copies = 1u << req;
            line.owner = static_cast<std::int32_t>(req);
            line.forwarder = -1;
        } else {
            line.add(req);
            // The owner (if any) retained its dirty copy: ownership
            // is unchanged by a read.
        }
    }
};

/**
 * Dragon: update-based. Writes never invalidate -- every believed
 * copy receives an update data packet and stays valid, and the
 * writer becomes the owner. Reads are served by the owner when one
 * exists (which keeps its dirty data), else by memory.
 */
class DragonVariant : public SnoopVariant
{
  public:
    Protocol protocol() const override { return Protocol::Dragon; }

    SnoopPlan
    plan(const HomeLineState &line, SocketId req, bool is_write,
         bool has_shared_copy) const override
    {
        SnoopPlan p;
        p.reflectiveWrite = false;
        p.supplierRetainsDirty = true;
        const std::int32_t r = static_cast<std::int32_t>(req);
        if (is_write) {
            p.invalidateOthers = false;
            p.updateCopies = true;
            if (line.owner >= 0 && line.owner != r) {
                p.supplier = line.owner;
                p.withMemoryRead = false;
            } else {
                p.withMemoryRead = !has_shared_copy;
            }
        } else if (line.owner >= 0 && line.owner != r) {
            p.supplier = line.owner;
            p.withMemoryRead = false;
        } else {
            p.withMemoryRead = true;
        }
        return p;
    }

    void
    complete(HomeLineState &line, SocketId req,
             bool is_write) const override
    {
        line.add(req);
        if (is_write) {
            // Updates kept every copy valid; the writer owns the
            // newest version.
            line.owner = static_cast<std::int32_t>(req);
        }
    }
};

} // namespace

std::unique_ptr<SnoopVariant>
makeSnoopVariant(Protocol p)
{
    switch (p) {
      case Protocol::Mesi:
        return std::make_unique<MesiVariant>();
      case Protocol::Mesif:
        return std::make_unique<MesifVariant>();
      case Protocol::Moesi:
        return std::make_unique<MoesiVariant>();
      case Protocol::Dragon:
        return std::make_unique<DragonVariant>();
    }
    c3d_panic("unknown protocol %d (valid: mesi, mesif, moesi, "
              "dragon)", static_cast<int>(p));
}

} // namespace c3d
