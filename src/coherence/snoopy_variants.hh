/**
 * @file
 * Per-line state machines for the snoopy protocol family.
 *
 * The timing protocol (snoopy_protocol.cc) is one broadcast engine;
 * what distinguishes MESI, MESIF, MOESI and Dragon is how the home
 * ordering point plans a transaction and how the home-side per-line
 * state evolves. Each variant implements that as a pure state
 * machine over HomeLineState behind the SnoopVariant transition
 * interface -- no events, no machine access -- so the same tables
 * drive both the timing simulator and the randomized differential
 * harness in tests/test_model_checker.cc (docs/coherence.md).
 *
 * The home state is advisory for MESI (the plan never reads it, so
 * the mesi variant reproduces the pre-matrix snoopy protocol bit for
 * bit) and load-bearing for the others: a designated supplier that
 * silently lost its copy is recovered by a deterministic fallback
 * memory read at the home, never by guessing.
 */

#ifndef C3DSIM_COHERENCE_SNOOPY_VARIANTS_HH
#define C3DSIM_COHERENCE_SNOOPY_VARIANTS_HH

#include <cstdint>
#include <memory>

#include "common/config.hh"
#include "common/types.hh"

namespace c3d
{

/**
 * What the home ordering point believes about one cache line.
 * Believed, not known: clean copies die silently (LLC and DRAM-cache
 * evictions of clean blocks send no packet), so `copies`, `owner`
 * and `forwarder` may be stale-optimistic. Every plan that leans on
 * them must tolerate a probe finding nothing.
 */
struct HomeLineState
{
    std::uint32_t copies = 0;    //!< socket bitmap of believed holders
    std::int32_t owner = -1;     //!< believed dirty owner (-1: none)
    std::int32_t forwarder = -1; //!< believed clean supplier (-1: none)

    bool holds(SocketId s) const { return copies & (1u << s); }
    void add(SocketId s) { copies |= 1u << s; }
    void remove(SocketId s)
    {
        copies &= ~(1u << s);
        if (owner == static_cast<std::int32_t>(s))
            owner = -1;
        if (forwarder == static_cast<std::int32_t>(s))
            forwarder = -1;
    }
};

/** How one broadcast transaction should run. */
struct SnoopPlan
{
    /** Home reads memory in parallel with the probes. */
    bool withMemoryRead = false;
    /** Probes invalidate remote copies (else they downgrade). */
    bool invalidateOthers = false;
    /** Write updates remote copies in place instead (Dragon). */
    bool updateCopies = false;
    /** A dirty supplier keeps its dirty copy (MOESI owned state). */
    bool supplierRetainsDirty = false;
    /** Dirty supply also refreshes home memory reflectively. */
    bool reflectiveWrite = true;
    /**
     * Socket expected to supply the data instead of memory (-1:
     * none). If its probe finds no copy, the home issues a fallback
     * memory read -- deterministic recovery from stale home state.
     */
    std::int32_t supplier = -1;
};

/** The shared transition interface the variants implement. */
class SnoopVariant
{
  public:
    virtual ~SnoopVariant() = default;

    virtual Protocol protocol() const = 0;
    const char *name() const { return protocolName(protocol()); }

    /**
     * Plan the broadcast for a request. Pure: reads @p line, never
     * mutates and never schedules. @p has_shared_copy distinguishes
     * an upgrade from a full miss (requester-local knowledge).
     */
    virtual SnoopPlan plan(const HomeLineState &line, SocketId req,
                           bool is_write,
                           bool has_shared_copy) const = 0;

    /**
     * Commit the home-side state once the transaction's completion
     * notice reaches the home (under the block lock, so the next
     * same-block plan sees the committed state).
     */
    virtual void complete(HomeLineState &line, SocketId req,
                          bool is_write) const = 0;

    /**
     * A socket wrote dirty data back (LLC PutX or dirty DRAM-cache
     * eviction); it no longer holds the line.
     */
    virtual void evicted(HomeLineState &line, SocketId who) const
    {
        line.remove(who);
    }
};

/** Build the state machine for @p p. */
std::unique_ptr<SnoopVariant> makeSnoopVariant(Protocol p);

} // namespace c3d

#endif // C3DSIM_COHERENCE_SNOOPY_VARIANTS_HH
