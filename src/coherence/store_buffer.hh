/**
 * @file
 * Store write buffer in front of a home memory controller.
 *
 * The snoopy family funnels every memory write (LLC PutX
 * writebacks, dirty DRAM-cache evictions, reflective writes) through
 * one of these per home socket. Writes enqueue in arrival order and
 * drain one per drain-latency tick -- the memory controller's pace
 * -- so the controller sees a smoothed write stream instead of
 * bursts. The FIFO is total: same-address stores can never reorder
 * (tests/test_snoopy_ordering.cc pins this). A push into a full
 * buffer force-drains the oldest entry immediately (counted as a
 * full stall) rather than dropping or blocking, so no write is ever
 * lost.
 *
 * Depth 0 disables the buffer entirely: push() posts straight to the
 * controller, which is the pre-buffer event schedule bit for bit.
 *
 * Concurrency: a buffer belongs to its home socket. All pushes and
 * drains run as events on the home's queue (the callers are packet
 * arrivals at the home), so the parallel kernel needs no locking
 * here.
 */

#ifndef C3DSIM_COHERENCE_STORE_BUFFER_HH
#define C3DSIM_COHERENCE_STORE_BUFFER_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_controller.hh"
#include "sim/event_queue.hh"

namespace c3d
{

/** One home socket's store write buffer. */
class StoreBuffer
{
  public:
    /**
     * Bind to the home's queue and controller. The counters are
     * shared across the per-home buffers (protocol-level stats);
     * any may be null.
     */
    void
    init(EventQueue *queue, MemoryController *memctrl,
         std::uint32_t buffer_depth, Tick drain_latency,
         Counter *enq, Counter *drn, Counter *stalls)
    {
        eq = queue;
        mem = memctrl;
        depth = buffer_depth;
        latency = drain_latency;
        enqueued = enq;
        drained = drn;
        fullStalls = stalls;
    }

    /** Accept one memory write (home-side event context). */
    void
    push(Addr addr, bool remote)
    {
        if (depth == 0) {
            mem->write(addr, remote);
            return;
        }
        if (enqueued)
            ++*enqueued;
        fifo.push_back(Entry{addr, remote});
        if (fifo.size() > depth) {
            // Full: the oldest write leaves at once so the buffer
            // never exceeds its depth and nothing is dropped.
            if (fullStalls)
                ++*fullStalls;
            drainFront();
        }
        if (!drainScheduled && !fifo.empty()) {
            drainScheduled = true;
            eq->schedule(latency, [this] { drainEvent(); });
        }
    }

    std::size_t pending() const { return fifo.size(); }

  private:
    struct Entry
    {
        Addr addr;
        bool remote;
    };

    void
    drainFront()
    {
        const Entry e = fifo.front();
        fifo.pop_front();
        if (drained)
            ++*drained;
        mem->write(e.addr, e.remote);
    }

    void
    drainEvent()
    {
        if (fifo.empty()) {
            drainScheduled = false;
            return;
        }
        drainFront();
        if (fifo.empty()) {
            drainScheduled = false;
        } else {
            eq->schedule(latency, [this] { drainEvent(); });
        }
    }

    EventQueue *eq = nullptr;
    MemoryController *mem = nullptr;
    std::uint32_t depth = 0;
    Tick latency = 0;
    bool drainScheduled = false;
    std::deque<Entry> fifo;
    Counter *enqueued = nullptr;
    Counter *drained = nullptr;
    Counter *fullStalls = nullptr;
};

} // namespace c3d

#endif // C3DSIM_COHERENCE_STORE_BUFFER_HH
