#include "common/cli.hh"

#include <cstdlib>

namespace c3d
{

/** Split "--key=value"; value empty for bare flags. */
bool
splitFlag(const std::string &arg, std::string &key, std::string &value)
{
    if (arg.rfind("--", 0) != 0)
        return false;
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
        key = arg.substr(2);
        value.clear();
    } else {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
    }
    return true;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 0);
    return end && *end == '\0';
}

bool
parseDesign(const std::string &s, Design &out)
{
    for (Design d : {Design::Baseline, Design::Snoopy, Design::FullDir,
                     Design::C3D, Design::C3DFullDir}) {
        if (s == designName(d)) {
            out = d;
            return true;
        }
    }
    return false;
}

bool
parseMapping(const std::string &s, MappingPolicy &out)
{
    for (MappingPolicy p : {MappingPolicy::Interleave,
                            MappingPolicy::FirstTouch1,
                            MappingPolicy::FirstTouch2}) {
        if (s == mappingPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
parseProtocol(const std::string &s, Protocol &out)
{
    for (Protocol p : {Protocol::Mesi, Protocol::Mesif, Protocol::Moesi,
                       Protocol::Dragon}) {
        if (s == protocolName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
parsePredictorKind(const std::string &s, PredictorKind &out)
{
    for (PredictorKind k :
         {PredictorKind::Region, PredictorKind::Perceptron}) {
        if (s == predictorKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    if (s.empty())
        return out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
}

std::string
cliUsage()
{
    return
        "c3dsim options:\n"
        "  --design=NAME          baseline|snoopy|full-dir|c3d|"
        "c3d-full-dir (default c3d)\n"
        "  --sockets=N            2 or 4 (default 4)\n"
        "  --cores-per-socket=N   (default 8)\n"
        "  --scale=N              shrink capacities & workload by N "
        "(default 32)\n"
        "  --mapping=P            INT|FT1|FT2 (default FT2)\n"
        "  --protocol=NAME        mesi|mesif|moesi|dragon snoopy "
        "variant (default mesi)\n"
        "  --store-buffer=N       snoopy store write buffer depth "
        "(default 0 = off)\n"
        "  --predictor=NAME       region|perceptron DRAM-cache "
        "admission predictor (default region)\n"
        "  --workload=NAME        paper profile name (default "
        "facesim)\n"
        "  --warmup=N --measure=N references per core\n"
        "  --dram-cache-ns=N --hop-ns=N --mem-ns=N latency overrides\n"
        "  --no-dram-cache        drop the DRAM cache (any design)\n"
        "  --tlb-classification   enable the SIV-D broadcast filter\n"
        "  --seed=N               workload RNG seed\n"
        "  --help\n";
}

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opt;
    SystemConfig raw; // unscaled; scaled at the end

    std::uint64_t dram_ns = 0, hop_ns = 0, mem_ns = 0;

    for (const std::string &arg : args) {
        std::string key, value;
        if (!splitFlag(arg, key, value)) {
            opt.error = "unexpected argument '" + arg + "'";
            return opt;
        }
        std::uint64_t n = 0;
        if (key == "help") {
            opt.showHelp = true;
        } else if (key == "design") {
            if (!parseDesign(value, raw.design)) {
                opt.error = "unknown design '" + value + "'";
                return opt;
            }
        } else if (key == "mapping") {
            if (!parseMapping(value, raw.mapping)) {
                opt.error = "unknown mapping '" + value + "'";
                return opt;
            }
        } else if (key == "protocol") {
            if (!parseProtocol(value, raw.protocol)) {
                opt.error = "unknown protocol '" + value + "'";
                return opt;
            }
        } else if (key == "predictor") {
            if (!parsePredictorKind(value, raw.predictorKind)) {
                opt.error = "unknown predictor '" + value + "'";
                return opt;
            }
        } else if (key == "store-buffer") {
            if (!parseU64(value, n) || n > 4096) {
                opt.error = "bad store-buffer depth";
                return opt;
            }
            raw.storeWriteBufferDepth = static_cast<std::uint32_t>(n);
        } else if (key == "sockets") {
            if (!parseU64(value, n) || n < 1 || n > 8) {
                opt.error = "bad socket count";
                return opt;
            }
            raw.numSockets = static_cast<std::uint32_t>(n);
        } else if (key == "cores-per-socket") {
            if (!parseU64(value, n) || n < 1 || n > 64) {
                opt.error = "bad cores-per-socket";
                return opt;
            }
            raw.coresPerSocket = static_cast<std::uint32_t>(n);
        } else if (key == "scale") {
            if (!parseU64(value, n) || n < 1) {
                opt.error = "bad scale";
                return opt;
            }
            opt.scale = static_cast<std::uint32_t>(n);
        } else if (key == "workload") {
            opt.workload = value;
        } else if (key == "warmup") {
            if (!parseU64(value, opt.warmupOps)) {
                opt.error = "bad warmup";
                return opt;
            }
        } else if (key == "measure") {
            if (!parseU64(value, opt.measureOps)) {
                opt.error = "bad measure";
                return opt;
            }
        } else if (key == "dram-cache-ns") {
            if (!parseU64(value, dram_ns)) {
                opt.error = "bad dram-cache-ns";
                return opt;
            }
        } else if (key == "hop-ns") {
            if (!parseU64(value, hop_ns)) {
                opt.error = "bad hop-ns";
                return opt;
            }
        } else if (key == "mem-ns") {
            if (!parseU64(value, mem_ns)) {
                opt.error = "bad mem-ns";
                return opt;
            }
        } else if (key == "no-dram-cache") {
            raw.hasDramCache = false;
        } else if (key == "tlb-classification") {
            raw.tlbPageClassification = true;
        } else if (key == "seed") {
            if (!parseU64(value, opt.seed)) {
                opt.error = "bad seed";
                return opt;
            }
        } else {
            opt.error = "unknown flag '--" + key + "'";
            return opt;
        }
    }

    if (dram_ns)
        raw.dramCacheLatency = nsToTicks(dram_ns);
    if (hop_ns)
        raw.hopLatency = nsToTicks(hop_ns);
    if (mem_ns)
        raw.memLatency = nsToTicks(mem_ns);

    opt.config = raw.scaled(opt.scale);
    return opt;
}

CliOptions
parseCli(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parseCli(args);
}

} // namespace c3d
