/**
 * @file
 * Command-line configuration for c3dsim tools.
 *
 * Examples and user binaries accept a common set of flags to build a
 * SystemConfig and pick workloads without recompiling:
 *
 *   --design=c3d|baseline|snoopy|full-dir|c3d-full-dir
 *   --sockets=N --cores-per-socket=N
 *   --scale=N                 (capacities /N; pair with workload scale)
 *   --mapping=INT|FT1|FT2
 *   --protocol=mesi|mesif|moesi|dragon --store-buffer=N
 *   --predictor=region|perceptron
 *   --workload=<profile name> --warmup=N --measure=N
 *   --dram-cache-ns=N --hop-ns=N --mem-ns=N
 *   --no-dram-cache --tlb-classification
 *   --seed=N
 */

#ifndef C3DSIM_COMMON_CLI_HH
#define C3DSIM_COMMON_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"

namespace c3d
{

/** Parsed command line for a c3dsim tool. */
struct CliOptions
{
    SystemConfig config;           //!< already scaled
    std::uint32_t scale = 32;      //!< machine/workload scale divisor
    std::string workload = "facesim";
    std::uint64_t warmupOps = 15000;
    std::uint64_t measureOps = 25000;
    std::uint64_t seed = 0xC3D0;
    bool showHelp = false;
    std::string error;             //!< non-empty on parse failure

    bool ok() const { return error.empty() && !showHelp; }
};

/**
 * Parse @p args (not including argv[0]). Unknown flags produce an
 * error; `--help` sets showHelp. The returned config has scaling
 * already applied.
 */
CliOptions parseCli(const std::vector<std::string> &args);

// ---- reusable flag-parsing helpers (c3d-sweep, bench harness) --------

/** Split "--key=value" into parts; value empty for bare flags. */
bool splitFlag(const std::string &arg, std::string &key,
               std::string &value);

/** Parse an unsigned integer (base auto-detected). */
bool parseU64(const std::string &s, std::uint64_t &out);

/** Split "a,b,c" on commas; empty input yields an empty list. */
std::vector<std::string> splitList(const std::string &s);

/** Map a design name (designName() spelling) back to the enum. */
bool parseDesign(const std::string &s, Design &out);

/** Map a mapping-policy name back to the enum. */
bool parseMapping(const std::string &s, MappingPolicy &out);

/** Map a protocol name (protocolName() spelling) back to the enum. */
bool parseProtocol(const std::string &s, Protocol &out);

/** Map a predictor name (predictorKindName() spelling) back. */
bool parsePredictorKind(const std::string &s, PredictorKind &out);

/** Convenience overload for main(argc, argv). */
CliOptions parseCli(int argc, char **argv);

/** Usage text for --help. */
std::string cliUsage();

} // namespace c3d

#endif // C3DSIM_COMMON_CLI_HH
