#include "common/config.hh"

namespace c3d
{

const char *
designName(Design d)
{
    switch (d) {
      case Design::Baseline:
        return "baseline";
      case Design::Snoopy:
        return "snoopy";
      case Design::FullDir:
        return "full-dir";
      case Design::C3D:
        return "c3d";
      case Design::C3DFullDir:
        return "c3d-full-dir";
    }
    return "?";
}

const char *
mappingPolicyName(MappingPolicy p)
{
    switch (p) {
      case MappingPolicy::Interleave:
        return "INT";
      case MappingPolicy::FirstTouch1:
        return "FT1";
      case MappingPolicy::FirstTouch2:
        return "FT2";
    }
    return "?";
}

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::Mesi:
        return "mesi";
      case Protocol::Mesif:
        return "mesif";
      case Protocol::Moesi:
        return "moesi";
      case Protocol::Dragon:
        return "dragon";
    }
    return "?";
}

const char *
predictorKindName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::Region:
        return "region";
      case PredictorKind::Perceptron:
        return "perceptron";
    }
    return "?";
}

} // namespace c3d
