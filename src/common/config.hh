/**
 * @file
 * System configuration: every knob of the simulated machine.
 *
 * Defaults reproduce Table II of the paper (4-socket, 8 cores/socket,
 * 3 GHz, 16 MB LLC, 1 GB DRAM cache, 50 ns memory, 20 ns/hop
 * interconnect). The @ref scaled() helper produces a proportionally
 * shrunken machine for fast benchmarking: capacities scale together
 * with workload footprints so hit rates and protocol event mixes are
 * preserved.
 */

#ifndef C3DSIM_COMMON_CONFIG_HH
#define C3DSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace c3d
{

/** Which inter-socket coherence design to simulate (§V-A). */
enum class Design
{
    Baseline,   //!< no DRAM cache; sparse global directory over LLCs
    Snoopy,     //!< dirty DRAM caches; broadcast snooping (§III-A)
    FullDir,    //!< dirty DRAM caches; inclusive full directory (§III-B)
    C3D,        //!< clean DRAM caches; non-inclusive directory (§IV)
    C3DFullDir, //!< clean DRAM caches + idealized full directory
};

/** Memory page placement policy (§V). */
enum class MappingPolicy
{
    Interleave, //!< INT: pages round-robin across sockets
    FirstTouch1, //!< FT1: first touch from application start
    FirstTouch2, //!< FT2: first touch within the parallel phase
};

/**
 * Which snoopy-family coherence protocol variant the socket caches
 * run. The directory designs keep their fixed MSI-style engines; the
 * snoopy design dispatches on this knob through the protocol
 * registry (src/coherence/protocol_factory.cc), so `protocol` is a
 * first-class sweep axis next to `design` (docs/coherence.md).
 */
enum class Protocol
{
    Mesi,   //!< invalidate-based, memory supplies clean data
    Mesif,  //!< MESI + clean forward state (one sharer supplies)
    Moesi,  //!< dirty owner supplies and retains (no reflective write)
    Dragon, //!< update-based: writes update remote copies in place
};

/**
 * Which DRAM-cache predictor the socket caches run (docs/predictors.md).
 * Every kind keeps the presence contract -- a present block is never
 * reported absent -- so it is safe for dirty designs; the kinds differ
 * only in how insertions are admitted.
 */
enum class PredictorKind
{
    Region,     //!< counting region filter; every fill admitted
    Perceptron, //!< hashed-perceptron cache/bypass gate + ghost buffer
};

const char *designName(Design d);
const char *mappingPolicyName(MappingPolicy p);
const char *protocolName(Protocol p);
const char *predictorKindName(PredictorKind k);

/** Inter-socket interconnect topology. */
enum class Topology
{
    PointToPoint, //!< 2-socket: a direct link
    Ring,         //!< 4-socket: bidirectional ring
};

/** Full machine configuration. */
struct SystemConfig
{
    // ---- organization -------------------------------------------------
    std::uint32_t numSockets = 4;
    std::uint32_t coresPerSocket = 8;

    Design design = Design::C3D;
    MappingPolicy mapping = MappingPolicy::FirstTouch2;
    Protocol protocol = Protocol::Mesi;

    // ---- per-core L1 (Table II: 64 KB / 8-way, 3 cycles) --------------
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint32_t l1Ways = 8;
    Tick l1Latency = 3;

    // ---- shared LLC (Table II: 16 MB / 16-way, 7c tag, 13c data) ------
    std::uint64_t llcBytes = 16ull * 1024 * 1024;
    std::uint32_t llcWays = 16;
    Tick llcTagLatency = 7;
    Tick llcDataLatency = 13;

    // ---- DRAM cache (Table II: 1 GB direct-mapped, 40 ns,
    //      8 x 12.8 GB/s, 4K-entry region miss predictor, 2c) -----------
    bool hasDramCache = true;
    std::uint64_t dramCacheBytes = 1024ull * 1024 * 1024;
    Tick dramCacheLatency = nsToTicks(40);
    std::uint32_t dramCacheChannels = 8;
    double dramCacheChannelGBps = 12.8;
    bool missPredictorEnabled = true;
    /** Exact block-grain presence (Loh & Hill MissMap) vs the
     * cheaper counting region filter (ablation). Both are safe:
     * neither ever hides a present block. */
    bool missPredictorExact = true;
    std::uint32_t missPredictorEntries = 4096;
    Tick missPredictorLatency = 2;
    std::uint32_t missPredictorRegionBytes = 4096;

    // ---- DRAM-cache admission predictor (docs/predictors.md) ----------
    /** Which admission predictor gates insertions. Region keeps the
     * paper behavior: every LLC victim is cached. */
    PredictorKind predictorKind = PredictorKind::Region;
    /** Per-feature perceptron weight-table entries (power of two). */
    std::uint32_t perceptronTableEntries = 256;
    /** Saturation bound: weights live in [-max-1, max] (6-bit). */
    std::int32_t perceptronWeightMax = 31;
    /** Admission rule: sum of feature weights >= threshold -> cache. */
    std::int32_t perceptronThreshold = 0;
    /** Train on correct predictions while |sum| <= margin, so weights
     * keep a confidence buffer instead of oscillating around the
     * threshold. */
    std::int32_t perceptronTrainMargin = 8;
    /** Ghost-buffer Bloom filter size in bits (power of two). */
    std::uint32_t ghostBufferBits = 8192;
    /** Evictions recorded before the ghost buffer self-clears (keeps
     * the filter's false-positive rate bounded; deterministic). */
    std::uint32_t ghostBufferResetEvictions = 4096;

    // ---- main memory (Table II: 50 ns, DDR3-1600, 2 ch) ---------------
    Tick memLatency = nsToTicks(50);
    std::uint32_t memChannels = 2;
    double memChannelGBps = 12.8;
    bool infiniteMemBandwidth = false; //!< Fig. 2 idealization

    // ---- directories (Table II) ---------------------------------------
    Tick globalDirLatency = 10;
    Tick localDirLatency = 7;
    /** Sparse directory over-provisioning factor (2x as in Opteron). */
    std::uint32_t sparseDirFactor = 2;
    std::uint32_t sparseDirWays = 32;

    // ---- interconnect (Table II: 20 ns/hop, 25.6 GB/s links,
    //      16 B control / 80 B data packets) ----------------------------
    Tick hopLatency = nsToTicks(20);
    double linkGBps = 25.6;
    std::uint32_t controlPacketBytes = 16;
    std::uint32_t dataPacketBytes = 80;
    bool infiniteLinkBandwidth = false; //!< Fig. 2 idealization
    bool zeroHopLatency = false;        //!< Fig. 2 idealization

    // ---- core (Table II: 1 IPC, 32-entry store queue, TSO) ------------
    std::uint32_t storeQueueEntries = 32;

    /**
     * Store write buffer in front of each home memory controller
     * (snoopy family only): writebacks and reflective writes queue
     * here and drain one per memLatency. 0 disables the buffer --
     * writes post to the controller immediately, which is the
     * pre-buffer behavior bit for bit.
     */
    std::uint32_t storeWriteBufferDepth = 0;

    // ---- C3D options ---------------------------------------------------
    /** §IV-D: elide invalidation broadcasts for private pages. */
    bool tlbPageClassification = false;
    /** Cycles charged for an OS TLB-classification trap. */
    Tick tlbTrapPenalty = 300;

    // ---- derived helpers ----------------------------------------------
    std::uint32_t totalCores() const { return numSockets * coresPerSocket; }
    Topology
    topology() const
    {
        return numSockets <= 2 ? Topology::PointToPoint : Topology::Ring;
    }
    bool dirtyDramCache() const
    {
        return design == Design::Snoopy || design == Design::FullDir;
    }
    bool cleanDramCache() const
    {
        return design == Design::C3D || design == Design::C3DFullDir;
    }
    bool designUsesDramCache() const
    {
        return design != Design::Baseline && hasDramCache;
    }

    /**
     * Return a copy with all capacities divided by @p factor.
     *
     * Workload footprints must be scaled by the same factor (the
     * workload library does this automatically when given the same
     * scale) so that capacity ratios -- and therefore hit rates --
     * are preserved.
     */
    SystemConfig
    scaled(std::uint32_t factor) const
    {
        SystemConfig c = *this;
        c.l1Bytes = std::max<std::uint64_t>(l1Bytes / factor, 4096);
        c.llcBytes = std::max<std::uint64_t>(llcBytes / factor, 65536);
        c.dramCacheBytes =
            std::max<std::uint64_t>(dramCacheBytes / factor, 1 << 20);
        return c;
    }
};

} // namespace c3d

#endif // C3DSIM_COMMON_CONFIG_HH
