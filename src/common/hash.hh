/**
 * @file
 * FNV-1a 64-bit hashing, shared by every identity digest in c3dsim
 * (sweep-grid fingerprints, trace-file content hashes). One
 * implementation: the constants must never diverge between the
 * producers, or resume/merge identity checks would silently stop
 * matching.
 */

#ifndef C3DSIM_COMMON_HASH_HH
#define C3DSIM_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>

namespace c3d
{

constexpr std::uint64_t Fnv1aOffset = 14695981039346656037ull;
constexpr std::uint64_t Fnv1aPrime = 1099511628211ull;

/** Fold one byte into an FNV-1a 64 state. */
constexpr std::uint64_t
fnv1aByte(std::uint64_t h, unsigned char b)
{
    return (h ^ b) * Fnv1aPrime;
}

/** Fold @p n bytes into an FNV-1a 64 state. */
inline std::uint64_t
fnv1aBytes(std::uint64_t h, const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i)
        h = fnv1aByte(h, p[i]);
    return h;
}

} // namespace c3d

#endif // C3DSIM_COMMON_HASH_HH
