#include "common/log.hh"

#include <atomic>
#include <cstdint>
#include <exception>

#include "common/sim_error.hh"

namespace c3d
{

namespace
{
std::atomic<bool> quietFlag{false};
std::atomic<std::uint64_t> watchAddr{~0ull};
} // namespace

void
setWatchBlock(std::uint64_t block_addr)
{
    watchAddr.store(block_addr == ~0ull
                        ? block_addr
                        : block_addr & ~0x3full);
}

std::uint64_t
watchBlock()
{
    return watchAddr.load();
}

bool
watchingBlock(std::uint64_t addr)
{
    const std::uint64_t w = watchAddr.load();
    return w != ~0ull && (addr & ~0x3full) == w;
}

void
watchTrace(std::uint64_t now, const char *site, const char *fmt, ...)
{
    std::fprintf(stderr, "watch @%llu %s: ",
                 static_cast<unsigned long long>(now), site);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
isQuiet()
{
    return quietFlag.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    char msg[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    va_end(args);

    // Raise-time context from the thread-local scopes (see
    // common/sim_error.hh): the executing queue's simulated clock
    // and the sweep row this thread is running.
    const std::uint64_t *tick = detail::tickSource();
    const char *identity = detail::errorIdentity();

    // Inside a containment scope the catcher owns reporting; outside
    // one, print before throwing so the resulting std::terminate is
    // never silent.
    if (!identity)
        std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);

    throw SimError(file, line, msg, tick ? *tick : 0,
                   tick != nullptr, identity ? identity : "");
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    std::fprintf(stderr, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace detail

} // namespace c3d
