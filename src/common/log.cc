#include "common/log.hh"

#include <atomic>
#include <cstdint>
#include <exception>

namespace c3d
{

namespace
{
std::atomic<bool> quietFlag{false};
std::atomic<std::uint64_t> watchAddr{~0ull};
} // namespace

void
setWatchBlock(std::uint64_t block_addr)
{
    watchAddr.store(block_addr == ~0ull
                        ? block_addr
                        : block_addr & ~0x3full);
}

std::uint64_t
watchBlock()
{
    return watchAddr.load();
}

bool
watchingBlock(std::uint64_t addr)
{
    const std::uint64_t w = watchAddr.load();
    return w != ~0ull && (addr & ~0x3full) == w;
}

void
watchTrace(std::uint64_t now, const char *site, const char *fmt, ...)
{
    std::fprintf(stderr, "watch @%llu %s: ",
                 static_cast<unsigned long long>(now), site);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
isQuiet()
{
    return quietFlag.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    std::fprintf(stderr, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace detail

} // namespace c3d
