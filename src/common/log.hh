/**
 * @file
 * Error and status reporting, after gem5's logging conventions.
 *
 * panic()  - internal simulator invariant violated (a c3dsim bug);
 *            throws a catchable SimError (common/sim_error.hh) so a
 *            sweep can contain the failure to its row; uncaught it
 *            still terminates the process.
 * fatal()  - the user asked for something impossible (bad config);
 *            exits with status 1.
 * warn()   - something is suspicious but simulation can continue.
 * inform() - status messages.
 */

#ifndef C3DSIM_COMMON_LOG_HH
#define C3DSIM_COMMON_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace c3d
{

/** Severity of a log message. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
};

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

} // namespace detail

/** Silence warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);
bool isQuiet();

/**
 * Debug watchpoint: when set to a block address, instrumented sites
 * (fills, invalidations, directory transitions) print a trace line
 * whenever they touch that block. Invalid (all-ones) disables.
 */
void setWatchBlock(std::uint64_t block_addr);
std::uint64_t watchBlock();
bool watchingBlock(std::uint64_t addr);
void watchTrace(std::uint64_t now, const char *site, const char *fmt,
                ...);

} // namespace c3d

#define c3d_panic(...) \
    ::c3d::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define c3d_fatal(...) \
    ::c3d::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define c3d_warn(...) ::c3d::detail::warnImpl(__VA_ARGS__)

#define c3d_inform(...) ::c3d::detail::informImpl(__VA_ARGS__)

/** Assert a simulator invariant; violations are c3dsim bugs. */
#define c3d_assert(cond, ...)                                    \
    do {                                                         \
        if (!(cond)) {                                           \
            ::c3d::detail::panicImpl(__FILE__, __LINE__,         \
                                     "assertion '" #cond         \
                                     "' failed: " __VA_ARGS__);  \
        }                                                        \
    } while (0)

#endif // C3DSIM_COMMON_LOG_HH
