/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * c3dsim must be exactly reproducible across runs and platforms, so we
 * carry our own small PRNG (xoshiro256**) instead of relying on
 * std::mt19937 distributions whose implementations may differ.
 */

#ifndef C3DSIM_COMMON_RNG_HH
#define C3DSIM_COMMON_RNG_HH

#include <cstdint>

namespace c3d
{

/** xoshiro256** by Blackman & Vigna; public-domain algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method (biased tail rejected).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            std::uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace c3d

#endif // C3DSIM_COMMON_RNG_HH
