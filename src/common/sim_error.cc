#include "common/sim_error.hh"

#include <cinttypes>
#include <cstdio>

namespace c3d
{

namespace
{

thread_local const std::uint64_t *tlsTickSource = nullptr;
thread_local const char *tlsErrorIdentity = nullptr;

} // namespace

namespace detail
{

const std::uint64_t *
tickSource()
{
    return tlsTickSource;
}

void
setTickSource(const std::uint64_t *now)
{
    tlsTickSource = now;
}

const char *
errorIdentity()
{
    return tlsErrorIdentity;
}

void
setErrorIdentity(const char *identity)
{
    tlsErrorIdentity = identity;
}

} // namespace detail

SimError::SimError(std::string file, int line, std::string message,
                   std::uint64_t tick, bool tick_known,
                   std::string identity)
    : srcFile(std::move(file)), srcLine(line), msg(std::move(message)),
      simTick(tick), hasTick(tick_known),
      rowIdentity(std::move(identity))
{
    srcLocation = srcFile + ":" + std::to_string(srcLine);
    formatted = srcLocation + ": " + msg;
    if (hasTick) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), " [tick %" PRIu64 "]",
                      simTick);
        formatted += buf;
    }
    if (!rowIdentity.empty())
        formatted += " [row " + rowIdentity + "]";
}

} // namespace c3d
