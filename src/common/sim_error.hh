/**
 * @file
 * Structured, catchable simulator errors.
 *
 * c3d_panic / c3d_assert used to abort() the whole process, which
 * turns one bad grid point into the loss of an entire sharded sweep.
 * They now throw SimError: an exception carrying the panic site
 * (file:line), the simulated tick at which it was raised, and the
 * identity key of the sweep row being executed -- everything a
 * failure record needs to be diagnosable and deterministic.
 *
 * The tick and identity are not passed by the panic sites (most of
 * which predate this layer and know nothing about rows); they are
 * picked up from thread-local context published by the layers that
 * do know:
 *
 *  - EventQueue::run()/step() publish the executing queue's clock
 *    via TickSourceScope, so any panic raised from inside an event
 *    callback is stamped with the simulated time of that event.
 *  - SweepEngine's workers publish the row identity key via
 *    ErrorIdentityScope around each run.
 *
 * Uncaught, a SimError still terminates the process (std::terminate
 * -> abort), preserving the old visible behavior for tools and tests
 * that do not opt into containment. When no identity context is
 * active, the panic site also prints its message to stderr before
 * throwing, so a crash-to-terminate is never silent.
 */

#ifndef C3DSIM_COMMON_SIM_ERROR_HH
#define C3DSIM_COMMON_SIM_ERROR_HH

#include <cstdint>
#include <exception>
#include <string>

namespace c3d
{

/** A contained simulator invariant violation (see file comment). */
class SimError : public std::exception
{
  public:
    SimError(std::string file, int line, std::string message,
             std::uint64_t tick, bool tick_known,
             std::string identity);

    /** Full formatted diagnostic (location, message, tick, row). */
    const char *what() const noexcept override
    {
        return formatted.c_str();
    }

    const std::string &file() const { return srcFile; }
    int line() const { return srcLine; }
    /** "file:line" of the panic site. */
    const std::string &location() const { return srcLocation; }
    /** The panic message alone (no location/tick/row decoration). */
    const std::string &message() const { return msg; }

    /** Simulated tick at raise time; valid when tickKnown(). */
    std::uint64_t tick() const { return simTick; }
    bool tickKnown() const { return hasTick; }

    /** Sweep-row identity key; empty outside a sweep worker. */
    const std::string &identity() const { return rowIdentity; }

  private:
    std::string srcFile;
    int srcLine;
    std::string srcLocation;
    std::string msg;
    std::uint64_t simTick;
    bool hasTick;
    std::string rowIdentity;
    std::string formatted;
};

namespace detail
{

/** Thread-local simulated-clock source consulted at raise time. */
const std::uint64_t *tickSource();
void setTickSource(const std::uint64_t *now);

/** Thread-local row-identity string consulted at raise time. */
const char *errorIdentity();
void setErrorIdentity(const char *identity);

} // namespace detail

/**
 * RAII: publish @p now as this thread's simulated-clock source for
 * the scope's lifetime (nesting restores the previous source).
 */
class TickSourceScope
{
  public:
    explicit TickSourceScope(const std::uint64_t *now)
        : prev(detail::tickSource())
    {
        detail::setTickSource(now);
    }
    ~TickSourceScope() { detail::setTickSource(prev); }

    TickSourceScope(const TickSourceScope &) = delete;
    TickSourceScope &operator=(const TickSourceScope &) = delete;

  private:
    const std::uint64_t *prev;
};

/**
 * RAII: declare the sweep-row identity this thread's errors belong
 * to. @p identity is borrowed, not copied -- it must outlive the
 * scope.
 */
class ErrorIdentityScope
{
  public:
    explicit ErrorIdentityScope(const char *identity)
        : prev(detail::errorIdentity())
    {
        detail::setErrorIdentity(identity);
    }
    ~ErrorIdentityScope() { detail::setErrorIdentity(prev); }

    ErrorIdentityScope(const ErrorIdentityScope &) = delete;
    ErrorIdentityScope &operator=(const ErrorIdentityScope &) = delete;

  private:
    const char *prev;
};

} // namespace c3d

#endif // C3DSIM_COMMON_SIM_ERROR_HH
