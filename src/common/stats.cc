#include "common/stats.hh"

#include <iomanip>

namespace c3d
{

void
Counter::init(StatGroup *group, std::string name, std::string desc)
{
    statName = std::move(name);
    statDesc = std::move(desc);
    if (group)
        group->addCounter(this);
}

void
Histogram::init(StatGroup *group, std::string name, std::string desc)
{
    statName = std::move(name);
    statDesc = std::move(desc);
    if (group)
        group->addHistogram(this);
}

std::uint64_t
StatGroup::valueOf(const std::string &name) const
{
    for (const auto *c : counters) {
        if (c->name() == name)
            return c->value();
    }
    c3d_fatal("no counter named '%s' in stat group '%s'", name.c_str(),
              groupName.c_str());
}

bool
StatGroup::has(const std::string &name) const
{
    for (const auto *c : counters) {
        if (c->name() == name)
            return true;
    }
    return false;
}

std::uint64_t
StatGroup::sumMatching(const std::string &substring) const
{
    std::uint64_t sum = 0;
    for (const auto *c : counters) {
        if (c->name().find(substring) != std::string::npos)
            sum += c->value();
    }
    return sum;
}

const Histogram *
StatGroup::histogramOf(const std::string &name) const
{
    for (const auto *h : histograms) {
        if (h->name() == name)
            return h;
    }
    return nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *c : counters) {
        os << std::left << std::setw(48) << c->name() << " "
           << std::right << std::setw(16) << c->value();
        if (!c->desc().empty())
            os << "  # " << c->desc();
        os << "\n";
    }
}

} // namespace c3d
