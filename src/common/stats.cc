#include "common/stats.hh"

#include <iomanip>

namespace c3d
{

void
Counter::init(StatGroup *group, std::string name, std::string desc)
{
    statName = std::move(name);
    statDesc = std::move(desc);
    if (group)
        group->addCounter(this);
}

void
Histogram::init(StatGroup *group, std::string name, std::string desc)
{
    statName = std::move(name);
    statDesc = std::move(desc);
    if (group)
        group->addHistogram(this);
}

std::uint64_t
Histogram::percentile(double p) const
{
    const std::uint64_t nsamples = count();
    const std::uint64_t vmin = min();
    const std::uint64_t vmax = max();
    if (nsamples == 0)
        return 0;
    if (p <= 0.0)
        return vmin;
    if (p >= 100.0)
        return vmax;

    // Rank of the requested percentile, 1-based (nearest-rank
    // definition): the smallest rank whose cumulative share of the
    // samples reaches p%. Computed without libm so every platform
    // agrees on the answer.
    std::uint64_t rank =
        static_cast<std::uint64_t>(p / 100.0 *
                                   static_cast<double>(nsamples));
    if (static_cast<double>(rank) * 100.0 <
        p * static_cast<double>(nsamples))
        ++rank;
    if (rank < 1)
        rank = 1;
    if (rank > nsamples)
        rank = nsamples;

    std::uint64_t seen = 0;
    for (unsigned b = 0; b < 64; ++b) {
        const std::uint64_t here = bucket(b);
        if (here == 0 || seen + here < rank) {
            seen += here;
            continue;
        }
        // Bucket b covers [2^(b-1), 2^b - 1] (bucket 0 is {0}).
        // Interpolate by the rank's position within the bucket.
        if (b == 0)
            return vmin; // all-zero samples: min() == 0
        const std::uint64_t lo = std::uint64_t(1) << (b - 1);
        const std::uint64_t hi =
            b >= 64 ? ~std::uint64_t(0) : (std::uint64_t(1) << b) - 1;
        const std::uint64_t pos = rank - seen - 1; // 0-based in bucket
        std::uint64_t value = lo;
        if (here > 1)
            value = lo + (hi - lo) / (here - 1) * pos;
        if (value < vmin)
            value = vmin;
        if (value > vmax)
            value = vmax;
        return value;
    }
    return vmax; // unreachable: ranks always land in a bucket
}

std::uint64_t
StatGroup::valueOf(const std::string &name) const
{
    for (const auto *c : counters) {
        if (c->name() == name)
            return c->value();
    }
    c3d_fatal("no counter named '%s' in stat group '%s'", name.c_str(),
              groupName.c_str());
}

bool
StatGroup::has(const std::string &name) const
{
    for (const auto *c : counters) {
        if (c->name() == name)
            return true;
    }
    return false;
}

std::uint64_t
StatGroup::sumMatching(const std::string &substring) const
{
    std::uint64_t sum = 0;
    for (const auto *c : counters) {
        if (c->name().find(substring) != std::string::npos)
            sum += c->value();
    }
    return sum;
}

const Histogram *
StatGroup::histogramOf(const std::string &name) const
{
    for (const auto *h : histograms) {
        if (h->name() == name)
            return h;
    }
    return nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *c : counters) {
        os << std::left << std::setw(48) << c->name() << " "
           << std::right << std::setw(16) << c->value();
        if (!c->desc().empty())
            os << "  # " << c->desc();
        os << "\n";
    }
}

} // namespace c3d
