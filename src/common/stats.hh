/**
 * @file
 * Lightweight statistics framework.
 *
 * Follows the spirit of gem5's stats package at a fraction of the
 * complexity: named scalar counters and histograms register themselves
 * with a StatGroup; groups can be dumped, reset (for warm-up), and
 * queried by name from harness code.
 */

#ifndef C3DSIM_COMMON_STATS_HH
#define C3DSIM_COMMON_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace c3d
{

class StatGroup;

/**
 * A named 64-bit event counter.
 *
 * Increments are relaxed atomics so stats can be bumped from any
 * kernel thread (the parallel per-socket kernel increments shared
 * protocol counters from several workers). Addition commutes, so the
 * final value is independent of thread interleaving — the property
 * the byte-identity harness relies on. Counters are movable (not
 * copyable) because several components hold them in vectors sized at
 * construction time.
 */
class Counter
{
  public:
    Counter() = default;

    Counter(Counter &&other) noexcept
        : statName(std::move(other.statName)),
          statDesc(std::move(other.statDesc)),
          count(other.count.load(std::memory_order_relaxed))
    {}

    Counter &
    operator=(Counter &&other) noexcept
    {
        statName = std::move(other.statName);
        statDesc = std::move(other.statDesc);
        count.store(other.count.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        return *this;
    }

    /** Register this counter under @p name in @p group. */
    void init(StatGroup *group, std::string name, std::string desc = "");

    Counter &
    operator++()
    {
        count.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    Counter &
    operator+=(std::uint64_t n)
    {
        count.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t
    value() const
    {
        return count.load(std::memory_order_relaxed);
    }

    void reset() { count.store(0, std::memory_order_relaxed); }
    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

  private:
    std::string statName;
    std::string statDesc;
    std::atomic<std::uint64_t> count{0};
};

/**
 * A histogram with fixed power-of-two bucketing of sample values.
 *
 * Like Counter, sampling uses relaxed atomics (bucket counts and sums
 * commute; min/max converge to the same extremum under any
 * interleaving via CAS loops), so the aggregate is deterministic no
 * matter which kernel thread recorded each sample.
 */
class Histogram
{
  public:
    Histogram() = default;

    Histogram(Histogram &&other) noexcept
        : statName(std::move(other.statName)),
          statDesc(std::move(other.statDesc)),
          samples(other.samples.load(std::memory_order_relaxed)),
          total(other.total.load(std::memory_order_relaxed)),
          minValue(other.minValue.load(std::memory_order_relaxed)),
          maxValue(other.maxValue.load(std::memory_order_relaxed))
    {
        for (std::size_t b = 0; b < buckets.size(); ++b)
            buckets[b].store(
                other.buckets[b].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    }

    void init(StatGroup *group, std::string name, std::string desc = "");

    void
    sample(std::uint64_t value)
    {
        samples.fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(value, std::memory_order_relaxed);
        std::uint64_t lo = minValue.load(std::memory_order_relaxed);
        while (value < lo &&
               !minValue.compare_exchange_weak(
                   lo, value, std::memory_order_relaxed)) {
        }
        std::uint64_t hi = maxValue.load(std::memory_order_relaxed);
        while (value > hi &&
               !maxValue.compare_exchange_weak(
                   hi, value, std::memory_order_relaxed)) {
        }
        buckets[bucketOf(value)].fetch_add(1,
                                           std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return samples.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return total.load(std::memory_order_relaxed);
    }

    std::uint64_t
    min() const
    {
        return count() ? minValue.load(std::memory_order_relaxed) : 0;
    }

    std::uint64_t
    max() const
    {
        return maxValue.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        const std::uint64_t n = count();
        return n ? static_cast<double>(sum()) / n : 0.0;
    }

    /** Count of samples in power-of-two bucket @p idx. */
    std::uint64_t
    bucket(unsigned idx) const
    {
        return buckets.at(idx).load(std::memory_order_relaxed);
    }

    /**
     * Approximate p-th percentile of the sampled values.
     *
     * Resolution is the power-of-two bucketing: the result is the
     * rank's bucket lower bound, linearly interpolated across the
     * bucket and clamped to [min(), max()], so a single-sample
     * histogram returns exactly that sample. Defined (never NaN)
     * for every input: an empty histogram returns 0, p <= 0 returns
     * min(), and p >= 100 returns max(). Integer arithmetic only —
     * the answer is bit-identical across platforms.
     */
    std::uint64_t percentile(double p) const;

    void
    reset()
    {
        samples.store(0, std::memory_order_relaxed);
        total.store(0, std::memory_order_relaxed);
        minValue.store(~std::uint64_t(0), std::memory_order_relaxed);
        maxValue.store(0, std::memory_order_relaxed);
        for (auto &b : buckets)
            b.store(0, std::memory_order_relaxed);
    }

    const std::string &name() const { return statName; }

  private:
    static unsigned
    bucketOf(std::uint64_t value)
    {
        if (value == 0)
            return 0;
        return 64 - __builtin_clzll(value);
    }

    std::string statName;
    std::string statDesc;
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> total{0};
    // Sentinel: the first sample always wins the CAS race, so the
    // min is interleaving-independent. min() masks the sentinel.
    std::atomic<std::uint64_t> minValue{~std::uint64_t(0)};
    std::atomic<std::uint64_t> maxValue{0};
    std::array<std::atomic<std::uint64_t>, 64> buckets{};
};

/**
 * A registry of counters and histograms with a hierarchical name.
 *
 * The group does not own the stats; objects embed their stats and
 * register them at init time (so stats live exactly as long as the
 * simulated object that produces them).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : groupName(std::move(name))
    {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void
    addCounter(Counter *c)
    {
        counters.push_back(c);
    }

    void
    addHistogram(Histogram *h)
    {
        histograms.push_back(h);
    }

    /** Merge another group's registrations under this one. */
    void
    adopt(StatGroup &child)
    {
        for (auto *c : child.counters)
            counters.push_back(c);
        for (auto *h : child.histograms)
            histograms.push_back(h);
    }

    /** Reset every registered stat (end of warm-up). */
    void
    resetAll()
    {
        for (auto *c : counters)
            c->reset();
        for (auto *h : histograms)
            h->reset();
    }

    /** Value of the counter registered as @p name; fatal if absent. */
    std::uint64_t valueOf(const std::string &name) const;

    /** True if a counter named @p name is registered. */
    bool has(const std::string &name) const;

    /** Sum of all counters whose name contains @p substring. */
    std::uint64_t sumMatching(const std::string &substring) const;

    /** Dump "name value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Histogram registered as @p name; nullptr when absent. */
    const Histogram *histogramOf(const std::string &name) const;

    const std::string &name() const { return groupName; }
    const std::vector<Counter *> &allCounters() const { return counters; }
    const std::vector<Histogram *> &allHistograms() const
    {
        return histograms;
    }

  private:
    std::string groupName;
    std::vector<Counter *> counters;
    std::vector<Histogram *> histograms;
};

} // namespace c3d

#endif // C3DSIM_COMMON_STATS_HH
