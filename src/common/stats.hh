/**
 * @file
 * Lightweight statistics framework.
 *
 * Follows the spirit of gem5's stats package at a fraction of the
 * complexity: named scalar counters and histograms register themselves
 * with a StatGroup; groups can be dumped, reset (for warm-up), and
 * queried by name from harness code.
 */

#ifndef C3DSIM_COMMON_STATS_HH
#define C3DSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace c3d
{

class StatGroup;

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Register this counter under @p name in @p group. */
    void init(StatGroup *group, std::string name, std::string desc = "");

    Counter &operator++() { ++count; return *this; }
    Counter &operator+=(std::uint64_t n) { count += n; return *this; }

    std::uint64_t value() const { return count; }
    void reset() { count = 0; }
    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

  private:
    std::string statName;
    std::string statDesc;
    std::uint64_t count = 0;
};

/** A histogram with fixed power-of-two bucketing of sample values. */
class Histogram
{
  public:
    Histogram() : buckets(64, 0) {}

    void init(StatGroup *group, std::string name, std::string desc = "");

    void
    sample(std::uint64_t value)
    {
        ++samples;
        total += value;
        if (samples == 1 || value < minValue)
            minValue = value;
        if (value > maxValue)
            maxValue = value;
        ++buckets[bucketOf(value)];
    }

    std::uint64_t count() const { return samples; }
    std::uint64_t sum() const { return total; }
    std::uint64_t min() const { return samples ? minValue : 0; }
    std::uint64_t max() const { return maxValue; }

    double
    mean() const
    {
        return samples ? static_cast<double>(total) / samples : 0.0;
    }

    /** Count of samples in power-of-two bucket @p idx. */
    std::uint64_t bucket(unsigned idx) const { return buckets.at(idx); }

    /**
     * Approximate p-th percentile of the sampled values.
     *
     * Resolution is the power-of-two bucketing: the result is the
     * rank's bucket lower bound, linearly interpolated across the
     * bucket and clamped to [min(), max()], so a single-sample
     * histogram returns exactly that sample. Defined (never NaN)
     * for every input: an empty histogram returns 0, p <= 0 returns
     * min(), and p >= 100 returns max(). Integer arithmetic only —
     * the answer is bit-identical across platforms.
     */
    std::uint64_t percentile(double p) const;

    void
    reset()
    {
        samples = total = maxValue = 0;
        minValue = 0;
        buckets.assign(64, 0);
    }

    const std::string &name() const { return statName; }

  private:
    static unsigned
    bucketOf(std::uint64_t value)
    {
        if (value == 0)
            return 0;
        return 64 - __builtin_clzll(value);
    }

    std::string statName;
    std::string statDesc;
    std::uint64_t samples = 0;
    std::uint64_t total = 0;
    std::uint64_t minValue = 0;
    std::uint64_t maxValue = 0;
    std::vector<std::uint64_t> buckets;
};

/**
 * A registry of counters and histograms with a hierarchical name.
 *
 * The group does not own the stats; objects embed their stats and
 * register them at init time (so stats live exactly as long as the
 * simulated object that produces them).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : groupName(std::move(name))
    {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void
    addCounter(Counter *c)
    {
        counters.push_back(c);
    }

    void
    addHistogram(Histogram *h)
    {
        histograms.push_back(h);
    }

    /** Merge another group's registrations under this one. */
    void
    adopt(StatGroup &child)
    {
        for (auto *c : child.counters)
            counters.push_back(c);
        for (auto *h : child.histograms)
            histograms.push_back(h);
    }

    /** Reset every registered stat (end of warm-up). */
    void
    resetAll()
    {
        for (auto *c : counters)
            c->reset();
        for (auto *h : histograms)
            h->reset();
    }

    /** Value of the counter registered as @p name; fatal if absent. */
    std::uint64_t valueOf(const std::string &name) const;

    /** True if a counter named @p name is registered. */
    bool has(const std::string &name) const;

    /** Sum of all counters whose name contains @p substring. */
    std::uint64_t sumMatching(const std::string &substring) const;

    /** Dump "name value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Histogram registered as @p name; nullptr when absent. */
    const Histogram *histogramOf(const std::string &name) const;

    const std::string &name() const { return groupName; }
    const std::vector<Counter *> &allCounters() const { return counters; }
    const std::vector<Histogram *> &allHistograms() const
    {
        return histograms;
    }

  private:
    std::string groupName;
    std::vector<Counter *> counters;
    std::vector<Histogram *> histograms;
};

} // namespace c3d

#endif // C3DSIM_COMMON_STATS_HH
