/**
 * @file
 * Fundamental scalar types and unit helpers used across c3dsim.
 *
 * The simulator counts time in CPU cycles of a 3 GHz clock (the paper's
 * core frequency, Table II). All nanosecond-denominated latencies from
 * the paper convert exactly: 1 ns == 3 cycles.
 */

#ifndef C3DSIM_COMMON_TYPES_HH
#define C3DSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace c3d
{

/** Simulated time, in CPU cycles @ 3 GHz. */
using Tick = std::uint64_t;

/** A physical (simulated) byte address. */
using Addr = std::uint64_t;

/** Core / thread identifier, unique across the machine. */
using CoreId = std::uint32_t;

/** Socket identifier. */
using SocketId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

/** Sentinel socket id. */
constexpr SocketId InvalidSocket = static_cast<SocketId>(-1);

/** Cache block size in bytes (Table II: 64 B lines). */
constexpr std::uint32_t BlockBytes = 64;
constexpr std::uint32_t BlockShift = 6;

/** OS page size in bytes. */
constexpr std::uint32_t PageBytes = 4096;
constexpr std::uint32_t PageShift = 12;

/** Core clock in GHz; ns-to-cycle conversion factor. */
constexpr std::uint32_t CyclesPerNs = 3;

/** Convert a latency in nanoseconds to ticks (cycles @ 3 GHz). */
constexpr Tick
nsToTicks(std::uint64_t ns)
{
    return ns * CyclesPerNs;
}

/** Convert ticks to (truncated) nanoseconds. */
constexpr std::uint64_t
ticksToNs(Tick t)
{
    return t / CyclesPerNs;
}

/** Align an address down to its cache-block base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(BlockBytes - 1);
}

/** Cache-block number of an address. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> BlockShift;
}

/** Page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> PageShift;
}

/** Align an address down to its page base. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(PageBytes - 1);
}

/** Memory reference kind carried by trace records. */
enum class MemOp : std::uint8_t
{
    Read,
    Write,
};

/**
 * Bytes-per-tick bandwidth representation.
 *
 * Bandwidths in the paper are given in GB/s. At 3 GHz,
 * X GB/s == X/3 bytes per cycle. To keep integral math we store
 * bandwidth as (bytes << FixedShift) per tick.
 */
class Bandwidth
{
  public:
    static constexpr std::uint32_t FixedShift = 16;

    Bandwidth() : bytesPerTickFp(0) {}

    /** Construct from GB/s (1 GB == 1e9 bytes). */
    static Bandwidth
    fromGBps(double gbps)
    {
        Bandwidth b;
        const double bytes_per_ns = gbps; // 1 GB/s == 1 byte/ns
        const double bytes_per_tick = bytes_per_ns / CyclesPerNs;
        b.bytesPerTickFp = static_cast<std::uint64_t>(
            bytes_per_tick * (1ull << FixedShift));
        return b;
    }

    bool valid() const { return bytesPerTickFp != 0; }

    /** Ticks needed to serialize @p bytes at this bandwidth. */
    Tick
    serializationTicks(std::uint64_t bytes) const
    {
        if (!valid())
            return 0; // infinite bandwidth
        const std::uint64_t num = bytes << FixedShift;
        return (num + bytesPerTickFp - 1) / bytesPerTickFp;
    }

    double
    gbps() const
    {
        return static_cast<double>(bytesPerTickFp) /
            (1ull << FixedShift) * CyclesPerNs;
    }

  private:
    std::uint64_t bytesPerTickFp;
};

} // namespace c3d

#endif // C3DSIM_COMMON_TYPES_HH
