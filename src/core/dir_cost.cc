#include "core/dir_cost.hh"

#include "coherence/directory.hh"

namespace c3d
{

std::uint64_t
directoryBytesFor(std::uint64_t covered_bytes,
                  std::uint32_t provisioning)
{
    return sparseDirectoryBytes(covered_bytes, provisioning);
}

std::vector<DirCostRow>
directoryCostTable(std::uint64_t llc_bytes,
                   std::uint64_t dram_cache_bytes)
{
    std::vector<DirCostRow> rows;
    const std::uint64_t mb256 = 256ull << 20;

    rows.push_back({"inclusive 1x (256MB DRAM$)", mb256, 1,
                    directoryBytesFor(mb256, 1)});
    rows.push_back({"inclusive 2x (256MB DRAM$)", mb256, 2,
                    directoryBytesFor(mb256, 2)});
    rows.push_back({"inclusive 1x (DRAM$)", dram_cache_bytes, 1,
                    directoryBytesFor(dram_cache_bytes, 1)});
    rows.push_back({"inclusive 2x (DRAM$)", dram_cache_bytes, 2,
                    directoryBytesFor(dram_cache_bytes, 2)});
    rows.push_back({"c3d (LLC only) 2x", llc_bytes, 2,
                    directoryBytesFor(llc_bytes, 2)});
    return rows;
}

} // namespace c3d
