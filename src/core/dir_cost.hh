/**
 * @file
 * Directory storage-cost analysis (§III-B).
 *
 * Quantifies the paper's argument that an inclusive directory over
 * GB-scale DRAM caches is unaffordable: a minimally-provisioned (1x)
 * sparse directory for a 256 MB cache already needs 16 MB per socket,
 * 2x provisioning (AMD Magny-Cours style) doubles it, and a 1 GB
 * cache at 2x reaches 128 MB -- versus C3D's directory, which only
 * covers on-chip capacity.
 */

#ifndef C3DSIM_CORE_DIR_COST_HH
#define C3DSIM_CORE_DIR_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"

namespace c3d
{

/** One row of the storage-cost comparison. */
struct DirCostRow
{
    std::string design;
    std::uint64_t coveredBytes;   //!< cache capacity the dir tracks
    std::uint32_t provisioning;   //!< sparse over-provisioning factor
    std::uint64_t directoryBytes; //!< per-socket storage cost
};

/**
 * Build the §III-B cost table for a machine with @p llc_bytes of LLC
 * and @p dram_cache_bytes of DRAM cache per socket. Rows cover the
 * naive inclusive design at 1x and 2x for both 256 MB and the
 * configured DRAM-cache size, plus C3D's LLC-only directory.
 */
std::vector<DirCostRow> directoryCostTable(std::uint64_t llc_bytes,
                                           std::uint64_t
                                               dram_cache_bytes);

/** Per-socket sparse-directory bytes for @p covered capacity. */
std::uint64_t directoryBytesFor(std::uint64_t covered_bytes,
                                std::uint32_t provisioning);

} // namespace c3d

#endif // C3DSIM_CORE_DIR_COST_HH
