/**
 * @file
 * Simulated thread barrier.
 *
 * Iterative parallel kernels (the PARSEC workloads the paper
 * evaluates) synchronize at barriers every iteration, which bounds
 * the skew between threads. Without this, per-core placement and
 * caching feedback loops let fast cores run away from slow ones and
 * the completion-time metric degenerates to the unluckiest core.
 */

#ifndef C3DSIM_CPU_BARRIER_HH
#define C3DSIM_CPU_BARRIER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"

namespace c3d
{

/** A reusable N-party rendezvous. */
class Barrier
{
  public:
    void
    init(std::uint32_t parties, StatGroup *stats,
         const std::string &name)
    {
        numParties = parties;
        episodes.init(stats, name + ".episodes",
                      "barrier episodes completed");
    }

    std::uint32_t parties() const { return numParties; }

    /** A party may drop out permanently (finished its quota). */
    void
    retire()
    {
        c3d_assert(numParties > 0, "retire with no parties");
        --numParties;
        if (arrived >= numParties)
            release();
    }

    /**
     * Arrive at the barrier; @p resume runs (inline, at the last
     * arriver's tick) when all remaining parties have arrived.
     */
    void
    arrive(std::function<void()> resume)
    {
        waiting.push_back(std::move(resume));
        ++arrived;
        if (arrived >= numParties)
            release();
    }

    std::uint32_t waitingCount() const { return arrived; }

  private:
    void
    release()
    {
        ++episodes;
        arrived = 0;
        std::vector<std::function<void()>> ready;
        ready.swap(waiting);
        for (auto &fn : ready)
            fn();
    }

    std::uint32_t numParties = 0;
    std::uint32_t arrived = 0;
    std::vector<std::function<void()>> waiting;
    Counter episodes;
};

} // namespace c3d

#endif // C3DSIM_CPU_BARRIER_HH
