/**
 * @file
 * Simulated thread barrier.
 *
 * Iterative parallel kernels (the PARSEC workloads the paper
 * evaluates) synchronize at barriers every iteration, which bounds
 * the skew between threads. Without this, per-core placement and
 * caching feedback loops let fast cores run away from slow ones and
 * the completion-time metric degenerates to the unluckiest core.
 *
 * Two release disciplines:
 *
 * - Legacy (sequential kernel): the last arriver releases everyone
 *   inline at its own tick.
 * - Quantized (multi-queue kernel): arrivals from different kernel
 *   threads are collected under a mutex; the cell executor's
 *   single-threaded barrier hook releases a complete episode at the
 *   next cell boundary, scheduling each core's resume into that
 *   core's own queue in ascending core order. The release tick is
 *   quantized up to the boundary, but the decision (who was waiting
 *   by the end of a cell) depends only on deterministic event ticks,
 *   so the outcome is identical for any worker count.
 */

#ifndef C3DSIM_CPU_BARRIER_HH
#define C3DSIM_CPU_BARRIER_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** A reusable N-party rendezvous. */
class Barrier
{
  public:
    void
    init(std::uint32_t parties, StatGroup *stats,
         const std::string &name)
    {
        numParties = parties;
        episodes.init(stats, name + ".episodes",
                      "barrier episodes completed");
    }

    /** Switch to boundary-released episodes (multi-queue kernel). */
    void enableQuantized() { quantized = true; }

    std::uint32_t parties() const { return numParties; }

    /** A party may drop out permanently (finished its quota). */
    void
    retire()
    {
        if (quantized) {
            std::lock_guard<std::mutex> g(mu);
            c3d_assert(numParties > 0, "retire with no parties");
            --numParties;
            // A retirement that completes the episode is picked up
            // by the next quantRelease() boundary.
            return;
        }
        c3d_assert(numParties > 0, "retire with no parties");
        --numParties;
        if (arrived >= numParties)
            release();
    }

    /**
     * Arrive at the barrier. Legacy mode: @p resume runs inline at
     * the last arriver's tick (@p core is unused). Quantized mode:
     * @p resume is scheduled onto @p core's queue by the next
     * quantRelease() that finds the episode complete.
     */
    void
    arrive(CoreId core, std::function<void()> resume)
    {
        if (quantized) {
            std::lock_guard<std::mutex> g(mu);
            qWaiting.emplace_back(core, std::move(resume));
            return;
        }
        (void)core;
        waiting.push_back(std::move(resume));
        ++arrived;
        if (arrived >= numParties)
            release();
    }

    std::uint32_t
    waitingCount() const
    {
        if (quantized) {
            std::lock_guard<std::mutex> g(mu);
            return static_cast<std::uint32_t>(qWaiting.size());
        }
        return arrived;
    }

    /**
     * Quantized-mode release hook; runs single-threaded on the cell
     * executor's barrier master. If every remaining party has
     * arrived, schedule all resumes at tick @p q, each into the queue
     * @p queue_of(core) names, in ascending core order. Returns
     * whether an episode was released.
     */
    template <typename QueueOf>
    bool
    quantRelease(Tick q, QueueOf &&queue_of)
    {
        std::lock_guard<std::mutex> g(mu);
        if (qWaiting.empty() || qWaiting.size() < numParties)
            return false;
        ++episodes;
        std::sort(qWaiting.begin(), qWaiting.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &w : qWaiting) {
            queue_of(w.first).scheduleAt(q, std::move(w.second));
        }
        qWaiting.clear();
        return true;
    }

  private:
    void
    release()
    {
        ++episodes;
        arrived = 0;
        std::vector<std::function<void()>> ready;
        ready.swap(waiting);
        for (auto &fn : ready)
            fn();
    }

    std::uint32_t numParties = 0;
    bool quantized = false;
    std::uint32_t arrived = 0;
    std::vector<std::function<void()>> waiting;
    /** Quantized-mode state; mu orders cross-thread arrivals. */
    mutable std::mutex mu;
    std::vector<std::pair<CoreId, std::function<void()>>> qWaiting;
    Counter episodes;
};

} // namespace c3d

#endif // C3DSIM_CPU_BARRIER_HH
