#include "cpu/trace_cpu.hh"

#include <algorithm>

#include "sim/machine.hh"

namespace c3d
{

TraceCpu::TraceCpu(Machine &machine, CoreId global_core,
                   Workload &workload, StatGroup *stats)
    : m(machine),
      socket(machine.socket(global_core /
                            machine.config().coresPerSocket)),
      globalCore(global_core),
      localCore(global_core % machine.config().coresPerSocket),
      mySocket(global_core / machine.config().coresPerSocket),
      gen(workload),
      eq(machine.queueAt(global_core /
                         machine.config().coresPerSocket))
{
    const std::string prefix = "cpu" + std::to_string(global_core);
    instsRetired.init(stats, prefix + ".instructions",
                      "instructions committed (post-warmup)");
    warmTick.init(nullptr, prefix + ".warm_tick",
                  "tick at which this core crossed warm-up");
    finishTick.init(nullptr, prefix + ".finish_tick",
                    "tick at which this core finished");
    loadsIssued.init(stats, prefix + ".loads", "loads issued");
    storesIssued.init(stats, prefix + ".stores", "stores issued");
    forwardedLoads.init(stats, prefix + ".forwarded_loads",
                        "loads forwarded from the store queue");
    sqStalls.init(stats, prefix + ".sq_stalls",
                  "stalls on a full store queue");
    tlbTraps.init(stats, prefix + ".tlb_traps",
                  "page-classification traps taken");
}

void
TraceCpu::start(std::uint64_t warmup_ops, std::uint64_t measure_ops,
                std::function<void()> on_warm,
                std::function<void()> on_done)
{
    warmupOps = warmup_ops;
    totalOps = warmup_ops + measure_ops;
    onWarm = std::move(on_warm);
    onDone = std::move(on_done);

    if (totalOps == 0) {
        warmed = true;
        doneFired = true;
        eq.schedule(0, [this] {
            if (onWarm)
                onWarm();
            if (onDone)
                onDone();
        });
        return;
    }
    eq.schedule(0, [this] { nextOp(); });
}

void
TraceCpu::nextOp()
{
    if (issued == totalOps) {
        if (barrier && !doneFired)
            barrier->retire();
        maybeFinish();
        return;
    }

    // Iterative-kernel synchronization: rendezvous with the other
    // cores every barrierInterval references.
    if (barrier && barrierInterval && issued >= nextBarrierAt &&
        issued != 0) {
        nextBarrierAt = issued + barrierInterval;
        barrier->arrive(globalCore, [this] { nextOp(); });
        return;
    }

    if (issued == warmupOps && !warmed) {
        warmed = true;
        warmTick += eq.now();
        if (onWarm)
            onWarm();
    }

    TraceOp op = gen.next(globalCore);
    ++issued;

    if (warmed)
        instsRetired += op.gap + 1;

    // TLB page classification (§IV-D): first touches and
    // private->shared transitions trap to the OS.
    Tick extra = 0;
    bool private_page = false;
    if (m.config().tlbPageClassification) {
        bool trapped = false;
        private_page = m.pageClassifier().accessAndClassify(
            op.addr, globalCore, trapped);
        if (trapped) {
            ++tlbTraps;
            extra = m.config().tlbTrapPenalty;
        }
    }

    const Tick delay = op.gap + extra;
    if (delay > 0) {
        eq.schedule(delay, [this, op, private_page] {
            issueMem(op, private_page);
        });
    } else {
        issueMem(op, private_page);
    }
}

void
TraceCpu::issueMem(const TraceOp &op, bool private_page)
{
    // Deferred first-touch (multi-queue kernel): an access to a page
    // with no home yet cannot place it inline — placement mutates the
    // shared page map, and a real first touch takes an OS page fault
    // before the access proceeds anyway. File a claim stamped with
    // the issue tick and retry at the next cell boundary, after the
    // barrier master has committed all claims in (tick, core) order.
    // The retry re-runs this gate and then finds the page resolved.
    PageMapper &pm = m.pageMapper();
    if (pm.deferredTouch() && !pm.resolved(op.addr)) {
        pm.claim(mySocket, op.addr, eq.now(), globalCore);
        eq.scheduleAt(m.cellBoundaryAfter(eq.now()),
                      [this, op, private_page] {
                          issueMem(op, private_page);
                      });
        return;
    }

    if (op.op == MemOp::Read) {
        ++loadsIssued;
        // TSO: loads bypass queued stores; forward at block grain.
        const Addr blk = blockAlign(op.addr);
        if (std::find(storeQueue.begin(), storeQueue.end(), blk) !=
            storeQueue.end()) {
            ++forwardedLoads;
            eq.schedule(m.config().l1Latency,
                        [this] { opComplete(); });
            return;
        }
        socket.load(localCore, op.addr, [this] { opComplete(); });
        return;
    }

    ++storesIssued;
    if (storeQueue.size() >= m.config().storeQueueEntries) {
        // Full store queue: the core stalls until a slot frees.
        ++sqStalls;
        stalledOnSq = true;
        stalledOp = op;
        stalledPrivate = private_page;
        return;
    }
    pushStore(op.addr, private_page);
}

void
TraceCpu::pushStore(Addr addr, bool private_page)
{
    storeQueue.push_back(blockAlign(addr));
    storeQueuePrivate.push_back(private_page);
    drainStoreQueue();
    // The store retires into the queue in one cycle.
    eq.schedule(1, [this] { opComplete(); });
}

void
TraceCpu::drainStoreQueue()
{
    if (draining || storeQueue.empty())
        return;
    draining = true;
    const Addr addr = storeQueue.front();
    const bool priv = storeQueuePrivate.front();
    socket.store(localCore, addr, priv, [this] {
        storeQueue.pop_front();
        storeQueuePrivate.pop_front();
        draining = false;
        if (stalledOnSq) {
            stalledOnSq = false;
            pushStore(stalledOp.addr, stalledPrivate);
        }
        drainStoreQueue();
        maybeFinish();
    });
}

void
TraceCpu::opComplete()
{
    nextOp();
}

void
TraceCpu::maybeFinish()
{
    if (issued == totalOps && storeQueue.empty() && !doneFired) {
        doneFired = true;
        finishTick += eq.now();
        if (onDone)
            onDone();
    }
}

} // namespace c3d
