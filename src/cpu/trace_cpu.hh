/**
 * @file
 * Trace-driven timing core (Table II): width-1, 1 IPC for compute
 * instructions, TSO with a 32-entry store queue.
 *
 * Loads are blocking (the core waits for completion) but may bypass
 * the store queue, with store-to-load forwarding at block
 * granularity. Stores retire into the store queue and drain in
 * order; a full queue stalls the core -- this is how write latency
 * (e.g. C3D's invalidation broadcasts) shows up in performance only
 * when the queue backs up (§IV-B).
 */

#ifndef C3DSIM_CPU_TRACE_CPU_HH
#define C3DSIM_CPU_TRACE_CPU_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/barrier.hh"
#include "sim/event_queue.hh"
#include "trace/workload.hh"

namespace c3d
{

class Machine;
class Socket;

/** One simulated core executing a trace. */
class TraceCpu
{
  public:
    /**
     * @param machine the machine this core lives in
     * @param global_core machine-wide core id
     * @param workload shared reference stream source
     * @param stats registry
     */
    TraceCpu(Machine &machine, CoreId global_core, Workload &workload,
             StatGroup *stats);

    /**
     * Begin executing. @p warmup_ops references are issued before
     * @p on_warm fires (once); the core then continues for
     * @p measure_ops references and fires @p on_done.
     */
    void start(std::uint64_t warmup_ops, std::uint64_t measure_ops,
               std::function<void()> on_warm,
               std::function<void()> on_done);

    /** Attach a barrier reached every @p interval references. */
    void
    setBarrier(Barrier *b, std::uint64_t interval)
    {
        barrier = b;
        barrierInterval = interval;
        nextBarrierAt = interval;
    }

    CoreId coreId() const { return globalCore; }
    SocketId socketId() const { return mySocket; }

    /** Instructions committed after warm-up. */
    std::uint64_t instructions() const { return instsRetired.value(); }
    std::uint64_t opsIssued() const { return issued; }
    bool finished() const { return doneFired; }
    /** Tick at which this core crossed its warm-up quota. */
    Tick warmAt() const { return warmTick.value(); }
    /** Tick at which this core issued and drained everything. */
    Tick finishAt() const { return finishTick.value(); }

  private:
    void nextOp();
    void issueMem(const TraceOp &op, bool private_page);
    void pushStore(Addr addr, bool private_page);
    void drainStoreQueue();
    void opComplete();
    void maybeFinish();

    Machine &m;
    Socket &socket;
    const CoreId globalCore;
    const std::uint32_t localCore;
    const SocketId mySocket;
    Workload &gen;
    /** The kernel queue this core's events execute on. */
    EventQueue &eq;

    std::uint64_t warmupOps = 0;
    std::uint64_t totalOps = 0;
    std::uint64_t issued = 0;
    bool warmed = false;
    bool doneFired = false;
    Barrier *barrier = nullptr;
    std::uint64_t barrierInterval = 0;
    std::uint64_t nextBarrierAt = 0;
    std::function<void()> onWarm;
    std::function<void()> onDone;

    // Store queue (block addresses), drained in order.
    std::deque<Addr> storeQueue;
    std::deque<bool> storeQueuePrivate;
    bool draining = false;
    bool stalledOnSq = false;
    TraceOp stalledOp;
    bool stalledPrivate = false;

    Counter instsRetired;
    Counter warmTick;
    Counter finishTick;
    Counter loadsIssued;
    Counter storesIssued;
    Counter forwardedLoads;
    Counter sqStalls;
    Counter tlbTraps;
};

} // namespace c3d

#endif // C3DSIM_CPU_TRACE_CPU_HH
