#include "dramcache/dram_cache.hh"

namespace c3d
{

DramCache::DramCache(EventQueue &eq, const SystemConfig &cfg,
                     SocketId socket, StatGroup *stats)
    : eventq(eq),
      predictorEnabled(cfg.missPredictorEnabled),
      exactPredictor(cfg.missPredictorExact),
      predictorLatency(cfg.missPredictorLatency),
      accessLatency(cfg.dramCacheLatency),
      allowDirty(cfg.dirtyDramCache())
{
    tags.init(cfg.dramCacheBytes, /*ways=*/1);

    const std::string prefix =
        "socket" + std::to_string(socket) + ".dram_cache";

    predictor = makePresencePredictor(cfg);
    predictor->configure(cfg, stats, prefix + ".predictor");

    channels.resize(cfg.dramCacheChannels);
    const Bandwidth bw = Bandwidth::fromGBps(cfg.dramCacheChannelGBps);
    for (std::uint32_t i = 0; i < channels.size(); ++i) {
        channels[i].init(bw, stats,
                         prefix + ".ch" + std::to_string(i));
    }

    hits.init(stats, prefix + ".hits", "probes that found the block");
    misses.init(stats, prefix + ".misses", "probes that missed");
    inserts.init(stats, prefix + ".inserts", "victim-cache fills");
    writeUpdates.init(stats, prefix + ".write_updates",
                      "clean refreshes of resident blocks");
    invalidations.init(stats, prefix + ".invalidations",
                       "coherence invalidations applied");
    evictionsClean.init(stats, prefix + ".evictions_clean",
                        "clean blocks displaced");
    evictionsDirty.init(stats, prefix + ".evictions_dirty",
                        "dirty blocks displaced (writeback needed)");

    statsGroup = stats;
    statPrefix = prefix;
}

void
DramCache::enableTenantTracking(std::uint32_t tenants)
{
    c3d_assert(tenantBlocks.empty(), "tenant tracking enabled twice");
    tenantBlocks.assign(tenants, 0);
    tenantHits = std::vector<Counter>(tenants);
    tenantMisses = std::vector<Counter>(tenants);
    for (std::uint32_t t = 0; t < tenants; ++t) {
        const std::string tp =
            statPrefix + ".tenant" + std::to_string(t);
        tenantHits[t].init(statsGroup, tp + ".hits",
                           "tenant probes that found the block");
        tenantMisses[t].init(statsGroup, tp + ".misses",
                             "tenant probes that missed");
    }
}

void
DramCache::countTenant(std::uint32_t tenant, bool hit)
{
    if (tenant == NoTenant || tenantBlocks.empty())
        return;
    if (hit)
        ++tenantHits[tenant];
    else
        ++tenantMisses[tenant];
}

void
DramCache::setOwner(TagEntry *e, std::uint32_t tenant)
{
    if (tenant == NoTenant || tenantBlocks.empty())
        return;
    const std::uint64_t tag = static_cast<std::uint64_t>(tenant) + 1;
    if (e->aux == tag)
        return;
    dropOwnerAux(e->aux);
    e->aux = tag;
    ++tenantBlocks[tenant];
}

void
DramCache::dropOwnerAux(std::uint64_t aux)
{
    if (!aux || tenantBlocks.empty())
        return;
    --tenantBlocks[static_cast<std::size_t>(aux - 1)];
}

Tick
DramCache::chargeChannel(Addr addr, Tick start)
{
    Channel &ch = channels[blockNumber(addr) % channels.size()];
    return ch.acquire(start, BurstBytes);
}

bool
DramCache::predictPresent(Addr addr)
{
    if (exactPredictor) {
        // MissMap mode: exact block-grain presence, never wrong in
        // either direction.
        const bool present = tags.find(addr) != nullptr;
        predictor->recordExactQuery(present);
        return present;
    }
    return predictor->mayBePresent(addr);
}

void
DramCache::probe(Addr addr, std::function<void(DramCacheProbe)> done,
                 bool always_access, std::uint32_t tenant)
{
    const Tick now = eventq.now();

    if (!always_access && predictorEnabled && !predictPresent(addr)) {
        // Predicted absent: answer without a DRAM access. The
        // counting filter never reports absent for a present block,
        // so this path cannot hide data.
        ++misses;
        countTenant(tenant, false);
        predictor->trainOnProbe(addr, tenant, false);
        DramCacheProbe res;
        res.readyAt = now + predictorLatency;
        eventq.scheduleAt(res.readyAt, [done, res] { done(res); });
        return;
    }

    const Tick access_start =
        now + (predictorEnabled ? predictorLatency : 0);
    const Tick ready = chargeChannel(addr, access_start + accessLatency);

    DramCacheProbe res;
    TagEntry *e = tags.find(addr);
    if (e) {
        ++hits;
        countTenant(tenant, true);
        setOwner(e, tenant);
        tags.touch(e);
        res.present = true;
        res.dirty = e->state == CacheState::Modified;
    } else {
        ++misses;
        countTenant(tenant, false);
        if (predictorEnabled && !exactPredictor)
            predictor->recordFalsePresent();
    }
    // Demand probes are the admission gate's training stream; remote
    // snoops (always_access) say nothing about local reuse.
    if (!always_access)
        predictor->trainOnProbe(addr, tenant, e != nullptr);
    res.readyAt = ready;
    eventq.scheduleAt(ready, [done, res] { done(res); });
}

DramCacheVictim
DramCache::insert(Addr addr, bool dirty, std::uint32_t tenant)
{
    c3d_assert(!dirty || allowDirty,
               "dirty insert into a clean DRAM cache");

    DramCacheVictim victim;
    const bool was_present = tags.find(addr) != nullptr;
    // Admission gate (docs/predictors.md): a clean fill the predictor
    // rejects never touches DRAM -- no channel traffic, no victim.
    // Dirty victims are always admitted (the dirty designs rely on
    // the cache to hold modified data), and a block already resident
    // is an in-place update, not an admission decision.
    if (!was_present && !dirty && !predictor->admit(addr, tenant))
        return victim;
    ++inserts;

    // The fill write occupies a channel but nobody waits for it.
    chargeChannel(addr, eventq.now() + accessLatency);

    const CacheState new_state =
        dirty ? CacheState::Modified : CacheState::Shared;

    AllocResult ar = tags.allocate(addr, new_state);
    if (ar.evictedValid) {
        victim.valid = true;
        victim.addr = ar.victimAddr;
        victim.dirty = ar.victimState == CacheState::Modified;
        if (victim.dirty)
            ++evictionsDirty;
        else
            ++evictionsClean;
        predictor->onRemove(victim.addr);
        dropOwnerAux(ar.victimAux);
    }
    if (!was_present)
        predictor->onInsert(addr);
    // After allocate: a fresh slot starts unowned (aux zeroed), a
    // reused slot keeps its owner unless the insert names one.
    setOwner(ar.entry, tenant);
    return victim;
}

void
DramCache::invalidate(Addr addr, std::function<void(bool, bool)> done)
{
    const Tick now = eventq.now();

    if (predictorEnabled && !predictPresent(addr)) {
        eventq.scheduleAt(now + predictorLatency,
                          [done] { done(false, false); });
        return;
    }

    const Tick access_start =
        now + (predictorEnabled ? predictorLatency : 0);

    bool present = false;
    bool dirty = false;
    if (const TagEntry *e = tags.find(addr)) {
        present = true;
        dirty = e->state == CacheState::Modified;
        dropOwnerAux(e->aux);
        tags.invalidate(addr);
        predictor->onRemove(addr);
        ++invalidations;
    } else if (predictorEnabled && !exactPredictor) {
        predictor->recordFalsePresent();
    }
    // §III-A: invalidating a (possibly) present block requires the
    // DRAM access -- to check dirtiness and clear the tag.
    const Tick ready = chargeChannel(addr, access_start + accessLatency);
    eventq.scheduleAt(ready,
                      [done, present, dirty] { done(present, dirty); });
}

DramCacheVictim
DramCache::updateClean(Addr addr, std::uint32_t tenant)
{
    DramCacheVictim victim;

    if (TagEntry *e = tags.find(addr)) {
        chargeChannel(addr, eventq.now() + accessLatency);
        ++writeUpdates;
        e->state = CacheState::Shared;
        setOwner(e, tenant);
        tags.touch(e);
        return victim;
    }

    // The insert-if-absent branch is a clean fill like any other and
    // passes through the same admission gate.
    if (!predictor->admit(addr, tenant))
        return victim;
    chargeChannel(addr, eventq.now() + accessLatency);

    ++inserts;
    AllocResult ar = tags.allocate(addr, CacheState::Shared);
    if (ar.evictedValid) {
        victim.valid = true;
        victim.addr = ar.victimAddr;
        victim.dirty = ar.victimState == CacheState::Modified;
        if (victim.dirty)
            ++evictionsDirty;
        else
            ++evictionsClean;
        predictor->onRemove(victim.addr);
        dropOwnerAux(ar.victimAux);
    }
    predictor->onInsert(addr);
    setOwner(ar.entry, tenant);
    return victim;
}

} // namespace c3d
