/**
 * @file
 * Die-stacked DRAM cache controller (Table II: 1 GB, block-based,
 * direct-mapped, 40 ns access, 8 channels x 12.8 GB/s, region-based
 * miss predictor).
 *
 * The organization follows Alloy-cache-style direct-mapped
 * tags-with-data: one DRAM access returns tag+data, so hit and miss
 * detection both cost the access latency unless the miss predictor
 * short-circuits the probe. Fill policy is victim caching: blocks
 * enter on LLC evictions (§II-C "massive victim cache").
 *
 * Dirty blocks are permitted only in the snoopy/full-dir designs; the
 * C3D designs keep the cache clean (§IV-A).
 */

#ifndef C3DSIM_DRAMCACHE_DRAM_CACHE_HH
#define C3DSIM_DRAMCACHE_DRAM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dramcache/presence_predictor.hh"
#include "interconnect/channel.hh"
#include "sim/event_queue.hh"

namespace c3d
{

/** Result of a probe into the DRAM cache. */
struct DramCacheProbe
{
    bool present = false;
    bool dirty = false;
    /** Tick at which the probe outcome (and data, if any) is known. */
    Tick readyAt = 0;
};

/** Victim displaced by an insertion. */
struct DramCacheVictim
{
    bool valid = false;
    Addr addr = 0;
    bool dirty = false;
};

/** One socket's DRAM cache. */
class DramCache
{
  public:
    /** Requester tag for accesses with no tenant attribution. */
    static constexpr std::uint32_t NoTenant = 0xFFFFFFFFu;

    DramCache(EventQueue &eq, const SystemConfig &cfg, SocketId socket,
              StatGroup *stats);

    /**
     * Turn on per-tenant attribution (composed workloads). Registers
     * per-tenant hit/miss counters with the stat group (so the
     * warm-up reset covers them) and starts exact per-tenant block
     * occupancy bookkeeping. Runs without tenants never call this,
     * so plain rows stay byte-identical.
     */
    void enableTenantTracking(std::uint32_t tenants);

    /**
     * Probe for the block at @p addr (read path or snoop).
     * Consults the miss predictor first; a predicted-absent block is
     * answered in predictor latency without touching DRAM. @p done
     * fires when the outcome is known.
     * @param always_access bypass the predictor short-circuit and pay
     *        the full DRAM access even for absent blocks (remote
     *        snoop probes, §III-A: the DRAM cache must be searched).
     * @param tenant requester's tenant index (NoTenant: untracked).
     *        Counted against the tenant's hit/miss counters exactly
     *        where the cache's own hit/miss counters tick, and a hit
     *        transfers block ownership to the tenant.
     */
    void probe(Addr addr, std::function<void(DramCacheProbe)> done,
               bool always_access = false,
               std::uint32_t tenant = NoTenant);

    /**
     * Insert the block at @p addr (an LLC victim).
     * If the block is already present its state is updated in place.
     * The write occupies a DRAM channel but completes asynchronously
     * (off the critical path).
     * @param tenant owning tenant of the inserted block (NoTenant:
     *        unowned until a tracked probe hits it).
     * @return the displaced victim, if any.
     */
    DramCacheVictim insert(Addr addr, bool dirty,
                           std::uint32_t tenant = NoTenant);

    /**
     * Invalidate @p addr if present. @p done receives
     * (wasPresent, wasDirty) when the invalidation has completed;
     * predicted-absent blocks complete in predictor latency.
     */
    void invalidate(Addr addr,
                    std::function<void(bool, bool)> done);

    /**
     * Refresh the cached copy of @p addr with clean data (downgrade /
     * write-through path). Inserts if absent. Off the critical path.
     * @return the displaced victim, if any.
     */
    DramCacheVictim updateClean(Addr addr,
                                std::uint32_t tenant = NoTenant);

    /** Structural presence check with no timing (tests/inspection). */
    bool contains(Addr addr) const { return tags.find(addr) != nullptr; }
    bool
    isDirty(Addr addr) const
    {
        const TagEntry *e = tags.find(addr);
        return e && e->state == CacheState::Modified;
    }

    std::uint64_t capacityBlocks() const { return tags.capacityBlocks(); }
    std::uint64_t validBlocks() const { return tags.validBlocks(); }

    std::uint64_t hitCount() const { return hits.value(); }
    std::uint64_t missCount() const { return misses.value(); }

    // ---- predictor accuracy (docs/predictors.md) -----------------------
    std::uint64_t predictorTrains() const
    {
        return predictor->trainEvents();
    }
    std::uint64_t predictorBypasses() const
    {
        return predictor->bypassEvents();
    }
    std::uint64_t predictorGhostHits() const
    {
        return predictor->ghostHits();
    }
    std::uint64_t predictorFalsePresents() const
    {
        return predictor->falsePresents();
    }

    // ---- per-tenant attribution (enableTenantTracking) -----------------
    bool tenantTrackingEnabled() const { return !tenantBlocks.empty(); }
    /** Blocks currently owned by tenant @p t (live gauge; unlike the
     * hit/miss counters it is NOT reset at the warm-up boundary). */
    std::uint64_t tenantOccupancy(std::uint32_t t) const
    {
        return tenantBlocks[t];
    }
    std::uint64_t tenantHitCount(std::uint32_t t) const
    {
        return tenantHits[t].value();
    }
    std::uint64_t tenantMissCount(std::uint32_t t) const
    {
        return tenantMisses[t].value();
    }

  private:
    /** Serialize an access burst on the channel for @p addr. */
    Tick chargeChannel(Addr addr, Tick start);

    /** Presence prediction (exact MissMap or counting filter). */
    bool predictPresent(Addr addr);

    /** Tick tenant @p t's hit or miss counter (NoTenant: no-op). */
    void countTenant(std::uint32_t tenant, bool hit);

    /**
     * Transfer ownership of @p e to @p tenant. The owner lives in
     * TagEntry::aux as tenant+1 (0 = unowned; the LLC uses aux for
     * its sharer vector, the DRAM cache for this tag), so eviction
     * paths recover the displaced owner from AllocResult::victimAux.
     */
    void setOwner(TagEntry *e, std::uint32_t tenant);

    /** A block with owner tag @p aux left the cache. */
    void dropOwnerAux(std::uint64_t aux);

    EventQueue &eventq;
    TagArray tags;
    std::unique_ptr<PresencePredictor> predictor;
    const bool predictorEnabled;
    const bool exactPredictor;
    const Tick predictorLatency;
    const Tick accessLatency;
    const bool allowDirty;
    std::vector<Channel> channels;

    /** Bytes moved per access burst: 64 B line + tag overhead. */
    static constexpr std::uint32_t BurstBytes = 80;

    Counter hits;
    Counter misses;
    Counter inserts;
    Counter writeUpdates;
    Counter invalidations;
    Counter evictionsClean;
    Counter evictionsDirty;

    /** For post-construction tenant counter registration. */
    StatGroup *statsGroup = nullptr;
    std::string statPrefix;

    // Per-tenant attribution; all empty unless enabled. The counter
    // vectors are sized once at enable time (the StatGroup keeps raw
    // pointers into them) and must never reallocate.
    std::vector<Counter> tenantHits;
    std::vector<Counter> tenantMisses;
    std::vector<std::uint64_t> tenantBlocks;
};

} // namespace c3d

#endif // C3DSIM_DRAMCACHE_DRAM_CACHE_HH
