/**
 * @file
 * Die-stacked DRAM cache controller (Table II: 1 GB, block-based,
 * direct-mapped, 40 ns access, 8 channels x 12.8 GB/s, region-based
 * miss predictor).
 *
 * The organization follows Alloy-cache-style direct-mapped
 * tags-with-data: one DRAM access returns tag+data, so hit and miss
 * detection both cost the access latency unless the miss predictor
 * short-circuits the probe. Fill policy is victim caching: blocks
 * enter on LLC evictions (§II-C "massive victim cache").
 *
 * Dirty blocks are permitted only in the snoopy/full-dir designs; the
 * C3D designs keep the cache clean (§IV-A).
 */

#ifndef C3DSIM_DRAMCACHE_DRAM_CACHE_HH
#define C3DSIM_DRAMCACHE_DRAM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dramcache/miss_predictor.hh"
#include "interconnect/channel.hh"
#include "sim/event_queue.hh"

namespace c3d
{

/** Result of a probe into the DRAM cache. */
struct DramCacheProbe
{
    bool present = false;
    bool dirty = false;
    /** Tick at which the probe outcome (and data, if any) is known. */
    Tick readyAt = 0;
};

/** Victim displaced by an insertion. */
struct DramCacheVictim
{
    bool valid = false;
    Addr addr = 0;
    bool dirty = false;
};

/** One socket's DRAM cache. */
class DramCache
{
  public:
    DramCache(EventQueue &eq, const SystemConfig &cfg, SocketId socket,
              StatGroup *stats);

    /**
     * Probe for the block at @p addr (read path or snoop).
     * Consults the miss predictor first; a predicted-absent block is
     * answered in predictor latency without touching DRAM. @p done
     * fires when the outcome is known.
     * @param always_access bypass the predictor short-circuit and pay
     *        the full DRAM access even for absent blocks (remote
     *        snoop probes, §III-A: the DRAM cache must be searched).
     */
    void probe(Addr addr, std::function<void(DramCacheProbe)> done,
               bool always_access = false);

    /**
     * Insert the block at @p addr (an LLC victim).
     * If the block is already present its state is updated in place.
     * The write occupies a DRAM channel but completes asynchronously
     * (off the critical path).
     * @return the displaced victim, if any.
     */
    DramCacheVictim insert(Addr addr, bool dirty);

    /**
     * Invalidate @p addr if present. @p done receives
     * (wasPresent, wasDirty) when the invalidation has completed;
     * predicted-absent blocks complete in predictor latency.
     */
    void invalidate(Addr addr,
                    std::function<void(bool, bool)> done);

    /**
     * Refresh the cached copy of @p addr with clean data (downgrade /
     * write-through path). Inserts if absent. Off the critical path.
     * @return the displaced victim, if any.
     */
    DramCacheVictim updateClean(Addr addr);

    /** Structural presence check with no timing (tests/inspection). */
    bool contains(Addr addr) const { return tags.find(addr) != nullptr; }
    bool
    isDirty(Addr addr) const
    {
        const TagEntry *e = tags.find(addr);
        return e && e->state == CacheState::Modified;
    }

    std::uint64_t capacityBlocks() const { return tags.capacityBlocks(); }
    std::uint64_t validBlocks() const { return tags.validBlocks(); }

    std::uint64_t hitCount() const { return hits.value(); }
    std::uint64_t missCount() const { return misses.value(); }

  private:
    /** Serialize an access burst on the channel for @p addr. */
    Tick chargeChannel(Addr addr, Tick start);

    /** Presence prediction (exact MissMap or counting filter). */
    bool predictPresent(Addr addr);

    EventQueue &eventq;
    TagArray tags;
    MissPredictor predictor;
    const bool predictorEnabled;
    const bool exactPredictor;
    const Tick predictorLatency;
    const Tick accessLatency;
    const bool allowDirty;
    std::vector<Channel> channels;

    /** Bytes moved per access burst: 64 B line + tag overhead. */
    static constexpr std::uint32_t BurstBytes = 80;

    Counter hits;
    Counter misses;
    Counter inserts;
    Counter writeUpdates;
    Counter invalidations;
    Counter evictionsClean;
    Counter evictionsDirty;
};

} // namespace c3d

#endif // C3DSIM_DRAMCACHE_DRAM_CACHE_HH
