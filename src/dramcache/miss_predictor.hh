/**
 * @file
 * Region-based DRAM-cache presence predictor (Table II: 4K-entry,
 * region-based, 2-cycle), in the spirit of Qureshi & Loh's memory
 * access predictor.
 *
 * We keep a direct-mapped table of per-region block counters:
 * insertions increment, evictions/invalidations decrement. Hash
 * collisions merge regions, so a counter is the exact sum of cached
 * blocks across the aliasing regions -- the predictor may report
 * "present" for an absent block (wasted DRAM-cache probe) but never
 * "absent" for a present one. The conservative direction is required
 * for correctness in dirty-cache designs (§III-A): a dirty block must
 * never be hidden from a probe.
 */

#ifndef C3DSIM_DRAMCACHE_MISS_PREDICTOR_HH
#define C3DSIM_DRAMCACHE_MISS_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dramcache/presence_predictor.hh"

namespace c3d
{

/**
 * Counting presence filter over memory regions. Admission is
 * unconditional (every LLC victim is cached), which is the paper's
 * fill policy; the perceptron predictor derives from this class to
 * reuse the presence machinery and overrides only the admission side.
 */
class MissPredictor : public PresencePredictor
{
  public:
    void
    init(std::uint32_t num_entries, std::uint32_t region_bytes,
         StatGroup *stats, const std::string &name)
    {
        c3d_assert(num_entries > 0, "predictor needs entries");
        c3d_assert((region_bytes & (region_bytes - 1)) == 0,
                   "region size must be a power of two");
        counters.assign(num_entries, 0);
        regionShift = __builtin_ctz(region_bytes);
        queries.init(stats, name + ".queries", "presence queries");
        predictedAbsent.init(stats, name + ".predicted_absent",
                             "queries short-circuited as absent");
        falsePresent.init(stats, name + ".false_present",
                          "present predictions that probed and missed");
    }

    void
    configure(const SystemConfig &cfg, StatGroup *stats,
              const std::string &name) override
    {
        init(cfg.missPredictorEntries, cfg.missPredictorRegionBytes,
             stats, name);
    }

    /** Predict whether the block at @p addr may be cached. */
    bool
    mayBePresent(Addr addr) override
    {
        ++queries;
        const bool present = counters[slot(addr)] > 0;
        if (!present)
            ++predictedAbsent;
        return present;
    }

    /** Record that a probe made on a "present" prediction missed. */
    void recordFalsePresent() override { ++falsePresent; }

    /** Account a query answered exactly (MissMap mode). */
    void
    recordExactQuery(bool present) override
    {
        ++queries;
        if (!present)
            ++predictedAbsent;
    }

    /** A block in this region was inserted into the DRAM cache. */
    void onInsert(Addr addr) override { ++counters[slot(addr)]; }

    /** A block in this region left the DRAM cache. */
    void
    onRemove(Addr addr) override
    {
        auto &c = counters[slot(addr)];
        c3d_assert(c > 0, "predictor counter underflow");
        --c;
    }

    /** The paper's fill policy: every LLC victim is cached. */
    bool admit(Addr, std::uint32_t) override { return true; }
    void trainOnProbe(Addr, std::uint32_t, bool) override {}

    std::uint64_t trainEvents() const override { return 0; }
    std::uint64_t bypassEvents() const override { return 0; }
    std::uint64_t ghostHits() const override { return 0; }
    std::uint64_t
    falsePresents() const override
    {
        return falsePresent.value();
    }

    std::uint64_t absentPredictions() const override
    {
        return predictedAbsent.value();
    }

  protected:
    std::uint32_t
    slot(Addr addr) const
    {
        // Multiplicative hash of the region number.
        const Addr region = addr >> regionShift;
        return static_cast<std::uint32_t>(
            (region * 0x9e3779b97f4a7c15ull) >> 32) % counters.size();
    }

    std::vector<std::uint32_t> counters;
    std::uint32_t regionShift = 12;
    Counter queries;
    Counter predictedAbsent;
    Counter falsePresent;
};

} // namespace c3d

#endif // C3DSIM_DRAMCACHE_MISS_PREDICTOR_HH
