#include "dramcache/perceptron_predictor.hh"

namespace c3d
{

namespace
{

/** Fibonacci multiplicative mix (same family as the region slot). */
inline std::uint64_t
mix(std::uint64_t x)
{
    x *= 0x9e3779b97f4a7c15ull;
    return x ^ (x >> 32);
}

} // namespace

void
PerceptronPredictor::configure(const SystemConfig &cfg,
                               StatGroup *stats,
                               const std::string &name)
{
    MissPredictor::configure(cfg, stats, name);

    c3d_assert(cfg.perceptronTableEntries > 0 &&
                   (cfg.perceptronTableEntries &
                    (cfg.perceptronTableEntries - 1)) == 0,
               "perceptron table entries must be a power of two");
    c3d_assert(cfg.ghostBufferBits >= 64 &&
                   (cfg.ghostBufferBits &
                    (cfg.ghostBufferBits - 1)) == 0,
               "ghost buffer bits must be a power of two >= 64");
    c3d_assert(cfg.perceptronWeightMax > 0, "weight bound must be > 0");

    tableEntries = cfg.perceptronTableEntries;
    weightMax = cfg.perceptronWeightMax;
    threshold = cfg.perceptronThreshold;
    trainMargin = cfg.perceptronTrainMargin;
    weights.assign(static_cast<std::size_t>(tableEntries) * NumFeatures,
                   0);
    historyFold = 0;

    ghostBits.assign(cfg.ghostBufferBits / 64, 0);
    ghostMask = cfg.ghostBufferBits - 1;
    ghostInserts = 0;
    ghostResetAt = cfg.ghostBufferResetEvictions;

    trains.init(stats, name + ".trains",
                "perceptron weight-update events");
    bypasses.init(stats, name + ".bypasses",
                  "clean fills rejected by the admission gate");
    ghostHitCount.init(stats, name + ".ghost_hits",
                       "misses matching a recently evicted line");
}

void
PerceptronPredictor::featureIndices(Addr addr, std::uint32_t tenant,
                                    std::uint32_t idx[NumFeatures]) const
{
    const std::uint64_t region = addr >> regionShift;
    // Feature 1: the region itself.
    idx[0] = static_cast<std::uint32_t>(mix(region)) &
        (tableEntries - 1);
    // Feature 2: requester-colored region. Untracked runs pass a
    // constant tenant, so the feature degrades to a second region
    // hash rather than noise.
    idx[1] = static_cast<std::uint32_t>(
                 mix(region ^ (static_cast<std::uint64_t>(tenant)
                               << 40))) &
        (tableEntries - 1);
    // Feature 3: fold of recent probe history.
    idx[2] = static_cast<std::uint32_t>(mix(region ^ historyFold)) &
        (tableEntries - 1);
}

std::int32_t
PerceptronPredictor::weightSum(Addr addr, std::uint32_t tenant) const
{
    std::uint32_t idx[NumFeatures];
    featureIndices(addr, tenant, idx);
    std::int32_t sum = 0;
    for (std::size_t f = 0; f < NumFeatures; ++f)
        sum += weights[f * tableEntries + idx[f]];
    return sum;
}

void
PerceptronPredictor::adjust(const std::uint32_t idx[NumFeatures],
                            int direction)
{
    ++trains;
    for (std::size_t f = 0; f < NumFeatures; ++f) {
        std::int32_t &w = weights[f * tableEntries + idx[f]];
        // Saturate at [-weightMax - 1, weightMax] (6-bit two's
        // complement for the default bound of 31).
        if (direction > 0 && w < weightMax)
            ++w;
        else if (direction < 0 && w > -weightMax - 1)
            --w;
    }
}

bool
PerceptronPredictor::admit(Addr addr, std::uint32_t tenant)
{
    const bool cache = weightSum(addr, tenant) >= threshold;
    if (!cache) {
        ++bypasses;
        // A bypassed line enters the ghost buffer like an evicted
        // one: if it is re-requested soon, the ghost hit trains the
        // weights back toward caching. Without this, full bypass
        // would starve the trainer of positive examples and lock in
        // (nothing cached -> no hits -> no recovery).
        ghostInsert(addr);
    }
    return cache;
}

void
PerceptronPredictor::trainOnProbe(Addr addr, std::uint32_t tenant,
                                  bool hit)
{
    std::uint32_t idx[NumFeatures];
    featureIndices(addr, tenant, idx);
    std::int32_t sum = 0;
    for (std::size_t f = 0; f < NumFeatures; ++f)
        sum += weights[f * tableEntries + idx[f]];

    // A hit is a reuse of a cached line: caching its kind paid off.
    // A miss that matches the ghost buffer means the line WAS cached
    // and got evicted before this reuse -- also a vote for caching.
    // Any other miss is traffic that caching has not been serving.
    bool toward_cache = hit;
    if (!hit && ghostContains(addr)) {
        ++ghostHitCount;
        toward_cache = true;
    }

    // Perceptron update rule: correct the weights on a mispredict,
    // and keep reinforcing while confidence is within the margin.
    const bool predicted_cache = sum >= threshold;
    if (predicted_cache != toward_cache ||
        (sum < threshold + trainMargin &&
         sum > threshold - trainMargin)) {
        adjust(idx, toward_cache ? +1 : -1);
    }

    // Fold the probed region into the path history (after training,
    // so a probe never trains on its own history bit).
    historyFold = mix(historyFold) ^ (addr >> regionShift);
}

void
PerceptronPredictor::onRemove(Addr addr)
{
    MissPredictor::onRemove(addr);
    ghostInsert(addr);
}

void
PerceptronPredictor::ghostInsert(Addr addr)
{
    if (++ghostInserts > ghostResetAt) {
        ghostBits.assign(ghostBits.size(), 0);
        ghostInserts = 1;
    }
    const std::uint64_t h = mix(blockNumber(addr));
    const std::uint32_t b0 = static_cast<std::uint32_t>(h) & ghostMask;
    const std::uint32_t b1 =
        static_cast<std::uint32_t>(h >> 32) & ghostMask;
    ghostBits[b0 / 64] |= 1ull << (b0 % 64);
    ghostBits[b1 / 64] |= 1ull << (b1 % 64);
}

bool
PerceptronPredictor::ghostContains(Addr addr) const
{
    const std::uint64_t h = mix(blockNumber(addr));
    const std::uint32_t b0 = static_cast<std::uint32_t>(h) & ghostMask;
    const std::uint32_t b1 =
        static_cast<std::uint32_t>(h >> 32) & ghostMask;
    return (ghostBits[b0 / 64] >> (b0 % 64) & 1) &&
        (ghostBits[b1 / 64] >> (b1 % 64) & 1);
}

std::unique_ptr<PresencePredictor>
makePresencePredictor(const SystemConfig &cfg)
{
    switch (cfg.predictorKind) {
      case PredictorKind::Region:
        return std::make_unique<MissPredictor>();
      case PredictorKind::Perceptron:
        return std::make_unique<PerceptronPredictor>();
    }
    c3d_panic("unknown predictor kind");
    return nullptr;
}

} // namespace c3d
