/**
 * @file
 * Hashed-perceptron DRAM-cache admission predictor with a ghost
 * buffer, after the COALESCE recipe (SNIPPETS.md Snippet 1;
 * docs/predictors.md).
 *
 * Presence filtering is inherited unchanged from MissPredictor --
 * the counting region filter keeps its never-hide-a-present-block
 * guarantee, so this predictor is as safe as the paper's for dirty
 * designs. What the perceptron adds is an *admission gate*: each
 * clean LLC victim is cached only when the sum of saturating integer
 * weights, looked up by hashed features of the fill address, clears
 * a threshold. Streaming lines (touched once, never re-probed) train
 * the weights down and stop polluting the cache; reused lines train
 * them up.
 *
 * Features (each indexes its own weight table):
 *  1. the memory region number,
 *  2. the requesting tenant (composed workloads) folded with the
 *     region,
 *  3. a fold of recently probed region numbers (path history).
 *
 * Training is online and purely event-driven: every demand probe
 * outcome is a labeled example (hit = the cached line was useful;
 * miss = it was not there, i.e. caching traffic like it has not been
 * paying off). A **ghost buffer** -- a compact Bloom filter over
 * recently evicted lines -- separates the two kinds of miss: a miss
 * that ghost-hits means the line *was* cached and got evicted before
 * its reuse arrived, so it trains toward caching instead of bypass.
 * The filter self-clears after a fixed number of recorded evictions
 * to bound its false-positive rate; the clear is deterministic
 * (eviction-count driven, no clocks).
 *
 * All state is per-socket and touched only from the socket's own
 * event queue, so training order -- and therefore every weight and
 * every decision -- is byte-identical between the sequential and
 * parallel kernels.
 */

#ifndef C3DSIM_DRAMCACHE_PERCEPTRON_PREDICTOR_HH
#define C3DSIM_DRAMCACHE_PERCEPTRON_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "dramcache/miss_predictor.hh"

namespace c3d
{

/** Perceptron cache/bypass gate over the region presence filter. */
class PerceptronPredictor : public MissPredictor
{
  public:
    void configure(const SystemConfig &cfg, StatGroup *stats,
                   const std::string &name) override;

    bool admit(Addr addr, std::uint32_t tenant) override;
    void trainOnProbe(Addr addr, std::uint32_t tenant,
                      bool hit) override;
    void onRemove(Addr addr) override;

    std::uint64_t trainEvents() const override
    {
        return trains.value();
    }
    std::uint64_t bypassEvents() const override
    {
        return bypasses.value();
    }
    std::uint64_t ghostHits() const override
    {
        return ghostHitCount.value();
    }

    // ---- inspection (tests) -------------------------------------------
    /** Current weight sum for (addr, tenant) -- the admit margin. */
    std::int32_t weightSum(Addr addr, std::uint32_t tenant) const;
    /** Whether the ghost buffer currently matches @p addr. */
    bool ghostContains(Addr addr) const;

  private:
    static constexpr std::size_t NumFeatures = 3;

    /** Per-feature weight-table indices for (addr, tenant). */
    void featureIndices(Addr addr, std::uint32_t tenant,
                        std::uint32_t idx[NumFeatures]) const;
    /** Saturating +/-1 update of every feature weight. */
    void adjust(const std::uint32_t idx[NumFeatures], int direction);

    void ghostInsert(Addr addr);

    std::vector<std::int32_t> weights; //!< NumFeatures concatenated
    std::uint32_t tableEntries = 0;    //!< per feature, power of two
    std::int32_t weightMax = 31;
    std::int32_t threshold = 0;
    std::int32_t trainMargin = 8;

    /** Fold of recently probed region numbers (path history). */
    std::uint64_t historyFold = 0;

    std::vector<std::uint64_t> ghostBits;
    std::uint32_t ghostMask = 0;  //!< bit-index mask (bits - 1)
    std::uint32_t ghostInserts = 0;
    std::uint32_t ghostResetAt = 4096;

    Counter trains;
    Counter bypasses;
    Counter ghostHitCount;
};

} // namespace c3d

#endif // C3DSIM_DRAMCACHE_PERCEPTRON_PREDICTOR_HH
