/**
 * @file
 * DRAM-cache predictor interface (docs/predictors.md).
 *
 * Two orthogonal jobs live behind this interface:
 *
 *  - **presence filtering** (mayBePresent / onInsert / onRemove):
 *    short-circuit probes for blocks that cannot be cached. The
 *    contract is strict: a present block must NEVER be reported
 *    absent, or a dirty block could be hidden from a coherence probe
 *    (§III-A). Implementations are exact (MissMap, handled by the
 *    cache itself) or conservative (counting region filter).
 *
 *  - **admission gating** (admit / trainOnProbe): decide whether an
 *    LLC victim is worth caching at all. This side is free to be
 *    wrong in either direction -- a bad admission decision costs
 *    performance, never correctness -- so it is where learned
 *    predictors (the hashed perceptron) plug in.
 *
 * Dirty blocks are always admitted regardless of the gate: a bypassed
 * dirty victim would have to be written back to memory anyway, and
 * the dirty designs rely on the DRAM cache to hold modified data.
 */

#ifndef C3DSIM_DRAMCACHE_PRESENCE_PREDICTOR_HH
#define C3DSIM_DRAMCACHE_PRESENCE_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** Presence filter + admission gate for one socket's DRAM cache. */
class PresencePredictor
{
  public:
    virtual ~PresencePredictor() = default;

    /** Size tables and register counters under @p name. */
    virtual void configure(const SystemConfig &cfg, StatGroup *stats,
                           const std::string &name) = 0;

    // ---- presence (exact-or-conservative; see file comment) -----------
    virtual bool mayBePresent(Addr addr) = 0;
    /** Account a query answered exactly by the cache (MissMap mode). */
    virtual void recordExactQuery(bool present) = 0;
    /** A probe made on a "present" prediction missed. */
    virtual void recordFalsePresent() = 0;
    /** A block entered the DRAM cache. */
    virtual void onInsert(Addr addr) = 0;
    /** A block left the DRAM cache (eviction or invalidation). */
    virtual void onRemove(Addr addr) = 0;

    // ---- admission (free to be wrong; docs/predictors.md) -------------
    /** Should the clean LLC victim at @p addr be cached? Callers must
     * admit dirty victims unconditionally. */
    virtual bool admit(Addr addr, std::uint32_t tenant) = 0;
    /** Online training signal: a demand probe for @p addr hit or
     * missed the DRAM cache. */
    virtual void trainOnProbe(Addr addr, std::uint32_t tenant,
                              bool hit) = 0;

    // ---- accuracy counters (surfaced per sweep row) --------------------
    virtual std::uint64_t trainEvents() const = 0;
    virtual std::uint64_t bypassEvents() const = 0;
    virtual std::uint64_t ghostHits() const = 0;
    virtual std::uint64_t falsePresents() const = 0;
    virtual std::uint64_t absentPredictions() const = 0;
};

/** Build the predictor selected by @p cfg.predictorKind. */
std::unique_ptr<PresencePredictor>
makePresencePredictor(const SystemConfig &cfg);

} // namespace c3d

#endif // C3DSIM_DRAMCACHE_PRESENCE_PREDICTOR_HH
