#include "exp/journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <map>
#include <unordered_map>

#ifdef _WIN32
#include <fcntl.h>
#include <io.h>
#define c3d_fileno _fileno
#define c3d_fsync _commit
#else
#include <unistd.h>
#define c3d_fileno fileno
#define c3d_fsync fsync
#endif

namespace
{

int
truncateFile(const std::string &path, std::uint64_t length)
{
#ifdef _WIN32
    const int fd = _open(path.c_str(), _O_WRONLY | _O_BINARY);
    if (fd < 0)
        return -1;
    const int rc =
        _chsize_s(fd, static_cast<long long>(length)) == 0 ? 0 : -1;
    _close(fd);
    return rc;
#else
    return ::truncate(path.c_str(), static_cast<off_t>(length));
#endif
}

} // namespace

#include "exp/json.hh"

namespace c3d::exp
{

namespace
{

/** Parse one entry line (already known not to be the header). */
bool
parseEntryLine(const std::string &line, JournalEntry &out,
               std::string &error)
{
    JsonValue v;
    if (!parseJson(line, v, error))
        return false;
    if (!v.isObject()) {
        error = "entry is not an object";
        return false;
    }
    const JsonValue *index = v.member("index");
    if (!index || !index->isNumber()) {
        error = "entry missing numeric 'index'";
        return false;
    }
    const JsonValue *row = v.member("row");
    const JsonValue *failure = v.member("failure");
    if ((row == nullptr) == (failure == nullptr)) {
        error = "entry must carry exactly one of 'row'/'failure'";
        return false;
    }
    JournalEntry entry;
    entry.index = index->u64();
    if (row) {
        if (!ResultTable::rowFromJson(*row, entry.row, error))
            return false;
    } else {
        if (!failure->isObject()) {
            error = "'failure' is not an object";
            return false;
        }
        const JsonValue *identity = failure->member("identity");
        const JsonValue *msg = failure->member("error");
        const JsonValue *attempts = failure->member("attempts");
        if (!identity || !identity->isString() || !msg ||
            !msg->isString() || !attempts || !attempts->isNumber()) {
            error = "failure record missing 'identity', 'error', "
                    "or 'attempts'";
            return false;
        }
        entry.failed = true;
        entry.failure.identity = identity->string();
        entry.failure.error = msg->string();
        entry.failure.attempts =
            static_cast<std::uint32_t>(attempts->u64());
        const JsonValue *tick = failure->member("tick");
        if (tick) {
            if (!tick->isNumber()) {
                error = "failure 'tick' is not a number";
                return false;
            }
            entry.failure.tick = tick->u64();
            entry.failure.tickKnown = true;
        }
    }
    out = std::move(entry);
    return true;
}

} // namespace

const char *
journalSchemaName()
{
    return "c3d-sweep-journal/v2";
}

std::string
journalHeaderLine(std::uint64_t total, const std::string &fingerprint)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"schema\": \"%s\", \"total\": %" PRIu64
                  ", \"grid\": \"%s\"}\n",
                  journalSchemaName(), total,
                  jsonEscape(fingerprint).c_str());
    return buf;
}

std::string
journalEntryLine(std::uint64_t index, const ResultRow &row)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "{\"index\": %" PRIu64
                  ", \"row\": ", index);
    return buf + ResultTable::rowToJson(row) + "}\n";
}

std::string
journalFailureLine(std::uint64_t index, const JournalFailure &failure)
{
    char head[40];
    std::snprintf(head, sizeof(head), "{\"index\": %" PRIu64
                  ", \"failure\": {", index);
    std::string line = head;
    line += "\"identity\": \"" + jsonEscape(failure.identity) +
        "\", \"error\": \"" + jsonEscape(failure.error) + "\"";
    if (failure.tickKnown) {
        char tick[48];
        std::snprintf(tick, sizeof(tick), ", \"tick\": %" PRIu64,
                      failure.tick);
        line += tick;
    }
    char attempts[32];
    std::snprintf(attempts, sizeof(attempts), ", \"attempts\": %u",
                  static_cast<unsigned>(failure.attempts));
    line += attempts;
    line += "}}\n";
    return line;
}

bool
parseJournal(const std::string &text, JournalData &out,
             std::string &error)
{
    if (text.empty()) {
        error = "empty journal";
        return false;
    }

    // Split on '\n'; remember whether the final line was terminated
    // (an unterminated tail is the crash-mid-append signature).
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    const bool unterminated_tail = !cur.empty();
    if (unterminated_tail)
        lines.push_back(cur);

    JournalData data;

    // Header.
    {
        JsonValue v;
        std::string jerr;
        if (!parseJson(lines[0], v, jerr) || !v.isObject()) {
            error = "malformed journal header: " +
                (jerr.empty() ? std::string("not an object") : jerr);
            return false;
        }
        const JsonValue *schema = v.member("schema");
        if (!schema || !schema->isString() ||
            schema->string() != journalSchemaName()) {
            error = "missing or unexpected journal schema";
            return false;
        }
        const JsonValue *total = v.member("total");
        const JsonValue *grid = v.member("grid");
        if (!total || !total->isNumber() || !grid ||
            !grid->isString()) {
            error = "journal header missing 'total' or 'grid'";
            return false;
        }
        if (unterminated_tail && lines.size() == 1) {
            error = "journal header line is truncated";
            return false;
        }
        data.total = total->u64();
        data.fingerprint = grid->string();
    }

    std::unordered_map<std::uint64_t, std::size_t> seen;
    for (std::size_t l = 1; l < lines.size(); ++l) {
        if (lines[l].empty())
            continue;
        if (unterminated_tail && l + 1 == lines.size()) {
            // Crash artifact: only fully fsync'd (newline-
            // terminated) lines count, even when the torn tail
            // happens to parse -- JournalWriter::openAppend trims
            // it, so accepting it here would desync the file from
            // this view. The grid point is re-run or reported
            // missing, never silently lost.
            data.truncatedTail = true;
            break;
        }
        JournalEntry entry;
        std::string lerr;
        if (!parseEntryLine(lines[l], entry, lerr)) {
            error = "malformed journal line " + std::to_string(l + 1) +
                ": " + lerr;
            return false;
        }
        const auto it = seen.find(entry.index);
        if (it != seen.end()) {
            JournalEntry &prev = data.entries[it->second];
            if (prev.failed) {
                // A later line supersedes a failure: either a retry
                // recovered the row (success) or another attempt
                // failed again. The identity key must agree -- a
                // mismatch means the journal mixes grids.
                const std::string key = entry.failed
                    ? entry.failure.identity
                    : entry.row.identityKey();
                if (key != prev.failure.identity) {
                    error = "grid point " +
                        std::to_string(entry.index) +
                        " superseded with a different identity ('" +
                        key + "' vs '" + prev.failure.identity +
                        "')";
                    return false;
                }
                prev = std::move(entry);
                continue;
            }
            if (entry.failed) {
                error = "failure record after a success for grid "
                        "point " + std::to_string(entry.index);
                return false;
            }
            if (!prev.row.sameAs(entry.row)) {
                error = "conflicting metrics for grid point " +
                    std::to_string(entry.index);
                return false;
            }
            continue; // identical duplicate: collapse
        }
        seen.emplace(entry.index, data.entries.size());
        data.entries.push_back(std::move(entry));
    }

    out = std::move(data);
    return true;
}

ReadFile
readTextFile(const std::string &path, std::string &out,
             std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        const int open_errno = errno; // before allocations clobber it
        error = "cannot open '" + path + "': " +
            std::strerror(open_errno);
        // Only true absence is Absent: an existing-but-unopenable
        // file (permissions, transient I/O) must not be mistaken
        // for "no journal yet" and recreated over.
        return open_errno == ENOENT ? ReadFile::Absent
                                    : ReadFile::Error;
    }
    out.clear();
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        error = "error reading '" + path + "'";
        return ReadFile::Error;
    }
    return ReadFile::Ok;
}

bool
readJournalFile(const std::string &path, JournalData &out,
                std::string &error)
{
    std::string text;
    if (readTextFile(path, text, error) != ReadFile::Ok)
        return false;
    if (!parseJournal(text, out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

bool
mergeJournals(const std::vector<JournalData> &parts, ResultTable &out,
              std::string &error)
{
    if (parts.empty()) {
        error = "no journals to merge";
        return false;
    }
    const std::uint64_t total = parts[0].total;
    const std::string &fingerprint = parts[0].fingerprint;
    for (const JournalData &part : parts) {
        if (part.total != total || part.fingerprint != fingerprint) {
            error = "journals come from different grids "
                    "(total/fingerprint mismatch)";
            return false;
        }
    }

    // Ordered by spec ordinal == grid expansion order.
    std::map<std::uint64_t, const JournalEntry *> by_index;
    std::unordered_map<std::string, std::uint64_t> by_identity;
    for (const JournalData &part : parts) {
        for (const JournalEntry &entry : part.entries) {
            if (entry.index >= total) {
                error = "grid point " + std::to_string(entry.index) +
                    " out of range (grid has " +
                    std::to_string(total) + " points)";
                return false;
            }
            const std::string key = entry.failed
                ? entry.failure.identity
                : entry.row.identityKey();
            const auto it = by_index.find(entry.index);
            if (it != by_index.end()) {
                const JournalEntry &prev = *it->second;
                if (prev.failed != entry.failed) {
                    // One journal completed a grid point another
                    // failed: the sweeps diverged (different build,
                    // injection, or environment) and no automatic
                    // pick is defensible.
                    error = "failure/success collision for grid "
                            "point " + std::to_string(entry.index) +
                        ": one journal completed it, another "
                        "recorded '" +
                        (prev.failed ? prev.failure.error
                                     : entry.failure.error) + "'";
                    return false;
                }
                if (prev.failed)
                    continue; // both failed: keep the first record
                if (!prev.row.sameAs(entry.row)) {
                    error = "conflicting metrics for grid point " +
                        std::to_string(entry.index);
                    return false;
                }
                continue;
            }
            const auto id = by_identity.find(key);
            if (id != by_identity.end()) {
                const JournalEntry &other = *by_index.at(id->second);
                if (other.failed != entry.failed) {
                    error = "failure/success collision: grid points "
                        + std::to_string(id->second) + " and " +
                        std::to_string(entry.index) +
                        " share identity '" + key +
                        "' but only one completed";
                    return false;
                }
                // Grids may legitimately repeat an axis value, in
                // which case the deterministic simulator produces
                // identical rows at both ordinals; only mismatched
                // metrics indicate cross-grid contamination.
                if (!other.failed && !other.row.sameAs(entry.row)) {
                    error = "identity collision: grid points " +
                        std::to_string(id->second) + " and " +
                        std::to_string(entry.index) +
                        " share identity '" + key +
                        "' with different metrics";
                    return false;
                }
            } else {
                by_identity.emplace(key, entry.index);
            }
            by_index.emplace(entry.index, &entry);
        }
    }

    // Unresolved failures: merging would silently bless a sweep
    // that lost rows. The failed point must be re-run first.
    for (const auto &kv : by_index) {
        if (kv.second->failed) {
            error = "grid point " + std::to_string(kv.first) +
                " failed (" + kv.second->failure.error +
                "); re-run it (e.g. --resume) before merging";
            return false;
        }
    }

    if (by_index.size() != total) {
        for (std::uint64_t i = 0; i < total; ++i) {
            if (by_index.find(i) == by_index.end()) {
                error = "incomplete journals: grid point " +
                    std::to_string(i) + " missing (" +
                    std::to_string(by_index.size()) + " of " +
                    std::to_string(total) + " present)";
                return false;
            }
        }
    }

    ResultTable table;
    for (const auto &kv : by_index)
        table.appendRow(kv.second->row);
    out = std::move(table);
    return true;
}

bool
JournalWriter::create(const std::string &path, std::uint64_t total,
                      const std::string &fingerprint,
                      std::string &error, bool exclusive)
{
    close();
    file = std::fopen(path.c_str(), exclusive ? "wbx" : "wb");
    if (!file) {
        error = "cannot create journal '" + path + "': " +
            std::strerror(errno);
        return false;
    }
    return writeLine(journalHeaderLine(total, fingerprint), error);
}

bool
JournalWriter::openAppend(const std::string &path, std::string &error)
{
    close();

    // Trim a torn trailing line (crash mid-append) so new entries
    // start on a fresh line. The reader never counts unterminated
    // lines, so nothing it reported is removed here.
    std::FILE *probe = std::fopen(path.c_str(), "rb");
    if (!probe) {
        error = "cannot open journal '" + path + "': " +
            std::strerror(errno);
        return false;
    }
    std::uint64_t size = 0;
    std::uint64_t last_newline_end = 0;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), probe)) > 0) {
        for (std::size_t i = 0; i < n; ++i) {
            if (buf[i] == '\n')
                last_newline_end = size + i + 1;
        }
        size += n;
    }
    const bool read_error = std::ferror(probe) != 0;
    std::fclose(probe);
    if (read_error) {
        error = "error reading journal '" + path + "'";
        return false;
    }
    if (last_newline_end < size &&
        truncateFile(path, last_newline_end) != 0) {
        error = "cannot trim torn line in journal '" + path + "': " +
            std::strerror(errno);
        return false;
    }

    file = std::fopen(path.c_str(), "ab");
    if (!file) {
        error = "cannot append to journal '" + path + "': " +
            std::strerror(errno);
        return false;
    }
    return true;
}

bool
JournalWriter::append(std::uint64_t index, const ResultRow &row,
                      std::string &error)
{
    if (!file) {
        error = "journal is not open";
        return false;
    }
    return writeLine(journalEntryLine(index, row), error);
}

bool
JournalWriter::appendFailure(std::uint64_t index,
                             const JournalFailure &failure,
                             std::string &error)
{
    if (!file) {
        error = "journal is not open";
        return false;
    }
    return writeLine(journalFailureLine(index, failure), error);
}

void
JournalWriter::crashFlush()
{
    if (file) {
        std::fflush(file);
        c3d_fsync(c3d_fileno(file));
    }
}

bool
JournalWriter::writeLine(const std::string &line, std::string &error)
{
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size()
        || std::fflush(file) != 0 ||
        c3d_fsync(c3d_fileno(file)) != 0) {
        error = std::string("journal write failed: ") +
            std::strerror(errno);
        return false;
    }
    return true;
}

void
JournalWriter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

} // namespace c3d::exp
