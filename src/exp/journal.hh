/**
 * @file
 * Crash-safe sweep journals: incremental checkpoint/resume and
 * shard-merge for distributed sweeps.
 *
 * A journal is a JSONL sidecar next to a sweep run. Line 1 is a
 * header naming the schema, the grid's total spec count, and its
 * identity fingerprint; every subsequent line records one completed
 * grid point as `{"index": N, "row": {...}}` where the row object is
 * exactly the ResultTable::rowToJson() serialization, or one
 * contained failure as `{"index": N, "failure": {...}}` (identity
 * key, diagnostic, attempt count, and -- when known -- the simulated
 * tick). Lines are appended (and fsync'd) as rows complete, in
 * completion order -- the explicit spec ordinal is what restores
 * grid order on read, so any interleaving of workers or shards is
 * equivalent. A success line after a failure line for the same
 * ordinal supersedes it (the audit trail of a retried-and-recovered
 * row); a failure after a success is a loud error.
 *
 * Reader guarantees (docs/sweeps.md "Distributing and resuming
 * sweeps"): a final line without its terminating newline -- the
 * signature of a crash mid-append -- is dropped and reported
 * (openAppend trims the torn bytes before continuing), so that
 * grid point is simply re-run; any other malformed line, any
 * duplicate ordinal with different metrics, and any grid mismatch
 * is a loud error. A grid point is never silently dropped: merge
 * refuses gaps.
 */

#ifndef C3DSIM_EXP_JOURNAL_HH
#define C3DSIM_EXP_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/result_table.hh"

namespace c3d::exp
{

/** A contained row failure, as recorded in the journal. */
struct JournalFailure
{
    std::string identity;    //!< specIdentityKey of the failed row
    std::string error;       //!< diagnostic (location + message)
    std::uint64_t tick = 0;  //!< simulated tick of the failure
    bool tickKnown = false;  //!< tick field is meaningful
    std::uint32_t attempts = 1; //!< attempts made when recorded

    bool sameAs(const JournalFailure &o) const
    {
        return identity == o.identity && error == o.error &&
               tick == o.tick && tickKnown == o.tickKnown &&
               attempts == o.attempts;
    }
};

/** One journal line: a completed or failed grid point. */
struct JournalEntry
{
    std::uint64_t index = 0; //!< spec ordinal in grid expansion order
    ResultRow row;           //!< valid when !failed
    bool failed = false;     //!< line is a failure record
    JournalFailure failure;  //!< valid when failed
};

/** A parsed journal file. */
struct JournalData
{
    std::uint64_t total = 0;  //!< grid size from the header
    std::string fingerprint;  //!< gridFingerprint() from the header
    /** Entries in file order, duplicates already collapsed. */
    std::vector<JournalEntry> entries;
    /** True when a truncated trailing line was dropped. */
    bool truncatedTail = false;
};

/** Journal schema identifier (header "schema" member). */
const char *journalSchemaName();

/** Serialize the header line (newline-terminated). */
std::string journalHeaderLine(std::uint64_t total,
                              const std::string &fingerprint);

/** Serialize one entry line (newline-terminated). */
std::string journalEntryLine(std::uint64_t index,
                             const ResultRow &row);

/** Serialize one failure line (newline-terminated). */
std::string journalFailureLine(std::uint64_t index,
                               const JournalFailure &failure);

/**
 * Parse journal @p text into @p out. Duplicate ordinals carrying
 * identical rows are collapsed; a success line supersedes an earlier
 * failure line for the same ordinal (retry recovery) and a later
 * failure line replaces an earlier one (another failed attempt); a
 * failure after a success, or a supersession whose identity keys
 * disagree, is an error. A final line without its trailing newline
 * is dropped with truncatedTail set (only fully fsync'd lines
 * count). Everything else malformed is an error.
 */
bool parseJournal(const std::string &text, JournalData &out,
                  std::string &error);

/** Outcome of readTextFile. */
enum class ReadFile
{
    Ok,
    Absent, //!< could not be opened (typically: does not exist)
    Error,  //!< opened but reading failed -- contents untrustworthy
};

/**
 * Slurp @p path into @p out. Shared by the journal reader and the
 * sweep tools; the tri-state result lets --resume distinguish "no
 * journal yet" (start fresh) from "journal unreadable" (abort --
 * recreating on a transient read failure would destroy checkpointed
 * rows). @p error is set for both non-Ok outcomes.
 */
ReadFile readTextFile(const std::string &path, std::string &out,
                      std::string &error);

/** Read and parse the journal at @p path. */
bool readJournalFile(const std::string &path, JournalData &out,
                     std::string &error);

/**
 * Merge journals from the same grid (equal total + fingerprint;
 * e.g. one journal per shard) into a complete ResultTable in grid
 * order. Refuses ordinal or identity collisions with mismatched
 * rows, refuses a failure/success collision (one journal succeeded
 * where another failed -- the sweeps diverged), refuses unresolved
 * failures (a failed grid point must be re-run before merging), and
 * refuses incomplete coverage: every ordinal in [0, total) must be
 * present exactly once after deduplication.
 */
bool mergeJournals(const std::vector<JournalData> &parts,
                   ResultTable &out, std::string &error);

/**
 * Crash-safe journal appender. Each append writes one line and
 * flushes it through the OS (fflush + fsync) before returning, so a
 * killed process loses at most the line being written -- which the
 * reader recovers from.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Create @p path and write a fresh header. @p exclusive
     * refuses an existing file atomically (no check-then-create
     * race between processes handed the same path); otherwise an
     * existing file is truncated.
     */
    bool create(const std::string &path, std::uint64_t total,
                const std::string &fingerprint, std::string &error,
                bool exclusive = false);

    /**
     * Open an existing journal for appending. The caller is
     * expected to have validated the contents via readJournalFile.
     */
    bool openAppend(const std::string &path, std::string &error);

    /** Append one completed grid point. */
    bool append(std::uint64_t index, const ResultRow &row,
                std::string &error);

    /** Append one contained row failure. */
    bool appendFailure(std::uint64_t index,
                       const JournalFailure &failure,
                       std::string &error);

    /**
     * Push buffered bytes to the OS. Async-signal-tolerant best
     * effort for terminate/abort handlers: every append already
     * fsync'd, so this only matters if the process dies mid-append,
     * and the reader recovers from the torn tail either way.
     */
    void crashFlush();

    bool isOpen() const { return file != nullptr; }
    void close();

  private:
    bool writeLine(const std::string &line, std::string &error);

    std::FILE *file = nullptr;
};

} // namespace c3d::exp

#endif // C3DSIM_EXP_JOURNAL_HH
