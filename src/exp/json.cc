#include "exp/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace c3d::exp
{

const JsonValue *
JsonValue::member(const std::string &key) const
{
    for (const auto &kv : obj) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.k = Kind::Bool;
    j.b = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v, std::string token)
{
    JsonValue j;
    j.k = Kind::Number;
    j.num = v;
    j.numToken = std::move(token);
    return j;
}

std::uint64_t
JsonValue::u64() const
{
    // Plain integer literal: parse losslessly from the source text.
    if (!numToken.empty() &&
        numToken.find_first_not_of("0123456789") == std::string::npos) {
        char *end = nullptr;
        const std::uint64_t v =
            std::strtoull(numToken.c_str(), &end, 10);
        if (end && *end == '\0')
            return v;
    }
    if (num < 0)
        return 0;
    if (num >= 18446744073709551616.0) // 2^64
        return UINT64_MAX;
    return static_cast<std::uint64_t>(num);
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.k = Kind::String;
    j.str = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue j;
    j.k = Kind::Array;
    j.arr = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> v)
{
    JsonValue j;
    j.k = Kind::Object;
    j.obj = std::move(v);
    return j;
}

namespace
{

/** Recursive-descent parser over a byte buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : s(text), err(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    static constexpr int MaxDepth = 64;

    bool
    fail(const char *msg)
    {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s at offset %zu", msg, pos);
        err = buf;
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > MaxDepth)
            return fail("nesting too deep");
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue::makeNull();
            return true;
          case 't':
            if (!literal("true"))
                return false;
            out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue::makeBool(false);
            return true;
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(JsonValue &out)
    {
        std::string v;
        if (!parseRawString(v))
            return false;
        out = JsonValue::makeString(std::move(v));
        return true;
    }

    bool
    parseRawString(std::string &v)
    {
        ++pos; // opening quote
        while (true) {
            if (pos >= s.size())
                return fail("unterminated string");
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("unterminated escape");
                switch (s[pos]) {
                  case '"': v += '"'; break;
                  case '\\': v += '\\'; break;
                  case '/': v += '/'; break;
                  case 'b': v += '\b'; break;
                  case 'f': v += '\f'; break;
                  case 'n': v += '\n'; break;
                  case 'r': v += '\r'; break;
                  case 't': v += '\t'; break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        return fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        const char h = s[pos + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are passed through as-is; the sweep
                    // schema never emits them).
                    if (code < 0x80) {
                        v += static_cast<char>(code);
                    } else if (code < 0x800) {
                        v += static_cast<char>(0xC0 | (code >> 6));
                        v += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        v += static_cast<char>(0xE0 | (code >> 12));
                        v += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                        v += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++pos;
            } else {
                v += c;
                ++pos;
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        char *end = nullptr;
        const std::string tok = s.substr(start, pos - start);
        const double v = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        out = JsonValue::makeNumber(v, tok);
        return true;
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos; // '['
        std::vector<JsonValue> items;
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        while (true) {
            JsonValue item;
            skipWs();
            if (!parseValue(item, depth + 1))
                return false;
            items.push_back(std::move(item));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                out = JsonValue::makeArray(std::move(items));
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &s;
    std::string &err;
    std::size_t pos = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser p(text, error);
    return p.parse(out);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xFF);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace c3d::exp
