/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * Just enough JSON for the experiment subsystem's needs: the sweep
 * result schema (docs/sweeps.md) round-trips through it, and the
 * bench smoke tests use it to assert that every bench's `--json`
 * output is well-formed. No exceptions; parse failures report a
 * position-annotated message.
 */

#ifndef C3DSIM_EXP_JSON_HH
#define C3DSIM_EXP_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace c3d::exp
{

/** A parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    bool boolean() const { return b; }
    double number() const { return num; }

    /**
     * Integer value of a Number. Parsed losslessly from the source
     * token when it is a plain non-negative integer literal (doubles
     * cannot represent every u64 above 2^53); otherwise derived from
     * the double with clamping to [0, UINT64_MAX].
     */
    std::uint64_t u64() const;
    const std::string &string() const { return str; }
    const std::vector<JsonValue> &array() const { return arr; }

    /** Object member by key; nullptr when absent (or not an object). */
    const JsonValue *member(const std::string &key) const;

    /** Ordered object members (preserves document order). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj;
    }

    // ---- construction (used by the parser) ----------------------------
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    /** @param token the source literal, for lossless u64 access. */
    static JsonValue makeNumber(double v, std::string token = "");
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> v);

  private:
    Kind k = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string numToken;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

/**
 * Parse @p text into @p out. Returns false and sets @p error (with a
 * byte offset) on malformed input. Trailing non-whitespace after the
 * top-level value is an error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

} // namespace c3d::exp

#endif // C3DSIM_EXP_JSON_HH
