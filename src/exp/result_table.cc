#include "exp/result_table.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "exp/json.hh"
#include "exp/sweep_grid.hh"

namespace c3d::exp
{

namespace
{

/** Serialized columns, in order. Keep in sync with docs/sweeps.md. */
const char *const StringCols[] = {"workload", "variant", "design",
                                  "protocol", "predictor", "mapping"};
const char *const IntCols[] = {
    "sockets",          "cores_per_socket",  "scale",
    "dram_cache_mb",    "warmup_ops",        "measure_ops",
    "seed",             "measured_ticks",    "instructions",
    "mem_reads",        "mem_writes",        "remote_mem_reads",
    "remote_mem_writes", "dram_cache_hits",  "dram_cache_misses",
    "llc_misses",       "inter_socket_bytes", "broadcasts",
    "broadcasts_elided", "predictor_trains", "predictor_bypasses",
    "predictor_ghost_hits", "predictor_false_present"};

std::string *
stringField(ResultRow &r, std::size_t i)
{
    std::string *fields[] = {&r.workload, &r.variant, &r.design,
                             &r.protocol, &r.predictor, &r.mapping};
    return fields[i];
}

const std::string *
stringField(const ResultRow &r, std::size_t i)
{
    return stringField(const_cast<ResultRow &>(r), i);
}

std::uint64_t
intFieldValue(const ResultRow &r, std::size_t i)
{
    const std::uint64_t values[] = {
        r.sockets,
        r.coresPerSocket,
        r.scale,
        r.dramCacheMb,
        r.warmupOps,
        r.measureOps,
        r.seed,
        r.metrics.measuredTicks,
        r.metrics.instructions,
        r.metrics.memReads,
        r.metrics.memWrites,
        r.metrics.remoteMemReads,
        r.metrics.remoteMemWrites,
        r.metrics.dramCacheHits,
        r.metrics.dramCacheMisses,
        r.metrics.llcMisses,
        r.metrics.interSocketBytes,
        r.metrics.broadcasts,
        r.metrics.broadcastsElided,
        r.metrics.predictorTrains,
        r.metrics.predictorBypasses,
        r.metrics.predictorGhostHits,
        r.metrics.predictorFalsePresent};
    return values[i];
}

void
setIntField(ResultRow &r, std::size_t i, std::uint64_t v)
{
    switch (i) {
      case 0: r.sockets = static_cast<std::uint32_t>(v); break;
      case 1: r.coresPerSocket = static_cast<std::uint32_t>(v); break;
      case 2: r.scale = static_cast<std::uint32_t>(v); break;
      case 3: r.dramCacheMb = v; break;
      case 4: r.warmupOps = v; break;
      case 5: r.measureOps = v; break;
      case 6: r.seed = v; break;
      case 7: r.metrics.measuredTicks = v; break;
      case 8: r.metrics.instructions = v; break;
      case 9: r.metrics.memReads = v; break;
      case 10: r.metrics.memWrites = v; break;
      case 11: r.metrics.remoteMemReads = v; break;
      case 12: r.metrics.remoteMemWrites = v; break;
      case 13: r.metrics.dramCacheHits = v; break;
      case 14: r.metrics.dramCacheMisses = v; break;
      case 15: r.metrics.llcMisses = v; break;
      case 16: r.metrics.interSocketBytes = v; break;
      case 17: r.metrics.broadcasts = v; break;
      case 18: r.metrics.broadcastsElided = v; break;
      case 19: r.metrics.predictorTrains = v; break;
      case 20: r.metrics.predictorBypasses = v; break;
      case 21: r.metrics.predictorGhostHits = v; break;
      case 22: r.metrics.predictorFalsePresent = v; break;
      default: break;
    }
}

constexpr std::size_t NumStringCols =
    sizeof(StringCols) / sizeof(StringCols[0]);
constexpr std::size_t NumIntCols =
    sizeof(IntCols) / sizeof(IntCols[0]);

/** Deterministic formatting for the derived IPC column. */
std::string
formatIpc(double ipc)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", ipc);
    return buf;
}

/**
 * Validate a serialized ipc token. The value itself is recomputed
 * from the integer columns on emit, but a malformed token means the
 * input is not our schema: reject loudly instead of ignoring it.
 */
bool
validIpcToken(const std::string &s)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

/**
 * One tenant's QoS metrics as a JSON object. Tenant ipc is derived
 * (like the row's) from the tenant's instructions and the row's
 * measured ticks, with the same deterministic formatting.
 */
std::string
tenantToJson(const TenantMetrics &tm, Tick measured_ticks)
{
    std::string out = "{\"name\": \"" + jsonEscape(tm.name) + "\"";
    char buf[64];
    const struct { const char *key; std::uint64_t value; } ints[] = {
        {"instructions", tm.instructions},
        {"loads", tm.loads},
        {"stores", tm.stores},
        {"dram_cache_hits", tm.dramCacheHits},
        {"dram_cache_misses", tm.dramCacheMisses},
        {"dram_cache_occupancy", tm.dramCacheOccupancy},
        {"lat_p50", tm.latP50},
        {"lat_p95", tm.latP95},
        {"lat_p99", tm.latP99}};
    for (const auto &f : ints) {
        std::snprintf(buf, sizeof(buf), ", \"%s\": %" PRIu64, f.key,
                      f.value);
        out += buf;
    }
    out += ", \"ipc\": " + formatIpc(tm.ipc(measured_ticks));
    out += "}";
    return out;
}

/** The row's tenants as a JSON array (empty rows never call this). */
std::string
tenantsToJson(const ResultRow &r)
{
    std::string out = "[";
    for (std::size_t i = 0; i < r.metrics.tenants.size(); ++i) {
        if (i)
            out += ", ";
        out += tenantToJson(r.metrics.tenants[i],
                            r.metrics.measuredTicks);
    }
    out += "]";
    return out;
}

bool
tenantFromJson(const JsonValue &tv, TenantMetrics &out,
               std::string &error)
{
    if (!tv.isObject()) {
        error = "tenant entry is not an object";
        return false;
    }
    TenantMetrics tm;
    const JsonValue *name = tv.member("name");
    if (!name || !name->isString()) {
        error = "tenant missing string field 'name'";
        return false;
    }
    tm.name = name->string();
    const struct { const char *key; std::uint64_t *slot; } ints[] = {
        {"instructions", &tm.instructions},
        {"loads", &tm.loads},
        {"stores", &tm.stores},
        {"dram_cache_hits", &tm.dramCacheHits},
        {"dram_cache_misses", &tm.dramCacheMisses},
        {"dram_cache_occupancy", &tm.dramCacheOccupancy},
        {"lat_p50", &tm.latP50},
        {"lat_p95", &tm.latP95},
        {"lat_p99", &tm.latP99}};
    for (const auto &f : ints) {
        const JsonValue *v = tv.member(f.key);
        if (!v || !v->isNumber()) {
            error = std::string("tenant missing numeric field '") +
                f.key + "'";
            return false;
        }
        *f.slot = v->u64();
    }
    // Tenant ipc is recomputed on emit, as the row's is.
    const JsonValue *ipc = tv.member("ipc");
    if (!ipc || !ipc->isNumber()) {
        error = "tenant missing numeric field 'ipc'";
        return false;
    }
    out = std::move(tm);
    return true;
}

bool
tenantsFromJson(const JsonValue &arr, std::vector<TenantMetrics> &out,
                std::string &error)
{
    if (!arr.isArray()) {
        error = "'tenants' is not an array";
        return false;
    }
    std::vector<TenantMetrics> tenants;
    for (const JsonValue &tv : arr.array()) {
        TenantMetrics tm;
        if (!tenantFromJson(tv, tm, error))
            return false;
        tenants.push_back(std::move(tm));
    }
    out = std::move(tenants);
    return true;
}

bool
sameTenants(const std::vector<TenantMetrics> &a,
            const std::vector<TenantMetrics> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const TenantMetrics &x = a[i], &y = b[i];
        if (x.name != y.name || x.instructions != y.instructions ||
            x.loads != y.loads || x.stores != y.stores ||
            x.dramCacheHits != y.dramCacheHits ||
            x.dramCacheMisses != y.dramCacheMisses ||
            x.dramCacheOccupancy != y.dramCacheOccupancy ||
            x.latP50 != y.latP50 || x.latP95 != y.latP95 ||
            x.latP99 != y.latP99)
            return false;
    }
    return true;
}

/** CSV-quote a field only when it needs it. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

/**
 * Split CSV text into records, honoring quoted fields: a '\n'
 * inside a quoted field belongs to the field, not the record
 * separator (toCsv emits such records for names containing
 * newlines, so the parser must accept them back).
 */
std::vector<std::string>
splitCsvRecords(const std::string &text)
{
    std::vector<std::string> records;
    std::string cur;
    // Flipping on every '"' tracks quoting exactly for emitter
    // output: an escaped "" flips twice and stays inside the field.
    bool quoted = false;
    for (const char c : text) {
        if (c == '\n' && !quoted) {
            records.push_back(cur);
            cur.clear();
            continue;
        }
        if (c == '"')
            quoted = !quoted;
        cur += c;
    }
    if (!cur.empty())
        records.push_back(cur);
    return records;
}

/** Split one CSV record honoring quoted fields. */
bool
splitCsvLine(const std::string &line, std::vector<std::string> &out)
{
    out.clear();
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"' && field.empty()) {
            quoted = true;
        } else if (c == ',') {
            out.push_back(field);
            field.clear();
        } else {
            field += c;
        }
    }
    if (quoted)
        return false;
    out.push_back(field);
    return true;
}

} // namespace

bool
ResultRow::sameAs(const ResultRow &o) const
{
    for (std::size_t i = 0; i < NumStringCols; ++i) {
        if (*stringField(*this, i) != *stringField(o, i))
            return false;
    }
    for (std::size_t i = 0; i < NumIntCols; ++i) {
        if (intFieldValue(*this, i) != intFieldValue(o, i))
            return false;
    }
    return sameTenants(metrics.tenants, o.metrics.tenants);
}

std::string
identityKeyOf(const std::string &workload, const std::string &variant,
              const std::string &design, const std::string &protocol,
              const std::string &predictor, const std::string &mapping,
              std::uint32_t sockets,
              std::uint32_t cores_per_socket, std::uint32_t scale,
              std::uint64_t dram_cache_mb, std::uint64_t warmup_ops,
              std::uint64_t measure_ops, std::uint64_t seed)
{
    char nums[192];
    std::snprintf(nums, sizeof(nums),
                  "|%" PRIu32 "|%" PRIu32 "|%" PRIu32 "|%" PRIu64
                  "|%" PRIu64 "|%" PRIu64 "|%" PRIu64,
                  sockets, cores_per_socket, scale, dram_cache_mb,
                  warmup_ops, measure_ops, seed);
    return workload + '|' + variant + '|' + design + '|' + protocol +
        '|' + predictor + '|' + mapping + nums;
}

std::string
ResultRow::identityKey() const
{
    return identityKeyOf(workload, variant, design, protocol,
                         predictor, mapping, sockets, coresPerSocket,
                         scale, dramCacheMb, warmupOps, measureOps,
                         seed);
}

void
ResultTable::append(const ResultTable &other)
{
    for (const ResultRow &r : other.tableRows)
        tableRows.push_back(r);
}

const ResultRow *
ResultTable::find(std::size_t workload_idx, std::size_t variant_idx,
                  std::size_t design_idx, std::size_t socket_idx,
                  std::size_t dram_idx, std::size_t mapping_idx,
                  std::size_t protocol_idx,
                  std::size_t predictor_idx) const
{
    for (const ResultRow &r : tableRows) {
        if (workload_idx != SIZE_MAX && r.workloadIdx != workload_idx)
            continue;
        if (variant_idx != SIZE_MAX && r.variantIdx != variant_idx)
            continue;
        if (design_idx != SIZE_MAX && r.designIdx != design_idx)
            continue;
        if (socket_idx != SIZE_MAX && r.socketIdx != socket_idx)
            continue;
        if (dram_idx != SIZE_MAX && r.dramIdx != dram_idx)
            continue;
        if (mapping_idx != SIZE_MAX && r.mappingIdx != mapping_idx)
            continue;
        if (protocol_idx != SIZE_MAX && r.protocolIdx != protocol_idx)
            continue;
        if (predictor_idx != SIZE_MAX &&
            r.predictorIdx != predictor_idx)
            continue;
        return &r;
    }
    return nullptr;
}

bool
ResultTable::sameRows(const ResultTable &other) const
{
    if (tableRows.size() != other.tableRows.size())
        return false;
    for (std::size_t i = 0; i < tableRows.size(); ++i) {
        if (!tableRows[i].sameAs(other.tableRows[i]))
            return false;
    }
    return true;
}

const char *
ResultTable::schemaName()
{
    return "c3d-sweep/v3";
}

std::string
ResultTable::rowToJson(const ResultRow &r)
{
    std::string out = "{";
    for (std::size_t c = 0; c < NumStringCols; ++c) {
        out += c ? ", \"" : "\"";
        out += StringCols[c];
        out += "\": \"";
        out += jsonEscape(*stringField(r, c));
        out += "\"";
    }
    for (std::size_t c = 0; c < NumIntCols; ++c) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ", \"%s\": %" PRIu64,
                      IntCols[c], intFieldValue(r, c));
        out += buf;
    }
    out += ", \"ipc\": " + formatIpc(r.metrics.ipc());
    // Composed rows carry a per-tenant QoS breakdown; plain rows
    // omit the member entirely, keeping their serialization
    // byte-identical to pre-composition output.
    if (!r.metrics.tenants.empty())
        out += ", \"tenants\": " + tenantsToJson(r);
    out += "}";
    return out;
}

bool
ResultTable::rowFromJson(const JsonValue &rv, ResultRow &out,
                         std::string &error)
{
    if (!rv.isObject()) {
        error = "row is not an object";
        return false;
    }
    ResultRow row;
    for (std::size_t c = 0; c < NumStringCols; ++c) {
        const JsonValue *v = rv.member(StringCols[c]);
        if (!v || !v->isString()) {
            error = std::string("row missing string field '") +
                StringCols[c] + "'";
            return false;
        }
        *stringField(row, c) = v->string();
    }
    for (std::size_t c = 0; c < NumIntCols; ++c) {
        const JsonValue *v = rv.member(IntCols[c]);
        if (!v || !v->isNumber()) {
            error = std::string("row missing numeric field '") +
                IntCols[c] + "'";
            return false;
        }
        setIntField(row, c, v->u64());
    }
    // ipc is recomputed on emit, but its absence means the object
    // is not a schema row.
    const JsonValue *ipc = rv.member("ipc");
    if (!ipc || !ipc->isNumber()) {
        error = "row missing numeric field 'ipc'";
        return false;
    }
    // Optional per-tenant breakdown (composed-workload rows only).
    if (const JsonValue *tenants = rv.member("tenants")) {
        if (!tenantsFromJson(*tenants, row.metrics.tenants, error))
            return false;
    }
    out = std::move(row);
    return true;
}

std::string
ResultTable::toJson() const
{
    std::string out;
    out += "{\n  \"schema\": \"";
    out += schemaName();
    out += "\",\n  \"rows\": [";
    for (std::size_t i = 0; i < tableRows.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += rowToJson(tableRows[i]);
    }
    out += tableRows.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

std::string
ResultTable::toCsv() const
{
    std::string out;
    for (std::size_t c = 0; c < NumStringCols; ++c) {
        if (c)
            out += ',';
        out += StringCols[c];
    }
    for (std::size_t c = 0; c < NumIntCols; ++c) {
        out += ',';
        out += IntCols[c];
    }
    out += ",ipc,tenants\n";
    for (const ResultRow &r : tableRows) {
        for (std::size_t c = 0; c < NumStringCols; ++c) {
            if (c)
                out += ',';
            out += csvField(*stringField(r, c));
        }
        for (std::size_t c = 0; c < NumIntCols; ++c) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), ",%" PRIu64,
                          intFieldValue(r, c));
            out += buf;
        }
        out += ',' + formatIpc(r.metrics.ipc());
        // The tenants column holds the same JSON array the JSON
        // emitter produces, CSV-quoted; plain rows leave it empty.
        out += ',';
        if (!r.metrics.tenants.empty())
            out += csvField(tenantsToJson(r));
        out += '\n';
    }
    return out;
}

bool
ResultTable::fromJson(const std::string &text, ResultTable &out,
                      std::string &error)
{
    JsonValue root;
    if (!parseJson(text, root, error))
        return false;
    if (!root.isObject()) {
        error = "top-level value is not an object";
        return false;
    }
    const JsonValue *schema = root.member("schema");
    if (!schema || !schema->isString() ||
        schema->string() != schemaName()) {
        error = "missing or unexpected schema";
        return false;
    }
    const JsonValue *rows = root.member("rows");
    if (!rows || !rows->isArray()) {
        error = "missing rows array";
        return false;
    }
    ResultTable table;
    for (const JsonValue &rv : rows->array()) {
        ResultRow row;
        if (!rowFromJson(rv, row, error))
            return false;
        table.appendRow(std::move(row));
    }
    out = std::move(table);
    return true;
}

bool
ResultTable::fromCsv(const std::string &text, ResultTable &out,
                     std::string &error)
{
    const std::vector<std::string> lines = splitCsvRecords(text);
    if (lines.empty()) {
        error = "empty csv";
        return false;
    }

    std::vector<std::string> header;
    if (!splitCsvLine(lines[0], header)) {
        error = "malformed csv header";
        return false;
    }
    const std::size_t expected_cols = NumStringCols + NumIntCols + 2;
    if (header.size() != expected_cols) {
        error = "unexpected csv column count";
        return false;
    }
    for (std::size_t c = 0; c < NumStringCols; ++c) {
        if (header[c] != StringCols[c]) {
            error = "unexpected csv header '" + header[c] + "'";
            return false;
        }
    }
    for (std::size_t c = 0; c < NumIntCols; ++c) {
        if (header[NumStringCols + c] != IntCols[c]) {
            error = "unexpected csv header '" +
                header[NumStringCols + c] + "'";
            return false;
        }
    }
    if (header[expected_cols - 2] != "ipc") {
        error = "unexpected csv header '" +
            header[expected_cols - 2] + "'";
        return false;
    }
    if (header.back() != "tenants") {
        error = "unexpected csv header '" + header.back() + "'";
        return false;
    }

    ResultTable table;
    for (std::size_t l = 1; l < lines.size(); ++l) {
        if (lines[l].empty())
            continue;
        std::vector<std::string> fields;
        if (!splitCsvLine(lines[l], fields) ||
            fields.size() != expected_cols) {
            error = "malformed csv row " + std::to_string(l);
            return false;
        }
        ResultRow row;
        for (std::size_t c = 0; c < NumStringCols; ++c)
            *stringField(row, c) = fields[c];
        for (std::size_t c = 0; c < NumIntCols; ++c) {
            const std::string &field = fields[NumStringCols + c];
            // strtoull alone accepts "" (returns 0) and "-5" (wraps);
            // require a plain non-empty digit string.
            if (field.empty() ||
                field.find_first_not_of("0123456789") !=
                    std::string::npos) {
                error = "bad integer in csv row " + std::to_string(l);
                return false;
            }
            char *end = nullptr;
            const std::uint64_t v =
                std::strtoull(field.c_str(), &end, 10);
            if (!end || *end != '\0') {
                error = "bad integer in csv row " + std::to_string(l);
                return false;
            }
            setIntField(row, c, v);
        }
        // The ipc column is recomputed on emit, but reject tokens
        // that are not numbers at all.
        if (!validIpcToken(fields[expected_cols - 2])) {
            error = "bad ipc in csv row " + std::to_string(l);
            return false;
        }
        // Trailing tenants column: empty for plain rows, otherwise
        // the JSON array tenantsToJson emitted.
        if (!fields.back().empty()) {
            JsonValue tenants;
            if (!parseJson(fields.back(), tenants, error) ||
                !tenantsFromJson(tenants, row.metrics.tenants,
                                 error)) {
                error = "bad tenants in csv row " +
                    std::to_string(l) + " (" + error + ")";
                return false;
            }
        }
        table.appendRow(std::move(row));
    }
    out = std::move(table);
    return true;
}

} // namespace c3d::exp
