/**
 * @file
 * Structured sweep results: one ResultRow per grid point, collected
 * into a ResultTable with deterministic JSON and CSV emitters and
 * matching parsers (round-trip safe).
 *
 * The serialized schema is documented in docs/sweeps.md. Emission is
 * fully deterministic -- fixed key order, fixed number formatting --
 * so two sweeps over the same grid compare byte-for-byte regardless
 * of how many worker threads produced them.
 */

#ifndef C3DSIM_EXP_RESULT_TABLE_HH
#define C3DSIM_EXP_RESULT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace c3d::exp
{

struct RunSpec;
class JsonValue;

/**
 * Canonical grid-point identity: the serialized identity columns
 * joined with '|', in schema order. The single implementation
 * behind ResultRow::identityKey() and specIdentityKey() -- the two
 * must stay byte-identical or resume/merge would refuse (or fail to
 * refuse) valid journals.
 */
std::string identityKeyOf(const std::string &workload,
                          const std::string &variant,
                          const std::string &design,
                          const std::string &protocol,
                          const std::string &predictor,
                          const std::string &mapping,
                          std::uint32_t sockets,
                          std::uint32_t cores_per_socket,
                          std::uint32_t scale,
                          std::uint64_t dram_cache_mb,
                          std::uint64_t warmup_ops,
                          std::uint64_t measure_ops,
                          std::uint64_t seed);

/** Identity + metrics of one completed run. */
struct ResultRow
{
    // ---- identity (the grid point) ------------------------------------
    std::string workload;
    std::string variant; //!< empty when the grid had no variants
    std::string design;
    std::string protocol;  //!< snoopy-family protocol variant
    std::string predictor; //!< DRAM-cache predictor kind
    std::string mapping;
    std::uint32_t sockets = 0;
    std::uint32_t coresPerSocket = 0;
    std::uint32_t scale = 1;
    std::uint64_t dramCacheMb = 0; //!< 0 = machine default
    std::uint64_t warmupOps = 0;
    std::uint64_t measureOps = 0;
    std::uint64_t seed = 0;

    // ---- axis indices (in-memory only; not serialized) ----------------
    std::size_t workloadIdx = 0;
    std::size_t variantIdx = 0;
    std::size_t designIdx = 0;
    std::size_t protocolIdx = 0;
    std::size_t predictorIdx = 0;
    std::size_t socketIdx = 0;
    std::size_t dramIdx = 0;
    std::size_t mappingIdx = 0;

    // ---- measured metrics ---------------------------------------------
    RunResult metrics;

    /** Equality on every serialized field (indices excluded). */
    bool sameAs(const ResultRow &o) const;

    /**
     * Canonical identity of the grid point this row measures: the
     * identity columns joined with '|', matching specIdentityKey()
     * of the RunSpec that produced the row. Two rows with equal
     * keys are the same grid point and must carry equal metrics.
     */
    std::string identityKey() const;
};

/** An ordered collection of result rows. */
class ResultTable
{
  public:
    void appendRow(ResultRow row)
    {
        tableRows.push_back(std::move(row));
    }

    /** Append all of @p other's rows (multi-grid studies). */
    void append(const ResultTable &other);

    const std::vector<ResultRow> &rows() const { return tableRows; }
    std::size_t size() const { return tableRows.size(); }
    bool empty() const { return tableRows.empty(); }

    /**
     * First row matching the given axis indices; nullptr when
     * absent. Pass SIZE_MAX for axes to ignore.
     */
    const ResultRow *find(std::size_t workload_idx,
                          std::size_t variant_idx = SIZE_MAX,
                          std::size_t design_idx = SIZE_MAX,
                          std::size_t socket_idx = SIZE_MAX,
                          std::size_t dram_idx = SIZE_MAX,
                          std::size_t mapping_idx = SIZE_MAX,
                          std::size_t protocol_idx = SIZE_MAX,
                          std::size_t predictor_idx = SIZE_MAX) const;

    /** Row-by-row sameAs comparison. */
    bool sameRows(const ResultTable &other) const;

    // ---- serialization ------------------------------------------------
    std::string toJson() const;
    std::string toCsv() const;

    /** Parse; false + @p error on malformed input. */
    static bool fromJson(const std::string &text, ResultTable &out,
                         std::string &error);
    static bool fromCsv(const std::string &text, ResultTable &out,
                        std::string &error);

    /** Serialized schema identifier. */
    static const char *schemaName();

    // ---- per-row serialization (shared with the sweep journal) ---------

    /**
     * One row as a single-line JSON object, identical member order
     * and formatting to the objects inside toJson().
     */
    static std::string rowToJson(const ResultRow &row);

    /**
     * Parse one row object (as emitted by rowToJson / toJson).
     * Unknown members are ignored; every schema column plus a
     * numeric "ipc" must be present. False + @p error on mismatch.
     */
    static bool rowFromJson(const JsonValue &obj, ResultRow &out,
                            std::string &error);

  private:
    std::vector<ResultRow> tableRows;
};

} // namespace c3d::exp

#endif // C3DSIM_EXP_RESULT_TABLE_HH
