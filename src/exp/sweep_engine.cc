#include "exp/sweep_engine.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace c3d::exp
{

SweepEngine::SweepEngine(unsigned jobs) : workerCount(jobs)
{
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
}

RunResult
SweepEngine::simulateSpec(const RunSpec &spec)
{
    return runWorkload(spec.cfg, spec.profile.scaled(spec.scale),
                       spec.warmupOps, spec.measureOps);
}

ResultRow
SweepEngine::makeRow(const RunSpec &spec, const RunResult &metrics)
{
    ResultRow row;
    row.workload = spec.profile.name;
    row.variant = spec.variantName;
    row.design = designName(spec.cfg.design);
    row.mapping = mappingPolicyName(spec.cfg.mapping);
    row.sockets = spec.cfg.numSockets;
    row.coresPerSocket = spec.cfg.coresPerSocket;
    row.scale = spec.scale;
    row.dramCacheMb = spec.dramCacheMb;
    row.warmupOps = spec.warmupOps;
    row.measureOps = spec.measureOps;
    row.seed = spec.profile.seed;
    row.workloadIdx = spec.workloadIdx;
    row.variantIdx = spec.variantIdx;
    row.designIdx = spec.designIdx;
    row.socketIdx = spec.socketIdx;
    row.dramIdx = spec.dramIdx;
    row.mappingIdx = spec.mappingIdx;
    row.metrics = metrics;
    return row;
}

ResultTable
SweepEngine::run(const SweepGrid &grid) const
{
    return run(grid, &SweepEngine::simulateSpec);
}

ResultTable
SweepEngine::run(const SweepGrid &grid, const RunFn &fn) const
{
    const std::vector<RunSpec> specs = grid.expand();
    std::vector<ResultRow> rows(specs.size());

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            const RunResult metrics = fn(specs[i]);
            rows[i] = makeRow(specs[i], metrics);
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(specs[i], finished, specs.size());
            }
        }
    };

    const unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(workerCount, specs.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    ResultTable table;
    for (ResultRow &row : rows)
        table.add(std::move(row));
    return table;
}

} // namespace c3d::exp
