#include "exp/sweep_engine.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace c3d::exp
{

SweepEngine::SweepEngine(unsigned jobs) : workerCount(jobs)
{
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
}

bool
SweepEngine::setShard(unsigned index, unsigned count)
{
    if (count == 0 || index >= count)
        return false;
    shardIdx = index;
    shardCnt = count;
    return true;
}

RunResult
SweepEngine::simulateSpec(const RunSpec &spec)
{
    return simulateSpec(spec, KernelOptions{});
}

RunResult
SweepEngine::simulateSpec(const RunSpec &spec, KernelOptions kernel)
{
    return runWorkload(spec.cfg, spec.profile.scaled(spec.scale),
                       spec.warmupOps, spec.measureOps, kernel);
}

ResultRow
SweepEngine::makeRow(const RunSpec &spec, const RunResult &metrics)
{
    ResultRow row;
    row.workload = spec.profile.name;
    row.variant = spec.variantName;
    row.design = designName(spec.cfg.design);
    row.mapping = mappingPolicyName(spec.cfg.mapping);
    row.sockets = spec.cfg.numSockets;
    row.coresPerSocket = spec.cfg.coresPerSocket;
    row.scale = spec.scale;
    row.dramCacheMb = spec.dramCacheMb;
    row.warmupOps = spec.warmupOps;
    row.measureOps = spec.measureOps;
    row.seed = spec.profile.seed;
    row.workloadIdx = spec.workloadIdx;
    row.variantIdx = spec.variantIdx;
    row.designIdx = spec.designIdx;
    row.socketIdx = spec.socketIdx;
    row.dramIdx = spec.dramIdx;
    row.mappingIdx = spec.mappingIdx;
    row.metrics = metrics;
    return row;
}

ResultTable
SweepEngine::run(const SweepGrid &grid) const
{
    const KernelOptions k = kernelOpts;
    return run(grid, [k](const RunSpec &spec) {
        return simulateSpec(spec, k);
    });
}

ResultTable
SweepEngine::run(const SweepGrid &grid, const RunFn &fn) const
{
    const std::vector<RunSpec> specs = grid.expand();
    std::vector<ResultRow> rows(specs.size());
    std::vector<char> present(specs.size(), 0);

    // Partition the grid: specs outside this shard are absent from
    // the result, prefilled specs land without re-executing, and
    // the remainder goes to the worker pool.
    std::vector<std::size_t> torun;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i % shardCnt != shardIdx)
            continue;
        const auto pre = prefilled.find(i);
        if (pre != prefilled.end()) {
            rows[i] = pre->second;
            rows[i].workloadIdx = specs[i].workloadIdx;
            rows[i].variantIdx = specs[i].variantIdx;
            rows[i].designIdx = specs[i].designIdx;
            rows[i].socketIdx = specs[i].socketIdx;
            rows[i].dramIdx = specs[i].dramIdx;
            rows[i].mappingIdx = specs[i].mappingIdx;
            present[i] = 1;
        } else {
            torun.push_back(i);
        }
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    auto worker = [&] {
        while (true) {
            if (stopRequested && stopRequested())
                return;
            const std::size_t j =
                next.fetch_add(1, std::memory_order_relaxed);
            if (j >= torun.size())
                return;
            const std::size_t i = torun[j];
            const RunResult metrics = fn(specs[i]);
            rows[i] = makeRow(specs[i], metrics);
            present[i] = 1;
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress || rowSink) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                if (rowSink)
                    rowSink(specs[i], rows[i]);
                if (progress)
                    progress(specs[i], finished, torun.size());
            }
        }
    };

    const unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(workerCount, torun.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    ResultTable table;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (present[i])
            table.appendRow(std::move(rows[i]));
    }
    return table;
}

} // namespace c3d::exp
