#include "exp/sweep_engine.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace c3d::exp
{

SweepEngine::SweepEngine(unsigned jobs) : workerCount(jobs)
{
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
}

bool
SweepEngine::setShard(unsigned index, unsigned count)
{
    if (count == 0 || index >= count)
        return false;
    shardIdx = index;
    shardCnt = count;
    return true;
}

RunResult
SweepEngine::simulateSpec(const RunSpec &spec)
{
    return simulateSpec(spec, RunOptions{});
}

RunResult
SweepEngine::simulateSpec(const RunSpec &spec, const RunOptions &opts)
{
    return runWorkload(spec.cfg, spec.profile.scaled(spec.scale),
                       spec.warmupOps, spec.measureOps, opts);
}

ResultRow
SweepEngine::makeRow(const RunSpec &spec, const RunResult &metrics)
{
    ResultRow row;
    row.workload = spec.profile.name;
    row.variant = spec.variantName;
    row.design = designName(spec.cfg.design);
    row.protocol = protocolName(spec.cfg.protocol);
    row.predictor = predictorKindName(spec.cfg.predictorKind);
    row.mapping = mappingPolicyName(spec.cfg.mapping);
    row.sockets = spec.cfg.numSockets;
    row.coresPerSocket = spec.cfg.coresPerSocket;
    row.scale = spec.scale;
    row.dramCacheMb = spec.dramCacheMb;
    row.warmupOps = spec.warmupOps;
    row.measureOps = spec.measureOps;
    row.seed = spec.profile.seed;
    row.workloadIdx = spec.workloadIdx;
    row.variantIdx = spec.variantIdx;
    row.designIdx = spec.designIdx;
    row.protocolIdx = spec.protocolIdx;
    row.predictorIdx = spec.predictorIdx;
    row.socketIdx = spec.socketIdx;
    row.dramIdx = spec.dramIdx;
    row.mappingIdx = spec.mappingIdx;
    row.metrics = metrics;
    return row;
}

ResultTable
SweepEngine::run(const SweepGrid &grid) const
{
    const RunOptions o = runOpts;
    return run(grid, [o](const RunSpec &spec) {
        return simulateSpec(spec, o);
    });
}

ResultTable
SweepEngine::run(const SweepGrid &grid, const RunFn &fn) const
{
    const std::vector<RunSpec> specs = grid.expand();
    std::vector<ResultRow> rows(specs.size());
    std::vector<char> present(specs.size(), 0);

    // Partition the grid: specs outside this shard are absent from
    // the result, prefilled specs land without re-executing, and
    // the remainder goes to the worker pool.
    std::vector<std::size_t> torun;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i % shardCnt != shardIdx)
            continue;
        const auto pre = prefilled.find(i);
        if (pre != prefilled.end()) {
            rows[i] = pre->second;
            rows[i].workloadIdx = specs[i].workloadIdx;
            rows[i].variantIdx = specs[i].variantIdx;
            rows[i].designIdx = specs[i].designIdx;
            rows[i].protocolIdx = specs[i].protocolIdx;
            rows[i].predictorIdx = specs[i].predictorIdx;
            rows[i].socketIdx = specs[i].socketIdx;
            rows[i].dramIdx = specs[i].dramIdx;
            rows[i].mappingIdx = specs[i].mappingIdx;
            present[i] = 1;
        } else {
            torun.push_back(i);
        }
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    // Abort-policy state: the first contained failure stops workers
    // from claiming and is rethrown after the pool joins.
    std::atomic<bool> abortRun{false};
    std::mutex abort_mutex;
    std::exception_ptr abortError;

    auto worker = [&] {
        while (true) {
            if ((stopRequested && stopRequested()) ||
                abortRun.load(std::memory_order_acquire))
                return;
            const std::size_t j =
                next.fetch_add(1, std::memory_order_relaxed);
            if (j >= torun.size())
                return;
            const std::size_t i = torun[j];

            // Row sandbox: every attempt runs under the row's
            // identity scope (so a SimError raised anywhere inside
            // names this row) and its exception is contained here.
            const std::string identity = specIdentityKey(specs[i]);
            RowFailure fail;
            fail.index = i;
            fail.identity = identity;
            std::exception_ptr raised;
            RunResult metrics;
            bool ok = false;
            const unsigned max_attempts =
                failPolicy == FailPolicy::Retry ? 1 + retryLimit : 1;
            for (unsigned a = 0; a < max_attempts && !ok; ++a) {
                fail.attempts = a + 1;
                try {
                    ErrorIdentityScope scope(identity.c_str());
                    metrics = (a == 0 || !retryFn)
                        ? fn(specs[i]) : retryFn(specs[i]);
                    ok = true;
                    if (a > 0) {
                        fail.recovered = true;
                        fail.degraded = retryFn != nullptr;
                    }
                } catch (const SimError &e) {
                    fail.error = e.location() + ": " + e.message();
                    fail.tick = e.tick();
                    fail.tickKnown = e.tickKnown();
                    raised = std::current_exception();
                } catch (const std::exception &e) {
                    fail.error = e.what();
                    fail.tickKnown = false;
                    raised = std::current_exception();
                } catch (...) {
                    fail.error = "unknown error";
                    fail.tickKnown = false;
                    raised = std::current_exception();
                }
            }

            if (ok) {
                rows[i] = makeRow(specs[i], metrics);
                present[i] = 1;
            }
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress || rowSink || failureSink) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                // Failure first: a journal then reads as failure-
                // then-success for recovered rows (audit trail; the
                // success supersedes on parse).
                if (failureSink && (!ok || fail.recovered))
                    failureSink(fail);
                if (ok && rowSink)
                    rowSink(specs[i], rows[i]);
                if (progress)
                    progress(specs[i], finished, torun.size());
            }
            if (!ok && failPolicy == FailPolicy::Abort) {
                {
                    std::lock_guard<std::mutex> guard(abort_mutex);
                    if (!abortError)
                        abortError = raised;
                }
                abortRun.store(true, std::memory_order_release);
                return;
            }
        }
    };

    const unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(workerCount, torun.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    if (abortError)
        std::rethrow_exception(abortError);

    ResultTable table;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (present[i])
            table.appendRow(std::move(rows[i]));
    }
    return table;
}

} // namespace c3d::exp
