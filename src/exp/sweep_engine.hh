/**
 * @file
 * Parallel sweep execution.
 *
 * A SweepEngine expands a SweepGrid and executes the resulting
 * RunSpecs on a pool of worker threads. Each spec builds its own
 * Runner/Machine/Workload (runs are embarrassingly parallel -- the
 * simulator keeps no cross-run mutable state beyond atomic logging
 * flags), and every result lands in a slot preassigned by grid
 * order, so the result table is identical whatever the worker count:
 * `--jobs 8` and `--jobs 1` emit byte-for-byte equal JSON/CSV.
 *
 * Studies that do not run the timing simulator (e.g. the functional
 * capacity analyses behind Fig. 3) supply a custom run function and
 * still get the pool, the ordering guarantee, and the emitters.
 *
 * For distributed and resumable sweeps the engine additionally
 * supports a shard filter (run only specs with index % N == K),
 * prefilled rows (skip grid points already completed by an earlier,
 * journaled run), a row sink (invoked serially as each row
 * completes, backing the crash-safe journal), and a cooperative
 * stop request (workers stop claiming new specs; claimed runs
 * finish). See docs/sweeps.md "Distributing and resuming sweeps".
 */

#ifndef C3DSIM_EXP_SWEEP_ENGINE_HH
#define C3DSIM_EXP_SWEEP_ENGINE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "exp/result_table.hh"
#include "exp/sweep_grid.hh"

namespace c3d::exp
{

/**
 * What to do when a grid point's run throws (SimError from a panic,
 * a tripped watchdog, or any std::exception).
 *
 * Abort preserves the old behavior at sweep granularity: workers
 * stop claiming and run() rethrows the first failure after the pool
 * joins (in-flight rows still reach the row sink first). Skip
 * contains the failure to its row: the failure is reported through
 * the failure sink and the row is simply absent from the table.
 * Retry re-runs the row up to N more times through the retry
 * function (when set) before giving up as Skip does -- the sweep CLI
 * sets the retry function to the sequential MultiQueue-1 oracle, so
 * a row that failed under the parallel kernel gracefully degrades to
 * the slower deterministic kernel instead of being lost.
 */
enum class FailPolicy
{
    Abort,
    Skip,
    Retry,
};

/**
 * A contained row failure, as reported to the failure sink. One is
 * reported per row whose first attempt failed -- including rows a
 * retry later recovered (recovered=true), so journals keep the full
 * audit trail.
 */
struct RowFailure
{
    std::size_t index = 0;   //!< spec ordinal in grid order
    std::string identity;    //!< specIdentityKey of the row
    std::string error;       //!< diagnostic (location + message)
    std::uint64_t tick = 0;  //!< simulated tick of the failure
    bool tickKnown = false;  //!< tick field is meaningful
    unsigned attempts = 1;   //!< total attempts made on the row
    bool recovered = false;  //!< a later attempt completed the row
    bool degraded = false;   //!< recovery used the retry (fallback) fn
};

/** Executes sweep grids on a worker thread pool. */
class SweepEngine
{
  public:
    /** Maps one grid point to its metrics. */
    using RunFn = std::function<RunResult(const RunSpec &)>;

    /**
     * Failure sink, invoked serially (under the same lock as the
     * progress callback) for each row whose first attempt failed.
     * For recovered rows it fires *before* the row sink, so a
     * journal records failure-then-success in that order.
     */
    using FailureFn = std::function<void(const RowFailure &)>;

    /**
     * Progress callback, invoked serially (under an internal lock)
     * after each run completes: (spec, done_count, total_count).
     * The counts cover the specs this engine actually executes
     * (after shard filtering and prefill skips).
     */
    using ProgressFn = std::function<void(
        const RunSpec &, std::size_t, std::size_t)>;

    /**
     * Row sink, invoked serially (under the same lock as the
     * progress callback) with each freshly-executed row, in
     * completion order. Prefilled rows are not re-reported.
     */
    using RowFn =
        std::function<void(const RunSpec &, const ResultRow &)>;

    /** @param jobs worker threads; 0 = hardware concurrency. */
    explicit SweepEngine(unsigned jobs = 1);

    unsigned jobs() const { return workerCount; }

    /**
     * Kernel selection forwarded to every simulated run. NOT part of
     * row identity: the parallel kernel reproduces the sequential
     * oracle's rows byte-for-byte (tests/test_parallel_kernel.cc),
     * so rows do not record which kernel produced them — exactly as
     * --jobs does not appear in rows.
     */
    void setKernelOptions(KernelOptions k) { runOpts.kernel = k; }
    KernelOptions kernelOptions() const { return runOpts.kernel; }

    /**
     * Full run options (kernel + watchdog budgets + fault plan)
     * forwarded to every simulated run. Like the kernel choice, none
     * of it is row identity: the watchdog only observes and faults
     * only make rows fail.
     */
    void setRunOptions(const RunOptions &o) { runOpts = o; }
    const RunOptions &runOptions() const { return runOpts; }

    void setProgress(ProgressFn fn) { progress = std::move(fn); }

    void setRowSink(RowFn fn) { rowSink = std::move(fn); }

    /**
     * Containment policy for throwing runs (default Abort). For
     * Retry, @p retries is the number of re-runs after the failed
     * first attempt.
     */
    void
    setFailPolicy(FailPolicy p, unsigned retries = 1)
    {
        failPolicy = p;
        retryLimit = retries;
    }

    FailPolicy policy() const { return failPolicy; }

    void setFailureSink(FailureFn fn) { failureSink = std::move(fn); }

    /**
     * Run function used for retry attempts (Retry policy only); the
     * first attempt always uses the primary function. Unset, retries
     * re-run the primary function.
     */
    void setRetryFn(RunFn fn) { retryFn = std::move(fn); }

    /**
     * Restrict execution to shard @p index of @p count: only specs
     * with `spec.index % count == index` run, so the shards of a
     * grid are disjoint and together exhaustive. Returns false
     * (and leaves the filter unchanged) unless index < count.
     */
    bool setShard(unsigned index, unsigned count);

    unsigned shardIndex() const { return shardIdx; }
    unsigned shardCount() const { return shardCnt; }

    /**
     * Supply rows for grid points completed by an earlier run
     * (keyed by spec ordinal). Those specs are not re-executed;
     * their rows land in the result table as-is, with axis indices
     * restored from the spec.
     */
    void setPrefilled(std::unordered_map<std::size_t, ResultRow> rows)
    {
        prefilled = std::move(rows);
    }

    /**
     * Cooperative interruption: checked before each spec is
     * claimed. Once it returns true, workers stop claiming; runs
     * already in flight complete (and still reach the row sink),
     * and run() returns the partial table.
     */
    void setStopRequest(std::function<bool()> fn)
    {
        stopRequested = std::move(fn);
    }

    /** Run every grid point through the timing simulator. */
    ResultTable run(const SweepGrid &grid) const;

    /**
     * Run every grid point through @p fn. Under FailPolicy::Abort a
     * contained failure is rethrown (as the original exception,
     * typically SimError) after the pool joins.
     */
    ResultTable run(const SweepGrid &grid, const RunFn &fn) const;

    /**
     * Default run function: simulate the spec's machine/workload via
     * runWorkload() (warm-up + measurement window).
     */
    static RunResult simulateSpec(const RunSpec &spec);

    /** simulateSpec with explicit run options. */
    static RunResult simulateSpec(const RunSpec &spec,
                                  const RunOptions &opts);

    /** Build the identity-labeled result row for a finished run. */
    static ResultRow makeRow(const RunSpec &spec,
                             const RunResult &metrics);

  private:
    unsigned workerCount;
    unsigned shardIdx = 0;
    unsigned shardCnt = 1;
    RunOptions runOpts;
    FailPolicy failPolicy = FailPolicy::Abort;
    unsigned retryLimit = 1;
    ProgressFn progress;
    RowFn rowSink;
    FailureFn failureSink;
    RunFn retryFn;
    std::unordered_map<std::size_t, ResultRow> prefilled;
    std::function<bool()> stopRequested;
};

} // namespace c3d::exp

#endif // C3DSIM_EXP_SWEEP_ENGINE_HH
