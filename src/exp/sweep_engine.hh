/**
 * @file
 * Parallel sweep execution.
 *
 * A SweepEngine expands a SweepGrid and executes the resulting
 * RunSpecs on a pool of worker threads. Each spec builds its own
 * Runner/Machine/Workload (runs are embarrassingly parallel -- the
 * simulator keeps no cross-run mutable state beyond atomic logging
 * flags), and every result lands in a slot preassigned by grid
 * order, so the result table is identical whatever the worker count:
 * `--jobs 8` and `--jobs 1` emit byte-for-byte equal JSON/CSV.
 *
 * Studies that do not run the timing simulator (e.g. the functional
 * capacity analyses behind Fig. 3) supply a custom run function and
 * still get the pool, the ordering guarantee, and the emitters.
 */

#ifndef C3DSIM_EXP_SWEEP_ENGINE_HH
#define C3DSIM_EXP_SWEEP_ENGINE_HH

#include <cstdint>
#include <functional>

#include "exp/result_table.hh"
#include "exp/sweep_grid.hh"

namespace c3d::exp
{

/** Executes sweep grids on a worker thread pool. */
class SweepEngine
{
  public:
    /** Maps one grid point to its metrics. */
    using RunFn = std::function<RunResult(const RunSpec &)>;

    /**
     * Progress callback, invoked serially (under an internal lock)
     * after each run completes: (spec, done_count, total_count).
     */
    using ProgressFn = std::function<void(
        const RunSpec &, std::size_t, std::size_t)>;

    /** @param jobs worker threads; 0 = hardware concurrency. */
    explicit SweepEngine(unsigned jobs = 1);

    unsigned jobs() const { return workerCount; }

    void setProgress(ProgressFn fn) { progress = std::move(fn); }

    /** Run every grid point through the timing simulator. */
    ResultTable run(const SweepGrid &grid) const;

    /** Run every grid point through @p fn. */
    ResultTable run(const SweepGrid &grid, const RunFn &fn) const;

    /**
     * Default run function: simulate the spec's machine/workload via
     * runWorkload() (warm-up + measurement window).
     */
    static RunResult simulateSpec(const RunSpec &spec);

    /** Build the identity-labeled result row for a finished run. */
    static ResultRow makeRow(const RunSpec &spec,
                             const RunResult &metrics);

  private:
    unsigned workerCount;
    ProgressFn progress;
};

} // namespace c3d::exp

#endif // C3DSIM_EXP_SWEEP_ENGINE_HH
