#include "exp/sweep_grid.hh"

#include <cinttypes>
#include <cstdio>

#include "common/hash.hh"
#include "exp/result_table.hh"

namespace c3d::exp
{

std::string
specIdentityKey(const RunSpec &spec)
{
    return identityKeyOf(spec.profile.name, spec.variantName,
                         designName(spec.cfg.design),
                         protocolName(spec.cfg.protocol),
                         predictorKindName(spec.cfg.predictorKind),
                         mappingPolicyName(spec.cfg.mapping),
                         spec.cfg.numSockets,
                         spec.cfg.coresPerSocket, spec.scale,
                         spec.dramCacheMb, spec.warmupOps,
                         spec.measureOps, spec.profile.seed);
}

std::string
gridFingerprint(const std::vector<RunSpec> &specs)
{
    std::uint64_t h = Fnv1aOffset;
    const auto mix = [&h](const char c) {
        h = fnv1aByte(h, static_cast<unsigned char>(c));
    };
    for (const RunSpec &spec : specs) {
        for (const char c : specIdentityKey(spec))
            mix(c);
        // Trace workloads: fold the file's content hash in, so a
        // journal written against one trace refuses to resume/merge
        // against different contents -- even at the same path. The
        // path itself is deliberately absent (the same trace mounted
        // elsewhere on another shard worker is the same grid).
        if (spec.profile.isTrace()) {
            char tb[32];
            std::snprintf(tb, sizeof(tb), "|trace:%016" PRIx64,
                          spec.profile.traceHash);
            for (const char *p = tb; *p; ++p)
                mix(*p);
        }
        // Compositions fold their semantic hash the same way: it
        // covers the manifest's stream-shaping fields plus every
        // member trace's content hash, so editing the manifest OR
        // any member refuses resume/merge.
        if (spec.profile.isComposition()) {
            char cb[36];
            std::snprintf(cb, sizeof(cb), "|compose:%016" PRIx64,
                          spec.profile.compositionHash);
            for (const char *p = cb; *p; ++p)
                mix(*p);
        }
        mix('\n');
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

std::uint64_t
autoWarmupOps(const WorkloadProfile &unscaled, std::uint64_t base)
{
    return unscaled.fracStream > 0.5 ? 45000 : base;
}

std::uint32_t
paperCoresPerSocket(std::uint32_t sockets)
{
    return sockets == 2 ? 16 : 8;
}

SweepGrid
quickPreset(SweepGrid grid)
{
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 500;
    grid.measureOps = 2000;
    return grid;
}

std::size_t
SweepGrid::size() const
{
    const std::size_t variant_count =
        variants.empty() ? 1 : variants.size();
    return workloads.size() * variant_count * designs.size() *
        protocols.size() * predictors.size() * sockets.size() *
        dramCacheMb.size() * mappings.size();
}

std::vector<RunSpec>
SweepGrid::expand() const
{
    static const std::vector<ConfigVariant> identity{{"", nullptr}};
    const std::vector<ConfigVariant> &vars =
        variants.empty() ? identity : variants;

    std::vector<RunSpec> specs;
    specs.reserve(size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        WorkloadProfile profile = workloads[w];
        if (seed)
            profile.seed = seed;
        for (std::size_t v = 0; v < vars.size(); ++v) {
            for (std::size_t d = 0; d < designs.size(); ++d) {
              for (std::size_t pr = 0; pr < protocols.size(); ++pr) {
               for (std::size_t pd = 0; pd < predictors.size(); ++pd) {
                for (std::size_t s = 0; s < sockets.size(); ++s) {
                    for (std::size_t m = 0; m < dramCacheMb.size();
                         ++m) {
                        for (std::size_t p = 0; p < mappings.size();
                             ++p) {
                            RunSpec spec;
                            spec.index = specs.size();
                            spec.workloadIdx = w;
                            spec.variantIdx = v;
                            spec.designIdx = d;
                            spec.protocolIdx = pr;
                            spec.predictorIdx = pd;
                            spec.socketIdx = s;
                            spec.dramIdx = m;
                            spec.mappingIdx = p;
                            spec.profile = profile;
                            spec.variantName = vars[v].name;
                            spec.scale = scale;
                            spec.dramCacheMb = dramCacheMb[m];
                            spec.measureOps = measureOps;
                            spec.warmupOps = warmupOps
                                ? warmupOps : autoWarmupOps(profile);

                            SystemConfig raw;
                            raw.numSockets = sockets[s];
                            raw.coresPerSocket = coresPerSocket
                                ? coresPerSocket
                                : paperCoresPerSocket(sockets[s]);
                            raw.design = designs[d];
                            raw.protocol = protocols[pr];
                            raw.predictorKind = predictors[pd];
                            raw.mapping = mappings[p];
                            if (dramCacheMb[m])
                                raw.dramCacheBytes =
                                    dramCacheMb[m] << 20;
                            if (vars[v].patch)
                                vars[v].patch(raw);
                            spec.cfg = raw.scaled(scale);
                            specs.push_back(std::move(spec));
                        }
                    }
                }
               }
              }
            }
        }
    }
    return specs;
}

} // namespace c3d::exp
