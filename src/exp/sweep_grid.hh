/**
 * @file
 * Declarative parameter grids for the paper's evaluation sweeps.
 *
 * A SweepGrid names the axes a study varies -- workload profile,
 * config variant (arbitrary SystemConfig patch), coherence design,
 * snoopy protocol variant, DRAM-cache predictor kind, socket count,
 * DRAM-cache capacity, page-mapping policy -- plus the
 * shared run parameters (scale, warm-up/measure quotas, seed).
 * expand() flattens the grid into an ordered list of self-contained
 * RunSpecs; the expansion order is a deterministic nested loop
 * (workload outermost, mapping innermost), so a grid always yields
 * the same spec list and downstream result rows are comparable
 * byte-for-byte between runs.
 */

#ifndef C3DSIM_EXP_SWEEP_GRID_HH
#define C3DSIM_EXP_SWEEP_GRID_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "trace/workload.hh"

namespace c3d::exp
{

/**
 * A named SystemConfig patch: one point of an ad-hoc axis (latency
 * overrides, idealizations, predictor settings, ...). The patch is
 * applied to the unscaled config, before capacity scaling.
 */
struct ConfigVariant
{
    std::string name;
    std::function<void(SystemConfig &)> patch;
};

/** One fully-resolved grid point, ready to run in isolation. */
struct RunSpec
{
    // Row order within the expanded grid (== result-row order).
    std::size_t index = 0;

    // Axis indices, for tabulation by the caller.
    std::size_t workloadIdx = 0;
    std::size_t variantIdx = 0;
    std::size_t designIdx = 0;
    std::size_t protocolIdx = 0;
    std::size_t predictorIdx = 0;
    std::size_t socketIdx = 0;
    std::size_t dramIdx = 0;
    std::size_t mappingIdx = 0;

    SystemConfig cfg;        //!< scaled, variant applied
    WorkloadProfile profile; //!< unscaled (scaled at run time)
    std::string variantName;
    std::uint32_t scale = 1;
    std::uint64_t dramCacheMb = 0; //!< unscaled axis value (0 = default)
    std::uint64_t warmupOps = 0;
    std::uint64_t measureOps = 0;
};

/** Declarative cross-product of sweep axes. */
struct SweepGrid
{
    // ---- axes ---------------------------------------------------------
    std::vector<WorkloadProfile> workloads; //!< unscaled profiles
    std::vector<ConfigVariant> variants;    //!< empty = one identity
    std::vector<Design> designs = {Design::C3D};
    /** Snoopy-family coherence protocol variants. Directory designs
     * keep their fixed engines regardless; every grid point still
     * names its protocol in the row identity, so a grid whose
     * protocol set changed refuses to resume/merge. */
    std::vector<Protocol> protocols = {Protocol::Mesi};
    /** DRAM-cache predictor kinds (docs/predictors.md). Like the
     * protocol axis, the kind is part of every row's identity, so a
     * grid whose predictor set changed refuses to resume/merge. */
    std::vector<PredictorKind> predictors = {PredictorKind::Region};
    std::vector<std::uint32_t> sockets = {4};
    /** Unscaled DRAM-cache capacities in MB; 0 keeps the Table II
     * default (1 GB). */
    std::vector<std::uint64_t> dramCacheMb = {0};
    std::vector<MappingPolicy> mappings = {MappingPolicy::FirstTouch2};

    // ---- shared run parameters ----------------------------------------
    /** Cores per socket; 0 applies the paper rule (2-socket machines
     * get 16 cores/socket, others 8). */
    std::uint32_t coresPerSocket = 0;
    std::uint32_t scale = 32; //!< capacity/footprint shrink factor
    /** References per core before the window opens; 0 = per-workload
     * automatic quota (see autoWarmupOps). */
    std::uint64_t warmupOps = 0;
    std::uint64_t measureOps = 25000;
    std::uint64_t seed = 0; //!< 0 keeps each profile's own seed

    /** Number of grid points (product of axis lengths). */
    std::size_t size() const;

    /** Flatten into ordered, self-contained run specs. */
    std::vector<RunSpec> expand() const;
};

/**
 * Canonical identity of a grid point: the serialized identity
 * columns (workload through seed, docs/sweeps.md order) joined with
 * '|'. Equal to ResultRow::identityKey() for the row a run of this
 * spec produces, so journals and result tables can be matched back
 * to the specs that generated them.
 */
std::string specIdentityKey(const RunSpec &spec);

/**
 * FNV-1a 64 digest (16 hex digits) over every spec's identity key,
 * in expansion order. Two grids share a fingerprint iff they expand
 * to the same run specs, so shard journals can refuse to merge with
 * output from a different grid. Trace workloads additionally fold
 * the trace file's content hash (not its path) into the digest, so
 * resuming or merging against modified trace contents refuses
 * loudly while the same trace at a different mount point matches.
 */
std::string gridFingerprint(const std::vector<RunSpec> &specs);

/**
 * Default warm-up quota for @p unscaled: scan-dominated workloads
 * need the rotating partition to cover each socket's DRAM cache
 * before measuring (mirrors the paper's 100M-access warm-up).
 */
std::uint64_t autoWarmupOps(const WorkloadProfile &unscaled,
                            std::uint64_t base = 12000);

/** Paper rule for cores per socket (2-socket: 16, otherwise 8). */
std::uint32_t paperCoresPerSocket(std::uint32_t sockets);

/**
 * Shrink @p grid to the shared seconds-scale smoke preset (scale
 * 256, 2 cores/socket, short warm-up/measure windows). Used by both
 * `c3d-sweep --quick` and the bench `--quick` flag; figure shapes
 * are NOT preserved at this scale.
 */
SweepGrid quickPreset(SweepGrid grid);

} // namespace c3d::exp

#endif // C3DSIM_EXP_SWEEP_GRID_HH
