/**
 * @file
 * A bandwidth-limited serialization channel.
 *
 * Models any shared resource that serializes byte transfers at a fixed
 * rate: a QPI link, a DDR channel, a die-stacked DRAM channel. The
 * channel tracks when it next becomes free; a transfer occupies it for
 * size/bandwidth ticks starting no earlier than both "now" and the
 * previous transfer's completion.
 */

#ifndef C3DSIM_INTERCONNECT_CHANNEL_HH
#define C3DSIM_INTERCONNECT_CHANNEL_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** One serialized, bandwidth-limited resource. */
class Channel
{
  public:
    Channel() = default;

    /**
     * Configure the channel.
     * @param bw bytes-per-tick bandwidth; an invalid (zero) Bandwidth
     *           means infinite bandwidth (zero occupancy).
     */
    void
    init(Bandwidth bw, StatGroup *stats, const std::string &name)
    {
        bandwidth = bw;
        bytesTransferred.init(stats, name + ".bytes",
                              "bytes serialized through this channel");
        transfers.init(stats, name + ".transfers",
                       "number of transfers");
        busyTicks.init(stats, name + ".busy_ticks",
                       "ticks the channel was occupied");
    }

    /**
     * Reserve the channel for a @p bytes transfer starting at @p now.
     * @return the tick at which the transfer completes.
     */
    Tick
    acquire(Tick now, std::uint64_t bytes)
    {
        ++transfers;
        bytesTransferred += bytes;
        const Tick start = now > nextFree ? now : nextFree;
        const Tick occupancy = bandwidth.serializationTicks(bytes);
        busyTicks += occupancy;
        nextFree = start + occupancy;
        return nextFree;
    }

    /** Tick at which the channel next becomes idle. */
    Tick nextFreeTick() const { return nextFree; }

    /** Total bytes pushed through this channel. */
    std::uint64_t bytes() const { return bytesTransferred.value(); }

  private:
    Bandwidth bandwidth;
    Tick nextFree = 0;
    Counter bytesTransferred;
    Counter transfers;
    Counter busyTicks;
};

} // namespace c3d

#endif // C3DSIM_INTERCONNECT_CHANNEL_HH
