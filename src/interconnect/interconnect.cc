#include "interconnect/interconnect.hh"

#include "sim/slab.hh"

namespace c3d
{

namespace
{

/**
 * Holds a packet's arrival continuation across intermediate hops.
 * Nesting the Callback inside the hop event directly would overflow
 * the inline-capture budget (a Callback is larger than InlineBytes),
 * so multi-hop packets park it in a slab node and the hop event
 * carries only the node pointer. The node may be freed by a
 * different kernel thread than the one that allocated it (the packet
 * moved sockets); the slab is built for that.
 */
struct HopNode
{
    EventQueue::Callback cb;
};

/**
 * Injected livelock: a zero-delay event that reschedules itself, so
 * the queue executes forever at one tick. The watchdog's no-progress
 * detector is what stops it (sim/watchdog.hh); without a watchdog
 * the run would spin, which is exactly the failure being modeled.
 */
void
stallSpin(EventQueue &q)
{
    q.schedule(0, [&q] { stallSpin(q); });
}

} // namespace

Interconnect::Interconnect(QueueRouter &rt, const SystemConfig &cfg,
                           StatGroup *stats)
    : router(rt),
      numSockets(cfg.numSockets),
      hopLatency(cfg.zeroHopLatency ? 0 : cfg.hopLatency),
      controlBytesPerPkt(cfg.controlPacketBytes),
      dataBytesPerPkt(cfg.dataPacketBytes)
{
    c3d_assert(numSockets >= 1, "need at least one socket");

    const Bandwidth bw = cfg.infiniteLinkBandwidth
        ? Bandwidth()
        : Bandwidth::fromGBps(cfg.linkGBps);

    links.resize(static_cast<std::size_t>(numSockets) * numSockets);
    for (SocketId s = 0; s < numSockets; ++s) {
        for (SocketId d = 0; d < numSockets; ++d) {
            if (s == d)
                continue;
            // Only adjacent pairs carry traffic; initialize all for
            // simplicity (non-adjacent ones stay unused).
            links[linkIndex(s, d)].init(
                bw, nullptr,
                "link" + std::to_string(s) + "to" + std::to_string(d));
        }
    }

    packets.init(stats, "noc.packets", "inter-socket packets sent");
    ctrlBytes.init(stats, "noc.control_bytes",
                   "inter-socket control bytes");
    dataBytesStat.init(stats, "noc.data_bytes",
                       "inter-socket data bytes");
    hopTraversals.init(stats, "noc.hop_traversals",
                       "total link traversals");
    linkBytes.init(stats, "noc.link_bytes",
                   "hop-weighted inter-socket bytes");
}

std::uint32_t
Interconnect::linkIndex(SocketId from, SocketId to) const
{
    return from * numSockets + to;
}

SocketId
Interconnect::nextOnPath(SocketId from, SocketId dst) const
{
    c3d_assert(from != dst, "no path needed");
    if (numSockets <= 2)
        return dst;
    // Bidirectional ring: step in the direction of the shorter arc.
    const std::uint32_t cw = (dst + numSockets - from) % numSockets;
    const std::uint32_t ccw = (from + numSockets - dst) % numSockets;
    if (cw <= ccw)
        return (from + 1) % numSockets;
    return (from + numSockets - 1) % numSockets;
}

std::uint32_t
Interconnect::hopCount(SocketId src, SocketId dst) const
{
    if (src == dst)
        return 0;
    if (numSockets <= 2)
        return 1;
    const std::uint32_t cw = (dst + numSockets - src) % numSockets;
    const std::uint32_t ccw = (src + numSockets - dst) % numSockets;
    return cw < ccw ? cw : ccw;
}

Tick
Interconnect::baseLatency(SocketId src, SocketId dst) const
{
    return static_cast<Tick>(hopCount(src, dst)) * hopLatency;
}

void
Interconnect::send(SocketId src, SocketId dst, PacketKind kind,
                   EventQueue::Callback onArrival)
{
    if (src == dst) {
        // Same-socket "delivery": no network involved, but still an
        // event on src's own queue — never an inline call on the
        // caller's stack (reentrancy hazard, and an ordering bug
        // under per-socket queues). Pinned by test_interconnect.
        router.at(src).schedule(0, std::move(onArrival));
        return;
    }

    if (fault && fault->armed()) {
        const Tick now = router.at(src).now();
        if (fault->shouldPanic(now)) {
            // The diagnostic names the *configured* tick so the
            // message is stable across reruns even if traffic
            // density shifts the firing send by a few ticks.
            c3d_panic("injected fault: panic@%llu (inter-socket "
                      "send %u->%u at tick %llu)",
                      static_cast<unsigned long long>(
                          fault->armedPlan().at),
                      src, dst,
                      static_cast<unsigned long long>(now));
        }
        if (fault->takeHang(now)) {
            // Swallow the packet: its arrival continuation never
            // runs and the transaction never completes. The kernel's
            // drain checks (Runner/CellExecutor) report the hang.
            return;
        }
        if (fault->takeStall()) {
            stallSpin(router.at(src));
            return;
        }
        if (fault->takeBlock(now)) {
            // Hard stall inside the *current* event: the executing
            // kernel thread parks here until released. The in-band
            // watchdog never sees it (its checks run between
            // events); only the sibling wall-clock watchdog can
            // contain the row.
            faultBlockWait();
            return; // once released, the packet is dropped (as Hang)
        }
    }

    const std::uint32_t bytes = kind == PacketKind::Data
        ? dataBytesPerPkt : controlBytesPerPkt;
    ++packets;
    if (kind == PacketKind::Data)
        dataBytesStat += bytes;
    else
        ctrlBytes += bytes;

    // Walk the path hop by hop. Each link is acquired when the
    // packet actually reaches that hop (store-and-forward), so a
    // link's occupancy reflects real arrival order rather than
    // far-future reservations.
    forwardHop(src, dst, bytes, std::move(onArrival));
}

void
Interconnect::forwardHop(SocketId at, SocketId dst, std::uint32_t bytes,
                         EventQueue::Callback onArrival)
{
    c3d_assert(at != dst, "forwardHop with no hop to take");
    const SocketId next = nextOnPath(at, dst);
    Channel &link = links[linkIndex(at, next)];
    const Tick done =
        link.acquire(router.at(at).now(), bytes) + hopLatency;
    ++hopTraversals;
    linkBytes += bytes;
    if (next == dst) {
        // Final hop: the arrival event IS the user's continuation.
        router.inject(at, dst, done, std::move(onArrival));
        return;
    }
    // Intermediate hop: park the continuation in a slab node so the
    // hop event itself stays within the inline-capture budget.
    auto *node = static_cast<HopNode *>(slab::alloc(sizeof(HopNode)));
    ::new (node) HopNode{std::move(onArrival)};
    router.inject(at, next, done,
                  [this, next, dst, bytes, node] {
                      EventQueue::Callback cb = std::move(node->cb);
                      node->~HopNode();
                      slab::free(node, sizeof(HopNode));
                      forwardHop(next, dst, bytes, std::move(cb));
                  });
}

std::uint64_t
Interconnect::totalBytes() const
{
    return ctrlBytes.value() + dataBytesStat.value();
}

} // namespace c3d
