/**
 * @file
 * Inter-socket interconnect: 2-socket point-to-point or 4..N-socket
 * bidirectional ring (Table II).
 *
 * A message from socket A to socket B traverses hop-by-hop links along
 * the shortest ring direction; each hop adds a fixed latency (20 ns
 * default) and serializes the packet through that hop's link channel
 * (25.6 GB/s). Control packets are 16 B, data packets 80 B.
 */

#ifndef C3DSIM_INTERCONNECT_INTERCONNECT_HH
#define C3DSIM_INTERCONNECT_INTERCONNECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "interconnect/channel.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "sim/queue_router.hh"

namespace c3d
{

/** Packet class for traffic accounting. */
enum class PacketKind : std::uint8_t
{
    Control, //!< requests, acks, invalidations (16 B)
    Data,    //!< cache-line-carrying responses (80 B)
};

/**
 * The socket-to-socket network.
 *
 * Concurrency contract (parallel kernel): send()/forwardHop() must be
 * called from the thread executing the source socket `at`. Each
 * directed link's Channel is only ever acquired by events executing
 * at its source endpoint, so channel state needs no locking; the
 * traffic counters are relaxed atomics. Cross-socket delivery goes
 * through QueueRouter::inject — the only cross-queue edge — and every
 * injected arrival lands at least one hop latency in the future,
 * which is exactly the lookahead window the cell executor
 * synchronizes on.
 */
class Interconnect
{
  public:
    /**
     * @param router per-socket event-queue router
     * @param cfg    machine configuration (topology, latencies)
     * @param stats  stat registry
     */
    Interconnect(QueueRouter &router, const SystemConfig &cfg,
                 StatGroup *stats);

    /**
     * Send a packet from @p src to @p dst, invoking @p onArrival when
     * it is delivered. @p src may equal @p dst, in which case the
     * delivery is a zero-delay event on src's own queue — never an
     * inline call, so callers can't reenter themselves through a
     * same-socket response.
     */
    void send(SocketId src, SocketId dst, PacketKind kind,
              EventQueue::Callback onArrival);

    /**
     * Attach the machine's fault injector (testing only; see
     * sim/fault_injector.hh). Armed faults trigger on inter-socket
     * sends -- the chokepoint every design's coherence traffic
     * crosses -- so each failure class fires deterministically under
     * the sequential kernels.
     */
    void setFaultInjector(FaultInjector *f) { fault = f; }

    /** Number of ring/P2P hops between two sockets. */
    std::uint32_t hopCount(SocketId src, SocketId dst) const;

    /** One-way latency between two sockets excluding bandwidth. */
    Tick baseLatency(SocketId src, SocketId dst) const;

    /** Total bytes injected into the network (counted once/packet). */
    std::uint64_t totalBytes() const;

    /** Hop-weighted bytes: each link traversal charges the packet. */
    std::uint64_t linkTraversalBytes() const { return linkBytes.value(); }

    std::uint64_t controlBytes() const { return ctrlBytes.value(); }
    std::uint64_t dataBytes() const { return dataBytesStat.value(); }
    std::uint64_t packetsSent() const { return packets.value(); }

  private:
    /** Index of the directed link from @p from toward @p to (1 hop). */
    std::uint32_t linkIndex(SocketId from, SocketId to) const;

    /** Next socket along the shortest path from @p from to @p dst. */
    SocketId nextOnPath(SocketId from, SocketId dst) const;

    /** Store-and-forward one hop; recurses until delivery. */
    void forwardHop(SocketId at, SocketId dst, std::uint32_t bytes,
                    EventQueue::Callback onArrival);

    QueueRouter &router;
    FaultInjector *fault = nullptr; //!< armed only in testing runs
    const std::uint32_t numSockets;
    const Tick hopLatency;
    const std::uint32_t controlBytesPerPkt;
    const std::uint32_t dataBytesPerPkt;

    /** Directed links: for each socket, cw and ccw (ring), or the
     * single peer link (P2P). links[from * numSockets + to] for
     * adjacent pairs. */
    std::vector<Channel> links;

    Counter packets;
    Counter ctrlBytes;
    Counter dataBytesStat;
    Counter hopTraversals;
    Counter linkBytes;
};

} // namespace c3d

#endif // C3DSIM_INTERCONNECT_INTERCONNECT_HH
