/**
 * @file
 * TLB/page-table private-vs-shared page classification (§IV-D).
 *
 * Page-table entries are extended with an owner core id and a
 * classification bit. The first access classifies the page private to
 * the touching thread; a later access by a different thread
 * re-classifies it shared (one-way transition; we do not model thread
 * migration, the other mismatch cause in the paper). C3D consults the
 * classification on write misses: a GetX to a private page may skip
 * the invalidation broadcast.
 */

#ifndef C3DSIM_MAPPING_PAGE_CLASSIFIER_HH
#define C3DSIM_MAPPING_PAGE_CLASSIFIER_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** Per-page private/shared tracking. */
class PageClassifier
{
  public:
    explicit PageClassifier(StatGroup *stats)
    {
        classifiedPrivate.init(stats, "classifier.private_pages",
                               "pages first-classified private");
        reclassified.init(stats, "classifier.reclassified",
                          "private->shared transitions");
        trapCount.init(stats, "classifier.traps",
                       "OS traps (first touch or reclassification)");
    }

    /**
     * Record an access by @p core and return whether the page is
     * currently private to the accessor.
     * @param trapped set when the access took an OS trap (first touch
     *        or private->shared transition), which costs the core
     *        the configured trap penalty.
     */
    bool
    accessAndClassify(Addr addr, CoreId core, bool &trapped)
    {
        trapped = false;
        const Addr page = pageNumber(addr);
        auto it = table.find(page);
        if (it == table.end()) {
            table.emplace(page, Entry{core, /*shared=*/false});
            ++classifiedPrivate;
            ++trapCount;
            trapped = true;
            return true;
        }
        Entry &e = it->second;
        if (e.shared)
            return false;
        if (e.owner == core)
            return true;
        // Active sharing: private -> shared, trapping the owner to
        // flush pending writes (§IV-D). No shootdown needed.
        e.shared = true;
        ++reclassified;
        ++trapCount;
        trapped = true;
        return false;
    }

    /** Classification only, without recording an access. */
    bool
    isPrivateTo(Addr addr, CoreId core) const
    {
        auto it = table.find(pageNumber(addr));
        return it != table.end() && !it->second.shared &&
            it->second.owner == core;
    }

    std::uint64_t privatePages() const
    {
        return classifiedPrivate.value() - reclassified.value();
    }
    std::uint64_t reclassifications() const
    {
        return reclassified.value();
    }

  private:
    struct Entry
    {
        CoreId owner;
        bool shared;
    };

    std::unordered_map<Addr, Entry> table;
    Counter classifiedPrivate;
    Counter reclassified;
    Counter trapCount;
};

} // namespace c3d

#endif // C3DSIM_MAPPING_PAGE_CLASSIFIER_HH
