/**
 * @file
 * Physical page placement across sockets (§V "Memory Allocation
 * Policy"): Interleave (INT), First-Touch-1 (FT1, from application
 * start) and First-Touch-2 (FT2, from the start of the parallel
 * phase).
 *
 * FT1's known pathology -- large regions mapped to one socket because
 * a single thread initializes memory before the parallel phase -- is
 * reproduced by letting workloads pre-touch pages (the serial
 * initialization) before any timed access.
 */

#ifndef C3DSIM_MAPPING_PAGE_MAPPER_HH
#define C3DSIM_MAPPING_PAGE_MAPPER_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/**
 * Assigns every page a home socket.
 *
 * Under the parallel kernel first-touch placement is deferred
 * (@p deferred_touch): cores cannot mutate the shared page map
 * mid-cell from several threads, and the map-at-access-time shortcut
 * was never architecturally honest anyway — a real first touch takes
 * an OS page fault before the access can proceed. Instead, a core
 * touching an unresolved page files a claim (timestamped with its
 * issue tick) and retries the access at the next synchronization
 * boundary; the cell executor's single-threaded barrier hook commits
 * all claims in (tick, core) order, so placement is deterministic for
 * any worker count. The page map is then read-only during cell
 * execution.
 */
class PageMapper
{
  public:
    PageMapper(MappingPolicy policy, std::uint32_t num_sockets,
               StatGroup *stats, bool deferred_touch = false)
        : policy(policy), numSockets(num_sockets),
          deferred(deferred_touch &&
                   policy != MappingPolicy::Interleave)
    {
        pagesMapped.init(stats, "mapper.pages_mapped",
                         "distinct pages placed");
        perSocketPages.resize(num_sockets);
        for (std::uint32_t s = 0; s < num_sockets; ++s) {
            perSocketPages[s].init(
                stats,
                "mapper.socket" + std::to_string(s) + "_pages",
                "pages homed at this socket");
        }
        if (deferred)
            claimBufs.resize(num_sockets);
    }

    /**
     * Serial-phase initialization touch (FT1 only). Called by the
     * workload setup for every page the single-threaded init phase
     * would write; under FT1 this pins the page to @p socket.
     */
    void
    preTouch(Addr addr, SocketId socket)
    {
        if (policy != MappingPolicy::FirstTouch1)
            return;
        mapIfNew(pageNumber(addr), socket);
    }

    /**
     * Resolve the home socket of @p addr for an access issued by
     * @p socket. First-touch policies place unmapped pages here.
     */
    SocketId
    homeOf(Addr addr, SocketId socket)
    {
        if (policy == MappingPolicy::Interleave)
            return static_cast<SocketId>(pageNumber(addr) % numSockets);

        const Addr page = pageNumber(addr);
        auto it = map.find(page);
        if (it != map.end())
            return it->second;
        c3d_assert(!deferred,
                   "unresolved page reached homeOf under deferred "
                   "first-touch; the issue path must claim first");
        return mapIfNew(page, socket);
    }

    /** True when first-touch placement goes through claim(). */
    bool deferredTouch() const { return deferred; }

    /** True when homeOf() can answer without placing a page. */
    bool
    resolved(Addr addr) const
    {
        if (policy == MappingPolicy::Interleave)
            return true;
        return map.find(pageNumber(addr)) != map.end();
    }

    /**
     * File a first-touch claim from @p socket for @p addr (deferred
     * mode). Called from the claiming socket's kernel thread; the
     * per-socket buffers keep filing contention-free.
     */
    void
    claim(SocketId socket, Addr addr, Tick tick, CoreId core)
    {
        c3d_assert(deferred, "claim() outside deferred mode");
        claimBufs[socket].push_back(
            Claim{tick, core, pageNumber(addr), socket});
    }

    /**
     * Place all pending claims, first touch winning in (issue tick,
     * core) order — the same winner a single-threaded kernel with an
     * OS fault queue would pick, independent of worker count. Runs
     * on the cell executor's barrier master only.
     */
    void
    commitClaims()
    {
        pendingClaims.clear();
        for (auto &buf : claimBufs) {
            pendingClaims.insert(pendingClaims.end(), buf.begin(),
                                 buf.end());
            buf.clear();
        }
        std::sort(pendingClaims.begin(), pendingClaims.end(),
                  [](const Claim &a, const Claim &b) {
                      if (a.tick != b.tick)
                          return a.tick < b.tick;
                      return a.core < b.core;
                  });
        for (const Claim &c : pendingClaims)
            mapIfNew(c.page, c.socket);
        pendingClaims.clear();
    }

    /** Home of an already-placed page; interleave for unmapped. */
    SocketId
    homeOfExisting(Addr addr) const
    {
        if (policy == MappingPolicy::Interleave)
            return static_cast<SocketId>(pageNumber(addr) % numSockets);
        auto it = map.find(pageNumber(addr));
        return it != map.end() ? it->second : 0;
    }

    MappingPolicy policyKind() const { return policy; }
    std::uint64_t mappedPages() const { return map.size(); }

    /** Pages homed at @p socket (placement-balance inspection). */
    std::uint64_t
    pagesAt(SocketId socket) const
    {
        return perSocketPages.at(socket).value();
    }

  private:
    SocketId
    mapIfNew(Addr page, SocketId socket)
    {
        auto [it, inserted] = map.emplace(page, socket);
        if (inserted) {
            ++pagesMapped;
            ++perSocketPages[socket];
        }
        return it->second;
    }

    struct Claim
    {
        Tick tick;
        CoreId core;
        Addr page;
        SocketId socket;
    };

    const MappingPolicy policy;
    const std::uint32_t numSockets;
    const bool deferred;
    std::unordered_map<Addr, SocketId> map;
    Counter pagesMapped;
    std::vector<Counter> perSocketPages;
    /** claimBufs[socket]: claims filed by that socket's thread. */
    std::vector<std::vector<Claim>> claimBufs;
    std::vector<Claim> pendingClaims; //!< commitClaims scratch
};

} // namespace c3d

#endif // C3DSIM_MAPPING_PAGE_MAPPER_HH
