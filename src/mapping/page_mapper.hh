/**
 * @file
 * Physical page placement across sockets (§V "Memory Allocation
 * Policy"): Interleave (INT), First-Touch-1 (FT1, from application
 * start) and First-Touch-2 (FT2, from the start of the parallel
 * phase).
 *
 * FT1's known pathology -- large regions mapped to one socket because
 * a single thread initializes memory before the parallel phase -- is
 * reproduced by letting workloads pre-touch pages (the serial
 * initialization) before any timed access.
 */

#ifndef C3DSIM_MAPPING_PAGE_MAPPER_HH
#define C3DSIM_MAPPING_PAGE_MAPPER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{

/** Assigns every page a home socket. */
class PageMapper
{
  public:
    PageMapper(MappingPolicy policy, std::uint32_t num_sockets,
               StatGroup *stats)
        : policy(policy), numSockets(num_sockets)
    {
        pagesMapped.init(stats, "mapper.pages_mapped",
                         "distinct pages placed");
        perSocketPages.resize(num_sockets);
        for (std::uint32_t s = 0; s < num_sockets; ++s) {
            perSocketPages[s].init(
                stats,
                "mapper.socket" + std::to_string(s) + "_pages",
                "pages homed at this socket");
        }
    }

    /**
     * Serial-phase initialization touch (FT1 only). Called by the
     * workload setup for every page the single-threaded init phase
     * would write; under FT1 this pins the page to @p socket.
     */
    void
    preTouch(Addr addr, SocketId socket)
    {
        if (policy != MappingPolicy::FirstTouch1)
            return;
        mapIfNew(pageNumber(addr), socket);
    }

    /**
     * Resolve the home socket of @p addr for an access issued by
     * @p socket. First-touch policies place unmapped pages here.
     */
    SocketId
    homeOf(Addr addr, SocketId socket)
    {
        if (policy == MappingPolicy::Interleave)
            return static_cast<SocketId>(pageNumber(addr) % numSockets);

        const Addr page = pageNumber(addr);
        auto it = map.find(page);
        if (it != map.end())
            return it->second;
        return mapIfNew(page, socket);
    }

    /** Home of an already-placed page; interleave for unmapped. */
    SocketId
    homeOfExisting(Addr addr) const
    {
        if (policy == MappingPolicy::Interleave)
            return static_cast<SocketId>(pageNumber(addr) % numSockets);
        auto it = map.find(pageNumber(addr));
        return it != map.end() ? it->second : 0;
    }

    MappingPolicy policyKind() const { return policy; }
    std::uint64_t mappedPages() const { return map.size(); }

    /** Pages homed at @p socket (placement-balance inspection). */
    std::uint64_t
    pagesAt(SocketId socket) const
    {
        return perSocketPages.at(socket).value();
    }

  private:
    SocketId
    mapIfNew(Addr page, SocketId socket)
    {
        auto [it, inserted] = map.emplace(page, socket);
        if (inserted) {
            ++pagesMapped;
            ++perSocketPages[socket];
        }
        return it->second;
    }

    const MappingPolicy policy;
    const std::uint32_t numSockets;
    std::unordered_map<Addr, SocketId> map;
    Counter pagesMapped;
    std::vector<Counter> perSocketPages;
};

} // namespace c3d

#endif // C3DSIM_MAPPING_PAGE_MAPPER_HH
