#include "mem/memory_controller.hh"

namespace c3d
{

MemoryController::MemoryController(EventQueue &eq,
                                   const SystemConfig &cfg,
                                   SocketId socket, StatGroup *stats)
    : eventq(eq), accessLatency(cfg.memLatency)
{
    c3d_assert(cfg.memChannels >= 1, "memory needs a channel");

    const Bandwidth bw = cfg.infiniteMemBandwidth
        ? Bandwidth()
        : Bandwidth::fromGBps(cfg.memChannelGBps);

    const std::string prefix = "socket" + std::to_string(socket) +
        ".mem";
    channels.resize(cfg.memChannels);
    for (std::uint32_t i = 0; i < cfg.memChannels; ++i) {
        channels[i].init(bw, stats,
                         prefix + ".ch" + std::to_string(i));
    }

    readCount.init(stats, prefix + ".reads", "memory line reads");
    writeCount.init(stats, prefix + ".writes", "memory line writes");
    remoteReadCount.init(stats, prefix + ".remote_reads",
                         "reads issued by remote sockets");
    remoteWriteCount.init(stats, prefix + ".remote_writes",
                          "writes issued by remote sockets");
    readLatency.init(stats, prefix + ".read_latency",
                     "read service latency (ticks)");
}

Channel &
MemoryController::channelFor(Addr addr)
{
    // Interleave blocks across channels.
    return channels[blockNumber(addr) % channels.size()];
}

void
MemoryController::read(Addr addr, bool remote,
                       EventQueue::Callback done)
{
    ++readCount;
    if (remote)
        ++remoteReadCount;

    const Tick start = eventq.now();
    const Tick dataReady =
        channelFor(addr).acquire(start + accessLatency, BlockBytes);
    readLatency.sample(dataReady - start);
    eventq.scheduleAt(dataReady, std::move(done));
}

void
MemoryController::write(Addr addr, bool remote)
{
    ++writeCount;
    if (remote)
        ++remoteWriteCount;
    // Posted write: occupy the channel after the access latency.
    channelFor(addr).acquire(eventq.now() + accessLatency, BlockBytes);
}

} // namespace c3d
