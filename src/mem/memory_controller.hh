/**
 * @file
 * Main-memory timing model: a per-socket memory controller fronting
 * N DDR channels (Table II: 50 ns access, DDR3-1600, 2 channels of
 * 12.8 GB/s).
 *
 * The model charges a fixed access latency plus channel serialization
 * of the 64 B line; requests hash to channels by block address, so
 * hot channels queue up and congestion is visible (Fig. 2's
 * infinite-bandwidth idealization disables the serialization).
 */

#ifndef C3DSIM_MEM_MEMORY_CONTROLLER_HH
#define C3DSIM_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "interconnect/channel.hh"
#include "sim/event_queue.hh"

namespace c3d
{

/** One socket's slice of physical memory. */
class MemoryController
{
  public:
    MemoryController(EventQueue &eq, const SystemConfig &cfg,
                     SocketId socket, StatGroup *stats);

    /**
     * Issue a read of the block at @p addr; @p done fires when the
     * data is available at the controller. The continuation goes
     * straight into the event queue, so passing a lambda here stores
     * its capture inline in the event (no std::function detour).
     * @param remote whether the requester is on another socket
     *               (for local/remote accounting only).
     */
    void read(Addr addr, bool remote, EventQueue::Callback done);

    /**
     * Issue a write of the block at @p addr. Writes are posted: the
     * controller absorbs them without a completion callback, but they
     * still occupy channel bandwidth.
     */
    void write(Addr addr, bool remote);

    std::uint64_t reads() const { return readCount.value(); }
    std::uint64_t writes() const { return writeCount.value(); }
    std::uint64_t remoteReads() const { return remoteReadCount.value(); }
    std::uint64_t remoteWrites() const { return remoteWriteCount.value(); }

  private:
    Channel &channelFor(Addr addr);

    EventQueue &eventq;
    const Tick accessLatency;
    std::vector<Channel> channels;

    Counter readCount;
    Counter writeCount;
    Counter remoteReadCount;
    Counter remoteWriteCount;
    Histogram readLatency;
};

} // namespace c3d

#endif // C3DSIM_MEM_MEMORY_CONTROLLER_HH
