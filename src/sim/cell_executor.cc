#include "sim/cell_executor.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/log.hh"

namespace c3d
{

CellExecutor::CellExecutor(Machine &machine, unsigned num_threads)
    : m(machine),
      numThreads(std::max(1u,
                          std::min<unsigned>(num_threads,
                                             machine.numSockets()))),
      cellW(machine.cellWidth())
{
    c3d_assert(m.kernelMode() == KernelMode::MultiQueue,
               "CellExecutor needs a MultiQueue machine");
    c3d_assert(cellW > 0, "cell executor needs a hop latency");
}

void
CellExecutor::run(const BoundaryHook &boundary)
{
    cellBase = 0;
    flushParity = 0;
    stop = false;
    workDone = false;
    cells = 0;
    arrived.store(0, std::memory_order_relaxed);
    sense.store(false, std::memory_order_relaxed);
    faulted.store(false, std::memory_order_relaxed);
    firstFault = nullptr;

    if (numThreads == 1) {
        workerLoop(0, boundary);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(numThreads - 1);
        for (unsigned wid = 1; wid < numThreads; ++wid) {
            pool.emplace_back([this, wid, &boundary] {
                workerLoop(wid, boundary);
            });
        }
        workerLoop(0, boundary);
        for (auto &t : pool)
            t.join();
    }

    // Rethrow a contained fault on the calling thread, after every
    // worker has parked -- the machine is stopped but its state is
    // whatever the fault left behind; the caller owns disposal.
    if (firstFault)
        std::rethrow_exception(firstFault);
}

void
CellExecutor::recordFault(std::exception_ptr e)
{
    {
        std::lock_guard<std::mutex> guard(faultMutex);
        if (!firstFault)
            firstFault = e;
    }
    faulted.store(true, std::memory_order_release);
}

void
CellExecutor::workerLoop(unsigned wid, const BoundaryHook &boundary)
{
    const std::uint32_t sockets = m.numSockets();
    while (true) {
        // Execute this worker's queues through the current cell.
        // Causal closure makes the per-socket order irrelevant.
        // A throwing event (SimError) is recorded, not propagated:
        // the worker must keep reaching barriers or the other
        // workers would spin forever.
        if (!faulted.load(std::memory_order_acquire)) {
            try {
                const Tick cell_end = cellBase + cellW - 1;
                for (SocketId s = wid; s < sockets; s += numThreads)
                    m.queueAt(s).run(cell_end);
            } catch (...) {
                recordFault(std::current_exception());
            }
        }

        // One barrier per cell; last arriver is the master.
        const bool my_sense = !sense.load(std::memory_order_relaxed);
        if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            numThreads) {
            if (faulted.load(std::memory_order_acquire)) {
                // Fault anywhere stops the machine at this boundary;
                // skipping masterStep also skips its drain checks,
                // which would misread the half-executed state.
                stop = true;
            } else {
                try {
                    masterStep(boundary);
                } catch (...) {
                    // The master's own panics (lost-wakeup drain
                    // check, claim-commit asserts, boundary hook)
                    // must still release the barrier below.
                    recordFault(std::current_exception());
                    stop = true;
                }
            }
            arrived.store(0, std::memory_order_relaxed);
            sense.store(my_sense, std::memory_order_release);
        } else {
            // Spin with a yield: cells are short, so a futex wait
            // would cost more than it saves on a loaded host, but a
            // pure spin starves the master when workers outnumber
            // hardware threads (CI containers, TSan runs).
            while (sense.load(std::memory_order_acquire) != my_sense)
                std::this_thread::yield();
        }

        if (stop)
            return;

        // Flush the sealed parity into the queues this worker owns.
        // Nobody else touches them: flushTo(dst) runs only on dst's
        // owner, and the next parity flip waits for every worker at
        // the next barrier.
        for (SocketId s = wid; s < sockets; s += numThreads)
            m.queueRouter().flushTo(s, flushParity);
    }
}

void
CellExecutor::masterStep(const BoundaryHook &boundary)
{
    ++cells;
    const Tick q = cellBase + cellW;
    QueueRouter &router = m.queueRouter();

    // Deferred first-touch placement, then the runner's hook (which
    // may schedule barrier resumes at q into any queue — their
    // owners are parked at the barrier).
    m.pageMapper().commitClaims();
    if (boundary)
        workDone = boundary(q);

    // Cell skip: jump straight to the cell holding the earliest
    // pending event, including the deliveries staged this cell.
    Tick min_next = router.minPending(router.currentParity());
    for (SocketId s = 0; s < m.numSockets(); ++s) {
        Tick t;
        if (m.queueAt(s).peekNextTick(t))
            min_next = std::min(min_next, t);
    }

    if (min_next == MaxTick) {
        if (!workDone) {
            c3d_panic("parallel kernel drained at tick %llu with "
                      "simulated work outstanding (lost wakeup?)",
                      static_cast<unsigned long long>(q));
        }
        stop = true;
        return;
    }

    c3d_assert(min_next >= q,
               "event below the lookahead horizon escaped its cell");
    cellBase = (min_next / cellW) * cellW;
    flushParity = router.currentParity();
    router.flipParity();
}

} // namespace c3d
