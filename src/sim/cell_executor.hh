/**
 * @file
 * Parallel per-socket kernel driver.
 *
 * Runs a MultiQueue Machine by advancing every socket's EventQueue in
 * lockstep cells of width W = Machine::cellWidth() (the minimum
 * cross-socket delivery latency). Within a cell [kW, (k+1)W) sockets
 * share nothing: cross-socket packets are staged in QueueRouter
 * outboxes and every staged arrival lies beyond the cell (a hop takes
 * at least W ticks), so the cell is causally closed and each worker
 * thread can execute its sockets' queues without synchronizing.
 *
 * One barrier per cell. The last thread to arrive is the master for
 * that boundary; it runs, single-threaded:
 *
 *   1. PageMapper::commitClaims() — deferred first-touch placement,
 *      in (issue tick, core) order;
 *   2. the caller's boundary hook (warm-up window reset, simulated-
 *      barrier release, completion check);
 *   3. the cell-skip computation: the next cell is the one holding
 *      the earliest pending event anywhere (queues + staged
 *      outboxes), so idle stretches cost one barrier, not W ticks of
 *      empty scanning;
 *   4. the outbox parity flip.
 *
 * After release each worker flushes the sealed parity's staged
 * deliveries into the queues it owns (sources in ascending order —
 * the canonical order that makes execution identical for any worker
 * count) and starts the next cell.
 *
 * Determinism: event execution inside a cell is per-queue sequential
 * and cells are causally closed, so the only cross-thread effects are
 * commutative stat updates and the staged deliveries, which flush in
 * canonical order. A 1-worker run and an N-worker run therefore
 * execute byte-identical event sequences; the 1-worker run is the
 * sequential differential oracle for the parallel kernel.
 */

#ifndef C3DSIM_SIM_CELL_EXECUTOR_HH
#define C3DSIM_SIM_CELL_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>

#include "common/types.hh"
#include "sim/machine.hh"

namespace c3d
{

/** Lockstep-cell driver for a MultiQueue machine. */
class CellExecutor
{
  public:
    /**
     * Boundary hook, run single-threaded by the barrier master at
     * each cell boundary tick @p q (after claim commit, before the
     * outbox flush). May schedule events (at >= q) into any queue.
     * Returns true once the simulated work is complete; the executor
     * then stops at the first boundary where the machine is also
     * quiescent (no pending events, no staged deliveries).
     */
    using BoundaryHook = std::function<bool(Tick q)>;

    /**
     * @param machine a KernelMode::MultiQueue machine
     * @param num_threads worker threads; clamped to [1, numSockets].
     *        Worker j owns sockets {s : s % T == j}.
     */
    CellExecutor(Machine &machine, unsigned num_threads);

    /**
     * Drive cells until the boundary hook reports completion and the
     * machine is quiescent. Panics if the machine drains while the
     * hook still reports outstanding work (lost wakeup in the
     * simulated program). Runs the calling thread as worker 0.
     *
     * Fault containment: an exception escaping any worker's event
     * execution (a SimError from c3d_panic/c3d_assert, including the
     * watchdog's) does not tear down the process or deadlock the
     * barrier. The faulting worker records the exception and keeps
     * arriving at barriers; the next barrier master sees the fault,
     * stops every worker, and run() rethrows the first recorded
     * exception on the calling thread after the pool joins -- so the
     * sweep layer can contain the failure to its row.
     */
    void run(const BoundaryHook &boundary);

    unsigned threads() const { return numThreads; }
    /** Cells executed (skipped cells count once). */
    std::uint64_t cellsRun() const { return cells; }

  private:
    void workerLoop(unsigned wid, const BoundaryHook &boundary);
    /** Master-only boundary step; returns with stop/cellBase set. */
    void masterStep(const BoundaryHook &boundary);
    /** Record @p e as the run's fault (first one wins). */
    void recordFault(std::exception_ptr e);

    Machine &m;
    const unsigned numThreads;
    const Tick cellW;

    // Sense-reversing spin barrier. The acq_rel arrival increment
    // orders every worker's cell-execution writes before the
    // master's single-threaded section; the release/acquire sense
    // flip publishes the master's decisions (cellBase, flushParity,
    // stop) back to the workers.
    std::atomic<std::uint32_t> arrived{0};
    std::atomic<bool> sense{false};

    // Written only in the master section, read by workers after the
    // sense flip (see barrier ordering above).
    Tick cellBase = 0;
    unsigned flushParity = 0;
    bool stop = false;
    bool workDone = false;
    std::uint64_t cells = 0;

    // Fault containment (cold path; see run()). `faulted` is checked
    // by every worker each cell so a fault anywhere stops the whole
    // machine within one barrier round.
    std::atomic<bool> faulted{false};
    std::mutex faultMutex;
    std::exception_ptr firstFault;
};

} // namespace c3d

#endif // C3DSIM_SIM_CELL_EXECUTOR_HH
