/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Events are (tick, sequence, callback) triples executed in (tick,
 * sequence) order: events scheduled for the same tick run in
 * scheduling order, which keeps the simulation deterministic.
 *
 * The kernel is the simulator's innermost loop -- every L1 hit, DRAM
 * access and interconnect hop is one event -- so it is built for
 * throughput:
 *
 *  - Callbacks are InlineFunction, not std::function: the capture is
 *    stored inside the event (64-byte budget), so the common schedule
 *    path performs no heap allocation.
 *
 *  - The queue is a hierarchical timing wheel: a ring of WheelBuckets
 *    one-tick buckets covers the near future [base, base + span), and
 *    a binary min-heap absorbs events scheduled further out. Almost
 *    all simulator latencies (cache, directory, memory, hop) are far
 *    smaller than the span, so the common case is an O(1) bucket
 *    append plus a two-level bitmap scan to find the next event --
 *    no comparator-driven sift per event.
 *
 * Ordering contract: within one bucket, events are appended and
 * consumed FIFO, which is exactly (tick, sequence) order because a
 * bucket only ever holds one tick's events and appends happen in
 * schedule order. Far-future events carry an explicit sequence number
 * so the overflow heap preserves schedule order for equal ticks, and
 * they migrate into the wheel *before* any near-future event for the
 * same tick can be scheduled (migration happens the moment the wheel
 * base advances), so bucket append order remains global (tick,
 * sequence) order.
 */

#ifndef C3DSIM_SIM_EVENT_QUEUE_HH
#define C3DSIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/types.hh"
#include "sim/inline_function.hh"
#include "sim/watchdog.hh"

namespace c3d
{

/** The event-driven simulation core. */
class EventQueue
{
  public:
    using Callback = InlineFunction;

    /** Wheel size: one-tick buckets covering [base, base + span). */
    static constexpr std::size_t WheelBuckets = 4096;
    static constexpr std::size_t WheelMask = WheelBuckets - 1;
    static constexpr Tick WheelSpan = WheelBuckets;
    // findOccupied's two-level scan assumes exactly 64 occupancy
    // words summarized by one 64-bit word; retuning WheelBuckets
    // means reworking that math, not just this constant.
    static_assert(WheelBuckets / 64 == 64,
                  "occupancy bitmap math requires 64 words of 64 "
                  "buckets");

    EventQueue() : buckets(WheelBuckets) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Number of events currently pending. */
    std::size_t pending() const { return wheelCount + overflow.size(); }

    /**
     * Number of scheduled callbacks whose capture outgrew the inline
     * buffer and fell back to a heap allocation. The simulator's own
     * schedulers keep this at zero; see docs/perf.md.
     */
    std::uint64_t heapCallbackEvents() const { return heapEvents; }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(currentTick + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void
    scheduleAt(Tick when, Callback cb)
    {
        c3d_assert(when >= currentTick,
                   "event scheduled in the past");
        if (cb.onHeap())
            ++heapEvents;
        // wheelBase <= currentTick <= when always holds, so the
        // subtraction cannot wrap.
        if (when - wheelBase < WheelSpan) {
            claimBucket(when).events.push_back(std::move(cb));
            ++wheelCount;
        } else {
            overflow.push_back(
                FarEvent{when, nextFarSequence++, std::move(cb)});
            std::push_heap(overflow.begin(), overflow.end(), FarLater{});
        }
    }

    /**
     * Tick of the earliest pending event, if any. Lets the parallel
     * kernel's lookahead skip empty synchronization cells without
     * executing anything.
     */
    bool
    peekNextTick(Tick &t) const
    {
        std::size_t idx;
        return peekNext(idx, t);
    }

    /**
     * Run events until the queue drains or @p maxTick is passed.
     * Events scheduled exactly at @p maxTick still run.
     * @return true if the queue drained, false if maxTick stopped us.
     */
    bool
    run(Tick maxTick = MaxTick)
    {
        // Publish this queue's clock so a panic raised from inside a
        // callback is stamped with the simulated time (SimError).
        TickSourceScope tick_scope(&currentTick);
        std::size_t idx;
        Tick t;
        while (peekNext(idx, t)) {
            if (t > maxTick)
                return false;
            executeAt(idx, t);
        }
        return true;
    }

    /** Execute exactly one event, if any. @return executed one. */
    bool
    step()
    {
        std::size_t idx;
        Tick t;
        if (!peekNext(idx, t))
            return false;
        TickSourceScope tick_scope(&currentTick);
        executeAt(idx, t);
        return true;
    }

    /**
     * Arm (or with nullptr disarm) the progress watchdog. The state
     * is shared across all of a machine's queues; per-queue stall
     * tracking restarts from here. The watchdog only observes --
     * it never schedules events -- so arming it cannot change the
     * executed event sequence (byte-identity is preserved).
     */
    void
    attachWatchdog(WatchdogState *w)
    {
        wd = w;
        wdLastTick = 0;
        wdSameTickRun = 0;
        wdSinceBulk = 0;
    }

    /**
     * One-line description of the pending work, for livelock
     * diagnostics: how many events are queued and where the head of
     * the queue sits. (Callbacks are opaque captures, so the tick
     * histogram is the most a report can say about them.)
     */
    std::string
    pendingSummary() const
    {
        std::size_t idx;
        Tick t;
        if (!peekNext(idx, t))
            return "queue empty";
        std::size_t head = 0;
        if (wheelCount != 0) {
            const Bucket &b = buckets[idx];
            head = b.events.size() - b.head;
        } else {
            for (const FarEvent &fe : overflow)
                head += fe.when == t;
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%zu events pending, next at tick %" PRIu64
                      " (%zu at that tick)",
                      pending(), static_cast<std::uint64_t>(t), head);
        return buf;
    }

    /**
     * Drop all pending events and rewind time to zero. O(buckets +
     * pending): bucket storage is clear()ed in place (capacity kept
     * for reuse), not drained event by event.
     */
    void
    reset()
    {
        for (Bucket &b : buckets) {
            b.events.clear();
            b.head = 0;
        }
        occupied.fill(0);
        summary = 0;
        overflow.clear();
        wheelCount = 0;
        wheelBase = 0;
        currentTick = 0;
        nextFarSequence = 0;
        executed = 0;
        heapEvents = 0;
        wdLastTick = 0;
        wdSameTickRun = 0;
        wdSinceBulk = 0;
    }

  private:
    /**
     * One tick's events. Only one tick can map to a bucket at a time:
     * live ticks all lie in [wheelBase, wheelBase + span), which maps
     * injectively onto the ring.
     */
    struct Bucket
    {
        std::vector<Callback> events;
        std::size_t head = 0; //!< next event to execute
        Tick tick = 0;        //!< tick of the resident events
    };

    /** A far-future event parked in the overflow heap. */
    struct FarEvent
    {
        Tick when;
        std::uint64_t sequence;
        Callback cb;
    };

    /** Min-heap comparator over (when, sequence). */
    struct FarLater
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    static std::size_t
    countTrailingZeros(std::uint64_t x)
    {
#if defined(__GNUC__) || defined(__clang__)
        return static_cast<std::size_t>(__builtin_ctzll(x));
#else
        std::size_t n = 0;
        while (!(x & 1)) {
            x >>= 1;
            ++n;
        }
        return n;
#endif
    }

    static std::uint64_t
    rotateRight(std::uint64_t x, std::size_t r)
    {
        r &= 63;
        return r ? (x >> r) | (x << (64 - r)) : x;
    }

    void
    setOccupied(std::size_t idx)
    {
        occupied[idx >> 6] |= 1ull << (idx & 63);
        summary |= 1ull << (idx >> 6);
    }

    void
    clearOccupied(std::size_t idx)
    {
        occupied[idx >> 6] &= ~(1ull << (idx & 63));
        if (occupied[idx >> 6] == 0)
            summary &= ~(1ull << (idx >> 6));
    }

    /**
     * Index of the first occupied bucket at or circularly after
     * @p from. Precondition: the wheel holds at least one event.
     */
    std::size_t
    findOccupied(std::size_t from) const
    {
        const std::size_t word = from >> 6;
        const std::size_t bit = from & 63;
        if (const std::uint64_t w = occupied[word] >> bit)
            return from + countTrailingZeros(w);
        // Scan the remaining words in circular order via the summary:
        // after rotation, summary bit k is word (word + 1 + k) & 63,
        // with bit 63 the wrapped low bits of `word` itself.
        const std::uint64_t s = rotateRight(summary, (word + 1) & 63);
        c3d_assert(s != 0, "findOccupied on an empty wheel");
        const std::size_t w2 =
            (word + 1 + countTrailingZeros(s)) & 63;
        return (w2 << 6) + countTrailingZeros(occupied[w2]);
    }

    /**
     * Locate the earliest pending event: its tick and the bucket it
     * lives in (or will live in, for an overflow-resident event).
     * @return false when no events are pending.
     */
    bool
    peekNext(std::size_t &idx, Tick &t) const
    {
        if (wheelCount != 0) {
            idx = findOccupied(wheelBase & WheelMask);
            t = buckets[idx].tick;
            return true;
        }
        if (!overflow.empty()) {
            t = overflow.front().when;
            idx = t & WheelMask;
            return true;
        }
        return false;
    }

    /**
     * Bucket for tick @p when (inside the horizon), claimed for that
     * tick if currently empty. The assert enforces the injectivity
     * invariant: two live ticks can never share a bucket.
     */
    Bucket &
    claimBucket(Tick when)
    {
        Bucket &b = buckets[when & WheelMask];
        if (b.head == b.events.size()) {
            // First event for this tick: claim the bucket.
            b.events.clear();
            b.head = 0;
            b.tick = when;
            setOccupied(when & WheelMask);
        }
        c3d_assert(b.tick == when, "wheel bucket tick collision");
        return b;
    }

    /**
     * Advance the wheel base to @p t and pull every overflow event
     * now inside the horizon into its bucket. Heap pops come out in
     * (when, sequence) order, so same-tick migrants land in sequence
     * order -- and no event for a tick can be scheduled directly into
     * the wheel before that tick's migrants arrive, because migration
     * happens at the instant the base (and thus the horizon) moves.
     */
    void
    advanceTo(Tick t)
    {
        wheelBase = t;
        while (!overflow.empty() &&
               overflow.front().when - wheelBase < WheelSpan) {
            std::pop_heap(overflow.begin(), overflow.end(), FarLater{});
            FarEvent fe = std::move(overflow.back());
            overflow.pop_back();
            claimBucket(fe.when).events.push_back(std::move(fe.cb));
            ++wheelCount;
        }
    }

    /** Pop and run the earliest event, as located by peekNext(). */
    void
    executeAt(std::size_t idx, Tick t)
    {
        currentTick = t;
        advanceTo(t); // fills bucket idx when t came from the heap
        Bucket &b = buckets[idx];

        // Move the callback out -- and finish all bookkeeping --
        // before invoking it, so the callback may freely schedule
        // further events (including into this same bucket).
        Callback cb = std::move(b.events[b.head]);
        ++b.head;
        --wheelCount;
        ++executed;
        if (b.head == b.events.size()) {
            b.events.clear(); // keeps capacity for the next tenant
            b.head = 0;
            clearOccupied(idx);
        }
        if (wd)
            watchdogCheck(t);
        cb();
    }

    /**
     * Armed-watchdog bookkeeping, run before each event's callback.
     * The stall counter is per queue and exact (deterministic trip
     * point under the sequential kernel); the machine-wide event and
     * wall-clock budgets are folded in every BulkPeriod events.
     */
    void
    watchdogCheck(Tick t)
    {
        const WatchdogLimits &l = wd->budgets();
        if (l.stallEvents) {
            if (t != wdLastTick) {
                wdLastTick = t;
                wdSameTickRun = 0;
            }
            if (++wdSameTickRun > l.stallEvents) {
                c3d_panic("watchdog: no progress -- %" PRIu64
                          " events executed at tick %" PRIu64
                          " without the clock advancing (livelock); "
                          "%s",
                          wdSameTickRun - 1,
                          static_cast<std::uint64_t>(t),
                          pendingSummary().c_str());
            }
        }
        if (++wdSinceBulk >= WatchdogState::BulkPeriod) {
            const std::uint64_t n = wdSinceBulk;
            wdSinceBulk = 0;
            if (wd->totalExceeded(n)) {
                c3d_panic("watchdog: executed-event budget (%" PRIu64
                          ") exceeded at tick %" PRIu64 "; %s",
                          l.maxEvents,
                          static_cast<std::uint64_t>(t),
                          pendingSummary().c_str());
            }
            if (wd->wallExpired()) {
                c3d_panic("watchdog: wall-clock budget (%" PRIu64
                          " ms) exceeded at tick %" PRIu64 "; %s",
                          l.wallMs, static_cast<std::uint64_t>(t),
                          pendingSummary().c_str());
            }
        }
    }

    std::vector<Bucket> buckets;
    /** Two-level occupancy bitmap over the buckets. */
    std::array<std::uint64_t, WheelBuckets / 64> occupied{};
    std::uint64_t summary = 0;
    /** Lowest tick the wheel can hold; == tick of the last event run. */
    Tick wheelBase = 0;
    std::size_t wheelCount = 0;

    /** Events at >= wheelBase + WheelSpan, a (when, sequence) heap. */
    std::vector<FarEvent> overflow;
    std::uint64_t nextFarSequence = 0;

    Tick currentTick = 0;
    std::uint64_t executed = 0;
    std::uint64_t heapEvents = 0;

    /** Progress watchdog (sim/watchdog.hh); null = disarmed. */
    WatchdogState *wd = nullptr;
    Tick wdLastTick = 0;           //!< tick of the last checked event
    std::uint64_t wdSameTickRun = 0; //!< events run at wdLastTick
    std::uint64_t wdSinceBulk = 0; //!< events since the last bulk fold
};

} // namespace c3d

#endif // C3DSIM_SIM_EVENT_QUEUE_HH
