/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence, callback) triples.
 * Events scheduled for the same tick run in scheduling order, which
 * keeps the simulation deterministic.
 */

#ifndef C3DSIM_SIM_EVENT_QUEUE_HH
#define C3DSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace c3d
{

/** The event-driven simulation core. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Number of events currently pending. */
    std::size_t pending() const { return queue.size(); }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(currentTick + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void
    scheduleAt(Tick when, Callback cb)
    {
        c3d_assert(when >= currentTick,
                   "event scheduled in the past");
        queue.push(Event{when, nextSequence++, std::move(cb)});
    }

    /**
     * Run events until the queue drains or @p maxTick is passed.
     * @return true if the queue drained, false if maxTick stopped us.
     */
    bool
    run(Tick maxTick = MaxTick)
    {
        while (!queue.empty()) {
            const Event &top = queue.top();
            if (top.when > maxTick)
                return false;
            currentTick = top.when;
            // Move the callback out before popping so that the
            // callback may schedule further events safely.
            Callback cb = std::move(const_cast<Event &>(top).cb);
            queue.pop();
            ++executed;
            cb();
        }
        return true;
    }

    /** Execute exactly one event, if any. @return executed one. */
    bool
    step()
    {
        if (queue.empty())
            return false;
        const Event &top = queue.top();
        currentTick = top.when;
        Callback cb = std::move(const_cast<Event &>(top).cb);
        queue.pop();
        ++executed;
        cb();
        return true;
    }

    /** Drop all pending events and rewind time to zero. */
    void
    reset()
    {
        while (!queue.empty())
            queue.pop();
        currentTick = 0;
        nextSequence = 0;
        executed = 0;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue;
    Tick currentTick = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t executed = 0;
};

} // namespace c3d

#endif // C3DSIM_SIM_EVENT_QUEUE_HH
