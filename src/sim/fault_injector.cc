#include "sim/fault_injector.hh"

#include "common/cli.hh"

namespace c3d
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Panic:
        return "panic";
      case FaultKind::Hang:
        return "hang";
      case FaultKind::StallMsg:
        return "stall-msg";
    }
    return "?";
}

bool
parseFaultSpec(const std::string &text, FaultPlan &out,
               std::string &error)
{
    FaultPlan plan;
    std::string spec = text;
    if (spec.rfind("par:", 0) == 0) {
        plan.parallelOnly = true;
        spec = spec.substr(4);
    }
    const std::size_t sep = spec.find('@');
    if (sep == std::string::npos) {
        error = "bad fault spec '" + text +
            "' (want [par:]panic@TICK, [par:]hang@TICK or "
            "[par:]stall-msg@N)";
        return false;
    }
    const std::string kind = spec.substr(0, sep);
    if (kind == "panic")
        plan.kind = FaultKind::Panic;
    else if (kind == "hang")
        plan.kind = FaultKind::Hang;
    else if (kind == "stall-msg")
        plan.kind = FaultKind::StallMsg;
    else {
        error = "unknown fault kind '" + kind + "'";
        return false;
    }
    if (!parseU64(spec.substr(sep + 1), plan.at) ||
        (plan.kind == FaultKind::StallMsg && plan.at == 0)) {
        error = "bad fault trigger in '" + text + "'";
        return false;
    }
    out = plan;
    return true;
}

} // namespace c3d
