#include "sim/fault_injector.hh"

#include <condition_variable>
#include <mutex>

#include "common/cli.hh"

namespace c3d
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Panic:
        return "panic";
      case FaultKind::Hang:
        return "hang";
      case FaultKind::StallMsg:
        return "stall-msg";
      case FaultKind::Block:
        return "block";
    }
    return "?";
}

namespace
{
// Process-wide latch backing the Block fault. A generation counter
// (not a flag) so releases only wake threads already parked.
/**
 * The latch state is deliberately leaked (heap objects behind
 * references): a blocked kernel thread abandoned by the sibling
 * watchdog may still be waiting here at process exit, and running
 * the destructor of a mutex/condvar with a waiter is undefined --
 * it turned a contained row failure into a hang at exit. Process
 * teardown reclaims everything.
 */
std::mutex &blockMu = *new std::mutex;
std::condition_variable &blockCv = *new std::condition_variable;
std::uint64_t blockGeneration = 0;
std::size_t blockedNow = 0;
} // namespace

void
faultBlockWait()
{
    std::unique_lock<std::mutex> lock(blockMu);
    const std::uint64_t gen = blockGeneration;
    ++blockedNow;
    blockCv.wait(lock, [&] { return blockGeneration != gen; });
    --blockedNow;
}

std::size_t
releaseInjectedBlocks()
{
    std::lock_guard<std::mutex> lock(blockMu);
    const std::size_t parked = blockedNow;
    ++blockGeneration;
    blockCv.notify_all();
    return parked;
}

bool
parseFaultSpec(const std::string &text, FaultPlan &out,
               std::string &error)
{
    FaultPlan plan;
    std::string spec = text;
    if (spec.rfind("par:", 0) == 0) {
        plan.parallelOnly = true;
        spec = spec.substr(4);
    }
    const std::size_t sep = spec.find('@');
    if (sep == std::string::npos) {
        error = "bad fault spec '" + text +
            "' (want [par:]panic@TICK, [par:]hang@TICK, "
            "[par:]stall-msg@N or [par:]block@TICK)";
        return false;
    }
    const std::string kind = spec.substr(0, sep);
    if (kind == "panic")
        plan.kind = FaultKind::Panic;
    else if (kind == "hang")
        plan.kind = FaultKind::Hang;
    else if (kind == "stall-msg")
        plan.kind = FaultKind::StallMsg;
    else if (kind == "block")
        plan.kind = FaultKind::Block;
    else {
        error = "unknown fault kind '" + kind + "'";
        return false;
    }
    if (!parseU64(spec.substr(sep + 1), plan.at) ||
        (plan.kind == FaultKind::StallMsg && plan.at == 0)) {
        error = "bad fault trigger in '" + text + "'";
        return false;
    }
    out = plan;
    return true;
}

} // namespace c3d
