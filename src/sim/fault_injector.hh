/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The containment layer (SimError, the progress watchdog, sweep fail
 * policies) is only trustworthy if every failure class it claims to
 * handle can be provoked on demand, deterministically, in tests and
 * CI. A FaultPlan arms exactly one such failure in a run, triggered
 * from Interconnect::send -- the one chokepoint all inter-socket
 * traffic crosses in every design:
 *
 *  - Panic: the first inter-socket send at tick >= `at` raises
 *    c3d_panic with a diagnostic naming the configured tick. Models
 *    a protocol assert firing mid-run.
 *  - Hang: the first inter-socket packet at tick >= `at` is silently
 *    swallowed -- its arrival callback never runs, the protocol
 *    transaction never completes, and the machine drains with cores
 *    unfinished, tripping the kernel's existing lost-wakeup panics.
 *    Models a dropped message / deadlocked transaction.
 *  - StallMsg: the `at`-th inter-socket packet's delivery is
 *    replaced by a zero-delay self-rescheduling event, so the queue
 *    executes events forever without the clock advancing. Models a
 *    livelock; caught by the watchdog's no-progress detector.
 *  - Block: the first inter-socket send at tick >= `at` blocks the
 *    executing kernel thread *inside the current event* until
 *    releaseInjectedBlocks() is called. Models a hard deadlock in a
 *    single callback -- invisible to every in-band watchdog check
 *    (those only run between events); only the sibling wall-clock
 *    watchdog (runWithSiblingWatchdog) can contain it.
 *
 * Determinism: under the sequential kernels (single-queue and the
 * MultiQueue 1-worker oracle) send order is fully deterministic, so
 * a plan trips at the same packet, the same tick, with the same
 * diagnostic, every run. `parallelOnly` plans arm only when the
 * parallel kernel actually drives the run -- the hook that lets
 * tests exercise --fail-policy=retry's sequential-fallback ladder
 * (the retry succeeds precisely because the fault no longer arms).
 */

#ifndef C3DSIM_SIM_FAULT_INJECTOR_HH
#define C3DSIM_SIM_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace c3d
{

/** Failure class to provoke; see file comment. */
enum class FaultKind : std::uint8_t
{
    None,
    Panic,    //!< raise c3d_panic at the first send at tick >= at
    Hang,     //!< swallow one packet at tick >= at (lost wakeup)
    StallMsg, //!< replace packet #at's delivery with a tick livelock
    Block,    //!< block the kernel thread inside the event at >= at
};

const char *faultKindName(FaultKind kind);

/**
 * Park the calling thread until releaseInjectedBlocks() -- the Block
 * fault's stall primitive. Lives here (not in a test) so the stall
 * is reachable from the production injection chokepoint.
 */
void faultBlockWait();

/** Wake every thread parked in faultBlockWait(); @return how many. */
std::size_t releaseInjectedBlocks();

/** One planned fault for one run. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    /** Trigger tick (Panic/Hang) or 1-based packet ordinal
     * (StallMsg). */
    std::uint64_t at = 0;
    /** Arm only when the parallel kernel drives the run. */
    bool parallelOnly = false;

    bool active() const { return kind != FaultKind::None; }
};

/**
 * Parse "[par:]panic@TICK | [par:]hang@TICK | [par:]stall-msg@N"
 * into a plan. Row selectors (":K/M") are the sweep CLI's business,
 * not this function's.
 */
bool parseFaultSpec(const std::string &text, FaultPlan &out,
                    std::string &error);

/**
 * Armed per-run fault state, owned by the Machine and consulted by
 * the Interconnect on the sending thread. The counters are atomic
 * because the parallel kernel sends from multiple threads; each
 * fault fires exactly once per run.
 */
class FaultInjector
{
  public:
    /** Arm @p p for a run; @p parallel_kernel gates parallelOnly. */
    void
    arm(const FaultPlan &p, bool parallel_kernel)
    {
        plan = p;
        enabled = p.active() && (!p.parallelOnly || parallel_kernel);
        packets.store(0, std::memory_order_relaxed);
        fired.store(false, std::memory_order_relaxed);
    }

    bool armed() const { return enabled; }
    const FaultPlan &armedPlan() const { return plan; }

    /** Panic trigger: first send at tick >= plan.at. */
    bool
    shouldPanic(Tick now) const
    {
        return enabled && plan.kind == FaultKind::Panic &&
            now >= plan.at;
    }

    /** Hang trigger; consumes the (single) firing. */
    bool
    takeHang(Tick now)
    {
        return enabled && plan.kind == FaultKind::Hang &&
            now >= plan.at &&
            !fired.exchange(true, std::memory_order_relaxed);
    }

    /** Block trigger; consumes the (single) firing. */
    bool
    takeBlock(Tick now)
    {
        return enabled && plan.kind == FaultKind::Block &&
            now >= plan.at &&
            !fired.exchange(true, std::memory_order_relaxed);
    }

    /** Stall trigger: fires on the plan.at-th inter-socket packet. */
    bool
    takeStall()
    {
        if (!enabled || plan.kind != FaultKind::StallMsg)
            return false;
        return packets.fetch_add(1, std::memory_order_relaxed) + 1 ==
            plan.at &&
            !fired.exchange(true, std::memory_order_relaxed);
    }

  private:
    FaultPlan plan;
    bool enabled = false;
    std::atomic<std::uint64_t> packets{0};
    std::atomic<bool> fired{false};
};

} // namespace c3d

#endif // C3DSIM_SIM_FAULT_INJECTOR_HH
