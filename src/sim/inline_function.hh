/**
 * @file
 * Move-only callable with fixed-size inline storage.
 *
 * The event queue schedules millions of continuations per sweep row;
 * wrapping each one in a std::function costs a heap allocation the
 * moment the capture outgrows the library's small-object buffer
 * (16 bytes on libstdc++). InlineFunction raises that budget to
 * InlineBytes so every continuation the simulator actually schedules
 * (socket, CPU, memory-controller and interconnect hops) is stored
 * in-place inside the event itself.
 *
 * Callables larger than InlineBytes (or over-aligned, or with a
 * throwing move) still work -- they fall back to a single heap
 * allocation, flagged via onHeap() so benchmarks and tests can assert
 * that the hot paths never pay for one.
 */

#ifndef C3DSIM_SIM_INLINE_FUNCTION_HH
#define C3DSIM_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.hh"
#include "sim/slab.hh"

namespace c3d
{

/** Move-only `void()` callable with inline small-buffer storage. */
class InlineFunction
{
  public:
    /**
     * Inline capture budget, in bytes. Sized for the largest capture
     * the simulator schedules: a `this` pointer, a block address, a
     * handful of scalars, and one nested std::function continuation
     * (32 bytes on libstdc++). See docs/perf.md before growing a
     * capture past this.
     */
    static constexpr std::size_t InlineBytes = 64;
    static constexpr std::size_t InlineAlign = 16;

    InlineFunction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFunction(F &&f) // NOLINT: implicit by design
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= InlineBytes &&
                      alignof(Fn) <= InlineAlign &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            ops = &InlineModel<Fn>::ops;
        } else {
            // Spilled captures recycle through the event-path slab
            // (fixed small sizes, freed at event rates, possibly on
            // a different kernel thread than the allocating one).
            // Over-aligned callables keep plain new, which honors
            // extended alignment.
            Fn *p;
            if constexpr (HeapModel<Fn>::slabBacked) {
                void *mem = slab::alloc(sizeof(Fn));
                try {
                    p = ::new (mem) Fn(std::forward<F>(f));
                } catch (...) {
                    slab::free(mem, sizeof(Fn));
                    throw;
                }
            } else {
                p = new Fn(std::forward<F>(f));
            }
            ::new (static_cast<void *>(storage)) (Fn *)(p);
            ops = &HeapModel<Fn>::ops;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept : ops(other.ops)
    {
        if (ops)
            ops->relocate(storage, other.storage);
        other.ops = nullptr;
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this == &other)
            return *this;
        if (ops)
            ops->destroy(storage);
        ops = other.ops;
        if (ops)
            ops->relocate(storage, other.storage);
        other.ops = nullptr;
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction()
    {
        if (ops)
            ops->destroy(storage);
    }

    void
    operator()()
    {
        c3d_assert(ops, "invoking an empty InlineFunction");
        ops->invoke(storage);
    }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** True when the callable spilled to a heap allocation. */
    bool onHeap() const noexcept { return ops && ops->heap; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool heap;
    };

    template <typename Fn>
    struct InlineModel
    {
        static Fn *at(void *s) { return std::launder(
            reinterpret_cast<Fn *>(s)); }
        static void invoke(void *s) { (*at(s))(); }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) Fn(std::move(*at(src)));
            at(src)->~Fn();
        }
        static void destroy(void *s) noexcept { at(s)->~Fn(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    template <typename Fn>
    struct HeapModel
    {
        static constexpr bool slabBacked =
            alignof(Fn) <= alignof(std::max_align_t);
        static Fn *&at(void *s) { return *std::launder(
            reinterpret_cast<Fn **>(s)); }
        static void invoke(void *s) { (*at(s))(); }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) (Fn *)(at(src));
        }
        static void
        destroy(void *s) noexcept
        {
            Fn *p = at(s);
            if constexpr (slabBacked) {
                p->~Fn();
                slab::free(p, sizeof(Fn));
            } else {
                delete p;
            }
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy, true};
    };

    const Ops *ops = nullptr;
    alignas(InlineAlign) unsigned char storage[InlineBytes];
};

} // namespace c3d

#endif // C3DSIM_SIM_INLINE_FUNCTION_HH
