#include "sim/machine.hh"

namespace c3d
{

Machine::Machine(const SystemConfig &config)
    : cfg(config), statGroup("machine")
{
    noc = std::make_unique<Interconnect>(eventq, cfg, &statGroup);
    mapper = std::make_unique<PageMapper>(cfg.mapping, cfg.numSockets,
                                          &statGroup);
    classifier = std::make_unique<PageClassifier>(&statGroup);

    sockets.reserve(cfg.numSockets);
    for (SocketId s = 0; s < cfg.numSockets; ++s) {
        sockets.push_back(
            std::make_unique<Socket>(eventq, cfg, s, &statGroup));
    }

    proto = makeProtocol(cfg.design, *this, &statGroup);
    for (auto &s : sockets)
        s->setProtocol(proto.get());
}

Machine::~Machine() = default;

std::uint64_t
Machine::totalMemReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().reads();
    return n;
}

std::uint64_t
Machine::totalMemWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().writes();
    return n;
}

std::uint64_t
Machine::remoteMemReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().remoteReads();
    return n;
}

std::uint64_t
Machine::remoteMemWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().remoteWrites();
    return n;
}

std::uint64_t
Machine::totalDramCacheHits() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->hitCount();
    }
    return n;
}

std::uint64_t
Machine::totalDramCacheMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->missCount();
    }
    return n;
}

std::uint64_t
Machine::totalLlcMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->llcMisses();
    return n;
}

std::uint64_t
Machine::interSocketBytes() const
{
    return noc->totalBytes();
}

} // namespace c3d
