#include "sim/machine.hh"

namespace c3d
{

Machine::Machine(const SystemConfig &config, KernelMode kernel_mode)
    : cfg(config), mode(kernel_mode),
      cellW(cfg.zeroHopLatency ? 0 : cfg.hopLatency),
      statGroup("machine")
{
    if (mode == KernelMode::MultiQueue) {
        c3d_assert(parallelKernelEligible(cfg),
                   "MultiQueue kernel on an ineligible config");
        queues.reserve(cfg.numSockets);
        std::vector<EventQueue *> raw;
        for (SocketId s = 0; s < cfg.numSockets; ++s) {
            queues.push_back(std::make_unique<EventQueue>());
            raw.push_back(queues.back().get());
        }
        router_.initMulti(raw);
    } else {
        queues.push_back(std::make_unique<EventQueue>());
        router_.initSingle(*queues[0], cfg.numSockets);
    }

    noc = std::make_unique<Interconnect>(router_, cfg, &statGroup);
    noc->setFaultInjector(&faultInjector_);
    mapper = std::make_unique<PageMapper>(
        cfg.mapping, cfg.numSockets, &statGroup,
        /*deferred_touch=*/mode == KernelMode::MultiQueue);
    classifier = std::make_unique<PageClassifier>(&statGroup);

    sockets.reserve(cfg.numSockets);
    for (SocketId s = 0; s < cfg.numSockets; ++s) {
        sockets.push_back(std::make_unique<Socket>(
            router_.at(s), cfg, s, &statGroup));
    }

    proto = makeProtocol(cfg.design, *this, &statGroup);
    for (auto &s : sockets)
        s->setProtocol(proto.get());
}

Machine::~Machine() = default;

std::uint64_t
Machine::totalEventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->eventsExecuted();
    return n;
}

std::uint64_t
Machine::totalHeapCallbackEvents() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->heapCallbackEvents();
    return n;
}

std::uint64_t
Machine::totalPendingEvents() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->pending();
    return n;
}

std::uint64_t
Machine::totalMemReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().reads();
    return n;
}

std::uint64_t
Machine::totalMemWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().writes();
    return n;
}

std::uint64_t
Machine::remoteMemReads() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().remoteReads();
    return n;
}

std::uint64_t
Machine::remoteMemWrites() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->memory().remoteWrites();
    return n;
}

std::uint64_t
Machine::totalDramCacheHits() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->hitCount();
    }
    return n;
}

std::uint64_t
Machine::totalDramCacheMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->missCount();
    }
    return n;
}

std::uint64_t
Machine::totalPredictorTrains() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->predictorTrains();
    }
    return n;
}

std::uint64_t
Machine::totalPredictorBypasses() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->predictorBypasses();
    }
    return n;
}

std::uint64_t
Machine::totalPredictorGhostHits() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->predictorGhostHits();
    }
    return n;
}

std::uint64_t
Machine::totalPredictorFalsePresent() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets) {
        if (s->dramCache())
            n += s->dramCache()->predictorFalsePresents();
    }
    return n;
}

std::uint64_t
Machine::totalLlcMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets)
        n += s->llcMisses();
    return n;
}

std::uint64_t
Machine::interSocketBytes() const
{
    return noc->totalBytes();
}

} // namespace c3d
