/**
 * @file
 * The simulated NUMA machine: sockets, interconnect, page mapper,
 * page classifier, and the selected inter-socket coherence protocol,
 * all sharing one event queue and stat registry.
 *
 * The machine is the hardware only; trace CPUs and workloads attach
 * via sim/runner.hh.
 */

#ifndef C3DSIM_SIM_MACHINE_HH
#define C3DSIM_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "coherence/protocol.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "interconnect/interconnect.hh"
#include "mapping/page_classifier.hh"
#include "mapping/page_mapper.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "sim/queue_router.hh"
#include "sim/socket.hh"
#include "sim/watchdog.hh"

namespace c3d
{

/**
 * Which kernel drives the machine.
 *
 * SingleQueue is the classic sequential kernel: one EventQueue for
 * the whole machine. MultiQueue gives every socket its own queue so
 * the cell executor (sim/cell_executor.hh) can advance sockets on a
 * thread pool under conservative lookahead; running the MultiQueue
 * kernel with one worker is the sequential differential oracle for
 * the parallel runs. Directly constructed Machines default to
 * SingleQueue; the Runner opts eligible configurations into
 * MultiQueue (see Machine::parallelKernelEligible).
 */
enum class KernelMode
{
    SingleQueue,
    MultiQueue,
};

/** A complete multi-socket system. */
class Machine
{
  public:
    explicit Machine(const SystemConfig &config,
                     KernelMode mode = KernelMode::SingleQueue);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const SystemConfig &config() const { return cfg; }
    KernelMode kernelMode() const { return mode; }

    /**
     * The machine-wide queue of the sequential kernel. Meaningful
     * only in SingleQueue mode; multi-queue callers must use
     * queueAt()/queueRouter().
     */
    EventQueue &
    eventQueue()
    {
        c3d_assert(mode == KernelMode::SingleQueue,
                   "eventQueue() on a multi-queue machine; use "
                   "queueAt(socket)");
        return *queues[0];
    }

    /** The queue events for socket @p s execute on (either mode). */
    EventQueue &queueAt(SocketId s) { return router_.at(s); }
    QueueRouter &queueRouter() { return router_; }

    /**
     * Conservative-lookahead cell width: the minimum cross-socket
     * delivery latency (one hop). Every QueueRouter::inject lands at
     * least this far in the future, so cells [kW, (k+1)W) are
     * causally closed. MultiQueue mode only.
     */
    Tick cellWidth() const { return cellW; }

    /** First cell boundary strictly after @p t. */
    Tick
    cellBoundaryAfter(Tick t) const
    {
        c3d_assert(cellW > 0, "cell geometry needs a hop latency");
        return (t / cellW + 1) * cellW;
    }

    /**
     * Whether @p config can run on the MultiQueue kernel: it needs
     * ≥2 sockets (otherwise there is nothing to parallelize), a
     * non-zero hop latency (the lookahead window), and no TLB page
     * classification (a machine-global table serialized on every
     * access). Ineligible configs run the classic sequential kernel.
     */
    static bool
    parallelKernelEligible(const SystemConfig &config)
    {
        return config.numSockets >= 2 && !config.zeroHopLatency &&
               config.hopLatency >= 1 &&
               !config.tlbPageClassification;
    }

    /**
     * Arm (or with nullptr disarm) the progress watchdog on every
     * kernel queue. The state is owned by the caller (Runner) and
     * must outlive the run.
     */
    void
    attachWatchdog(WatchdogState *w)
    {
        for (auto &q : queues)
            q->attachWatchdog(w);
    }

    /**
     * The machine's fault injector (testing only). Disarmed by
     * default; the Runner arms it from RunOptions::fault.
     */
    FaultInjector &faultInjector() { return faultInjector_; }

    /** Events executed across all kernel queues. */
    std::uint64_t totalEventsExecuted() const;
    /** Heap-fallback callbacks across all kernel queues. */
    std::uint64_t totalHeapCallbackEvents() const;
    /** Events still pending across all kernel queues. */
    std::uint64_t totalPendingEvents() const;

    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    std::uint32_t numSockets() const { return cfg.numSockets; }
    Socket &socket(SocketId s) { return *sockets[s]; }
    const Socket &socket(SocketId s) const { return *sockets[s]; }

    Interconnect &interconnect() { return *noc; }
    PageMapper &pageMapper() { return *mapper; }
    PageClassifier &pageClassifier() { return *classifier; }
    GlobalProtocol &protocol() { return *proto; }

    /** Home socket of @p addr for an access by @p requester. */
    SocketId
    homeOf(Addr addr, SocketId requester)
    {
        return mapper->homeOf(addr, requester);
    }

    // ---- aggregated metrics (across sockets) ---------------------------

    std::uint64_t totalMemReads() const;
    std::uint64_t totalMemWrites() const;
    std::uint64_t remoteMemReads() const;
    std::uint64_t remoteMemWrites() const;
    std::uint64_t totalDramCacheHits() const;
    std::uint64_t totalDramCacheMisses() const;
    /** DRAM-cache predictor accuracy counters summed across sockets
     * (docs/predictors.md). */
    std::uint64_t totalPredictorTrains() const;
    std::uint64_t totalPredictorBypasses() const;
    std::uint64_t totalPredictorGhostHits() const;
    std::uint64_t totalPredictorFalsePresent() const;
    std::uint64_t totalLlcMisses() const;
    std::uint64_t interSocketBytes() const;

  private:
    const SystemConfig cfg;
    const KernelMode mode;
    const Tick cellW;
    /** One queue (SingleQueue) or one per socket (MultiQueue). */
    std::vector<std::unique_ptr<EventQueue>> queues;
    QueueRouter router_;
    FaultInjector faultInjector_;
    StatGroup statGroup;
    std::unique_ptr<Interconnect> noc;
    std::unique_ptr<PageMapper> mapper;
    std::unique_ptr<PageClassifier> classifier;
    std::vector<std::unique_ptr<Socket>> sockets;
    std::unique_ptr<GlobalProtocol> proto;
};

} // namespace c3d

#endif // C3DSIM_SIM_MACHINE_HH
