/**
 * @file
 * The simulated NUMA machine: sockets, interconnect, page mapper,
 * page classifier, and the selected inter-socket coherence protocol,
 * all sharing one event queue and stat registry.
 *
 * The machine is the hardware only; trace CPUs and workloads attach
 * via sim/runner.hh.
 */

#ifndef C3DSIM_SIM_MACHINE_HH
#define C3DSIM_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "coherence/protocol.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "interconnect/interconnect.hh"
#include "mapping/page_classifier.hh"
#include "mapping/page_mapper.hh"
#include "sim/event_queue.hh"
#include "sim/socket.hh"

namespace c3d
{

/** A complete multi-socket system. */
class Machine
{
  public:
    explicit Machine(const SystemConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const SystemConfig &config() const { return cfg; }
    EventQueue &eventQueue() { return eventq; }
    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    std::uint32_t numSockets() const { return cfg.numSockets; }
    Socket &socket(SocketId s) { return *sockets[s]; }
    const Socket &socket(SocketId s) const { return *sockets[s]; }

    Interconnect &interconnect() { return *noc; }
    PageMapper &pageMapper() { return *mapper; }
    PageClassifier &pageClassifier() { return *classifier; }
    GlobalProtocol &protocol() { return *proto; }

    /** Home socket of @p addr for an access by @p requester. */
    SocketId
    homeOf(Addr addr, SocketId requester)
    {
        return mapper->homeOf(addr, requester);
    }

    // ---- aggregated metrics (across sockets) ---------------------------

    std::uint64_t totalMemReads() const;
    std::uint64_t totalMemWrites() const;
    std::uint64_t remoteMemReads() const;
    std::uint64_t remoteMemWrites() const;
    std::uint64_t totalDramCacheHits() const;
    std::uint64_t totalDramCacheMisses() const;
    std::uint64_t totalLlcMisses() const;
    std::uint64_t interSocketBytes() const;

  private:
    const SystemConfig cfg;
    EventQueue eventq;
    StatGroup statGroup;
    std::unique_ptr<Interconnect> noc;
    std::unique_ptr<PageMapper> mapper;
    std::unique_ptr<PageClassifier> classifier;
    std::vector<std::unique_ptr<Socket>> sockets;
    std::unique_ptr<GlobalProtocol> proto;
};

} // namespace c3d

#endif // C3DSIM_SIM_MACHINE_HH
