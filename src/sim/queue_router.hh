/**
 * @file
 * Routing layer between the interconnect and the kernel's event
 * queue(s).
 *
 * The sequential kernel runs the whole machine on one EventQueue; the
 * parallel kernel gives each socket its own queue and advances them on
 * a thread pool under conservative lookahead (see docs/perf.md,
 * "Parallel per-socket kernel"). The QueueRouter hides that choice
 * from the interconnect: `at(s)` is the queue events for socket @p s
 * execute on, and `inject(src, dst, when, cb)` is the one cross-socket
 * edge.
 *
 * In multi-queue mode an injection is NOT scheduled directly into the
 * destination queue (which another thread may be executing). It is
 * staged in a per-(src, dst) outbox owned by the sending thread and
 * flushed into the destination queue at the next synchronization
 * barrier by the thread that owns the destination. Outboxes are
 * double-buffered by cell parity: while cell k+1 executes into parity
 * (k+1)&1, the flush of parity k&1 may still be in progress on a
 * slower worker — the two parities are disjoint storage, and the
 * barrier between cells orders every write in parity p before any
 * flush of parity p.
 *
 * Determinism: flushTo() drains sources in ascending socket order and
 * preserves per-(src, dst) push order, so the destination queue sees
 * cross-socket arrivals in a canonical (source socket, send order)
 * sequence regardless of worker count or thread timing. Combined with
 * the conservative lookahead (every injected `when` lies beyond the
 * current cell), the executed event order is identical for 1 worker
 * and N workers.
 */

#ifndef C3DSIM_SIM_QUEUE_ROUTER_HH
#define C3DSIM_SIM_QUEUE_ROUTER_HH

#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace c3d
{

/** Dispatches per-socket event traffic to the kernel's queue(s). */
class QueueRouter
{
  public:
    QueueRouter() = default;
    QueueRouter(const QueueRouter &) = delete;
    QueueRouter &operator=(const QueueRouter &) = delete;

    /** Sequential kernel: every socket maps to the one queue. */
    void
    initSingle(EventQueue &q, std::uint32_t num_sockets)
    {
        isMulti = false;
        queues.assign(num_sockets, &q);
    }

    /** Parallel kernel: one queue per socket, outboxes armed. */
    void
    initMulti(const std::vector<EventQueue *> &qs)
    {
        isMulti = true;
        queues = qs;
        const std::size_t n = queues.size();
        outboxes[0].clear();
        outboxes[1].clear();
        outboxes[0].resize(n * n);
        outboxes[1].resize(n * n);
    }

    bool multiQueue() const { return isMulti; }
    std::uint32_t
    numSockets() const
    {
        return static_cast<std::uint32_t>(queues.size());
    }

    /** The queue socket @p s executes on. */
    EventQueue &at(SocketId s) { return *queues[s]; }
    const EventQueue &at(SocketId s) const { return *queues[s]; }

    /**
     * Deliver @p cb to socket @p dst at absolute tick @p when. Must
     * be called from the thread executing socket @p src (the
     * sequential kernel trivially satisfies this). In multi-queue
     * mode @p when must lie beyond the current lookahead cell; the
     * cell executor asserts this when it flushes.
     */
    void
    inject(SocketId src, SocketId dst, Tick when,
           EventQueue::Callback cb)
    {
        if (!isMulti) {
            queues[dst]->scheduleAt(when, std::move(cb));
            return;
        }
        outboxes[writeParity][src * queues.size() + dst].push_back(
            Delivery{when, std::move(cb)});
    }

    // ---- cell-executor interface (multi-queue mode only) ---------------
    // flipParity() runs on the barrier master between cells; the
    // barrier's release ordering publishes it to every worker.

    unsigned currentParity() const { return writeParity; }
    void flipParity() { writeParity ^= 1u; }

    /**
     * Schedule every staged delivery destined for @p dst from parity
     * @p parity into dst's queue, sources in ascending order. Runs on
     * the thread that owns @p dst, after the barrier that sealed
     * @p parity.
     */
    void
    flushTo(SocketId dst, unsigned parity)
    {
        const std::size_t n = queues.size();
        EventQueue &q = *queues[dst];
        for (std::size_t src = 0; src < n; ++src) {
            auto &box = outboxes[parity][src * n + dst];
            for (Delivery &d : box)
                q.scheduleAt(d.when, std::move(d.cb));
            box.clear();
        }
    }

    /** Earliest staged delivery in @p parity; MaxTick when empty. */
    Tick
    minPending(unsigned parity) const
    {
        Tick lo = MaxTick;
        for (const auto &box : outboxes[parity]) {
            for (const Delivery &d : box) {
                if (d.when < lo)
                    lo = d.when;
            }
        }
        return lo;
    }

    /** True when no delivery is staged in @p parity. */
    bool
    parityEmpty(unsigned parity) const
    {
        for (const auto &box : outboxes[parity]) {
            if (!box.empty())
                return false;
        }
        return true;
    }

  private:
    struct Delivery
    {
        Tick when;
        EventQueue::Callback cb;
    };

    std::vector<EventQueue *> queues;
    bool isMulti = false;
    unsigned writeParity = 0;
    /** outboxes[parity][src * numSockets + dst], staged deliveries. */
    std::vector<std::vector<Delivery>> outboxes[2];
};

} // namespace c3d

#endif // C3DSIM_SIM_QUEUE_ROUTER_HH
