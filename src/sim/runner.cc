#include "sim/runner.hh"

#include "common/log.hh"
#include "trace/trace_file.hh"

namespace c3d
{

Runner::Runner(const SystemConfig &cfg, Workload &wl)
    : m(std::make_unique<Machine>(cfg)), workload(wl)
{
    // FT1's serial-phase placement happens before any timed access.
    workload.preTouchPages(m->pageMapper());

    const std::uint32_t total = cfg.totalCores();
    cpus.reserve(total);
    for (CoreId c = 0; c < total; ++c) {
        cpus.push_back(std::make_unique<TraceCpu>(*m, c, workload,
                                                  &m->stats()));
    }
}

Runner::~Runner() = default;

RunResult
Runner::run(std::uint64_t warmup_ops, std::uint64_t measure_ops)
{
    const std::uint32_t total = m->config().totalCores();
    const std::uint32_t active = workload.activeCores(total);

    std::uint32_t warm_remaining = active;
    std::uint32_t done_remaining = active;
    Tick measure_start = 0;

    const std::uint64_t barrier_interval = workload.barrierInterval();
    if (barrier_interval && active > 1) {
        barrier.init(active, &m->stats(), "barrier");
        for (CoreId c = 0; c < active; ++c)
            cpus[c]->setBarrier(&barrier, barrier_interval);
    }

    for (CoreId c = 0; c < total; ++c) {
        const bool runs = c < active;
        cpus[c]->start(
            runs ? warmup_ops : 0, runs ? measure_ops : 0,
            [this, &warm_remaining, &measure_start, runs] {
                if (!runs)
                    return;
                if (--warm_remaining == 0) {
                    // Last core crossed warm-up: open the window.
                    m->stats().resetAll();
                    measure_start = m->eventQueue().now();
                }
            },
            [&done_remaining, runs] {
                if (runs)
                    --done_remaining;
            });
    }

    // Idle cores also signal via their zero-op paths; the warm/done
    // callbacks above ignore them.
    EventQueue &eq = m->eventQueue();
    while (done_remaining > 0) {
        if (!eq.step()) {
            c3d_panic("event queue drained with %u cores unfinished",
                      done_remaining);
        }
    }
    const Tick end = eq.now();
    // Let in-flight writebacks and probes quiesce (their traffic
    // belongs to the measured work).
    eq.run();

    RunResult r;
    r.measuredTicks = end - measure_start;
    std::uint64_t insts = 0;
    for (const auto &cpu : cpus)
        insts += cpu->instructions();
    r.instructions = insts;
    r.memReads = m->totalMemReads();
    r.memWrites = m->totalMemWrites();
    r.remoteMemReads = m->remoteMemReads();
    r.remoteMemWrites = m->remoteMemWrites();
    r.dramCacheHits = m->totalDramCacheHits();
    r.dramCacheMisses = m->totalDramCacheMisses();
    r.llcMisses = m->totalLlcMisses();
    r.interSocketBytes = m->interSocketBytes();
    const StatGroup &sg = m->stats();
    r.broadcasts = sg.has("proto.broadcasts")
        ? sg.valueOf("proto.broadcasts") : 0;
    r.broadcastsElided = sg.has("proto.broadcasts_elided")
        ? sg.valueOf("proto.broadcasts_elided") : 0;
    return r;
}

RunResult
runWorkload(const SystemConfig &cfg,
            const WorkloadProfile &scaled_profile,
            std::uint64_t warmup_ops, std::uint64_t measure_ops)
{
    // Trace profiles replay their file (streaming, per-core lanes).
    // Passing the profile's content hash enables the reader's scan
    // memo across grid points and makes a trace modified after grid
    // expansion fail loudly instead of replaying different bytes.
    if (scaled_profile.isTrace()) {
        TraceFileWorkload wl(scaled_profile.tracePath,
                             scaled_profile.traceHash);
        Runner runner(cfg, wl);
        return runner.run(warmup_ops, measure_ops);
    }
    SyntheticWorkload wl(scaled_profile, cfg.totalCores(),
                         cfg.coresPerSocket);
    Runner runner(cfg, wl);
    return runner.run(warmup_ops, measure_ops);
}

} // namespace c3d
