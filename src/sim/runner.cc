#include "sim/runner.hh"

#include <atomic>
#include <thread>

#include "common/log.hh"
#include "sim/cell_executor.hh"
#include "trace/trace_file.hh"
#include "workload/composed_workload.hh"

namespace c3d
{

Runner::Runner(const SystemConfig &cfg, Workload &wl,
               RunOptions run_opts)
    : m(std::make_unique<Machine>(
          cfg, Machine::parallelKernelEligible(cfg)
                   ? KernelMode::MultiQueue
                   : KernelMode::SingleQueue)),
      workload(wl), opts(run_opts)
{
    if (opts.watchdog.any()) {
        watchdog.arm(opts.watchdog);
        m->attachWatchdog(&watchdog);
    }
    // parallelOnly faults arm only when the parallel kernel actually
    // drives the run (the retry fallback passes parallel=false, so
    // such faults vanish on the sequential re-run).
    m->faultInjector().arm(
        opts.fault,
        opts.kernel.parallel &&
            m->kernelMode() == KernelMode::MultiQueue);

    // FT1's serial-phase placement happens before any timed access.
    workload.preTouchPages(m->pageMapper());

    const std::uint32_t total = cfg.totalCores();
    cpus.reserve(total);
    for (CoreId c = 0; c < total; ++c) {
        cpus.push_back(std::make_unique<TraceCpu>(*m, c, workload,
                                                  &m->stats()));
    }
}

Runner::~Runner() = default;

void
Runner::enableTenantTracking(std::vector<std::int32_t> core_tenant,
                             std::vector<std::string> names)
{
    c3d_assert(tenantSets.empty(), "tenant tracking enabled twice");
    coreTenant = std::move(core_tenant);
    tenantNames = std::move(names);

    // Size the set vector once and register afterwards: the StatGroup
    // stores raw pointers into it, so it must never reallocate.
    const auto n = static_cast<std::uint32_t>(tenantNames.size());
    tenantSets = std::vector<TenantStatSet>(n);
    for (std::uint32_t i = 0; i < n; ++i)
        tenantSets[i].init(&m->stats(), i);

    const SystemConfig &cfg = m->config();
    for (SocketId s = 0; s < cfg.numSockets; ++s) {
        std::vector<TenantStatSet *> by_core(cfg.coresPerSocket,
                                             nullptr);
        std::vector<std::uint32_t> by_idx(cfg.coresPerSocket,
                                          DramCache::NoTenant);
        for (std::uint32_t l = 0; l < cfg.coresPerSocket; ++l) {
            const std::size_t g =
                static_cast<std::size_t>(s) * cfg.coresPerSocket + l;
            if (g < coreTenant.size() && coreTenant[g] >= 0) {
                by_core[l] = &tenantSets[static_cast<std::size_t>(
                    coreTenant[g])];
                by_idx[l] =
                    static_cast<std::uint32_t>(coreTenant[g]);
            }
        }
        m->socket(s).setTenantStats(std::move(by_core),
                                    std::move(by_idx));
        if (DramCache *dc = m->socket(s).dramCache())
            dc->enableTenantTracking(n);
    }
}

RunResult
Runner::run(std::uint64_t warmup_ops, std::uint64_t measure_ops)
{
    if (m->kernelMode() == KernelMode::MultiQueue)
        return runMultiQueue(warmup_ops, measure_ops);

    const std::uint32_t total = m->config().totalCores();
    const std::uint32_t active = workload.activeCores(total);

    std::uint32_t warm_remaining = active;
    std::uint32_t done_remaining = active;
    Tick measure_start = 0;

    const std::uint64_t barrier_interval = workload.barrierInterval();
    if (barrier_interval && active > 1) {
        barrier.init(active, &m->stats(), "barrier");
        for (CoreId c = 0; c < active; ++c)
            cpus[c]->setBarrier(&barrier, barrier_interval);
    }

    for (CoreId c = 0; c < total; ++c) {
        const bool runs = c < active;
        cpus[c]->start(
            runs ? warmup_ops : 0, runs ? measure_ops : 0,
            [this, &warm_remaining, &measure_start, runs] {
                if (!runs)
                    return;
                if (--warm_remaining == 0) {
                    // Last core crossed warm-up: open the window.
                    m->stats().resetAll();
                    measure_start = m->eventQueue().now();
                }
            },
            [&done_remaining, runs] {
                if (runs)
                    --done_remaining;
            });
    }

    // Idle cores also signal via their zero-op paths; the warm/done
    // callbacks above ignore them.
    EventQueue &eq = m->eventQueue();
    while (done_remaining > 0) {
        if (!eq.step()) {
            c3d_panic("event queue drained at tick %llu with %u "
                      "cores unfinished (lost wakeup?)",
                      static_cast<unsigned long long>(eq.now()),
                      done_remaining);
        }
    }
    const Tick end = eq.now();
    // Let in-flight writebacks and probes quiesce (their traffic
    // belongs to the measured work).
    eq.run();

    return collectResult(end - measure_start);
}

RunResult
Runner::runMultiQueue(std::uint64_t warmup_ops,
                      std::uint64_t measure_ops)
{
    const SystemConfig &cfg = m->config();
    const std::uint32_t total = cfg.totalCores();
    const std::uint32_t active = workload.activeCores(total);

    // Cores decrement these from their kernel threads; the cell
    // barrier publishes them to the boundary master.
    std::atomic<std::uint32_t> warm_remaining{active};
    std::atomic<bool> warm_pending{false};
    std::atomic<std::uint32_t> done_remaining{active};
    Tick measure_start = 0;

    const std::uint64_t barrier_interval = workload.barrierInterval();
    const bool use_barrier = barrier_interval && active > 1;
    if (use_barrier) {
        barrier.init(active, &m->stats(), "barrier");
        barrier.enableQuantized();
        for (CoreId c = 0; c < active; ++c)
            cpus[c]->setBarrier(&barrier, barrier_interval);
    }

    for (CoreId c = 0; c < total; ++c) {
        const bool runs = c < active;
        cpus[c]->start(
            runs ? warmup_ops : 0, runs ? measure_ops : 0,
            [&warm_remaining, &warm_pending, runs] {
                if (!runs)
                    return;
                // The reset itself is deferred to the next cell
                // boundary: it touches every stat while other
                // sockets' threads are mid-cell.
                if (warm_remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
                    warm_pending.store(true,
                                       std::memory_order_release);
            },
            [&done_remaining, runs] {
                if (runs)
                    done_remaining.fetch_sub(
                        1, std::memory_order_acq_rel);
            });
    }

    unsigned threads = 1;
    if (opts.kernel.parallel) {
        threads = opts.kernel.threads
            ? opts.kernel.threads
            : std::max(1u, std::min<unsigned>(
                               cfg.numSockets,
                               std::thread::hardware_concurrency()));
    }

    CellExecutor exec(*m, threads);
    exec.run([&](Tick q) -> bool {
        if (warm_pending.exchange(false)) {
            m->stats().resetAll();
            measure_start = q;
        }
        if (use_barrier) {
            barrier.quantRelease(q, [this](CoreId c) -> EventQueue & {
                return m->queueAt(
                    c / m->config().coresPerSocket);
            });
        }
        return done_remaining.load(std::memory_order_acquire) == 0;
    });

    // The executor already quiesced the machine (it stops only once
    // every queue and outbox drained). The window closes when the
    // last active core finished issuing and draining, which each
    // core records itself.
    Tick end = 0;
    for (CoreId c = 0; c < active; ++c)
        end = std::max(end, cpus[c]->finishAt());

    // The window opens at a cell boundary; a tiny measure quota can
    // finish inside the warm cell, before the boundary. Clamp rather
    // than wrap.
    return collectResult(end > measure_start ? end - measure_start
                                             : 0);
}

RunResult
Runner::collectResult(Tick measured_ticks)
{
    RunResult r;
    r.measuredTicks = measured_ticks;
    std::uint64_t insts = 0;
    for (const auto &cpu : cpus)
        insts += cpu->instructions();
    r.instructions = insts;
    r.memReads = m->totalMemReads();
    r.memWrites = m->totalMemWrites();
    r.remoteMemReads = m->remoteMemReads();
    r.remoteMemWrites = m->remoteMemWrites();
    r.dramCacheHits = m->totalDramCacheHits();
    r.dramCacheMisses = m->totalDramCacheMisses();
    r.llcMisses = m->totalLlcMisses();
    r.interSocketBytes = m->interSocketBytes();
    r.predictorTrains = m->totalPredictorTrains();
    r.predictorBypasses = m->totalPredictorBypasses();
    r.predictorGhostHits = m->totalPredictorGhostHits();
    r.predictorFalsePresent = m->totalPredictorFalsePresent();
    const StatGroup &sg = m->stats();
    r.broadcasts = sg.has("proto.broadcasts")
        ? sg.valueOf("proto.broadcasts") : 0;
    r.broadcastsElided = sg.has("proto.broadcasts_elided")
        ? sg.valueOf("proto.broadcasts_elided") : 0;

    if (!tenantSets.empty()) {
        r.tenants.resize(tenantSets.size());
        for (std::size_t i = 0; i < tenantSets.size(); ++i) {
            const TenantStatSet &ts = tenantSets[i];
            TenantMetrics &tm = r.tenants[i];
            tm.name = tenantNames[i];
            tm.loads = ts.loads.value();
            tm.stores = ts.stores.value();
            tm.latP50 = ts.memLatency.percentile(50);
            tm.latP95 = ts.memLatency.percentile(95);
            tm.latP99 = ts.memLatency.percentile(99);
        }
        // DRAM-cache attribution lives in the caches themselves;
        // fold the per-socket tenant counters and the occupancy
        // gauge machine-wide.
        const SystemConfig &cfg = m->config();
        for (SocketId s = 0; s < cfg.numSockets; ++s) {
            const DramCache *dc = m->socket(s).dramCache();
            if (!dc || !dc->tenantTrackingEnabled())
                continue;
            for (std::size_t i = 0; i < r.tenants.size(); ++i) {
                const auto t = static_cast<std::uint32_t>(i);
                r.tenants[i].dramCacheHits += dc->tenantHitCount(t);
                r.tenants[i].dramCacheMisses +=
                    dc->tenantMissCount(t);
                r.tenants[i].dramCacheOccupancy +=
                    dc->tenantOccupancy(t);
            }
        }
        // Instructions are per-core state on the TraceCpus; fold
        // them per tenant via the core map.
        for (std::size_t c = 0;
             c < coreTenant.size() && c < cpus.size(); ++c) {
            if (coreTenant[c] >= 0)
                r.tenants[static_cast<std::size_t>(coreTenant[c])]
                    .instructions += cpus[c]->instructions();
        }
    }
    return r;
}

namespace
{

/**
 * Heap-owned state of one guarded run. When the sibling watchdog
 * abandons a stuck run, its registry keeps this box alive, so the
 * parked thread's references (workload, machine, result slot) stay
 * valid after the caller's stack unwound.
 */
struct GuardedRun
{
    std::unique_ptr<Workload> wl;
    std::unique_ptr<Runner> runner;
    RunResult result;
};

/**
 * Drive @p box->runner under the sibling wall-clock watchdog when a
 * wall budget is set. The in-band wall check (WatchdogState) stays
 * armed too and usually fires first; the sibling path exists for
 * hard stalls inside a single event, which the in-band check can
 * never observe.
 */
RunResult
runGuarded(std::shared_ptr<GuardedRun> box, const RunOptions &opts,
           std::uint64_t warmup_ops, std::uint64_t measure_ops)
{
    if (!opts.watchdog.wallMs)
        return box->runner->run(warmup_ops, measure_ops);
    runWithSiblingWatchdog(
        opts.watchdog.wallMs,
        [box, warmup_ops, measure_ops] {
            box->result = box->runner->run(warmup_ops, measure_ops);
        },
        box);
    return box->result;
}

} // namespace

RunResult
runWorkload(const SystemConfig &cfg,
            const WorkloadProfile &scaled_profile,
            std::uint64_t warmup_ops, std::uint64_t measure_ops,
            RunOptions opts)
{
    // Trace profiles replay their file (streaming, per-core lanes).
    // Passing the profile's content hash enables the reader's scan
    // memo across grid points and makes a trace modified after grid
    // expansion fail loudly instead of replaying different bytes.
    // Composition profiles reload their manifest (members unscanned:
    // the ComposedWorkload's expected-hash reader opens revalidate
    // them through the scan memo) and re-derive the semantic hash so
    // a manifest edited after grid expansion fails loudly.
    if (scaled_profile.isComposition()) {
        CompositionSpec spec;
        std::string error;
        if (!loadComposition(scaled_profile.compositionPath, spec,
                             error, /*validate_members=*/false))
            c3d_fatal("%s", error.c_str());
        if (compositionHashOf(spec) !=
            scaled_profile.compositionHash) {
            c3d_fatal("'%s' changed since the grid was built "
                      "(composition hash %016llx, expected %016llx)",
                      scaled_profile.compositionPath.c_str(),
                      static_cast<unsigned long long>(
                          compositionHashOf(spec)),
                      static_cast<unsigned long long>(
                          scaled_profile.compositionHash));
        }
        auto box = std::make_shared<GuardedRun>();
        auto wl = std::make_unique<ComposedWorkload>(
            spec, scaled_profile.seed, cfg.totalCores());
        box->runner = std::make_unique<Runner>(cfg, *wl, opts);
        box->runner->enableTenantTracking(wl->coreTenants(),
                                          wl->tenantNames());
        box->wl = std::move(wl);
        return runGuarded(std::move(box), opts, warmup_ops,
                          measure_ops);
    }
    auto box = std::make_shared<GuardedRun>();
    if (scaled_profile.isTrace()) {
        box->wl = std::make_unique<TraceFileWorkload>(
            scaled_profile.tracePath, scaled_profile.traceHash);
    } else {
        box->wl = std::make_unique<SyntheticWorkload>(
            scaled_profile, cfg.totalCores(), cfg.coresPerSocket);
    }
    box->runner = std::make_unique<Runner>(cfg, *box->wl, opts);
    return runGuarded(std::move(box), opts, warmup_ops, measure_ops);
}

} // namespace c3d
