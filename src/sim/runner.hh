/**
 * @file
 * Simulation runner: couples a Machine with a Workload, spawns one
 * TraceCpu per core, handles the warm-up / measurement split (the
 * paper warms the DRAM caches before collecting results, §V), and
 * extracts the metrics every bench reports.
 */

#ifndef C3DSIM_SIM_RUNNER_HH
#define C3DSIM_SIM_RUNNER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/trace_cpu.hh"
#include "sim/machine.hh"
#include "trace/workload.hh"

namespace c3d
{

/** Metrics of one simulation run (measurement window only). */
struct RunResult
{
    Tick measuredTicks = 0;      //!< wall ticks of the window
    std::uint64_t instructions = 0; //!< committed instructions
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t remoteMemReads = 0;
    std::uint64_t remoteMemWrites = 0;
    std::uint64_t dramCacheHits = 0;
    std::uint64_t dramCacheMisses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t interSocketBytes = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t broadcastsElided = 0;

    double
    ipc() const
    {
        return measuredTicks
            ? static_cast<double>(instructions) / measuredTicks : 0.0;
    }

    std::uint64_t memAccesses() const { return memReads + memWrites; }
    std::uint64_t
    remoteMemAccesses() const
    {
        return remoteMemReads + remoteMemWrites;
    }
};

/** Drives a full simulation. */
class Runner
{
  public:
    /**
     * @param cfg machine configuration
     * @param workload reference-stream source (not owned)
     */
    Runner(const SystemConfig &cfg, Workload &workload);
    ~Runner();

    /**
     * Run @p warmup_ops + @p measure_ops references per active core
     * and return the measurement-window metrics. Stats are reset when
     * the last core crosses its warm-up quota.
     */
    RunResult run(std::uint64_t warmup_ops, std::uint64_t measure_ops);

    Machine &machine() { return *m; }
    const std::vector<std::unique_ptr<TraceCpu>> &cores() const
    {
        return cpus;
    }

  private:
    std::unique_ptr<Machine> m;
    Workload &workload;
    std::vector<std::unique_ptr<TraceCpu>> cpus;
    Barrier barrier;
};

/** Convenience: build, run, and summarize in one call. */
RunResult runWorkload(const SystemConfig &cfg,
                      const WorkloadProfile &scaled_profile,
                      std::uint64_t warmup_ops,
                      std::uint64_t measure_ops);

} // namespace c3d

#endif // C3DSIM_SIM_RUNNER_HH
