/**
 * @file
 * Simulation runner: couples a Machine with a Workload, spawns one
 * TraceCpu per core, handles the warm-up / measurement split (the
 * paper warms the DRAM caches before collecting results, §V), and
 * extracts the metrics every bench reports.
 */

#ifndef C3DSIM_SIM_RUNNER_HH
#define C3DSIM_SIM_RUNNER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "cpu/trace_cpu.hh"
#include "sim/machine.hh"
#include "trace/workload.hh"
#include "workload/tenant_stats.hh"

namespace c3d
{

/**
 * Per-tenant QoS metrics of one composed run (measurement window).
 * Latency percentiles come from the tenant's memory-latency
 * histogram -- power-of-two bucket resolution, integer arithmetic,
 * bit-identical across platforms (Histogram::percentile).
 */
struct TenantMetrics
{
    std::string name; //!< "t<idx>:<trace-basename>@<hash8>"
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t dramCacheHits = 0;
    std::uint64_t dramCacheMisses = 0;
    /** DRAM-cache blocks owned by the tenant at window close (live
     * gauge, not reset at the warm-up boundary). */
    std::uint64_t dramCacheOccupancy = 0;
    std::uint64_t latP50 = 0; //!< p50 memory latency (ticks)
    std::uint64_t latP95 = 0;
    std::uint64_t latP99 = 0;

    /** Tenant IPC over the machine's measurement window. */
    double
    ipc(Tick measured_ticks) const
    {
        return measured_ticks
            ? static_cast<double>(instructions) / measured_ticks : 0.0;
    }
};

/** Metrics of one simulation run (measurement window only). */
struct RunResult
{
    Tick measuredTicks = 0;      //!< wall ticks of the window
    std::uint64_t instructions = 0; //!< committed instructions
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t remoteMemReads = 0;
    std::uint64_t remoteMemWrites = 0;
    std::uint64_t dramCacheHits = 0;
    std::uint64_t dramCacheMisses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t interSocketBytes = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t broadcastsElided = 0;

    // DRAM-cache predictor accuracy (docs/predictors.md). All zero
    // for the region predictor except falsePresent (counting-filter
    // mode); the perceptron fills all four.
    std::uint64_t predictorTrains = 0;
    std::uint64_t predictorBypasses = 0;
    std::uint64_t predictorGhostHits = 0;
    std::uint64_t predictorFalsePresent = 0;

    /** Per-tenant QoS breakdown; empty for non-composed runs. */
    std::vector<TenantMetrics> tenants;

    double
    ipc() const
    {
        return measuredTicks
            ? static_cast<double>(instructions) / measuredTicks : 0.0;
    }

    std::uint64_t memAccesses() const { return memReads + memWrites; }
    std::uint64_t
    remoteMemAccesses() const
    {
        return remoteMemReads + remoteMemWrites;
    }
};

/**
 * Kernel selection for a run.
 *
 * Eligible configurations (Machine::parallelKernelEligible) always
 * run on the multi-queue kernel; `parallel` only chooses how many
 * worker threads drive it. The default (1 thread) executes the exact
 * event sequence the parallel run must reproduce — it is the
 * sequential differential oracle. Ineligible configurations fall back
 * to the classic single-queue kernel regardless of these options.
 */
struct KernelOptions
{
    bool parallel = false; //!< drive eligible configs with a pool
    /** Worker threads; 0 = min(numSockets, hardware threads). */
    unsigned threads = 0;
};

/**
 * Everything configurable about how one run executes -- as opposed
 * to *what* it simulates (SystemConfig/Workload). None of it is part
 * of row identity: the kernel choice reproduces the sequential
 * oracle byte-for-byte, the watchdog only observes, and the fault
 * plan exists to make runs fail, not to change surviving results.
 * Implicitly constructible from KernelOptions so pre-existing call
 * sites that only select a kernel keep working.
 */
struct RunOptions
{
    KernelOptions kernel;
    WatchdogLimits watchdog; //!< progress budgets; default all off
    FaultPlan fault;         //!< injected fault; default none

    RunOptions() = default;
    RunOptions(const KernelOptions &k) : kernel(k) {}
};

/** Drives a full simulation. */
class Runner
{
  public:
    /**
     * @param cfg machine configuration
     * @param workload reference-stream source (not owned)
     * @param opts execution options (kernel selection, watchdog
     *        budgets, fault injection; see RunOptions)
     */
    Runner(const SystemConfig &cfg, Workload &workload,
           RunOptions opts = {});
    ~Runner();

    /**
     * Run @p warmup_ops + @p measure_ops references per active core
     * and return the measurement-window metrics. Stats are reset when
     * the last core crosses its warm-up quota.
     */
    RunResult run(std::uint64_t warmup_ops, std::uint64_t measure_ops);

    /**
     * Turn on per-tenant QoS accounting (before run()): @p core_tenant
     * maps each global core to a tenant index (-1 idle) and @p names
     * labels the tenants. Registers one TenantStatSet per tenant with
     * the machine's StatGroup -- so the warm-up reset covers them --
     * and installs per-socket local-core maps into every Socket.
     */
    void enableTenantTracking(std::vector<std::int32_t> core_tenant,
                              std::vector<std::string> names);

    Machine &machine() { return *m; }
    const std::vector<std::unique_ptr<TraceCpu>> &cores() const
    {
        return cpus;
    }

  private:
    RunResult runMultiQueue(std::uint64_t warmup_ops,
                            std::uint64_t measure_ops);
    RunResult collectResult(Tick measured_ticks);

    std::unique_ptr<Machine> m;
    Workload &workload;
    RunOptions opts;
    WatchdogState watchdog; //!< armed iff opts.watchdog.any()
    std::vector<std::unique_ptr<TraceCpu>> cpus;
    Barrier barrier;

    /** Tenant accounting state (empty unless enabled). Sized once at
     * enable time: the StatGroup keeps raw pointers into the vector,
     * so it must never reallocate afterwards. */
    std::vector<TenantStatSet> tenantSets;
    std::vector<std::int32_t> coreTenant; //!< global core -> tenant
    std::vector<std::string> tenantNames;
};

/** Convenience: build, run, and summarize in one call. */
RunResult runWorkload(const SystemConfig &cfg,
                      const WorkloadProfile &scaled_profile,
                      std::uint64_t warmup_ops,
                      std::uint64_t measure_ops,
                      RunOptions opts = {});

} // namespace c3d

#endif // C3DSIM_SIM_RUNNER_HH
