#include "sim/slab.hh"

#include <mutex>
#include <new>

namespace c3d
{
namespace slab
{
namespace
{

constexpr std::size_t kClassSizes[] = {128, 256};
constexpr std::size_t kNumClasses = 2;

// Donate half the high-water mark per trip so a produce-on-A /
// free-on-B pattern settles into batched handoffs instead of
// ping-ponging single nodes through the global lock.
constexpr std::size_t kLocalHighWater = 1024;
constexpr std::size_t kBatch = 512;

struct FreeNode
{
    FreeNode *next;
};

// Returns kNumClasses for sizes that pass through to operator new.
inline std::size_t
classOf(std::size_t size)
{
    for (std::size_t c = 0; c < kNumClasses; ++c) {
        if (size <= kClassSizes[c])
            return c;
    }
    return kNumClasses;
}

struct GlobalPool
{
    std::mutex mtx;
    FreeNode *head[kNumClasses] = {nullptr, nullptr};
    std::size_t count[kNumClasses] = {0, 0};

    ~GlobalPool()
    {
        for (std::size_t c = 0; c < kNumClasses; ++c) {
            while (head[c]) {
                FreeNode *n = head[c];
                head[c] = n->next;
                ::operator delete(n);
            }
        }
    }
};

GlobalPool &
globalPool()
{
    static GlobalPool pool;
    return pool;
}

struct ThreadCache
{
    FreeNode *head[kNumClasses] = {nullptr, nullptr};
    std::size_t count[kNumClasses] = {0, 0};

    ~ThreadCache()
    {
        // Worker threads come and go per sweep row; returning their
        // cache straight to the allocator keeps shutdown independent
        // of global-pool destruction order and leak-clean.
        for (std::size_t c = 0; c < kNumClasses; ++c) {
            while (head[c]) {
                FreeNode *n = head[c];
                head[c] = n->next;
                ::operator delete(n);
            }
        }
    }
};

ThreadCache &
threadCache()
{
    thread_local ThreadCache cache;
    return cache;
}

} // namespace

void *
alloc(std::size_t size)
{
    const std::size_t c = classOf(size);
    if (c == kNumClasses)
        return ::operator new(size);

    ThreadCache &tc = threadCache();
    if (tc.head[c]) {
        FreeNode *n = tc.head[c];
        tc.head[c] = n->next;
        --tc.count[c];
        return n;
    }

    // Local miss: take one node for the caller plus up to a batch
    // for the local cache, all under a single lock acquisition.
    GlobalPool &gp = globalPool();
    {
        std::lock_guard<std::mutex> lock(gp.mtx);
        if (gp.head[c]) {
            FreeNode *n = gp.head[c];
            gp.head[c] = n->next;
            --gp.count[c];
            std::size_t moved = 0;
            while (gp.head[c] && moved + 1 < kBatch) {
                FreeNode *m = gp.head[c];
                gp.head[c] = m->next;
                --gp.count[c];
                m->next = tc.head[c];
                tc.head[c] = m;
                ++tc.count[c];
                ++moved;
            }
            return n;
        }
    }
    return ::operator new(kClassSizes[c]);
}

void
free(void *ptr, std::size_t size)
{
    const std::size_t c = classOf(size);
    if (c == kNumClasses) {
        ::operator delete(ptr);
        return;
    }

    ThreadCache &tc = threadCache();
    FreeNode *n = static_cast<FreeNode *>(ptr);
    n->next = tc.head[c];
    tc.head[c] = n;
    ++tc.count[c];

    if (tc.count[c] <= kLocalHighWater)
        return;

    // Donate a batch to the global pool.
    FreeNode *batch_head = tc.head[c];
    FreeNode *batch_tail = batch_head;
    for (std::size_t i = 1; i < kBatch; ++i)
        batch_tail = batch_tail->next;
    tc.head[c] = batch_tail->next;
    tc.count[c] -= kBatch;

    GlobalPool &gp = globalPool();
    std::lock_guard<std::mutex> lock(gp.mtx);
    batch_tail->next = gp.head[c];
    gp.head[c] = batch_head;
    gp.count[c] += kBatch;
}

std::size_t
cachedNodes()
{
    std::size_t n = 0;
    ThreadCache &tc = threadCache();
    for (std::size_t c = 0; c < kNumClasses; ++c)
        n += tc.count[c];
    GlobalPool &gp = globalPool();
    std::lock_guard<std::mutex> lock(gp.mtx);
    for (std::size_t c = 0; c < kNumClasses; ++c)
        n += gp.count[c];
    return n;
}

} // namespace slab
} // namespace c3d
