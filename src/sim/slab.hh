/**
 * @file
 * Thread-cached slab recycler for event-path allocations.
 *
 * The simulator's remaining hot-path heap traffic is small,
 * fixed-size nodes: InlineFunction's heap-fallback wrappers and the
 * per-hop continuation nodes inside Interconnect::forwardHop (the
 * 48-byte wrapper flagged by bench-report). Both are allocated and
 * freed at event rates, so going through malloc on every miss costs
 * real throughput and — under the parallel kernel — contends on the
 * global allocator.
 *
 * slab::alloc/free keep per-thread free lists for two small size
 * classes (128 and 256 bytes; larger requests pass through to
 * operator new). Frees always push onto the *freeing* thread's local
 * list — a node allocated by socket 0's worker may be freed by
 * socket 2's worker after a cross-queue hop, and that must not
 * require synchronization on the fast path. When a local list grows
 * past a high-water mark it donates a batch to a mutex-protected
 * global pool, which refills other threads' lists; this bounds
 * per-thread hoarding when producers and consumers are different
 * threads. All memory is released at thread exit (local caches) and
 * process exit (global pool), keeping LeakSanitizer clean.
 */

#ifndef C3DSIM_SIM_SLAB_HH
#define C3DSIM_SIM_SLAB_HH

#include <cstddef>

namespace c3d
{
namespace slab
{

/**
 * Allocate @p size bytes (alignment suitable for any object of
 * fundamental alignment). Small sizes are served from the calling
 * thread's cache; sizes above the largest class fall through to
 * ::operator new.
 */
void *alloc(std::size_t size);

/** Return memory obtained from alloc(); @p size must match. */
void free(void *ptr, std::size_t size);

/** Nodes currently cached (local + global), for tests. */
std::size_t cachedNodes();

} // namespace slab
} // namespace c3d

#endif // C3DSIM_SIM_SLAB_HH
