#include "sim/socket.hh"

#include "coherence/protocol.hh"

namespace c3d
{

Socket::Socket(EventQueue &eq, const SystemConfig &cfg, SocketId id,
               StatGroup *stats)
    : eventq(eq), cfg(cfg), socketId(id),
      mem(eq, cfg, id, stats)
{
    l1s.resize(cfg.coresPerSocket);
    for (auto &l1 : l1s)
        l1.init(cfg.l1Bytes, cfg.l1Ways);
    llc.init(cfg.llcBytes, cfg.llcWays);

    if (cfg.designUsesDramCache())
        dcache = std::make_unique<DramCache>(eq, cfg, id, stats);

    const std::string prefix = "socket" + std::to_string(id);
    loads.init(stats, prefix + ".loads", "loads issued to this socket");
    stores.init(stats, prefix + ".stores", "stores issued");
    l1HitCount.init(stats, prefix + ".l1_hits", "L1 hits");
    l1MissCount.init(stats, prefix + ".l1_misses", "L1 misses");
    llcHitCount.init(stats, prefix + ".llc_hits", "LLC hits");
    llcMissCount.init(stats, prefix + ".llc_misses", "LLC misses");
    mergedReads.init(stats, prefix + ".merged_reads",
                     "read misses merged into an outstanding GetS");
    upgradesIssued.init(stats, prefix + ".upgrades", "Upgrade requests");
    getXIssued.init(stats, prefix + ".getx", "GetX requests");
    getSIssued.init(stats, prefix + ".gets", "GetS requests");
    loadLatency.init(stats, prefix + ".load_latency",
                     "load completion latency (ticks)");
    storeLatency.init(stats, prefix + ".store_latency",
                      "store write-permission latency (ticks)");
}

// --------------------------------------------------------------------
// CPU-facing path
// --------------------------------------------------------------------

void
Socket::sampleLoadLatency(std::uint32_t core, Tick start)
{
    const Tick lat = eventq.now() - start;
    loadLatency.sample(lat);
    if (TenantStatSet *t = tenantFor(core))
        t->memLatency.sample(lat);
}

void
Socket::sampleStoreLatency(std::uint32_t core, Tick start)
{
    const Tick lat = eventq.now() - start;
    storeLatency.sample(lat);
    if (TenantStatSet *t = tenantFor(core))
        t->memLatency.sample(lat);
}

void
Socket::load(std::uint32_t core, Addr addr, std::function<void()> done)
{
    ++loads;
    if (TenantStatSet *t = tenantFor(core))
        ++t->loads;
    const Addr blk = blockAlign(addr);
    const Tick start = eventq.now();

    TagArray &l1 = l1s[core];
    if (TagEntry *e = l1.find(blk)) {
        ++l1HitCount;
        l1.touch(e);
        eventq.schedule(cfg.l1Latency,
                        [this, core, start, done = std::move(done)] {
            sampleLoadLatency(core, start);
            done();
        });
        return;
    }
    ++l1MissCount;
    // Capture the raw pieces, not a pre-built latency-sampling
    // closure: nesting a lambda inside a lambda would push the
    // capture past the event's inline-storage budget.
    eventq.schedule(cfg.l1Latency, [this, core, blk, start,
                                    done = std::move(done)]() mutable {
        accessLlcForRead(core, blk,
                         [this, core, start, done = std::move(done)] {
            sampleLoadLatency(core, start);
            done();
        });
    });
}

void
Socket::accessLlcForRead(std::uint32_t core, Addr blk,
                         std::function<void()> done)
{
    if (TagEntry *e = llc.find(blk)) {
        ++llcHitCount;
        llc.touch(e);
        e->aux |= (1ull << core);
        const CacheState l1_state = e->state == CacheState::Modified &&
            e->aux == (1ull << core)
            ? CacheState::Modified : CacheState::Shared;
        // Data hit: tag + data access.
        eventq.schedule(cfg.llcTagLatency + cfg.llcDataLatency,
                        [this, core, blk, l1_state,
                         done = std::move(done)]() mutable {
            // Install into the L1 as Shared unless this core is the
            // sole owner of a Modified block.
            fillL1(core, blk,
                   l1_state == CacheState::Modified
                   ? CacheState::Modified : CacheState::Shared);
            done();
        });
        return;
    }

    ++llcMissCount;
    // Tag miss known after the tag access.
    eventq.schedule(cfg.llcTagLatency, [this, core, blk,
                                        done = std::move(done)]() mutable {
        if (dcache) {
            // The tenant tag rides into the cache so hits/misses are
            // counted exactly where the cache's own counters tick
            // (exact attribution even under racing invalidations).
            dcache->probe(blk, [this, core, blk,
                                done = std::move(done)]
                          (DramCacheProbe res) mutable {
                // Re-validate at fill time: an invalidation may have
                // raced with the probe (the in-flight access is
                // squashed, as a transient MSHR state would).
                if (res.present && dcache->contains(blk)) {
                    // Local DRAM-cache hit: the fast path that makes
                    // private DRAM caches attack the NUMA bottleneck.
                    fillRead(core, blk);
                    done();
                } else {
                    issueGetS(core, blk, std::move(done));
                }
            }, /*always_access=*/false, tenantIdxFor(core));
        } else {
            issueGetS(core, blk, std::move(done));
        }
    });
}

void
Socket::issueGetS(std::uint32_t core, Addr blk,
                  std::function<void()> done)
{
    auto it = pendingReads.find(blk);
    if (it != pendingReads.end()) {
        // Merge with the outstanding GetS (MSHR hit).
        ++mergedReads;
        it->second.waiters.push_back(
            [this, core, blk, done = std::move(done)]() mutable {
                // The primary requester filled the LLC unless the
                // fill was squashed by a racing invalidation.
                if (llc.find(blk))
                    fillL1(core, blk, CacheState::Shared);
                done();
            });
        return;
    }

    ++getSIssued;
    pendingReads.emplace(blk, PendingRead{});
    protocol->getS(socketId, blk, [this, core, blk,
                                   done = std::move(done)]() mutable {
        PendingRead pending = std::move(pendingReads[blk]);
        pendingReads.erase(blk);
        // A racing invalidation poisoned the fill: the loads still
        // complete with the pre-write value, but nothing is cached.
        if (!pending.poisoned)
            fillRead(core, blk);
        done();
        for (auto &w : pending.waiters)
            w();
    });
}

void
Socket::store(std::uint32_t core, Addr addr, bool private_page,
              std::function<void()> done_raw)
{
    ++stores;
    if (TenantStatSet *t = tenantFor(core))
        ++t->stores;
    const Addr blk = blockAlign(addr);
    const Tick start = eventq.now();

    TagArray &l1 = l1s[core];
    if (TagEntry *e = l1.find(blk);
        e && e->state == CacheState::Modified) {
        l1.touch(e);
        eventq.schedule(cfg.l1Latency, [this, core, start,
                                        done_raw = std::move(done_raw)] {
            sampleStoreLatency(core, start);
            done_raw();
        });
        return;
    }

    // Need the LLC's view (local directory, 7-cycle embedded tag).
    // As in load(), the latency-sampling wrapper is built inside the
    // continuation so the scheduled capture stays within the event's
    // inline-storage budget; the capture order packs the bool into
    // core's padding.
    eventq.schedule(cfg.l1Latency + cfg.localDirLatency,
                    [this, core, private_page, blk, start,
                     done_raw = std::move(done_raw)]() mutable {
        auto done = [this, core, start,
                     done_raw = std::move(done_raw)] {
            sampleStoreLatency(core, start);
            done_raw();
        };
        TagEntry *e = llc.find(blk);
        if (e && e->state == CacheState::Modified) {
            // Socket already owns the block: invalidate sibling L1
            // copies via the local directory and take it Modified.
            llc.touch(e);
            invalidateL1Sharers(blk, e->aux,
                                static_cast<std::int32_t>(core));
            e->aux = (1ull << core);
            fillL1(core, blk, CacheState::Modified);
            eventq.schedule(cfg.llcDataLatency, std::move(done));
            return;
        }
        if (e && e->state == CacheState::Shared) {
            issueGetX(core, blk, /*upgrade=*/true, private_page,
                      std::move(done));
            return;
        }
        issueGetX(core, blk, /*upgrade=*/false, private_page,
                  std::move(done));
    });
}

void
Socket::issueGetX(std::uint32_t core, Addr blk, bool upgrade,
                  bool private_page, std::function<void()> done)
{
    if (upgrade)
        ++upgradesIssued;
    else
        ++getXIssued;

    protocol->getX(socketId, blk, upgrade, private_page,
                   [this, core, blk, done = std::move(done)]() mutable {
        fillWrite(core, blk);
        // The local DRAM cache may hold a now-stale clean copy of the
        // block; kill it off the critical path.
        if (dcache && dcache->contains(blk)) {
            dcache->invalidate(blk, [](bool, bool) {});
        }
        done();
    });
}

// --------------------------------------------------------------------
// Fills and evictions
// --------------------------------------------------------------------

void
Socket::fillL1(std::uint32_t core, Addr blk, CacheState state)
{
    TagArray &l1 = l1s[core];
    AllocResult ar = l1.allocate(blk, state);
    if (ar.evictedValid) {
        // L1 victim: the inclusive LLC absorbs dirty data.
        if (TagEntry *le = llc.find(ar.victimAddr)) {
            if (ar.victimState == CacheState::Modified)
                le->state = CacheState::Modified;
            le->aux &= ~(1ull << core);
        }
    }
}

void
Socket::fillRead(std::uint32_t core, Addr blk)
{
    if (watchingBlock(blk))
        watchTrace(eventq.now(), "fillRead", "socket %u core %u",
                   socketId, core);
    AllocResult ar = llc.allocate(blk, CacheState::Shared);
    if (ar.evictedValid)
        handleLlcVictim(ar.victimAddr, ar.victimState, ar.victimAux);
    ar.entry->aux = (1ull << core);
    fillL1(core, blk, CacheState::Shared);
}

void
Socket::fillWrite(std::uint32_t core, Addr blk)
{
    if (watchingBlock(blk))
        watchTrace(eventq.now(), "fillWrite", "socket %u core %u",
                   socketId, core);
    if (TagEntry *e = llc.find(blk)) {
        e->state = CacheState::Modified;
        llc.touch(e);
        invalidateL1Sharers(blk, e->aux,
                            static_cast<std::int32_t>(core));
        e->aux = (1ull << core);
    } else {
        AllocResult ar = llc.allocate(blk, CacheState::Modified);
        if (ar.evictedValid)
            handleLlcVictim(ar.victimAddr, ar.victimState,
                            ar.victimAux);
        ar.entry->aux = (1ull << core);
    }
    fillL1(core, blk, CacheState::Modified);
}

void
Socket::handleLlcVictim(Addr victim, CacheState state,
                        std::uint64_t l1_sharers)
{
    if (watchingBlock(victim))
        watchTrace(eventq.now(), "llcVictim", "socket %u state %d",
                   socketId, static_cast<int>(state));
    // Inclusive LLC: back-invalidate any L1 copies; a dirty L1 copy
    // folds into the victim's dirtiness.
    bool dirty = state == CacheState::Modified;
    for (std::uint32_t c = 0; c < l1s.size(); ++c) {
        if ((l1_sharers >> c) & 1) {
            if (TagEntry *e = l1s[c].find(victim)) {
                if (e->state == CacheState::Modified)
                    dirty = true;
                l1s[c].invalidate(victim);
            }
        }
    }

    if (dcache) {
        // Victim caching (§II-C): the LLC victim sinks into the DRAM
        // cache. Clean designs insert clean and write dirty data
        // through to memory (§IV-A); dirty designs let the dirty
        // block live in the DRAM cache. A victim with an invalidation
        // probe in flight is dying: the insert is squashed (dirty
        // data still reaches memory through a writeback).
        if (invInFlight.find(victim) == invInFlight.end()) {
            const bool insert_dirty = dirty && cfg.dirtyDramCache();
            DramCacheVictim dv = dcache->insert(victim, insert_dirty);
            if (dv.valid)
                protocol->dramCacheEvicted(socketId, dv.addr,
                                           dv.dirty);
        } else if (dirty && cfg.dirtyDramCache()) {
            // The dirty block cannot sink into the DRAM cache; fall
            // back to a plain memory writeback so the data survives.
            protocol->putX(socketId, victim);
        }
        if (dirty && cfg.cleanDramCache())
            protocol->putX(socketId, victim);
    } else if (dirty) {
        // Baseline: plain writeback to the home memory.
        protocol->putX(socketId, victim);
    }
}

CacheState
Socket::invalidateOnChip(Addr addr)
{
    const Addr blk = blockAlign(addr);
    if (watchingBlock(blk))
        watchTrace(eventq.now(), "invalidateOnChip", "socket %u",
                   socketId);
    // Squash any in-flight read fill for this block.
    if (auto it = pendingReads.find(blk); it != pendingReads.end())
        it->second.poisoned = true;
    CacheState old_state = CacheState::Invalid;
    if (TagEntry *e = llc.find(blk)) {
        old_state = e->state;
        invalidateL1Sharers(blk, e->aux, -1);
        // A dirty L1 copy means the socket holds modified data even
        // if the LLC tag itself says Shared.
        llc.invalidate(blk);
    } else {
        // Non-inclusive corner: no LLC entry implies no L1 copies
        // (we maintain L1-in-LLC inclusion), nothing to do.
    }
    return old_state;
}

void
Socket::invalidateL1Sharers(Addr blk, std::uint64_t sharers,
                            std::int32_t keep_core)
{
    for (std::uint32_t c = 0; c < l1s.size(); ++c) {
        if (keep_core >= 0 && c == static_cast<std::uint32_t>(keep_core))
            continue;
        if ((sharers >> c) & 1)
            l1s[c].invalidate(blk);
    }
}

void
Socket::downgradeL1Sharers(Addr blk, std::uint64_t sharers)
{
    for (std::uint32_t c = 0; c < l1s.size(); ++c) {
        if (!((sharers >> c) & 1))
            continue;
        if (TagEntry *e = l1s[c].find(blk)) {
            if (e->state == CacheState::Modified)
                e->state = CacheState::Shared;
        }
    }
}

// --------------------------------------------------------------------
// Remote-side probes
// --------------------------------------------------------------------

void
Socket::probeInvalidate(Addr addr, std::function<void(bool)> done)
{
    const Addr blk = blockAlign(addr);

    if (dcache) {
        // §IV-C: invalidations go DRAM cache first, then on-chip.
        // While the probe is in flight, LLC-victim inserts for this
        // block are squashed (see handleLlcVictim).
        ++invInFlight[blk];
        dcache->invalidate(blk, [this, blk, done = std::move(done)]
                           (bool, bool dc_dirty) mutable {
            eventq.schedule(cfg.localDirLatency,
                            [this, blk, dc_dirty,
                             done = std::move(done)]() mutable {
                const CacheState s = invalidateOnChip(blk);
                auto it = invInFlight.find(blk);
                if (it != invInFlight.end() && --it->second == 0)
                    invInFlight.erase(it);
                done(dc_dirty || s == CacheState::Modified);
            });
        });
    } else {
        eventq.schedule(cfg.localDirLatency,
                        [this, blk, done = std::move(done)]() mutable {
            const CacheState s = invalidateOnChip(blk);
            done(s == CacheState::Modified);
        });
    }
}

void
Socket::probeDowngrade(Addr addr, std::function<void(bool)> done)
{
    const Addr blk = blockAlign(addr);

    eventq.schedule(cfg.localDirLatency,
                    [this, blk, done = std::move(done)]() mutable {
        TagEntry *e = llc.find(blk);
        if (watchingBlock(blk))
            watchTrace(eventq.now(), "probeDowngrade",
                       "socket %u llc_state %d", socketId,
                       e ? static_cast<int>(e->state) : -1);
        if (e && e->state == CacheState::Modified) {
            // Downgrade M->S; dirty L1 copies fold into the LLC
            // (local directory pulls them in) and are downgraded too,
            // so no core retains silent write permission.
            e->state = CacheState::Shared;
            downgradeL1Sharers(blk, e->aux);
            // Refresh the (possibly stale) DRAM-cache copy so a later
            // silent LLC eviction cannot expose stale data: the
            // PutX-through-DRAM-cache path of §IV-C.
            if (dcache) {
                DramCacheVictim dv = dcache->updateClean(blk);
                if (dv.valid)
                    protocol->dramCacheEvicted(socketId, dv.addr,
                                               dv.dirty);
            }
            // LLC data read to forward the block.
            eventq.schedule(cfg.llcDataLatency,
                            [done = std::move(done)] { done(true); });
            return;
        }
        // Not modified on chip; dirty designs may hold the dirty
        // block in the DRAM cache.
        if (dcache && cfg.dirtyDramCache()) {
            dcache->probe(blk, [this, blk, done = std::move(done)]
                          (DramCacheProbe res) mutable {
                if (res.present && res.dirty) {
                    // Supply data and keep a clean copy.
                    DramCacheVictim dv = dcache->updateClean(blk);
                    (void)dv; // update of resident block: no victim
                    done(true);
                } else {
                    done(false);
                }
            });
            return;
        }
        done(false);
    });
}

void
Socket::snoopProbe(Addr addr, bool is_write,
                   std::function<void(SnoopResult)> done,
                   bool retain_dirty)
{
    const Addr blk = blockAlign(addr);

    auto on_chip = [this, blk, is_write, retain_dirty,
                    done = std::move(done)](bool dc_present,
                                            bool dc_dirty) mutable {
        eventq.schedule(cfg.localDirLatency,
                        [this, blk, is_write, retain_dirty,
                         dc_present, dc_dirty,
                         done = std::move(done)]() mutable {
            SnoopResult res;
            res.present = dc_present;
            res.suppliedDirty = dc_dirty;
            TagEntry *e = llc.find(blk);
            if (e) {
                res.present = true;
                if (e->state == CacheState::Modified)
                    res.suppliedDirty = true;
                if (is_write) {
                    invalidateOnChip(blk);
                } else if (e->state == CacheState::Modified) {
                    e->state = CacheState::Shared;
                    downgradeL1Sharers(blk, e->aux);
                    if (retain_dirty && dcache) {
                        // MOESI owned state: the supplier forwards
                        // the data but stays responsible for the
                        // dirty block. The LLC downgrades (so local
                        // stores re-arbitrate), and the dirtiness
                        // parks in the DRAM cache until evicted.
                        DramCacheVictim dv = dcache->insert(blk,
                                                            true);
                        if (dv.valid)
                            protocol->dramCacheEvicted(socketId,
                                                       dv.addr,
                                                       dv.dirty);
                    }
                }
            }
            if (is_write && dcache) {
                // Close the insert-squash window opened below only
                // after the on-chip invalidation has applied.
                auto it = invInFlight.find(blk);
                if (it != invInFlight.end() && --it->second == 0)
                    invInFlight.erase(it);
            }
            done(res);
        });
    };

    if (dcache) {
        if (is_write) {
            ++invInFlight[blk];
            dcache->invalidate(blk, [on_chip = std::move(on_chip)]
                               (bool present, bool dirty) mutable {
                on_chip(present, dirty);
            });
        } else {
            // §III-A: a snoop must search the DRAM cache; the full
            // access sits on the requester's critical path.
            dcache->probe(blk, [this, blk, retain_dirty,
                                on_chip = std::move(on_chip)]
                          (DramCacheProbe res) mutable {
                if (res.present && res.dirty && !retain_dirty) {
                    // Forwarding a dirty block cleans it (memory is
                    // updated by the requester-side protocol).
                    dcache->updateClean(blk);
                }
                on_chip(res.present, res.present && res.dirty);
            }, /*always_access=*/true);
        }
    } else {
        on_chip(false, false);
    }
}

CacheState
Socket::llcState(Addr addr) const
{
    const TagEntry *e = llc.find(blockAlign(addr));
    return e ? e->state : CacheState::Invalid;
}

CacheState
Socket::l1State(std::uint32_t core, Addr addr) const
{
    const TagEntry *e = l1s[core].find(blockAlign(addr));
    return e ? e->state : CacheState::Invalid;
}

} // namespace c3d
