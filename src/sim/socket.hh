/**
 * @file
 * One NUMA socket: per-core L1s, the shared LLC with its embedded
 * local directory, the optional DRAM cache, and the memory
 * controller for the socket's slice of physical memory.
 *
 * The socket implements the intra-socket access path (load/store from
 * a core down to the LLC and local DRAM cache) and the remote-side
 * probe operations that the global protocols invoke (invalidations,
 * downgrades, snoop probes). Inter-socket decisions live in the
 * protocol implementations.
 */

#ifndef C3DSIM_SIM_SOCKET_HH
#define C3DSIM_SIM_SOCKET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dramcache/dram_cache.hh"
#include "mem/memory_controller.hh"
#include "sim/event_queue.hh"
#include "workload/tenant_stats.hh"

namespace c3d
{

class GlobalProtocol;

/** Outcome of a remote probe (snoopy protocol). */
struct SnoopResult
{
    bool present = false;   //!< any copy found on this socket
    bool suppliedDirty = false; //!< dirty data forwarded
};

/** One socket of the NUMA machine. */
class Socket
{
  public:
    Socket(EventQueue &eq, const SystemConfig &cfg, SocketId id,
           StatGroup *stats);

    /** Late binding: the machine wires the protocol after build. */
    void setProtocol(GlobalProtocol *p) { protocol = p; }

    /**
     * Per-tenant QoS attribution for composed workloads: @p by_core
     * maps each socket-local core to its tenant's stat set (nullptr
     * for idle cores) and @p tenant_idx to its tenant index
     * (DramCache::NoTenant for idle). Empty vectors -- the default --
     * disable tenant accounting entirely. Loads/stores and latency
     * are attributed here (the deepest layer that still knows the
     * requesting core); DRAM-cache hits/misses and block ownership
     * are attributed inside the DRAM cache itself via the tenant tag
     * threaded through probe().
     */
    void
    setTenantStats(std::vector<TenantStatSet *> by_core,
                   std::vector<std::uint32_t> tenant_idx)
    {
        tenantStats = std::move(by_core);
        tenantIdx = std::move(tenant_idx);
    }

    SocketId id() const { return socketId; }

    // ---- CPU-facing path ----------------------------------------------

    /**
     * Core @p core (socket-local index) loads the block at @p addr.
     * @p done fires when the data is available to the core.
     */
    void load(std::uint32_t core, Addr addr, std::function<void()> done);

    /**
     * Core @p core stores to the block at @p addr. @p done fires when
     * the store has acquired write permission and retired from the
     * store queue's perspective.
     * @param private_page TLB classification hint (§IV-D).
     */
    void store(std::uint32_t core, Addr addr, bool private_page,
               std::function<void()> done);

    // ---- protocol-facing remote-side operations -----------------------

    /**
     * Invalidate every copy of @p addr on this socket (DRAM cache
     * first, then LLC/L1s, per §IV-C). @p done receives whether a
     * dirty copy existed (its data is then forwarded / written back
     * by the caller).
     */
    void probeInvalidate(Addr addr, std::function<void(bool)> done);

    /**
     * Downgrade this socket's copy of @p addr to Shared for a remote
     * GetS. A Modified LLC copy refreshes the DRAM-cache copy (the
     * PutX-through-DRAM-cache path of §IV-C) and reports dirty; a
     * dirty DRAM-cache copy (dirty designs) is marked clean and
     * reports dirty.
     */
    void probeDowngrade(Addr addr, std::function<void(bool)> done);

    /**
     * Snoopy-protocol probe: search DRAM cache and LLC; a dirty copy
     * is supplied to the requester and transitions to clean/Shared
     * here. @p is_write additionally invalidates any found copy.
     * With @p retain_dirty (MOESI owned state, Dragon), a read probe
     * that finds dirty data supplies it but keeps the dirty copy
     * (parked in the DRAM cache) instead of cleaning itself.
     */
    void snoopProbe(Addr addr, bool is_write,
                    std::function<void(SnoopResult)> done,
                    bool retain_dirty = false);

    // ---- structural helpers (used by protocol fills) -------------------

    /** Install a block granted Shared into LLC + requesting L1. */
    void fillRead(std::uint32_t core, Addr addr);

    /** Install/upgrade a block granted Modified for @p core. */
    void fillWrite(std::uint32_t core, Addr addr);

    /** Structural LLC state of @p addr (Invalid if absent). */
    CacheState llcState(Addr addr) const;

    /** Structural L1 state for @p core. */
    CacheState l1State(std::uint32_t core, Addr addr) const;

    DramCache *dramCache() { return dcache.get(); }
    const DramCache *dramCache() const { return dcache.get(); }
    MemoryController &memory() { return mem; }
    const MemoryController &memory() const { return mem; }

    std::uint64_t llcHits() const { return llcHitCount.value(); }
    std::uint64_t llcMisses() const { return llcMissCount.value(); }

  private:
    /** Common read path after the L1 misses. */
    void accessLlcForRead(std::uint32_t core, Addr addr,
                          std::function<void()> done);

    /** Issue a GetS, merging with an outstanding one if present. */
    void issueGetS(std::uint32_t core, Addr addr,
                   std::function<void()> done);

    /** Issue a GetX/Upgrade (writes are not merged). */
    void issueGetX(std::uint32_t core, Addr addr, bool upgrade,
                   bool private_page, std::function<void()> done);

    /** Install @p addr into @p core's L1 with @p state. */
    void fillL1(std::uint32_t core, Addr addr, CacheState state);

    /** Handle an LLC victim: L1 back-invalidate, DRAM-cache insert,
     * writeback/write-through via the protocol. */
    void handleLlcVictim(Addr victim, CacheState state,
                         std::uint64_t l1_sharers);

    /** Remove @p addr from LLC and all L1s. @return old LLC state. */
    CacheState invalidateOnChip(Addr addr);

    /** Invalidate all L1 copies except @p keep_core (-1: none). */
    void invalidateL1Sharers(Addr addr, std::uint64_t sharers,
                             std::int32_t keep_core);

    /** Downgrade Modified L1 copies to Shared (remote GetS). */
    void downgradeL1Sharers(Addr addr, std::uint64_t sharers);

    /** Tenant stat set of local @p core; nullptr when untracked. */
    TenantStatSet *
    tenantFor(std::uint32_t core) const
    {
        return core < tenantStats.size() ? tenantStats[core] : nullptr;
    }

    /** Tenant index of local @p core; NoTenant when untracked. */
    std::uint32_t
    tenantIdxFor(std::uint32_t core) const
    {
        return core < tenantIdx.size() ? tenantIdx[core]
                                       : DramCache::NoTenant;
    }

    /** Sample socket + tenant load latency (done-callback helper). */
    void sampleLoadLatency(std::uint32_t core, Tick start);

    /** Sample socket + tenant store latency. */
    void sampleStoreLatency(std::uint32_t core, Tick start);

    EventQueue &eventq;
    const SystemConfig &cfg;
    const SocketId socketId;
    GlobalProtocol *protocol = nullptr;

    std::vector<TagArray> l1s;
    TagArray llc;
    std::unique_ptr<DramCache> dcache;
    MemoryController mem;

    /** One outstanding GetS with merged waiters. A concurrent
     * remote invalidation poisons the entry: the loads still
     * complete (they are ordered before the invalidating write) but
     * the fill is squashed, as an MSHR transient state would do. */
    struct PendingRead
    {
        std::vector<std::function<void()>> waiters;
        bool poisoned = false;
    };

    /** Read-miss merge table: block -> outstanding GetS. */
    std::unordered_map<Addr, PendingRead> pendingReads;

    /** Blocks with an invalidation probe mid-flight at this socket.
     * The DRAM-cache controller squashes victim inserts for them
     * (the insert would otherwise revive a dying block between the
     * DRAM-cache and LLC invalidation sub-steps). */
    std::unordered_map<Addr, std::uint32_t> invInFlight;

    Counter loads;
    Counter stores;
    Counter l1HitCount;
    Counter l1MissCount;
    Counter llcHitCount;
    Counter llcMissCount;
    Counter mergedReads;
    Counter upgradesIssued;
    Counter getXIssued;
    Counter getSIssued;
    Histogram loadLatency;
    Histogram storeLatency;

    /** Local core -> tenant stat set; empty = no tenant tracking. */
    std::vector<TenantStatSet *> tenantStats;
    /** Local core -> tenant index (DramCache attribution tag). */
    std::vector<std::uint32_t> tenantIdx;
};

} // namespace c3d

#endif // C3DSIM_SIM_SOCKET_HH
