#include "sim/watchdog.hh"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace c3d
{

namespace
{

/** Handshake between the caller and its sacrificial thread. */
struct SiblingRun
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
};

/** One abandoned run: the thread plus everything it may touch. */
struct Abandoned
{
    std::thread thread;
    std::shared_ptr<SiblingRun> run;
    std::shared_ptr<void> keepAlive;
};

std::mutex registryMu;

/**
 * Deliberately leaked: an abandoned thread may still be parked at
 * process exit, and destroying a joinable std::thread terminates
 * the process (which would turn a contained row failure into
 * SIGABRT on the way out). Process teardown reclaims the threads.
 */
std::vector<Abandoned> &
abandonedRegistry()
{
    static std::vector<Abandoned> &r = *new std::vector<Abandoned>;
    return r;
}

} // namespace

void
runWithSiblingWatchdog(std::uint64_t wall_ms,
                       std::function<void()> body,
                       std::shared_ptr<void> keep_alive)
{
    if (!wall_ms) {
        body();
        return;
    }

    auto run = std::make_shared<SiblingRun>();
    std::thread worker([run, body = std::move(body)] {
        std::exception_ptr error;
        try {
            body();
        } catch (...) {
            error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(run->mu);
        run->error = error;
        run->done = true;
        run->cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(run->mu);
    const bool finished = run->cv.wait_for(
        lock, std::chrono::milliseconds(wall_ms),
        [&] { return run->done; });
    lock.unlock();

    if (finished) {
        worker.join();
        if (run->error)
            std::rethrow_exception(run->error);
        return;
    }

    {
        std::lock_guard<std::mutex> guard(registryMu);
        abandonedRegistry().push_back(
            Abandoned{std::move(worker), run, std::move(keep_alive)});
    }
    c3d_panic("sibling watchdog: no completion after %llu ms wall "
              "clock; the run is stalled inside a single event and "
              "has been abandoned on its worker thread",
              static_cast<unsigned long long>(wall_ms));
}

std::size_t
abandonedWatchdogThreads()
{
    std::lock_guard<std::mutex> guard(registryMu);
    return abandonedRegistry().size();
}

std::size_t
reapAbandonedWatchdogThreads()
{
    std::lock_guard<std::mutex> guard(registryMu);
    std::vector<Abandoned> &registry = abandonedRegistry();
    std::size_t reaped = 0;
    for (std::size_t i = registry.size(); i-- > 0;) {
        Abandoned &a = registry[i];
        bool done;
        {
            std::lock_guard<std::mutex> lk(a.run->mu);
            done = a.run->done;
        }
        if (!done)
            continue;
        a.thread.join();
        registry.erase(registry.begin() +
                       static_cast<std::ptrdiff_t>(i));
        ++reaped;
    }
    return reaped;
}

} // namespace c3d
