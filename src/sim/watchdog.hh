/**
 * @file
 * Per-run progress watchdog for the event kernel.
 *
 * A sweep row can fail three ways that an abort-on-panic simulator
 * never reports cleanly: it can livelock (the simulated clock stops
 * advancing while events keep executing -- e.g. a same-tick
 * reschedule loop), it can run away (orders of magnitude more events
 * than the row should need), or it can simply take too long on the
 * wall clock. WatchdogLimits names a budget for each; WatchdogState
 * is the shared per-run accounting the machine's queues check
 * against.
 *
 * The checks are built to preserve the repo's byte-identity
 * invariant: the watchdog only *observes* execution (it never
 * schedules events or perturbs ordering), the per-event cost when
 * armed is one branch plus a counter, and the wall-clock/total-event
 * budgets are checked only every BulkPeriod events so the hot loop
 * stays hot. A tripped budget raises c3d_panic -- i.e. a catchable
 * SimError naming the stuck queue's pending work (see
 * EventQueue::watchdogCheck) -- which the sweep layer contains to
 * the row.
 *
 * Stall-detector determinism: the same-tick run length is counted
 * per queue in execution order, so under the sequential kernel (and
 * the 1-worker oracle) the trip point and its diagnostic are exactly
 * reproducible. Wall-clock trips are inherently timing-dependent;
 * they exist as a last-resort budget, not a differential surface.
 *
 * All of the above is *in-band*: the budgets are checked between
 * events, so a hard stall inside a single event callback (a blocking
 * wait, an unbounded loop that never returns to the kernel) escapes
 * every check. runWithSiblingWatchdog() closes that hole: the run
 * body executes on a sacrificial sibling thread while the calling
 * thread waits out the wall budget independently of event progress.
 * A run that blows the budget is *abandoned* -- the stuck thread
 * cannot be interrupted safely, so it is parked in a registry
 * together with a keep-alive reference to everything it may still
 * touch, and the caller gets a SimError it can contain per row.
 */

#ifndef C3DSIM_SIM_WATCHDOG_HH
#define C3DSIM_SIM_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace c3d
{

/** Per-row progress budgets; 0 disables the corresponding check. */
struct WatchdogLimits
{
    /** Wall-clock budget for the whole run, in milliseconds. */
    std::uint64_t wallMs = 0;
    /** Total executed-event budget across all kernel queues. */
    std::uint64_t maxEvents = 0;
    /**
     * No-progress (livelock) detector: maximum events one queue may
     * execute at a single tick before the run is declared stuck.
     */
    std::uint64_t stallEvents = 0;

    bool any() const { return wallMs || maxEvents || stallEvents; }
};

/** Shared accounting for one armed run (all queues of a machine). */
class WatchdogState
{
  public:
    /** Queues fold their local counts in every this many events. */
    static constexpr std::uint64_t BulkPeriod = 1024;

    /** Reset counters and start the wall clock for a new run. */
    void
    arm(const WatchdogLimits &l)
    {
        limits = l;
        totalEvents.store(0, std::memory_order_relaxed);
        if (limits.wallMs) {
            deadline = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits.wallMs);
        }
    }

    const WatchdogLimits &budgets() const { return limits; }

    /**
     * Fold @p n freshly executed events into the machine-wide total;
     * true when the executed-event budget is now exceeded.
     */
    bool
    totalExceeded(std::uint64_t n)
    {
        if (!limits.maxEvents)
            return false;
        return totalEvents.fetch_add(n, std::memory_order_relaxed) +
            n > limits.maxEvents;
    }

    /** True when the wall-clock budget has expired. */
    bool
    wallExpired() const
    {
        return limits.wallMs &&
            std::chrono::steady_clock::now() > deadline;
    }

  private:
    WatchdogLimits limits;
    std::atomic<std::uint64_t> totalEvents{0};
    std::chrono::steady_clock::time_point deadline{};
};

/**
 * Execute @p body on a sacrificial sibling thread, waiting at most
 * @p wall_ms milliseconds for it to finish (0: run inline, no
 * watchdog). Completion within budget behaves exactly like a direct
 * call -- the sibling runs the identical code, so armed runs stay
 * bit-identical -- and any exception the body raises is rethrown
 * here. On timeout the stuck thread is abandoned into a registry
 * (holding @p keep_alive so the state it references outlives the
 * caller) and c3d_panic raises a catchable SimError on the calling
 * thread, which still holds the row's ErrorIdentityScope.
 */
void runWithSiblingWatchdog(std::uint64_t wall_ms,
                            std::function<void()> body,
                            std::shared_ptr<void> keep_alive = nullptr);

/** Number of abandoned sibling-watchdog threads still parked. */
std::size_t abandonedWatchdogThreads();

/**
 * Join and drop every abandoned thread whose body has since
 * finished (e.g. a test released the injected stall). @return how
 * many were reaped; still-stuck threads stay parked.
 */
std::size_t reapAbandonedWatchdogThreads();

} // namespace c3d

#endif // C3DSIM_SIM_WATCHDOG_HH
