#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace c3d
{

namespace
{

constexpr char Magic[4] = {'C', '3', 'D', 'T'};
constexpr std::uint32_t Version = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint32_t numCores;
    std::uint32_t pad;
    std::uint64_t records;
};

struct DiskRecord
{
    std::uint16_t core;
    std::uint16_t gap;
    std::uint8_t op;
    std::uint8_t pad[3];
    std::uint64_t addr;
};

static_assert(sizeof(Header) == 24, "header layout");
static_assert(sizeof(DiskRecord) == 16, "record layout");

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 std::uint32_t num_cores)
    : numCores(num_cores)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        c3d_fatal("cannot open trace file '%s' for writing",
                  path.c_str());
    Header h{};
    std::memcpy(h.magic, Magic, 4);
    h.version = Version;
    h.numCores = num_cores;
    h.records = 0;
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        c3d_fatal("trace header write failed");
}

TraceFileWriter::~TraceFileWriter()
{
    if (file)
        close();
}

void
TraceFileWriter::append(const TraceRecord &rec)
{
    c3d_assert(file, "append after close");
    DiskRecord d{};
    d.core = rec.core;
    d.gap = rec.gap;
    d.op = rec.op == MemOp::Write ? 1 : 0;
    d.addr = rec.addr;
    if (std::fwrite(&d, sizeof(d), 1, file) != 1)
        c3d_fatal("trace record write failed");
    ++count;
}

void
TraceFileWriter::close()
{
    c3d_assert(file, "double close");
    // Patch the record count into the header.
    Header h{};
    std::memcpy(h.magic, Magic, 4);
    h.version = Version;
    h.numCores = numCores;
    h.records = count;
    std::fseek(file, 0, SEEK_SET);
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        c3d_fatal("trace header rewrite failed");
    std::fclose(file);
    file = nullptr;
}

TraceFileWorkload::TraceFileWorkload(const std::string &path)
    : fileName(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        c3d_fatal("cannot open trace file '%s'", path.c_str());

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f) != 1)
        c3d_fatal("trace header read failed for '%s'", path.c_str());
    if (std::memcmp(h.magic, Magic, 4) != 0)
        c3d_fatal("'%s' is not a c3dsim trace file", path.c_str());
    if (h.version != Version)
        c3d_fatal("trace version %u unsupported", h.version);
    if (h.numCores == 0 || h.numCores > 4096)
        c3d_fatal("trace core count %u out of range", h.numCores);

    numCores = h.numCores;
    total = h.records;
    perCore.resize(numCores);
    cursor.assign(numCores, 0);

    for (std::uint64_t i = 0; i < total; ++i) {
        DiskRecord d{};
        if (std::fread(&d, sizeof(d), 1, f) != 1)
            c3d_fatal("trace truncated at record %llu",
                      static_cast<unsigned long long>(i));
        if (d.core >= numCores)
            c3d_fatal("trace record %llu names core %u of %u",
                      static_cast<unsigned long long>(i), d.core,
                      numCores);
        TraceOp op;
        op.gap = d.gap;
        op.op = d.op ? MemOp::Write : MemOp::Read;
        op.addr = d.addr;
        perCore[d.core].push_back(op);
    }
    std::fclose(f);

    for (std::uint32_t c = 0; c < numCores; ++c) {
        if (perCore[c].empty())
            c3d_fatal("trace has no records for core %u", c);
    }
}

TraceOp
TraceFileWorkload::next(CoreId core)
{
    const std::uint32_t c = core % numCores;
    auto &stream = perCore[c];
    TraceOp op = stream[cursor[c]];
    cursor[c] = (cursor[c] + 1) % stream.size();
    return op;
}

std::uint32_t
TraceFileWorkload::activeCores(std::uint32_t total_cores) const
{
    return std::min(total_cores, numCores);
}

} // namespace c3d
