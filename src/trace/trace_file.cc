#include "trace/trace_file.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include <sys/stat.h>

#include "common/hash.hh"
#include "common/log.hh"

namespace c3d
{

namespace
{

constexpr char Magic[4] = {'C', '3', 'D', 'T'};
constexpr std::uint32_t Version = 1;
constexpr std::uint32_t MaxTraceCores = 4096;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint32_t numCores;
    std::uint32_t pad;
    std::uint64_t records;
};

struct DiskRecord
{
    std::uint16_t core;
    std::uint16_t gap;
    std::uint8_t op;
    std::uint8_t pad[3];
    std::uint64_t addr;
};

static_assert(sizeof(Header) == 24, "header layout");
static_assert(sizeof(DiskRecord) == 16, "record layout");

constexpr std::uint64_t HeaderBytes = sizeof(Header);
constexpr std::uint64_t RecordBytes = sizeof(DiskRecord);

/** Shared read-buffer size; also the scan granularity (4096 recs). */
constexpr std::size_t ChunkBytes = 64 * 1024;

/** Per-core lane refill target (16 KiB of TraceOps per core). */
constexpr std::size_t LaneOps = 1024;

TraceOp
decodeRecord(const unsigned char *bytes)
{
    DiskRecord d;
    std::memcpy(&d, bytes, sizeof(d));
    TraceOp op;
    op.gap = d.gap;
    op.op = d.op ? MemOp::Write : MemOp::Read;
    op.addr = d.addr;
    return op;
}

/**
 * Process-wide scan memo: a sweep constructs one TraceFileWorkload
 * per grid point, and the multi-GB validation+hash pass must not
 * repeat per row. Entries are keyed by path and trusted only when
 * the file's stat identity (size + mtime) still matches AND the
 * caller's expected content hash equals the memoized one -- callers
 * without an expected hash (tools, tests) always scan fresh, so the
 * memo can never serve stale identity. loadTraceProfile seeds it,
 * so a sweep process reads each trace exactly once before replay.
 */
struct ScanMemoEntry
{
    std::int64_t size = -1;
    std::int64_t mtimeSec = 0;
    std::int64_t mtimeNsec = 0;
    TraceFileInfo info;
};

std::mutex g_scanMemoMutex;
std::unordered_map<std::string, ScanMemoEntry> g_scanMemo;

bool
statIdentity(const std::string &path, ScanMemoEntry &out)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return false;
    out.size = static_cast<std::int64_t>(st.st_size);
    out.mtimeSec = static_cast<std::int64_t>(st.st_mtim.tv_sec);
    out.mtimeNsec = static_cast<std::int64_t>(st.st_mtim.tv_nsec);
    return true;
}

/**
 * Remember a completed scan under @p ident -- the stat identity
 * captured BEFORE the scan started. If the file is replaced while
 * scanning, the pre-scan identity matches neither the old nor the
 * new file on a later stat, so the memo misses and rescans instead
 * of binding fresh stat identity to stale contents.
 */
void
rememberScan(const std::string &path, const ScanMemoEntry &ident,
             const TraceFileInfo &info)
{
    if (ident.size < 0)
        return; // file never stat'ed; nothing safe to remember
    ScanMemoEntry entry = ident;
    entry.info = info;
    std::lock_guard<std::mutex> lock(g_scanMemoMutex);
    g_scanMemo[path] = std::move(entry);
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 std::uint32_t num_cores)
    : numCores(num_cores)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        c3d_fatal("cannot open trace file '%s' for writing",
                  path.c_str());
    Header h{};
    std::memcpy(h.magic, Magic, 4);
    h.version = Version;
    h.numCores = num_cores;
    h.records = 0;
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        c3d_fatal("trace header write failed");
}

TraceFileWriter::~TraceFileWriter()
{
    if (file)
        close();
}

void
TraceFileWriter::append(const TraceRecord &rec)
{
    c3d_assert(file, "append after close");
    DiskRecord d{};
    d.core = rec.core;
    d.gap = rec.gap;
    d.op = rec.op == MemOp::Write ? 1 : 0;
    d.addr = rec.addr;
    if (std::fwrite(&d, sizeof(d), 1, file) != 1)
        c3d_fatal("trace record write failed");
    ++count;
}

void
TraceFileWriter::close()
{
    c3d_assert(file, "double close");
    // Patch the record count into the header.
    Header h{};
    std::memcpy(h.magic, Magic, 4);
    h.version = Version;
    h.numCores = numCores;
    h.records = count;
    std::fseek(file, 0, SEEK_SET);
    if (std::fwrite(&h, sizeof(h), 1, file) != 1)
        c3d_fatal("trace header rewrite failed");
    std::fclose(file);
    file = nullptr;
}

// --------------------------------------------------------------------
// Validation scan
// --------------------------------------------------------------------

bool
scanTraceFile(const std::string &path, TraceFileInfo &info,
              std::string &error)
{
    info = TraceFileInfo{};
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open trace file '" + path + "'";
        return false;
    }

    unsigned char hdr_bytes[HeaderBytes];
    std::uint64_t hash = Fnv1aOffset;
    if (std::fread(hdr_bytes, 1, HeaderBytes, f) != HeaderBytes) {
        error = "'" + path + "' is too short for a trace header";
        std::fclose(f);
        return false;
    }
    hash = fnv1aBytes(hash, hdr_bytes, HeaderBytes);

    Header h;
    std::memcpy(&h, hdr_bytes, sizeof(h));
    if (std::memcmp(h.magic, Magic, 4) != 0) {
        error = "'" + path + "' is not a c3dsim trace file "
                "(bad magic)";
        std::fclose(f);
        return false;
    }
    if (h.version != Version) {
        error = "'" + path + "' has unsupported trace version " +
            std::to_string(h.version) + " (want " +
            std::to_string(Version) + ")";
        std::fclose(f);
        return false;
    }
    if (h.numCores == 0 || h.numCores > MaxTraceCores) {
        error = "'" + path + "' names a core count out of range: " +
            std::to_string(h.numCores);
        std::fclose(f);
        return false;
    }

    info.numCores = h.numCores;
    info.perCoreRecords.assign(h.numCores, 0);

    std::vector<unsigned char> buf(ChunkBytes);
    std::uint64_t bytes = HeaderBytes;
    std::uint64_t recs = 0;
    std::size_t pend = 0; // partial record carried across chunks
    std::size_t got;
    while ((got = std::fread(buf.data() + pend, 1,
                             ChunkBytes - pend, f)) > 0) {
        hash = fnv1aBytes(hash, buf.data() + pend, got);
        bytes += got;
        const std::size_t avail = pend + got;
        const std::size_t use = (avail / RecordBytes) * RecordBytes;
        for (std::size_t off = 0; off < use; off += RecordBytes) {
            DiskRecord d;
            std::memcpy(&d, buf.data() + off, sizeof(d));
            if (d.core >= h.numCores) {
                error = "'" + path + "' record " +
                    std::to_string(recs) + " names core " +
                    std::to_string(d.core) + " of a " +
                    std::to_string(h.numCores) + "-core trace";
                std::fclose(f);
                return false;
            }
            ++info.perCoreRecords[d.core];
            if (d.op)
                ++info.writes;
            else
                ++info.reads;
            ++recs;
        }
        pend = avail - use;
        if (pend)
            std::memmove(buf.data(), buf.data() + use, pend);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        error = "reading '" + path + "' failed";
        return false;
    }
    if (pend != 0) {
        error = "'" + path + "' is truncated mid-record (" +
            std::to_string(pend) + " trailing bytes after record " +
            std::to_string(recs) + ")";
        return false;
    }
    if (recs != h.records) {
        error = "'" + path + "' header names " +
            std::to_string(h.records) + " records but the file "
            "holds " + std::to_string(recs);
        return false;
    }
    if (recs == 0) {
        error = "'" + path + "' holds no records";
        return false;
    }
    for (std::uint32_t c = 0; c < h.numCores; ++c) {
        if (info.perCoreRecords[c] == 0) {
            error = "'" + path + "' has no records for core " +
                std::to_string(c);
            return false;
        }
    }

    info.records = recs;
    info.contentHash = hash;
    info.fileBytes = bytes;
    return true;
}

bool
sameFileTarget(const std::string &in, const std::string &out)
{
    if (in == out)
        return true;
    struct stat si, so;
    return ::stat(in.c_str(), &si) == 0 &&
        ::stat(out.c_str(), &so) == 0 && si.st_dev == so.st_dev &&
        si.st_ino == so.st_ino;
}

bool
truncateTraceFile(const std::string &in, const std::string &out,
                  std::uint64_t keep, std::string &error,
                  TraceFileInfo *out_info)
{
    // In-place truncation would destroy the input: the writer's
    // "wb" open truncates the inode while the reader is mid-copy.
    if (sameFileTarget(in, out)) {
        error = "refusing in-place truncation of '" + in +
            "'; write to a different --out";
        return false;
    }

    TraceFileInfo info;
    if (!scanTraceFile(in, info, error))
        return false;
    if (keep == 0 || keep >= info.records) {
        error = "--records=" + std::to_string(keep) +
            " does not truncate '" + in + "' (" +
            std::to_string(info.records) + " records)";
        return false;
    }

    std::FILE *f = std::fopen(in.c_str(), "rb");
    if (!f) {
        error = "cannot reopen trace file '" + in + "'";
        return false;
    }
    if (std::fseek(f, static_cast<long>(HeaderBytes), SEEK_SET) !=
        0) {
        error = "seek in '" + in + "' failed";
        std::fclose(f);
        return false;
    }
    {
        TraceFileWriter writer(out, info.numCores);
        for (std::uint64_t i = 0; i < keep; ++i) {
            unsigned char rec[RecordBytes];
            if (std::fread(rec, 1, sizeof(rec), f) != sizeof(rec)) {
                error = "read of '" + in + "' failed at record " +
                    std::to_string(i);
                std::fclose(f);
                std::remove(out.c_str());
                return false;
            }
            DiskRecord d;
            std::memcpy(&d, rec, sizeof(d));
            writer.append({d.core, d.gap,
                           d.op ? MemOp::Write : MemOp::Read,
                           d.addr});
        }
        writer.close();
    }
    std::fclose(f);

    // The prefix may have dropped a core entirely, which would make
    // the output unreplayable -- validate and clean up if so.
    TraceFileInfo checked;
    if (!scanTraceFile(out, checked, error)) {
        error = "truncation to " + std::to_string(keep) +
            " records yields an invalid trace (" + error +
            "); not keeping '" + out + "'";
        std::remove(out.c_str());
        return false;
    }
    if (out_info)
        *out_info = checked;
    return true;
}

std::string
traceWorkloadName(const std::string &path,
                  std::uint64_t content_hash)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "@%08x",
                  static_cast<std::uint32_t>(
                      content_hash ^ (content_hash >> 32)));
    return "trace:" + base + suffix;
}

bool
loadTraceProfile(const std::string &path, WorkloadProfile &out,
                 std::string &error)
{
    ScanMemoEntry ident;
    statIdentity(path, ident); // pre-scan, see rememberScan
    TraceFileInfo info;
    if (!scanTraceFile(path, info, error))
        return false;
    // Seed the replay scan memo: the sweep rows about to open this
    // trace (with the hash below as their expected identity) must
    // not re-read a file this pass just validated.
    rememberScan(path, ident, info);

    // Inert synthetic fields: a trace profile is pure identity (name
    // + content hash); the reference stream comes from the file.
    WorkloadProfile p;
    p.name = traceWorkloadName(path, info.contentHash);
    p.sharedHotBytes = 0;
    p.sharedColdBytes = 0;
    p.streamBytes = 0;
    p.streamSegmentBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = 0;
    p.fracSharedHot = 0;
    p.fracSharedCold = 0;
    p.fracStream = 0;
    p.fracMigratory = 0;
    p.writeFracShared = 0;
    p.writeFracSharedCold = 0;
    p.writeFracPrivate = 0;
    p.writeFracPrivateCold = 0;
    p.writeFracStream = 0;
    p.privateHotFrac = 0;
    p.privateHotProb = 0;
    p.avgGap = 0;
    p.barrierOps = 0;
    p.seed = 0;
    p.tracePath = path;
    p.traceHash = info.contentHash;
    out = std::move(p);
    return true;
}

// --------------------------------------------------------------------
// Streaming reader
// --------------------------------------------------------------------

TraceFileReader::~TraceFileReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceFileReader::open(const std::string &path, std::string &error,
                      const std::uint64_t *expected_hash)
{
    c3d_assert(!file, "reader already open");

    bool scanned = false;
    ScanMemoEntry ident;
    const bool have_ident = statIdentity(path, ident);
    if (expected_hash && have_ident) {
        std::lock_guard<std::mutex> lock(g_scanMemoMutex);
        const auto it = g_scanMemo.find(path);
        if (it != g_scanMemo.end() &&
            it->second.size == ident.size &&
            it->second.mtimeSec == ident.mtimeSec &&
            it->second.mtimeNsec == ident.mtimeNsec &&
            it->second.info.contentHash == *expected_hash) {
            meta = it->second.info;
            scanned = true;
        }
    }
    if (!scanned) {
        if (!scanTraceFile(path, meta, error))
            return false;
        if (expected_hash && meta.contentHash != *expected_hash) {
            char want[20], got[20];
            std::snprintf(want, sizeof(want), "%016llx",
                          static_cast<unsigned long long>(
                              *expected_hash));
            std::snprintf(got, sizeof(got), "%016llx",
                          static_cast<unsigned long long>(
                              meta.contentHash));
            error = "'" + path + "' changed since the grid was "
                "built (content hash " + got + ", expected " +
                want + ")";
            return false;
        }
        if (have_ident)
            rememberScan(path, ident, meta);
    }

    file = std::fopen(path.c_str(), "rb");
    if (!file) {
        error = "cannot open trace file '" + path + "'";
        return false;
    }
    lanes.assign(meta.numCores, Lane{});
    for (Lane &lane : lanes) {
        lane.fileOff = HeaderBytes;
        lane.buf.reserve(LaneOps);
    }
    chunk.resize(ChunkBytes);
    return true;
}

void
TraceFileReader::refill(std::uint32_t core)
{
    std::lock_guard<std::mutex> lock(refillMu);
    Lane &lane = lanes[core];
    lane.buf.clear();
    lane.pos = 0;

    const std::uint64_t data_end =
        HeaderBytes + meta.records * RecordBytes;
    // One full cycle over the data section guarantees at least one
    // record for this core (scanTraceFile rejects empty lanes).
    std::uint64_t budget = data_end - HeaderBytes;
    while (lane.buf.size() < LaneOps && budget > 0) {
        if (lane.fileOff >= data_end)
            lane.fileOff = HeaderBytes;
        const std::uint64_t want64 =
            std::min<std::uint64_t>({ChunkBytes,
                                     data_end - lane.fileOff,
                                     budget});
        const std::size_t want = static_cast<std::size_t>(want64);
        if (std::fseek(file, static_cast<long>(lane.fileOff),
                       SEEK_SET) != 0 ||
            std::fread(chunk.data(), 1, want, file) != want)
            c3d_fatal("trace read failed at offset %llu (file "
                      "changed during replay?)",
                      static_cast<unsigned long long>(lane.fileOff));
        std::size_t consumed = want;
        for (std::size_t off = 0; off < want; off += RecordBytes) {
            std::uint16_t rec_core;
            std::memcpy(&rec_core, chunk.data() + off,
                        sizeof(rec_core));
            if (rec_core != core)
                continue;
            lane.buf.push_back(decodeRecord(chunk.data() + off));
            if (lane.buf.size() == LaneOps) {
                consumed = off + RecordBytes;
                break;
            }
        }
        lane.fileOff += consumed;
        budget -= consumed;
    }
    c3d_assert(!lane.buf.empty(),
               "trace lane refill found no records");
    // A lane whose whole record list fits the buffer just collected
    // its full period (one cycle's budget, no record twice): cycle
    // it in memory from now on.
    lane.whole = meta.perCoreRecords[core] <= LaneOps;
}

TraceOp
TraceFileReader::next(std::uint32_t core)
{
    c3d_assert(core < meta.numCores, "trace core out of range");
    Lane &lane = lanes[core];
    if (lane.pos == lane.buf.size()) {
        if (lane.whole)
            lane.pos = 0;
        else
            refill(core);
    }
    return lane.buf[lane.pos++];
}

// --------------------------------------------------------------------
// Workload adapter
// --------------------------------------------------------------------

TraceFileWorkload::TraceFileWorkload(const std::string &path)
{
    std::string error;
    if (!reader.open(path, error))
        c3d_fatal("%s", error.c_str());
    workloadName =
        traceWorkloadName(path, reader.info().contentHash);
}

TraceFileWorkload::TraceFileWorkload(const std::string &path,
                                     std::uint64_t expected_hash)
{
    std::string error;
    if (!reader.open(path, error, &expected_hash))
        c3d_fatal("%s", error.c_str());
    workloadName =
        traceWorkloadName(path, reader.info().contentHash);
}

TraceOp
TraceFileWorkload::next(CoreId core)
{
    return reader.next(core % reader.numCores());
}

std::uint32_t
TraceFileWorkload::activeCores(std::uint32_t total_cores) const
{
    return std::min(total_cores, reader.numCores());
}

} // namespace c3d
