/**
 * @file
 * Binary trace file format: record and replay reference streams.
 *
 * The paper's infrastructure collects Pin/Simics traces and replays
 * them; c3dsim can do the same with its own compact format so users
 * can plug in real application traces. Records are fixed-size,
 * little-endian:
 *
 *   magic "C3DT" | u32 version | u32 num_cores | u32 pad |
 *   u64 record_count
 *   repeated: u16 core | u16 gap | u8 op (0=read,1=write) |
 *             u8 pad[3] | u64 address
 *
 * Replay is streaming: a TraceFileReader keeps one buffered cursor
 * per core and never loads the whole file, so multi-GB traces replay
 * in bounded memory and sharded sweep workers can open the same file
 * independently. scanTraceFile() is the single validation pass --
 * it checks the header, every record, and exact file length, and
 * computes the FNV-1a content hash that identifies the trace in
 * sweep-grid fingerprints (docs/traces.md).
 */

#ifndef C3DSIM_TRACE_TRACE_FILE_HH
#define C3DSIM_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace c3d
{

/** On-disk record. */
struct TraceRecord
{
    std::uint16_t core;
    std::uint16_t gap;
    MemOp op;
    Addr addr;
};

/** Sequential writer for c3dsim trace files. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    TraceFileWriter(const std::string &path, std::uint32_t num_cores);
    ~TraceFileWriter();

    void append(const TraceRecord &rec);

    /** Finalize the header (record count) and close. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::FILE *file = nullptr;
    std::uint32_t numCores;
    std::uint64_t count = 0;
};

/** Validated summary of a trace file (one scanTraceFile pass). */
struct TraceFileInfo
{
    std::uint32_t numCores = 0;
    std::uint64_t records = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::vector<std::uint64_t> perCoreRecords;
    /**
     * FNV-1a 64 over every byte of the file. This -- not the path --
     * is the trace's identity: sweep-grid fingerprints fold it in,
     * so --resume/merge refuse journals recorded against different
     * trace contents even when the path matches (and accept the
     * same contents mounted at a different path on another worker).
     */
    std::uint64_t contentHash = 0;
    std::uint64_t fileBytes = 0;
};

/**
 * Stream @p path once with a bounded buffer: validate the header,
 * every record's core id, the exact file length (a partial trailing
 * record or a header/record-count mismatch is an error), that every
 * core has at least one record, and accumulate TraceFileInfo.
 * False + @p error on any defect; never loads the file into memory.
 */
bool scanTraceFile(const std::string &path, TraceFileInfo &info,
                   std::string &error);

/**
 * Canonical workload name for a trace: "trace:<basename>@<hash8>",
 * where hash8 folds the 64-bit content hash to 8 hex digits. The
 * hash suffix keeps two corpus files with the same basename (or two
 * versions of one file) distinct in row identity keys, so shard
 * journals of such grids still merge.
 */
std::string traceWorkloadName(const std::string &path,
                              std::uint64_t content_hash);

/**
 * True when @p in and @p out name the same file: equal paths, or two
 * paths resolving to one inode. Writing @p out would clobber @p in
 * mid-read, so every tool that derives an output from input files
 * (`c3d-trace truncate`, `c3d-trace compose`) refuses such targets
 * through this one guard.
 */
bool sameFileTarget(const std::string &in, const std::string &out);

/**
 * Copy the first @p keep records of @p in to a new trace @p out
 * (header rewritten to the new count, output revalidated). Refuses
 * in-place operation (same path or same inode -- the writer would
 * truncate the input mid-read), keep values that do not shorten the
 * input, and outputs that drop a core entirely (removed, not kept).
 * On success fills @p out_info when given. Fatal only if @p out
 * cannot be created (TraceFileWriter's contract).
 */
bool truncateTraceFile(const std::string &in, const std::string &out,
                       std::uint64_t keep, std::string &error,
                       TraceFileInfo *out_info = nullptr);

/**
 * Build the WorkloadProfile that names @p path in a sweep grid:
 * name "trace:<basename>", tracePath/traceHash set, synthetic
 * generator fields zeroed. Validates the file via scanTraceFile;
 * false + @p error on a defective trace.
 */
bool loadTraceProfile(const std::string &path, WorkloadProfile &out,
                      std::string &error);

/**
 * Streaming trace replay: one independently-seekable lane per core.
 *
 * Each lane remembers its file offset and refills a small TraceOp
 * buffer by scanning forward (skipping other cores' records),
 * wrapping to the first record when it reaches the end -- the same
 * per-core sequence the old whole-file loader produced, in bounded
 * memory (one shared chunk buffer plus ~16 KiB per core). A lane
 * whose complete record list fits its buffer caches the full
 * period and never rescans. Dense lanes re-read interleaved
 * regions (up to numCores passes over the file per replay cycle,
 * absorbed by the page cache); a shared sequential cursor filling
 * all lanes in one pass is the next optimization if that ever
 * shows up in profiles.
 */
class TraceFileReader
{
  public:
    TraceFileReader() = default;
    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Validate (scanTraceFile) and open; false + @p error. When
     * @p expected_hash is given (sweep rows replaying a trace whose
     * identity the grid already pinned), a process-wide scan memo
     * keyed by the file's stat identity skips re-reading multi-GB
     * files once per grid point -- the memo is only trusted when its
     * content hash equals @p expected_hash, and a fresh scan that
     * hashes differently is an error ("trace changed since the grid
     * was built") rather than a silent replay of different bytes.
     */
    bool open(const std::string &path, std::string &error,
              const std::uint64_t *expected_hash = nullptr);

    const TraceFileInfo &info() const { return meta; }
    std::uint32_t numCores() const { return meta.numCores; }
    std::uint64_t records() const { return meta.records; }

    /** Next op of @p core's lane (wraps at end of file). */
    TraceOp next(std::uint32_t core);

  private:
    struct Lane
    {
        std::uint64_t fileOff = 0; //!< next record byte to scan
        std::vector<TraceOp> buf;
        std::size_t pos = 0;
        /**
         * The lane's complete record list fits one buffer: buf
         * holds its full period (rotated to the current phase) and
         * replay cycles it without ever touching the file again --
         * a core with few records in a huge file would otherwise
         * pay a whole-file skip-scan every few ops.
         */
        bool whole = false;
    };

    void refill(std::uint32_t core);

    std::FILE *file = nullptr;
    TraceFileInfo meta;
    std::vector<Lane> lanes;
    std::vector<unsigned char> chunk; //!< shared read buffer
    /**
     * Lanes are single-reader (one core, one kernel thread), but the
     * FILE cursor and chunk buffer are shared across lanes; refills
     * from different kernel threads serialize here. Lane contents
     * are untouched by other threads, so replayed op sequences stay
     * deterministic.
     */
    std::mutex refillMu;
};

/** Workload adapter replaying one trace file (streaming). */
class TraceFileWorkload : public Workload
{
  public:
    /** Open and validate @p path; fatal on a defective trace. */
    explicit TraceFileWorkload(const std::string &path);

    /**
     * Open @p path expecting the given content hash (from the
     * RunSpec's profile): enables the reader's scan memo and makes
     * a trace modified after grid expansion a fatal error.
     */
    TraceFileWorkload(const std::string &path,
                      std::uint64_t expected_hash);

    const std::string &name() const override { return workloadName; }
    TraceOp next(CoreId core) override;
    std::uint32_t activeCores(std::uint32_t total) const override;

    std::uint32_t fileCores() const { return reader.numCores(); }
    std::uint64_t records() const { return reader.records(); }
    std::uint64_t contentHash() const
    {
        return reader.info().contentHash;
    }

  private:
    std::string workloadName;
    TraceFileReader reader;
};

} // namespace c3d

#endif // C3DSIM_TRACE_TRACE_FILE_HH
