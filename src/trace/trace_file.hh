/**
 * @file
 * Binary trace file format: record and replay reference streams.
 *
 * The paper's infrastructure collects Pin/Simics traces and replays
 * them; c3dsim can do the same with its own compact format so users
 * can plug in real application traces. Records are fixed-size,
 * little-endian:
 *
 *   magic "C3DT" | u32 version | u32 num_cores | u64 record_count
 *   repeated: u16 core | u16 gap | u8 op (0=read,1=write) | u8 pad |
 *             u48 block-aligned address >> 6 stored in u64? --
 *             stored plainly as u64 address.
 *
 * A TraceFileWorkload interleaves per-core streams from one file.
 */

#ifndef C3DSIM_TRACE_TRACE_FILE_HH
#define C3DSIM_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace c3d
{

/** On-disk record. */
struct TraceRecord
{
    std::uint16_t core;
    std::uint16_t gap;
    MemOp op;
    Addr addr;
};

/** Sequential writer for c3dsim trace files. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    TraceFileWriter(const std::string &path, std::uint32_t num_cores);
    ~TraceFileWriter();

    void append(const TraceRecord &rec);

    /** Finalize the header (record count) and close. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::FILE *file = nullptr;
    std::uint32_t numCores;
    std::uint64_t count = 0;
};

/** Loads a trace file fully into memory and serves per-core streams. */
class TraceFileWorkload : public Workload
{
  public:
    explicit TraceFileWorkload(const std::string &path);

    const std::string &name() const override { return fileName; }
    TraceOp next(CoreId core) override;
    std::uint32_t activeCores(std::uint32_t total) const override;

    std::uint32_t fileCores() const { return numCores; }
    std::uint64_t records() const { return total; }

  private:
    std::string fileName;
    std::uint32_t numCores = 0;
    std::uint64_t total = 0;
    /** Per-core operation streams; cursors wrap at the end. */
    std::vector<std::vector<TraceOp>> perCore;
    std::vector<std::size_t> cursor;
};

} // namespace c3d

#endif // C3DSIM_TRACE_TRACE_FILE_HH
