#include "trace/workload.hh"

#include <algorithm>

#include "common/log.hh"
#include "mapping/page_mapper.hh"

namespace c3d
{

WorkloadProfile
WorkloadProfile::scaled(std::uint32_t factor) const
{
    c3d_assert(factor >= 1, "scale factor must be >= 1");
    WorkloadProfile p = *this;
    auto shrink = [factor](std::uint64_t bytes) -> std::uint64_t {
        if (bytes == 0)
            return 0;
        return std::max<std::uint64_t>(bytes / factor, PageBytes);
    };
    p.sharedHotBytes = shrink(sharedHotBytes);
    p.sharedColdBytes = shrink(sharedColdBytes);
    p.streamBytes = shrink(streamBytes);
    p.streamSegmentBytes = std::max<std::uint64_t>(
        streamSegmentBytes / factor, BlockBytes);
    p.migratoryBytes = shrink(migratoryBytes);
    p.privateBytesPerThread = shrink(privateBytesPerThread);
    return p;
}

// --------------------------------------------------------------------
// Calibrated profiles (footprints are for the full-size machine:
// 16 MB LLC and 1 GB DRAM cache per socket; see DESIGN.md §4).
// --------------------------------------------------------------------

namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

WorkloadProfile
base(const char *name)
{
    WorkloadProfile p;
    p.name = name;
    return p;
}

} // namespace

WorkloadProfile
facesimProfile()
{
    // PARSEC physics solver: large shared mesh, heavy inter-thread
    // communication at partition boundaries.
    WorkloadProfile p = base("facesim");
    p.sharedHotBytes = 12 * MiB;
    p.sharedColdBytes = 160 * MiB;
    p.migratoryBytes = 96 * MiB;
    p.privateBytesPerThread = 8 * MiB;
    p.fracSharedHot = 0.22;
    p.fracSharedCold = 0.30;
    p.fracMigratory = 0.22;
    p.writeFracShared = 0.30;
    p.writeFracSharedCold = 0.02;
    p.writeFracPrivate = 0.30;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 3;
    return p;
}

WorkloadProfile
streamclusterProfile()
{
    // Repeated scans over a point set that fits comfortably in a 1 GB
    // DRAM cache but not in the 16 MB LLC: the paper's best case
    // (98% of memory accesses filtered, 50.7% speedup).
    WorkloadProfile p = base("streamcluster");
    p.sharedHotBytes = 4 * MiB;
    p.sharedColdBytes = 64 * MiB;
    p.streamBytes = 320 * MiB;
    p.streamSegmentBytes = 2 * MiB;
    p.migratoryBytes = 4 * MiB;
    p.privateBytesPerThread = 2 * MiB;
    p.fracSharedHot = 0.10;
    p.fracSharedCold = 0.05;
    p.fracStream = 0.78;
    p.fracMigratory = 0.02;
    p.writeFracShared = 0.10;
    p.writeFracSharedCold = 0.01;
    p.writeFracPrivate = 0.10;
    p.writeFracPrivateCold = 0.02;
    p.avgGap = 2;
    return p;
}

WorkloadProfile
freqmineProfile()
{
    // Frequent-itemset mining over a shared FP-tree.
    WorkloadProfile p = base("freqmine");
    p.sharedHotBytes = 12 * MiB;
    p.sharedColdBytes = 192 * MiB;
    p.migratoryBytes = 32 * MiB;
    p.privateBytesPerThread = 4 * MiB;
    p.fracSharedHot = 0.30;
    p.fracSharedCold = 0.34;
    p.fracMigratory = 0.14;
    p.writeFracShared = 0.25;
    p.writeFracSharedCold = 0.02;
    p.writeFracPrivate = 0.25;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 3;
    return p;
}

WorkloadProfile
fluidanimateProfile()
{
    // Particle simulation with fine-grained neighbour communication.
    WorkloadProfile p = base("fluidanimate");
    p.sharedHotBytes = 8 * MiB;
    p.sharedColdBytes = 128 * MiB;
    p.migratoryBytes = 96 * MiB;
    p.privateBytesPerThread = 8 * MiB;
    p.fracSharedHot = 0.22;
    p.fracSharedCold = 0.22;
    p.fracMigratory = 0.28;
    p.writeFracShared = 0.30;
    p.writeFracSharedCold = 0.02;
    p.writeFracPrivate = 0.30;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 3;
    return p;
}

WorkloadProfile
cannealProfile()
{
    // Simulated annealing over a multi-GB netlist: pointer chasing
    // with a footprint exceeding the aggregate DRAM-cache capacity.
    WorkloadProfile p = base("canneal");
    p.sharedHotBytes = 6 * MiB;
    p.sharedColdBytes = 512 * MiB;
    p.migratoryBytes = 8 * MiB;
    p.privateBytesPerThread = 4 * MiB;
    p.fracSharedHot = 0.22;
    p.fracSharedCold = 0.63;
    p.fracMigratory = 0.02;
    p.writeFracShared = 0.20;
    p.writeFracSharedCold = 0.01;
    p.writeFracPrivate = 0.20;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 2;
    return p;
}

WorkloadProfile
tunkrankProfile()
{
    // CloudSuite graph analytics: power-law vertex reuse over a
    // large read-mostly graph.
    WorkloadProfile p = base("tunkrank");
    p.sharedHotBytes = 24 * MiB;
    p.sharedColdBytes = 384 * MiB;
    p.migratoryBytes = 8 * MiB;
    p.privateBytesPerThread = 16 * MiB;
    p.fracSharedHot = 0.36;
    p.fracSharedCold = 0.34;
    p.fracMigratory = 0.03;
    p.writeFracShared = 0.15;
    p.writeFracSharedCold = 0.01;
    p.writeFracPrivate = 0.15;
    p.writeFracPrivateCold = 0.02;
    p.avgGap = 3;
    return p;
}

WorkloadProfile
nutchProfile()
{
    // CloudSuite web search: request threads hand work to processing
    // threads -- the producer-consumer pattern that makes full-dir
    // slow when the threads land on different sockets (§VI-A).
    WorkloadProfile p = base("nutch");
    p.sharedHotBytes = 10 * MiB;
    p.sharedColdBytes = 320 * MiB;
    p.migratoryBytes = 96 * MiB;
    p.privateBytesPerThread = 16 * MiB;
    p.fracSharedHot = 0.20;
    p.fracSharedCold = 0.29;
    p.fracMigratory = 0.22;
    p.writeFracShared = 0.25;
    p.writeFracSharedCold = 0.02;
    p.writeFracPrivate = 0.30;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 4;
    return p;
}

WorkloadProfile
cassandraProfile()
{
    // CloudSuite data serving: big heap, modest sharing writes.
    WorkloadProfile p = base("cassandra");
    p.sharedHotBytes = 16 * MiB;
    p.sharedColdBytes = 2048 * MiB;
    p.migratoryBytes = 16 * MiB;
    p.privateBytesPerThread = 32 * MiB;
    p.fracSharedHot = 0.28;
    p.fracSharedCold = 0.37;
    p.fracMigratory = 0.04;
    p.writeFracShared = 0.20;
    p.writeFracSharedCold = 0.02;
    p.writeFracPrivate = 0.25;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 4;
    return p;
}

WorkloadProfile
classificationProfile()
{
    // CloudSuite data analytics (Mahout classification).
    WorkloadProfile p = base("classification");
    p.sharedHotBytes = 12 * MiB;
    p.sharedColdBytes = 384 * MiB;
    p.migratoryBytes = 12 * MiB;
    p.privateBytesPerThread = 24 * MiB;
    p.fracSharedHot = 0.30;
    p.fracSharedCold = 0.35;
    p.fracMigratory = 0.04;
    p.writeFracShared = 0.15;
    p.writeFracSharedCold = 0.01;
    p.writeFracPrivate = 0.20;
    p.writeFracPrivateCold = 0.03;
    p.avgGap = 3;
    return p;
}

WorkloadProfile
mcfProfile()
{
    // SPEC'06 mcf: single-threaded, memory-intensive, write working
    // set far larger than the LLC (§VI-C broadcast study).
    WorkloadProfile p = base("mcf");
    p.sharedHotBytes = 0;
    p.sharedColdBytes = 0;
    p.streamBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = 1700 * MiB;
    p.fracSharedHot = 0;
    p.fracSharedCold = 0;
    p.fracMigratory = 0;
    p.writeFracPrivate = 0.25;
    p.privateHotFrac = 0.05;
    p.privateHotProb = 0.5;
    p.avgGap = 2;
    p.singleThreaded = true;
    return p;
}

std::vector<WorkloadProfile>
parallelProfiles()
{
    return {
        facesimProfile(),    streamclusterProfile(),
        freqmineProfile(),   fluidanimateProfile(),
        cannealProfile(),    tunkrankProfile(),
        nutchProfile(),      cassandraProfile(),
        classificationProfile(),
    };
}

WorkloadProfile
profileByName(const std::string &name)
{
    for (const auto &p : parallelProfiles()) {
        if (p.name == name)
            return p;
    }
    if (name == "mcf")
        return mcfProfile();
    c3d_fatal("unknown workload profile '%s'", name.c_str());
}

// --------------------------------------------------------------------
// SyntheticWorkload
// --------------------------------------------------------------------

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile,
                                     std::uint32_t num_cores,
                                     std::uint32_t cores_per_socket)
    : prof(std::move(profile)), numCores(num_cores),
      coresPerSocket(cores_per_socket ? cores_per_socket : 1)
{
    c3d_assert(num_cores >= 1, "workload needs a core");

    // Region layout: shared regions first, private regions after.
    Addr cursor = 0;
    auto place = [&cursor](std::uint64_t bytes) {
        const Addr base = cursor;
        cursor += (bytes + PageBytes - 1) & ~Addr(PageBytes - 1);
        return base;
    };
    sharedHotBase = place(prof.sharedHotBytes);
    sharedColdBase = place(prof.sharedColdBytes);
    streamBase = place(prof.streamBytes);
    migratoryBase = place(prof.migratoryBytes);
    privateBase = cursor;

    cores.resize(numCores);
    for (std::uint32_t c = 0; c < numCores; ++c)
        cores[c].rng = Rng(prof.seed * 0x9e3779b9ull + c + 1);

    // Parallel scan loops partition the stream region: each core
    // repeatedly sweeps its own contiguous segment (data-parallel
    // processing). Independent segments avoid artificial
    // leader-follower coupling between cores while preserving the
    // defining property: no LLC-level reuse, full DRAM-cache reuse.
    if (prof.streamBytes) {
        streamSegment = blockAlign(
            std::min(prof.streamSegmentBytes, prof.streamBytes));
        if (streamSegment < BlockBytes)
            streamSegment = BlockBytes;
    }
}

std::uint32_t
SyntheticWorkload::activeCores(std::uint32_t total) const
{
    return prof.singleThreaded ? 1 : total;
}

std::uint64_t
SyntheticWorkload::footprintBytes() const
{
    const std::uint32_t threads =
        prof.singleThreaded ? 1 : numCores;
    return prof.sharedHotBytes + prof.sharedColdBytes +
        prof.streamBytes + prof.migratoryBytes +
        static_cast<std::uint64_t>(threads) *
            prof.privateBytesPerThread;
}

Addr
SyntheticWorkload::pickUniform(Rng &rng, Addr base,
                               std::uint64_t bytes) const
{
    const std::uint64_t blocks = bytes / BlockBytes;
    c3d_assert(blocks > 0, "region too small");
    return base + rng.below(blocks) * BlockBytes;
}

TraceOp
SyntheticWorkload::next(CoreId core)
{
    c3d_assert(core < numCores, "core out of range");
    CoreState &cs = cores[core];
    TraceOp op;

    // Compute gap: uniform with mean avgGap, deterministic.
    op.gap = prof.avgGap
        ? static_cast<std::uint32_t>(cs.rng.below(2 * prof.avgGap + 1))
        : 0;

    // Migratory blocks are read-modify-write: complete the pending
    // write before anything else (the producer half of the
    // producer-consumer handoff).
    if (cs.hasPendingWrite) {
        cs.hasPendingWrite = false;
        op.op = MemOp::Write;
        op.addr = cs.pendingWrite;
        return op;
    }

    const double r = cs.rng.uniform();
    double acc = prof.fracSharedHot;

    if (prof.sharedHotBytes && r < acc) {
        op.addr = pickUniform(cs.rng, sharedHotBase,
                              prof.sharedHotBytes);
        op.op = cs.rng.chance(prof.writeFracShared) ? MemOp::Write
                                                    : MemOp::Read;
        return op;
    }
    acc += prof.fracSharedCold;
    if (prof.sharedColdBytes && r < acc) {
        op.addr = pickUniform(cs.rng, sharedColdBase,
                              prof.sharedColdBytes);
        op.op = cs.rng.chance(prof.writeFracSharedCold)
            ? MemOp::Write : MemOp::Read;
        return op;
    }
    acc += prof.fracStream;
    if (prof.streamBytes && r < acc) {
        // Iterative data-parallel sweep: each iteration partitions
        // the stream set across cores (disjoint strided segments) and
        // the partition rotates by one socket's worth of cores per
        // iteration, so every socket's DRAM cache covers -- and
        // replicates -- the full set within numSockets iterations,
        // as long-running scans do in the paper's workloads.
        const std::uint64_t num_segments =
            std::max<std::uint64_t>(prof.streamBytes / streamSegment,
                                    1);
        const std::uint32_t active =
            prof.singleThreaded ? 1 : numCores;
        const std::uint64_t seg =
            (core + cs.streamIter * coresPerSocket +
             cs.streamJ * active) % num_segments;
        op.addr = streamBase + seg * streamSegment + cs.streamCursor;
        cs.streamCursor += BlockBytes;
        if (cs.streamCursor >= streamSegment) {
            cs.streamCursor = 0;
            ++cs.streamJ;
            const std::uint64_t per_core =
                std::max<std::uint64_t>(num_segments / active, 1);
            if (cs.streamJ >= per_core) {
                cs.streamJ = 0;
                ++cs.streamIter;
            }
        }
        op.op = cs.rng.chance(prof.writeFracStream) ? MemOp::Write
                                                    : MemOp::Read;
        return op;
    }
    acc += prof.fracMigratory;
    if (prof.migratoryBytes && r < acc) {
        // Read now; the matching write comes as the next reference.
        op.addr = pickUniform(cs.rng, migratoryBase,
                              prof.migratoryBytes);
        op.op = MemOp::Read;
        cs.pendingWrite = op.addr;
        cs.hasPendingWrite = true;
        return op;
    }

    // Private region (hot subset with higher probability; writes
    // concentrate in the hot subset as they do in real programs).
    const Addr my_base = privateBase +
        static_cast<Addr>(core) * prof.privateBytesPerThread;
    std::uint64_t span = prof.privateBytesPerThread;
    const bool hot = cs.rng.chance(prof.privateHotProb);
    if (hot) {
        span = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(span) * prof.privateHotFrac),
            PageBytes);
    }
    op.addr = pickUniform(cs.rng, my_base, span);
    const double wf =
        hot ? prof.writeFracPrivate : prof.writeFracPrivateCold;
    op.op = cs.rng.chance(wf) ? MemOp::Write : MemOp::Read;
    return op;
}

void
SyntheticWorkload::preTouchPages(PageMapper &mapper)
{
    // The serial initialization phase touches the shared footprint
    // from thread 0 (socket 0): under FT1 this pins those pages.
    auto touch_region = [&mapper](Addr base, std::uint64_t bytes) {
        for (Addr a = base; a < base + bytes; a += PageBytes)
            mapper.preTouch(a, /*socket=*/0);
    };
    touch_region(sharedHotBase, prof.sharedHotBytes);
    touch_region(sharedColdBase, prof.sharedColdBytes);
    touch_region(streamBase, prof.streamBytes);
    touch_region(migratoryBase, prof.migratoryBytes);
}

} // namespace c3d
