/**
 * @file
 * Workload abstraction and the synthetic generator that stands in for
 * the paper's PARSEC 3.0 / CloudSuite Pin+Simics traces (§V).
 *
 * The substitution is documented in DESIGN.md §4: the evaluation
 * depends on the workloads' memory-system characteristics -- working
 * set vs cache capacity, shared vs private footprint, read/write mix,
 * producer-consumer communication intensity, temporal locality -- and
 * the generator parameterizes exactly these. Ten named profiles
 * (the paper's nine parallel workloads plus single-threaded mcf) are
 * calibrated so baseline behaviour matches the paper's Table I and
 * Fig. 3 shapes.
 *
 * Generators are deterministic functions of (profile, seed, core) and
 * never observe simulation timing, so every design sees an identical
 * reference stream.
 */

#ifndef C3DSIM_TRACE_WORKLOAD_HH
#define C3DSIM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace c3d
{

class PageMapper;

/** One trace record: compute gap then a memory reference. */
struct TraceOp
{
    std::uint32_t gap = 0; //!< compute instructions before the access
    MemOp op = MemOp::Read;
    Addr addr = 0;
};

/** A source of per-core reference streams. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;

    /** Next operation for @p core. Must be timing-independent. */
    virtual TraceOp next(CoreId core) = 0;

    /** Number of cores that execute (single-threaded workloads: 1). */
    virtual std::uint32_t activeCores(std::uint32_t total) const
    {
        return total;
    }

    /** References between barrier rendezvous; 0 = no barriers. */
    virtual std::uint64_t barrierInterval() const { return 0; }

    /**
     * FT1 serial-phase page placement (§V): the single-threaded
     * initialization touches the footprint before the parallel
     * phase, pinning pages under first-touch-from-start.
     */
    virtual void preTouchPages(PageMapper &mapper) { (void)mapper; }
};

/** Tunable characteristics of a synthetic workload. */
struct WorkloadProfile
{
    std::string name = "custom";

    // ---- footprints in bytes (unscaled: full-size machine) ------------
    std::uint64_t sharedHotBytes = 32ull << 20;
    std::uint64_t sharedColdBytes = 512ull << 20;
    std::uint64_t streamBytes = 0;
    /** Work-unit granularity of the parallel scan (a core sweeps one
     * segment, then grabs another at random). Small enough that each
     * core samples many segments per run. */
    std::uint64_t streamSegmentBytes = 4ull << 20;
    std::uint64_t migratoryBytes = 16ull << 20;
    std::uint64_t privateBytesPerThread = 8ull << 20;

    // ---- access mix (fractions sum to <= 1; remainder -> private) -----
    double fracSharedHot = 0.3;
    double fracSharedCold = 0.3;
    double fracStream = 0.0;
    double fracMigratory = 0.1;

    // ---- write ratios --------------------------------------------------
    /** Stores within shared-hot accesses (actively mutated state). */
    double writeFracShared = 0.15;
    /** Stores within shared-cold accesses; real workloads keep bulk
     * data read-mostly, concentrating writes in the hot set. */
    double writeFracSharedCold = 0.02;
    /** Stores within the private hot subset (stack/accumulators:
     * write-heavy but cache-resident). */
    double writeFracPrivate = 0.25;
    /** Stores within the private cold span (read-mostly bulk). */
    double writeFracPrivateCold = 0.03;
    double writeFracStream = 0.05;

    // ---- locality / timing ---------------------------------------------
    double privateHotFrac = 0.125; //!< hot subset of the private region
    double privateHotProb = 0.6;   //!< accesses hitting the hot subset
    std::uint32_t avgGap = 3;      //!< mean compute gap (instructions)
    /** Cores synchronize at a barrier every this many references
     * (iterative parallel kernels; bounds inter-core skew). 0
     * disables barriers (request-driven server workloads). */
    std::uint64_t barrierOps = 2500;
    bool singleThreaded = false;
    std::uint64_t seed = 0xC3D0;

    // ---- trace replay ---------------------------------------------------
    /** Non-empty: replay this c3dsim trace file instead of generating
     * a synthetic stream (loadTraceProfile builds such profiles). */
    std::string tracePath;
    /** Content hash of the trace file (identity, folded into grid
     * fingerprints so resume/merge refuse modified traces). */
    std::uint64_t traceHash = 0;

    bool isTrace() const { return !tracePath.empty(); }

    // ---- workload composition -------------------------------------------
    /** Non-empty: this profile is a multi-tenant composition manifest
     * (src/workload/composition.hh); the reference stream comes from
     * a ComposedWorkload driving the member traces. */
    std::string compositionPath;
    /** Semantic hash of the composition (manifest fields + member
     * trace content hashes; folded into grid fingerprints so
     * resume/merge refuse modified compositions). */
    std::uint64_t compositionHash = 0;

    bool isComposition() const { return !compositionPath.empty(); }

    /** Divide all footprints by @p factor (floor one page each). */
    WorkloadProfile scaled(std::uint32_t factor) const;
};

/** The ten calibrated paper profiles. */
WorkloadProfile facesimProfile();
WorkloadProfile streamclusterProfile();
WorkloadProfile freqmineProfile();
WorkloadProfile fluidanimateProfile();
WorkloadProfile cannealProfile();
WorkloadProfile tunkrankProfile();
WorkloadProfile nutchProfile();
WorkloadProfile cassandraProfile();
WorkloadProfile classificationProfile();
WorkloadProfile mcfProfile();

/** All nine parallel profiles in the paper's figure order. */
std::vector<WorkloadProfile> parallelProfiles();

/** Look up a profile by name (fatal on unknown name). */
WorkloadProfile profileByName(const std::string &name);

/** Synthetic reference-stream generator. */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param profile already scaled to match the machine scale
     * @param num_cores total cores in the machine
     * @param cores_per_socket socket grouping (drives the rotating
     *        scan partition so sockets cover the stream set quickly)
     */
    SyntheticWorkload(WorkloadProfile profile, std::uint32_t num_cores,
                      std::uint32_t cores_per_socket = 8);

    const std::string &name() const override { return prof.name; }
    TraceOp next(CoreId core) override;
    std::uint32_t activeCores(std::uint32_t total) const override;
    std::uint64_t
    barrierInterval() const override
    {
        return prof.singleThreaded ? 0 : prof.barrierOps;
    }
    void preTouchPages(PageMapper &mapper) override;

    /** Total footprint in bytes (for reporting). */
    std::uint64_t footprintBytes() const;

    const WorkloadProfile &profile() const { return prof; }

  private:
    struct CoreState
    {
        Rng rng{0};
        Addr streamCursor = 0;
        std::uint64_t streamIter = 0; //!< scan iteration counter
        std::uint64_t streamJ = 0;    //!< segment index in iteration
        Addr pendingWrite = 0;
        bool hasPendingWrite = false;
    };

    Addr pickUniform(Rng &rng, Addr base, std::uint64_t bytes) const;

    WorkloadProfile prof;
    std::uint32_t numCores;
    std::uint32_t coresPerSocket;

    // Region layout.
    Addr sharedHotBase = 0;
    Addr sharedColdBase = 0;
    Addr streamBase = 0;
    Addr migratoryBase = 0;
    Addr privateBase = 0;
    Addr streamSegment = 0; //!< per-core scan segment size

    std::vector<CoreState> cores;
};

} // namespace c3d

#endif // C3DSIM_TRACE_WORKLOAD_HH
