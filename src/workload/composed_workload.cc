#include "workload/composed_workload.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace c3d
{

namespace
{

std::uint32_t
clampGap(std::uint64_t delay)
{
    return delay > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                 : static_cast<std::uint32_t>(delay);
}

std::uint64_t
foldU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        h = fnv1aByte(h, static_cast<unsigned char>(v >> (8 * i)));
    return h;
}

/**
 * Discrete Poisson-process arrival: the delay to each core's first
 * reference is geometric with mean ~@p mean (failures before success
 * at p = 1/mean), drawn from an Rng seeded by (seed, tenant, core)
 * so it is reproducible and independent of everything the simulator
 * does. Capped at 16x the mean -- the tail of a geometric past that
 * point carries ~1e-7 of the mass and a bound keeps worst-case
 * construction cost and warm-up skew predictable.
 */
std::uint64_t
poissonDelay(std::uint64_t seed, std::uint32_t tenant,
             std::uint32_t core, std::uint64_t mean)
{
    if (mean == 0)
        return 0;
    std::uint64_t h = Fnv1aOffset;
    h = foldU64(h, seed);
    h = foldU64(h, tenant);
    h = foldU64(h, core);
    Rng rng(h);
    const double p = 1.0 / static_cast<double>(mean);
    const std::uint64_t cap = 16 * mean;
    std::uint64_t delay = 0;
    while (delay < cap && !rng.chance(p))
        ++delay;
    return delay;
}

} // namespace

ComposedWorkload::ComposedWorkload(const CompositionSpec &spec,
                                   std::uint64_t seed,
                                   std::uint32_t total_cores)
{
    c3d_assert(!spec.tenants.empty(), "composition without tenants");
    workloadName = compositionWorkloadName(spec.manifestPath,
                                           compositionHashOf(spec));

    members.reserve(spec.tenants.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        auto m = std::make_unique<Member>();
        m->spec = spec.tenants[i];
        std::string error;
        if (!m->reader.open(m->spec.tracePath, error,
                            &m->spec.traceHash))
            c3d_fatal("composition '%s': %s",
                      spec.manifestPath.c_str(), error.c_str());
        // "t<idx>:<basename>@<hash8>": reuse the trace naming rule,
        // swapping its "trace:" prefix for the tenant index.
        m->label = "t" + std::to_string(i) + ":" +
            traceWorkloadName(m->spec.tracePath, m->spec.traceHash)
                .substr(6);
        members.push_back(std::move(m));
    }

    // Bind lanes to cores. Each (tenant, lane) pair is bound to AT
    // MOST one core: sharing a streaming lane between two cores
    // would make each core's stream depend on their call
    // interleaving -- timing-dependent, breaking determinism.
    slots.assign(total_cores, Slot{});
    coreTenant.assign(total_cores, -1);
    const auto num_tenants =
        static_cast<std::uint32_t>(members.size());
    if (spec.assignment == AssignPolicy::Block) {
        std::uint32_t c = 0;
        for (std::uint32_t i = 0;
             i < num_tenants && c < total_cores; ++i) {
            const std::uint32_t lanes = members[i]->reader.numCores();
            for (std::uint32_t l = 0;
                 l < lanes && c < total_cores; ++l, ++c) {
                slots[c].tenant = static_cast<std::int32_t>(i);
                slots[c].lane = l;
                coreTenant[c] = static_cast<std::int32_t>(i);
            }
        }
        active = c;
    } else {
        std::uint32_t min_lanes = ~std::uint32_t(0);
        for (const auto &m : members)
            min_lanes = std::min(min_lanes, m->reader.numCores());
        active = std::min(total_cores, num_tenants * min_lanes);
        for (std::uint32_t c = 0; c < active; ++c) {
            slots[c].tenant =
                static_cast<std::int32_t>(c % num_tenants);
            slots[c].lane = c / num_tenants;
            coreTenant[c] = slots[c].tenant;
        }
    }

    for (std::uint32_t c = 0; c < active; ++c) {
        Slot &slot = slots[c];
        const auto tenant =
            static_cast<std::uint32_t>(slot.tenant);
        std::uint64_t delay = 0;
        switch (spec.arrival) {
          case ArrivalProcess::Fixed:
            break;
          case ArrivalProcess::Staggered:
            delay = static_cast<std::uint64_t>(tenant) *
                spec.staggerGap;
            break;
          case ArrivalProcess::Poisson:
            delay = poissonDelay(seed, tenant, c,
                                 spec.arrivalMeanGap);
            break;
        }
        slot.initialGap = clampGap(delay);
    }
}

TraceOp
ComposedWorkload::next(CoreId core)
{
    c3d_assert(core < slots.size() && slots[core].tenant >= 0,
               "composed workload driven on an unbound core");
    Slot &slot = slots[core];
    Member &m = *members[static_cast<std::size_t>(slot.tenant)];

    // Phase boundary: jump forward in the tenant's trace by
    // discarding records. Skipped records do not count as ops, so
    // the boundary fires exactly once per period.
    const std::uint64_t period = m.spec.phasePeriodOps;
    if (period && slot.ops > 0 && slot.ops % period == 0) {
        for (std::uint64_t i = 0; i < m.spec.phaseSkipOps; ++i)
            m.reader.next(slot.lane);
    }

    TraceOp op = m.reader.next(slot.lane);
    if (slot.ops == 0 && slot.initialGap) {
        // The arrival delay is extra compute before the core's first
        // reference -- stream-encoded, never scheduled.
        op.gap = clampGap(static_cast<std::uint64_t>(op.gap) +
                          slot.initialGap);
    }
    ++slot.ops;
    return op;
}

std::uint32_t
ComposedWorkload::activeCores(std::uint32_t total) const
{
    return std::min(total, active);
}

std::vector<std::string>
ComposedWorkload::tenantNames() const
{
    std::vector<std::string> names;
    names.reserve(members.size());
    for (const auto &m : members)
        names.push_back(m->label);
    return names;
}

} // namespace c3d
