/**
 * @file
 * ComposedWorkload: replay N tenant traces on one machine.
 *
 * Each active core is bound to exactly one lane of exactly one
 * tenant's trace at construction time -- block assignment gives
 * tenant i a contiguous core range, interleave deals cores round
 * robin -- so every core's stream is a pure function of (manifest,
 * seed, core) and never observes simulation timing, preserving the
 * determinism contract byte-for-byte across shards and resume.
 *
 * Arrival delays are likewise encoded in the stream itself: the
 * seeded arrival process adds compute instructions to each core's
 * FIRST op instead of scheduling anything, so a late-arriving tenant
 * simply computes longer before its first reference.
 */

#ifndef C3DSIM_WORKLOAD_COMPOSED_WORKLOAD_HH
#define C3DSIM_WORKLOAD_COMPOSED_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "workload/composition.hh"

namespace c3d
{

/** Workload adapter colocating a composition's tenant traces. */
class ComposedWorkload : public Workload
{
  public:
    /**
     * Open every member trace (expected-hash reader opens: a member
     * modified after the manifest was composed or the grid built is
     * fatal) and bind lanes to the machine's @p total_cores under
     * the manifest's assignment policy. @p seed drives the arrival
     * process -- the sweep's effective seed, which may override the
     * manifest's recorded one.
     */
    ComposedWorkload(const CompositionSpec &spec, std::uint64_t seed,
                     std::uint32_t total_cores);

    const std::string &name() const override { return workloadName; }
    TraceOp next(CoreId core) override;
    std::uint32_t activeCores(std::uint32_t total) const override;

    std::uint32_t tenantCount() const
    {
        return static_cast<std::uint32_t>(members.size());
    }

    /** "t<idx>:<trace-basename>@<hash8>" per tenant, in order. */
    std::vector<std::string> tenantNames() const;

    /** Global core -> tenant index; -1 for idle cores. */
    const std::vector<std::int32_t> &coreTenants() const
    {
        return coreTenant;
    }

  private:
    struct Member
    {
        TraceFileReader reader;
        TenantSpec spec;
        std::string label;
    };

    /** Per-core replay cursor (fixed at construction). */
    struct Slot
    {
        std::int32_t tenant = -1;  //!< -1: core idle
        std::uint32_t lane = 0;    //!< lane within the tenant's trace
        std::uint64_t ops = 0;     //!< ops produced (phase boundary)
        std::uint32_t initialGap = 0; //!< arrival delay, first op only
    };

    std::string workloadName;
    std::vector<std::unique_ptr<Member>> members;
    std::vector<Slot> slots;
    std::vector<std::int32_t> coreTenant;
    std::uint32_t active = 0;
};

} // namespace c3d

#endif // C3DSIM_WORKLOAD_COMPOSED_WORKLOAD_HH
