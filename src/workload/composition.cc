#include "workload/composition.hh"

#include <cinttypes>
#include <cstdio>

#include "common/hash.hh"
#include "exp/json.hh"
#include "trace/trace_file.hh"

namespace c3d
{

namespace
{

constexpr const char *SchemaName = "c3d-compose/v1";

std::uint64_t
foldString(std::uint64_t h, const std::string &s)
{
    h = fnv1aBytes(h, s.data(), s.size());
    return fnv1aByte(h, 0); // terminator: "ab"+"c" != "a"+"bc"
}

std::uint64_t
foldU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        h = fnv1aByte(h, static_cast<unsigned char>(v >> (8 * i)));
    return h;
}

std::string
hex16(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

bool
parseHex16(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    out = 0;
    for (const char c : s) {
        unsigned nibble;
        if (c >= '0' && c <= '9')
            nibble = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<unsigned>(c - 'a') + 10;
        else
            return false;
        out = (out << 4) | nibble;
    }
    return true;
}

std::string
dirPrefixOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

std::string
basenameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool
readWholeFile(const std::string &path, std::string &out,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open composition manifest '" + path + "'";
        return false;
    }
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) {
        error = "reading '" + path + "' failed";
        return false;
    }
    return true;
}

/** Required u64 member of a manifest object; false + error. */
bool
requireU64(const exp::JsonValue &obj, const char *key,
           std::uint64_t &out, std::string &error)
{
    const exp::JsonValue *v = obj.member(key);
    if (!v || !v->isNumber()) {
        error = std::string("manifest missing numeric field '") +
            key + "'";
        return false;
    }
    out = v->u64();
    return true;
}

bool
requireString(const exp::JsonValue &obj, const char *key,
              std::string &out, std::string &error)
{
    const exp::JsonValue *v = obj.member(key);
    if (!v || !v->isString()) {
        error = std::string("manifest missing string field '") +
            key + "'";
        return false;
    }
    out = v->string();
    return true;
}

} // namespace

const char *
assignPolicyName(AssignPolicy p)
{
    return p == AssignPolicy::Block ? "block" : "interleave";
}

const char *
arrivalProcessName(ArrivalProcess a)
{
    switch (a) {
      case ArrivalProcess::Fixed: return "fixed";
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Staggered: return "staggered";
    }
    return "fixed";
}

bool
parseAssignPolicy(const std::string &name, AssignPolicy &out)
{
    if (name == "block")
        out = AssignPolicy::Block;
    else if (name == "interleave")
        out = AssignPolicy::Interleave;
    else
        return false;
    return true;
}

bool
parseArrivalProcess(const std::string &name, ArrivalProcess &out)
{
    if (name == "fixed")
        out = ArrivalProcess::Fixed;
    else if (name == "poisson")
        out = ArrivalProcess::Poisson;
    else if (name == "staggered")
        out = ArrivalProcess::Staggered;
    else
        return false;
    return true;
}

std::uint64_t
compositionHashOf(const CompositionSpec &spec)
{
    std::uint64_t h = Fnv1aOffset;
    h = foldString(h, SchemaName);
    h = foldString(h, spec.name);
    h = foldU64(h, spec.seed);
    h = foldString(h, assignPolicyName(spec.assignment));
    h = foldString(h, arrivalProcessName(spec.arrival));
    h = foldU64(h, spec.arrivalMeanGap);
    h = foldU64(h, spec.staggerGap);
    h = foldU64(h, spec.tenants.size());
    for (const TenantSpec &t : spec.tenants) {
        // Identity is the trace's content, never its path: the same
        // corpus mounted elsewhere hashes identically.
        h = foldU64(h, t.traceHash);
        h = foldU64(h, t.phasePeriodOps);
        h = foldU64(h, t.phaseSkipOps);
    }
    return h;
}

std::string
compositionWorkloadName(const std::string &path, std::uint64_t hash)
{
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "@%08x",
                  static_cast<std::uint32_t>(hash ^ (hash >> 32)));
    return "compose:" + basenameOf(path) + suffix;
}

std::string
compositionToJson(const CompositionSpec &spec)
{
    std::string out;
    out += "{\n  \"schema\": \"";
    out += SchemaName;
    out += "\",\n  \"name\": \"" + exp::jsonEscape(spec.name) + "\",";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\n  \"seed\": %" PRIu64 ",",
                  spec.seed);
    out += buf;
    out += std::string("\n  \"assignment\": \"") +
        assignPolicyName(spec.assignment) + "\",";
    out += std::string("\n  \"arrival\": \"") +
        arrivalProcessName(spec.arrival) + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\n  \"arrival_mean_gap\": %" PRIu64
                  ",\n  \"stagger_gap\": %" PRIu64 ",",
                  spec.arrivalMeanGap, spec.staggerGap);
    out += buf;
    out += "\n  \"tenants\": [";
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const TenantSpec &t = spec.tenants[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"trace\": \"" + exp::jsonEscape(t.tracePath) +
            "\", \"hash\": \"" + hex16(t.traceHash) + "\"";
        std::snprintf(buf, sizeof(buf),
                      ", \"phase_period_ops\": %" PRIu64
                      ", \"phase_skip_ops\": %" PRIu64 "}",
                      t.phasePeriodOps, t.phaseSkipOps);
        out += buf;
    }
    out += spec.tenants.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool
loadComposition(const std::string &path, CompositionSpec &out,
                std::string &error, bool validate_members)
{
    std::string text;
    if (!readWholeFile(path, text, error))
        return false;

    exp::JsonValue root;
    if (!parseJson(text, root, error)) {
        error = "'" + path + "' is not valid JSON: " + error;
        return false;
    }
    if (!root.isObject()) {
        error = "'" + path + "' is not a manifest object";
        return false;
    }
    const exp::JsonValue *schema = root.member("schema");
    if (!schema || !schema->isString() ||
        schema->string() != SchemaName) {
        error = "'" + path + "' is not a " + std::string(SchemaName) +
            " manifest (missing or unexpected schema)";
        return false;
    }

    CompositionSpec spec;
    spec.manifestPath = path;
    std::string assignment, arrival;
    if (!requireString(root, "name", spec.name, error) ||
        !requireU64(root, "seed", spec.seed, error) ||
        !requireString(root, "assignment", assignment, error) ||
        !requireString(root, "arrival", arrival, error) ||
        !requireU64(root, "arrival_mean_gap", spec.arrivalMeanGap,
                    error) ||
        !requireU64(root, "stagger_gap", spec.staggerGap, error)) {
        error = "'" + path + "': " + error;
        return false;
    }
    if (!parseAssignPolicy(assignment, spec.assignment)) {
        error = "'" + path + "' names unknown assignment policy '" +
            assignment + "' (want block|interleave)";
        return false;
    }
    if (!parseArrivalProcess(arrival, spec.arrival)) {
        error = "'" + path + "' names unknown arrival process '" +
            arrival + "' (want fixed|poisson|staggered)";
        return false;
    }

    const exp::JsonValue *tenants = root.member("tenants");
    if (!tenants || !tenants->isArray() || tenants->array().empty()) {
        error = "'" + path + "' lists no tenants";
        return false;
    }
    const std::string dir = dirPrefixOf(path);
    for (const exp::JsonValue &tv : tenants->array()) {
        if (!tv.isObject()) {
            error = "'" + path + "': tenant entry is not an object";
            return false;
        }
        TenantSpec t;
        std::string hash_token;
        if (!requireString(tv, "trace", t.tracePath, error) ||
            !requireString(tv, "hash", hash_token, error) ||
            !requireU64(tv, "phase_period_ops", t.phasePeriodOps,
                        error) ||
            !requireU64(tv, "phase_skip_ops", t.phaseSkipOps,
                        error)) {
            error = "'" + path + "': " + error;
            return false;
        }
        if (t.tracePath.empty()) {
            error = "'" + path + "': tenant trace path is empty";
            return false;
        }
        if (!parseHex16(hash_token, t.traceHash)) {
            error = "'" + path + "': tenant hash '" + hash_token +
                "' is not 16 hex digits";
            return false;
        }
        if (t.phasePeriodOps == 0 && t.phaseSkipOps != 0) {
            error = "'" + path + "': phase_skip_ops without "
                "phase_period_ops";
            return false;
        }
        if (t.tracePath[0] != '/')
            t.tracePath = dir + t.tracePath;
        spec.tenants.push_back(std::move(t));
    }

    if (validate_members) {
        // Scan every member now (seeding the replay memo) so a
        // composition over modified traces refuses before any run
        // starts, with the member and both hashes named.
        for (const TenantSpec &t : spec.tenants) {
            WorkloadProfile member;
            if (!loadTraceProfile(t.tracePath, member, error)) {
                error = "'" + path + "': " + error;
                return false;
            }
            if (member.traceHash != t.traceHash) {
                error = "member trace '" + t.tracePath +
                    "' changed since the manifest was composed "
                    "(content hash " + hex16(member.traceHash) +
                    ", manifest '" + path + "' pins " +
                    hex16(t.traceHash) + ")";
                return false;
            }
        }
    }

    out = std::move(spec);
    return true;
}

bool
loadCompositionProfile(const std::string &path, WorkloadProfile &out,
                       std::string &error)
{
    CompositionSpec spec;
    if (!loadComposition(path, spec, error))
        return false;
    const std::uint64_t hash = compositionHashOf(spec);

    // Inert synthetic fields, as for trace profiles: a composition
    // profile is pure identity; the stream comes from the members.
    WorkloadProfile p;
    p.name = compositionWorkloadName(path, hash);
    p.sharedHotBytes = 0;
    p.sharedColdBytes = 0;
    p.streamBytes = 0;
    p.streamSegmentBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = 0;
    p.fracSharedHot = 0;
    p.fracSharedCold = 0;
    p.fracStream = 0;
    p.fracMigratory = 0;
    p.writeFracShared = 0;
    p.writeFracSharedCold = 0;
    p.writeFracPrivate = 0;
    p.writeFracPrivateCold = 0;
    p.writeFracStream = 0;
    p.privateHotFrac = 0;
    p.privateHotProb = 0;
    p.avgGap = 0;
    p.barrierOps = 0;
    p.seed = spec.seed;
    p.compositionPath = path;
    p.compositionHash = hash;
    out = std::move(p);
    return true;
}

} // namespace c3d
