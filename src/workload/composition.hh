/**
 * @file
 * Multi-tenant workload composition: the TenantSpec/CompositionSpec
 * model and the colocation-manifest format behind `c3d-trace
 * compose` and `c3d-sweep --workloads=compose:MANIFEST`.
 *
 * A composition colocates N tenant traces on one simulated machine:
 * each tenant replays its own c3dsim trace on a share of the cores
 * (block or interleaved assignment), starts after a seeded
 * deterministic arrival delay (fixed, Poisson, or staggered), and may
 * switch trace segments mid-run (phase mixing). The manifest is a
 * small JSON artifact that pins every member trace by content hash
 * and records the seed, so composed corpora are reproducible and the
 * sweep-grid fingerprint can refuse resume/merge against modified
 * members (docs/workloads.md).
 */

#ifndef C3DSIM_WORKLOAD_COMPOSITION_HH
#define C3DSIM_WORKLOAD_COMPOSITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace c3d
{

/** How composed tenants share the machine's cores. */
enum class AssignPolicy
{
    Block,      //!< tenant i gets a contiguous core range
    Interleave, //!< core c belongs to tenant c % numTenants
};

/** When a tenant's first reference is issued. */
enum class ArrivalProcess
{
    Fixed,     //!< all tenants start at tick 0
    Poisson,   //!< per-core geometric delay (discrete Poisson arrivals)
    Staggered, //!< tenant i delayed i * staggerGap instructions
};

const char *assignPolicyName(AssignPolicy p);
const char *arrivalProcessName(ArrivalProcess a);
bool parseAssignPolicy(const std::string &name, AssignPolicy &out);
bool parseArrivalProcess(const std::string &name, ArrivalProcess &out);

/** One tenant of a composition: a pinned trace plus phase mixing. */
struct TenantSpec
{
    /** Member trace path. Relative paths in a manifest resolve
     * against the manifest's own directory; after loadComposition
     * this holds the resolved path. */
    std::string tracePath;
    /** Manifest-pinned content hash of the trace -- the member's
     * identity. Replay refuses a file hashing differently. */
    std::uint64_t traceHash = 0;
    /** Every this many per-core ops the tenant jumps forward in its
     * trace (a phase change); 0 disables phase mixing. */
    std::uint64_t phasePeriodOps = 0;
    /** Records skipped per lane at each phase boundary. */
    std::uint64_t phaseSkipOps = 0;
};

/** A full colocation scenario (one manifest). */
struct CompositionSpec
{
    std::string name = "composition";
    /** Default arrival-process seed, recorded in the manifest. The
     * sweep's --seed override replaces it at run time. */
    std::uint64_t seed = 1;
    AssignPolicy assignment = AssignPolicy::Block;
    ArrivalProcess arrival = ArrivalProcess::Fixed;
    /** Mean of the Poisson (geometric) arrival delay, in compute
     * instructions before each core's first reference. */
    std::uint64_t arrivalMeanGap = 0;
    /** Staggered arrivals: tenant i starts i * staggerGap late. */
    std::uint64_t staggerGap = 0;
    std::vector<TenantSpec> tenants;

    /** Manifest path this spec was loaded from / written to (not
     * part of the composition's identity). */
    std::string manifestPath;
};

/**
 * Semantic identity of a composition: FNV-1a 64 over every manifest
 * field that changes the composed reference stream, with member
 * traces represented by their content hashes -- never their paths --
 * so the same corpus mounted elsewhere keeps its identity while any
 * member edit changes it.
 */
std::uint64_t compositionHashOf(const CompositionSpec &spec);

/**
 * Canonical workload name for a composition:
 * "compose:<manifest-basename>@<hash8>", mirroring
 * traceWorkloadName so two manifests with one basename stay distinct
 * in row identity keys.
 */
std::string compositionWorkloadName(const std::string &path,
                                    std::uint64_t hash);

/** Serialize @p spec as a c3d-compose/v1 manifest (deterministic). */
std::string compositionToJson(const CompositionSpec &spec);

/**
 * Parse the manifest at @p path; relative member paths resolve
 * against the manifest's directory. With @p validate_members (the
 * default), every member trace is scanned and a content hash that
 * differs from the manifest's pin is an error ("changed since the
 * manifest was composed"); the scan also seeds the trace reader's
 * memo so replay opens are cheap. Pass false on hot paths that
 * revalidate members later (ComposedWorkload's expected-hash open).
 * False + @p error on any defect.
 */
bool loadComposition(const std::string &path, CompositionSpec &out,
                     std::string &error, bool validate_members = true);

/**
 * Build the WorkloadProfile that names @p path in a sweep grid:
 * name "compose:<basename>@<hash8>", compositionPath/Hash set, seed
 * = the manifest's recorded seed, synthetic generator fields zeroed.
 * Validates the manifest and every member trace; false + @p error.
 */
bool loadCompositionProfile(const std::string &path,
                            WorkloadProfile &out, std::string &error);

} // namespace c3d

#endif // C3DSIM_WORKLOAD_COMPOSITION_HH
