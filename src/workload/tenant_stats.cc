#include "workload/tenant_stats.hh"

namespace c3d
{

void
TenantStatSet::init(StatGroup *group, std::uint32_t idx)
{
    const std::string prefix = "tenant" + std::to_string(idx) + ".";
    loads.init(group, prefix + "loads", "tenant loads issued");
    stores.init(group, prefix + "stores", "tenant stores issued");
    dramCacheHits.init(group, prefix + "dram_cache_hits",
                       "tenant accesses hitting the DRAM cache");
    dramCacheMisses.init(group, prefix + "dram_cache_misses",
                         "tenant accesses missing the DRAM cache");
    memLatency.init(group, prefix + "mem_latency",
                    "tenant end-to-end memory latency (ticks)");
}

} // namespace c3d
