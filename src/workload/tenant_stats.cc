#include "workload/tenant_stats.hh"

namespace c3d
{

void
TenantStatSet::init(StatGroup *group, std::uint32_t idx)
{
    const std::string prefix = "tenant" + std::to_string(idx) + ".";
    loads.init(group, prefix + "loads", "tenant loads issued");
    stores.init(group, prefix + "stores", "tenant stores issued");
    memLatency.init(group, prefix + "mem_latency",
                    "tenant end-to-end memory latency (ticks)");
}

} // namespace c3d
