/**
 * @file
 * Per-tenant QoS statistics for composed workloads.
 *
 * One TenantStatSet per tenant, registered with the machine's
 * StatGroup (so the warm-up resetAll() covers it) and attributed at
 * the layers that know the requesting core: Socket entry points
 * count loads/stores and sample end-to-end memory latency. DRAM-cache
 * hit/miss/occupancy attribution lives inside DramCache itself (a
 * tenant tag rides on probe()), so those counters tick exactly where
 * the cache's own counters do. Deeper components (MemoryController,
 * directory) have no requester on their interfaces, so their traffic
 * stays machine-level only.
 */

#ifndef C3DSIM_WORKLOAD_TENANT_STATS_HH
#define C3DSIM_WORKLOAD_TENANT_STATS_HH

#include <cstdint>

#include "common/stats.hh"

namespace c3d
{

/** The per-tenant counters one composed tenant accumulates. */
struct TenantStatSet
{
    Counter loads;
    Counter stores;
    /** End-to-end CPU-visible memory latency (loads and stores). */
    Histogram memLatency;

    /** Register everything as "tenant<idx>.*" in @p group. */
    void init(StatGroup *group, std::uint32_t idx);
};

} // namespace c3d

#endif // C3DSIM_WORKLOAD_TENANT_STATS_HH
