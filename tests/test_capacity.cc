/**
 * @file
 * Tests for the functional capacity analyzer (Fig. 3 / §II-C
 * infrastructure).
 */

#include <gtest/gtest.h>

#include "cache/capacity_analyzer.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

TEST(CapacityAnalyzer, BiggerCacheNeverMissesMore)
{
    WorkloadProfile p = test::tinyProfile();
    std::uint64_t prev = ~0ull;
    for (std::uint64_t kb : {64, 256, 1024}) {
        SyntheticWorkload wl(p, 8, 2);
        const CapacityResult r = analyzeCapacity(
            wl, 4, 2, kb * 1024, 16, /*shared=*/false, 4000);
        EXPECT_LE(r.cacheMisses, prev) << kb << "KB";
        prev = r.cacheMisses;
    }
}

TEST(CapacityAnalyzer, WorkingSetFitsMeansColdMissesOnly)
{
    WorkloadProfile p;
    p.name = "fits";
    p.sharedHotBytes = 64 * 1024;
    p.sharedColdBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = 0;
    p.fracSharedHot = 1.0;
    p.fracSharedCold = 0;
    p.fracMigratory = 0;
    p.privateBytesPerThread = PageBytes;
    SyntheticWorkload wl(p, 4, 2);
    const CapacityResult r = analyzeCapacity(
        wl, 2, 2, 1 << 20, 16, /*shared=*/false, 20000);
    // Footprint is 1 K blocks replicated in 2 sockets: at most ~2 K
    // cold misses out of 80 K references.
    EXPECT_LT(r.missRate(), 0.05);
}

TEST(CapacityAnalyzer, SharedOrganizationPoolsCapacity)
{
    // With a working set that fits the pooled capacity but not one
    // socket's share, the shared organization misses less.
    WorkloadProfile p;
    p.name = "pool";
    p.sharedHotBytes = 3 << 20; // 3 MB vs 1 MB/socket caches
    p.sharedColdBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = PageBytes;
    p.fracSharedHot = 1.0;
    p.fracSharedCold = 0;
    p.fracMigratory = 0;
    SyntheticWorkload wl_priv(p, 8, 2);
    SyntheticWorkload wl_shared(p, 8, 2);
    const CapacityResult priv = analyzeCapacity(
        wl_priv, 4, 2, 1 << 20, 16, false, 30000);
    const CapacityResult shared = analyzeCapacity(
        wl_shared, 4, 2, 1 << 20, 16, true, 30000);
    EXPECT_LT(shared.cacheMisses, priv.cacheMisses);
}

TEST(CapacityAnalyzer, RemoteMissesTrackInterleavedHomes)
{
    WorkloadProfile p = test::tinyProfile();
    SyntheticWorkload wl(p, 8, 2);
    const CapacityResult r = analyzeCapacity(
        wl, 4, 2, 64 * 1024, 16, false, 5000);
    // With 4-socket interleave roughly 3/4 of misses are remote.
    ASSERT_GT(r.cacheMisses, 0u);
    const double remote_frac = static_cast<double>(r.remoteMisses) /
        static_cast<double>(r.cacheMisses);
    EXPECT_GT(remote_frac, 0.55);
    EXPECT_LT(remote_frac, 0.9);
}

TEST(CapacityAnalyzer, CountsReferences)
{
    WorkloadProfile p = test::tinyProfile();
    SyntheticWorkload wl(p, 8, 2);
    const CapacityResult r = analyzeCapacity(
        wl, 4, 2, 64 * 1024, 16, false, 1000);
    EXPECT_EQ(r.references, 8u * 1000u);
}

} // namespace
} // namespace c3d
