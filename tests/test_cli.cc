/**
 * @file
 * Unit tests for the command-line configuration parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"

namespace c3d
{
namespace
{

TEST(Cli, DefaultsAreSane)
{
    const CliOptions opt = parseCli(std::vector<std::string>{});
    EXPECT_TRUE(opt.ok());
    EXPECT_EQ(opt.config.design, Design::C3D);
    EXPECT_EQ(opt.config.numSockets, 4u);
    EXPECT_EQ(opt.scale, 32u);
    EXPECT_EQ(opt.workload, "facesim");
}

TEST(Cli, ParsesDesigns)
{
    for (Design d : {Design::Baseline, Design::Snoopy, Design::FullDir,
                     Design::C3D, Design::C3DFullDir}) {
        const CliOptions opt = parseCli(
            {std::string("--design=") + designName(d)});
        EXPECT_TRUE(opt.ok()) << designName(d);
        EXPECT_EQ(opt.config.design, d);
    }
}

TEST(Cli, RejectsUnknownDesign)
{
    const CliOptions opt = parseCli({"--design=magic"});
    EXPECT_FALSE(opt.ok());
    EXPECT_NE(opt.error.find("magic"), std::string::npos);
}

TEST(Cli, ParsesMachineShape)
{
    const CliOptions opt = parseCli(
        {"--sockets=2", "--cores-per-socket=16", "--scale=64"});
    ASSERT_TRUE(opt.ok());
    EXPECT_EQ(opt.config.numSockets, 2u);
    EXPECT_EQ(opt.config.coresPerSocket, 16u);
    EXPECT_EQ(opt.config.totalCores(), 32u);
    // Scaling applied: LLC = 16 MB / 64.
    EXPECT_EQ(opt.config.llcBytes, (16ull << 20) / 64);
}

TEST(Cli, LatencyOverridesConvertNsToTicks)
{
    const CliOptions opt = parseCli(
        {"--dram-cache-ns=50", "--hop-ns=5", "--mem-ns=100"});
    ASSERT_TRUE(opt.ok());
    EXPECT_EQ(opt.config.dramCacheLatency, nsToTicks(50));
    EXPECT_EQ(opt.config.hopLatency, nsToTicks(5));
    EXPECT_EQ(opt.config.memLatency, nsToTicks(100));
}

TEST(Cli, MappingAndFlags)
{
    const CliOptions opt = parseCli(
        {"--mapping=INT", "--tlb-classification", "--no-dram-cache"});
    ASSERT_TRUE(opt.ok());
    EXPECT_EQ(opt.config.mapping, MappingPolicy::Interleave);
    EXPECT_TRUE(opt.config.tlbPageClassification);
    EXPECT_FALSE(opt.config.hasDramCache);
}

TEST(Cli, WorkloadAndQuotas)
{
    const CliOptions opt = parseCli(
        {"--workload=canneal", "--warmup=123", "--measure=456",
         "--seed=0x42"});
    ASSERT_TRUE(opt.ok());
    EXPECT_EQ(opt.workload, "canneal");
    EXPECT_EQ(opt.warmupOps, 123u);
    EXPECT_EQ(opt.measureOps, 456u);
    EXPECT_EQ(opt.seed, 0x42u);
}

TEST(Cli, HelpFlag)
{
    const CliOptions opt = parseCli({"--help"});
    EXPECT_TRUE(opt.showHelp);
    EXPECT_FALSE(opt.ok());
    EXPECT_FALSE(cliUsage().empty());
}

TEST(Cli, RejectsBareArguments)
{
    const CliOptions opt = parseCli({"canneal"});
    EXPECT_FALSE(opt.ok());
}

TEST(Cli, RejectsUnknownFlag)
{
    const CliOptions opt = parseCli({"--frobnicate=7"});
    EXPECT_FALSE(opt.ok());
    EXPECT_NE(opt.error.find("frobnicate"), std::string::npos);
}

TEST(Cli, RejectsMalformedNumbers)
{
    EXPECT_FALSE(parseCli({"--warmup=abc"}).ok());
    EXPECT_FALSE(parseCli({"--sockets=0"}).ok());
    EXPECT_FALSE(parseCli({"--scale=0"}).ok());
}

} // namespace
} // namespace c3d
