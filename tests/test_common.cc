/**
 * @file
 * Unit tests for src/common: types/units, RNG, stats.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace c3d
{
namespace
{

TEST(Types, NsToTicksUsesThreeGHzClock)
{
    EXPECT_EQ(nsToTicks(0), 0u);
    EXPECT_EQ(nsToTicks(1), 3u);
    EXPECT_EQ(nsToTicks(40), 120u);
    EXPECT_EQ(nsToTicks(50), 150u);
    EXPECT_EQ(ticksToNs(nsToTicks(20)), 20u);
}

TEST(Types, BlockAlignmentHelpers)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockNumber(128), 2u);
    EXPECT_EQ(pageNumber(4096), 1u);
    EXPECT_EQ(pageAlign(4097), 4096u);
}

TEST(Bandwidth, SerializationMatchesRate)
{
    // 12.8 GB/s == 12.8 bytes/ns == 64 B in 5 ns == 15 ticks.
    Bandwidth bw = Bandwidth::fromGBps(12.8);
    EXPECT_TRUE(bw.valid());
    const Tick t = bw.serializationTicks(64);
    EXPECT_GE(t, 15u);
    EXPECT_LE(t, 16u); // allow the fixed-point ceiling
}

TEST(Bandwidth, InfiniteBandwidthIsZeroOccupancy)
{
    Bandwidth bw; // default: infinite
    EXPECT_FALSE(bw.valid());
    EXPECT_EQ(bw.serializationTicks(1 << 20), 0u);
}

TEST(Bandwidth, HigherRateIsFaster)
{
    Bandwidth slow = Bandwidth::fromGBps(12.8);
    Bandwidth fast = Bandwidth::fromGBps(25.6);
    EXPECT_LT(fast.serializationTicks(4096),
              slow.serializationTicks(4096));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = r.below(37);
        EXPECT_LT(v, 37u);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(11);
    std::vector<int> buckets(8, 0);
    const int samples = 80000;
    for (int i = 0; i < samples; ++i)
        ++buckets[r.below(8)];
    for (int b : buckets) {
        EXPECT_GT(b, samples / 8 - samples / 40);
        EXPECT_LT(b, samples / 8 + samples / 40);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, CounterRegistersAndCounts)
{
    StatGroup g("test");
    Counter c;
    c.init(&g, "events", "demo");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.valueOf("events"), 5u);
    EXPECT_TRUE(g.has("events"));
    EXPECT_FALSE(g.has("missing"));
}

TEST(Stats, ResetAllClearsCounters)
{
    StatGroup g("test");
    Counter a, b;
    a.init(&g, "a");
    b.init(&g, "b");
    a += 10;
    b += 20;
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Stats, SumMatchingAggregatesBySubstring)
{
    StatGroup g("test");
    Counter a, b, c;
    a.init(&g, "socket0.mem.reads");
    b.init(&g, "socket1.mem.reads");
    c.init(&g, "socket0.mem.writes");
    a += 3;
    b += 4;
    c += 9;
    EXPECT_EQ(g.sumMatching(".mem.reads"), 7u);
    EXPECT_EQ(g.sumMatching("socket0"), 12u);
}

TEST(Stats, HistogramTracksMoments)
{
    StatGroup g("test");
    Histogram h;
    h.init(&g, "lat");
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Config, ScaledPreservesRatios)
{
    SystemConfig cfg;
    const SystemConfig s = cfg.scaled(16);
    EXPECT_EQ(s.llcBytes, cfg.llcBytes / 16);
    EXPECT_EQ(s.dramCacheBytes, cfg.dramCacheBytes / 16);
    EXPECT_EQ(static_cast<double>(s.dramCacheBytes) / s.llcBytes,
              static_cast<double>(cfg.dramCacheBytes) / cfg.llcBytes);
}

TEST(Config, DesignPredicates)
{
    SystemConfig cfg;
    cfg.design = Design::C3D;
    EXPECT_TRUE(cfg.cleanDramCache());
    EXPECT_FALSE(cfg.dirtyDramCache());
    EXPECT_TRUE(cfg.designUsesDramCache());
    cfg.design = Design::Snoopy;
    EXPECT_TRUE(cfg.dirtyDramCache());
    cfg.design = Design::Baseline;
    EXPECT_FALSE(cfg.designUsesDramCache());
}

TEST(Config, TopologySelection)
{
    SystemConfig cfg;
    cfg.numSockets = 2;
    EXPECT_EQ(cfg.topology(), Topology::PointToPoint);
    cfg.numSockets = 4;
    EXPECT_EQ(cfg.topology(), Topology::Ring);
}

TEST(Config, DesignNames)
{
    EXPECT_STREQ(designName(Design::Baseline), "baseline");
    EXPECT_STREQ(designName(Design::Snoopy), "snoopy");
    EXPECT_STREQ(designName(Design::FullDir), "full-dir");
    EXPECT_STREQ(designName(Design::C3D), "c3d");
    EXPECT_STREQ(designName(Design::C3DFullDir), "c3d-full-dir");
}

} // namespace
} // namespace c3d
