/**
 * @file
 * Multi-tenant workload composition: manifest hashing/serialization
 * round-trips, loader diagnostics, and the ComposedWorkload
 * determinism contract (streams are pure functions of (manifest,
 * seed, core); assignment and arrival policies shape them exactly as
 * documented in docs/workloads.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "exp/sweep_grid.hh"
#include "trace/trace_file.hh"
#include "workload/composed_workload.hh"
#include "workload/composition.hh"

namespace c3d
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "c3d_composition_" + name;
}

/** Record a small deterministic 2-core trace; @p salt perturbs it. */
TraceFileInfo
writeTrace(const std::string &path, Addr salt = 0)
{
    TraceFileWriter w(path, 2);
    for (std::uint32_t i = 0; i < 200; ++i) {
        for (std::uint16_t c = 0; c < 2; ++c) {
            const Addr base = (i * 13 + c * 101 + salt) % 256;
            w.append({c, static_cast<std::uint16_t>(i % 4),
                      i % 5 == 0 ? MemOp::Write : MemOp::Read,
                      base * 64});
        }
    }
    w.close();
    TraceFileInfo info;
    std::string error;
    EXPECT_TRUE(scanTraceFile(path, info, error)) << error;
    return info;
}

/** Two-tenant spec over freshly recorded traces a/b. */
CompositionSpec
twoTenantSpec(const std::string &path_a, const std::string &path_b,
              Addr salt_b = 7)
{
    CompositionSpec spec;
    spec.name = "testmix";
    spec.seed = 42;
    spec.tenants.push_back(
        {path_a, writeTrace(path_a).contentHash, 0, 0});
    spec.tenants.push_back(
        {path_b, writeTrace(path_b, salt_b).contentHash, 0, 0});
    return spec;
}

void
removeTenants(const CompositionSpec &spec)
{
    for (const TenantSpec &t : spec.tenants)
        std::remove(t.tracePath.c_str());
}

TEST(CompositionModel, HashIgnoresPathsButTracksEveryField)
{
    CompositionSpec spec = twoTenantSpec(tempPath("ha.c3dt"),
                                         tempPath("hb.c3dt"));
    const std::uint64_t base = compositionHashOf(spec);

    // Paths (and the manifest's own path) are not identity.
    CompositionSpec moved = spec;
    moved.tenants[0].tracePath = "/elsewhere/ha.c3dt";
    moved.manifestPath = tempPath("other.json");
    EXPECT_EQ(compositionHashOf(moved), base);

    // Every stream-shaping field is.
    CompositionSpec m = spec;
    m.seed = 43;
    EXPECT_NE(compositionHashOf(m), base);
    m = spec;
    m.name = "othermix";
    EXPECT_NE(compositionHashOf(m), base);
    m = spec;
    m.assignment = AssignPolicy::Interleave;
    EXPECT_NE(compositionHashOf(m), base);
    m = spec;
    m.arrival = ArrivalProcess::Staggered;
    m.staggerGap = 10;
    EXPECT_NE(compositionHashOf(m), base);
    m = spec;
    m.tenants[1].traceHash ^= 1; // member content changed
    EXPECT_NE(compositionHashOf(m), base);
    m = spec;
    m.tenants[0].phasePeriodOps = 50;
    EXPECT_NE(compositionHashOf(m), base);

    // Tenant order matters (it decides core assignment).
    m = spec;
    std::swap(m.tenants[0], m.tenants[1]);
    EXPECT_NE(compositionHashOf(m), base);

    removeTenants(spec);
}

TEST(CompositionModel, WorkloadNameCarriesBasenameAndHash)
{
    const std::string name =
        compositionWorkloadName("/corpus/mix.json", 0x1122334455667788);
    EXPECT_EQ(name.rfind("compose:mix.json@", 0), 0u);
    // hash8 folds high into low 32 bits:
    // 0x55667788 ^ 0x11223344 = 0x444444cc.
    EXPECT_EQ(name.substr(name.find('@') + 1), "444444cc");
}

TEST(CompositionModel, ManifestRoundTripsThroughJson)
{
    CompositionSpec spec = twoTenantSpec(tempPath("ra.c3dt"),
                                         tempPath("rb.c3dt"));
    spec.assignment = AssignPolicy::Interleave;
    spec.arrival = ArrivalProcess::Staggered;
    spec.staggerGap = 96;
    spec.tenants[1].phasePeriodOps = 64;
    spec.tenants[1].phaseSkipOps = 16;

    const std::string manifest = tempPath("roundtrip.json");
    std::FILE *f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string json = compositionToJson(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);

    CompositionSpec back;
    std::string error;
    ASSERT_TRUE(loadComposition(manifest, back, error)) << error;
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.assignment, spec.assignment);
    EXPECT_EQ(back.arrival, spec.arrival);
    EXPECT_EQ(back.staggerGap, spec.staggerGap);
    ASSERT_EQ(back.tenants.size(), spec.tenants.size());
    EXPECT_EQ(back.tenants[1].phasePeriodOps, 64u);
    EXPECT_EQ(back.tenants[1].phaseSkipOps, 16u);
    EXPECT_EQ(compositionHashOf(back), compositionHashOf(spec));
    EXPECT_EQ(back.manifestPath, manifest);

    std::remove(manifest.c_str());
    removeTenants(spec);
}

TEST(CompositionModel, RelativeMemberPathsResolveAgainstManifestDir)
{
    const std::string dir = tempPath("reldir");
    ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
    const std::string trace = dir + "/member.c3dt";
    const TraceFileInfo info = writeTrace(trace);

    CompositionSpec spec;
    spec.tenants.push_back({"member.c3dt", info.contentHash, 0, 0});
    spec.tenants.push_back({"member.c3dt", info.contentHash, 0, 0});
    const std::string manifest = dir + "/mix.json";
    std::FILE *f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string json = compositionToJson(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);

    CompositionSpec back;
    std::string error;
    ASSERT_TRUE(loadComposition(manifest, back, error)) << error;
    EXPECT_EQ(back.tenants[0].tracePath, trace);

    std::remove(manifest.c_str());
    std::remove(trace.c_str());
    rmdir(dir.c_str());
}

TEST(CompositionModel, LoaderRejectsDefectiveManifests)
{
    const std::string manifest = tempPath("bad.json");
    const auto expectLoadError = [&](const std::string &json,
                                     const std::string &needle) {
        std::FILE *f = std::fopen(manifest.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        CompositionSpec out;
        std::string error;
        EXPECT_FALSE(loadComposition(manifest, out, error));
        EXPECT_NE(error.find(needle), std::string::npos)
            << "error was: " << error;
    };

    expectLoadError("{\"schema\": \"c3d-compose/v0\"}", "schema");
    expectLoadError("not json at all", "");
    expectLoadError(
        "{\"schema\": \"c3d-compose/v1\", \"name\": \"m\", "
        "\"seed\": 1, \"assignment\": \"diagonal\", "
        "\"arrival\": \"fixed\", \"arrival_mean_gap\": 0, "
        "\"stagger_gap\": 0, \"tenants\": []}",
        "block|interleave");
    expectLoadError(
        "{\"schema\": \"c3d-compose/v1\", \"name\": \"m\", "
        "\"seed\": 1, \"assignment\": \"block\", "
        "\"arrival\": \"sometimes\", \"arrival_mean_gap\": 0, "
        "\"stagger_gap\": 0, \"tenants\": []}",
        "fixed|poisson|staggered");
    expectLoadError(
        "{\"schema\": \"c3d-compose/v1\", \"name\": \"m\", "
        "\"seed\": 1, \"assignment\": \"block\", "
        "\"arrival\": \"fixed\", \"arrival_mean_gap\": 0, "
        "\"stagger_gap\": 0, \"tenants\": []}",
        "tenant");
    expectLoadError(
        "{\"schema\": \"c3d-compose/v1\", \"name\": \"m\", "
        "\"seed\": 1, \"assignment\": \"block\", "
        "\"arrival\": \"fixed\", \"arrival_mean_gap\": 0, "
        "\"stagger_gap\": 0, \"tenants\": [{\"trace\": \"t.c3dt\", "
        "\"hash\": \"nothex\", \"phase_period_ops\": 0, "
        "\"phase_skip_ops\": 0}]}",
        "hash");
    expectLoadError(
        "{\"schema\": \"c3d-compose/v1\", \"name\": \"m\", "
        "\"seed\": 1, \"assignment\": \"block\", "
        "\"arrival\": \"fixed\", \"arrival_mean_gap\": 0, "
        "\"stagger_gap\": 0, \"tenants\": [{\"trace\": \"t.c3dt\", "
        "\"hash\": \"00000000000000aa\", \"phase_period_ops\": 0, "
        "\"phase_skip_ops\": 8}]}",
        "phase_skip_ops without phase_period_ops");

    std::remove(manifest.c_str());
}

TEST(CompositionModel, LoaderRefusesModifiedMemberTrace)
{
    const std::string trace = tempPath("pinned.c3dt");
    CompositionSpec spec;
    spec.tenants.push_back(
        {trace, writeTrace(trace).contentHash, 0, 0});
    spec.tenants.push_back(
        {trace, spec.tenants[0].traceHash, 0, 0});
    const std::string manifest = tempPath("pinned.json");
    std::FILE *f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string json = compositionToJson(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);

    // Untouched member: loads.
    CompositionSpec out;
    std::string error;
    ASSERT_TRUE(loadComposition(manifest, out, error)) << error;

    // Rewrite the member with different contents: refused, with the
    // documented diagnostic.
    writeTrace(trace, /*salt=*/5);
    EXPECT_FALSE(loadComposition(manifest, out, error));
    EXPECT_NE(error.find("changed since the manifest was composed"),
              std::string::npos)
        << "error was: " << error;

    // ... unless member validation is deferred (the sweep hot path).
    EXPECT_TRUE(loadComposition(manifest, out, error, false)) << error;

    std::remove(manifest.c_str());
    std::remove(trace.c_str());
}

TEST(CompositionModel, ProfileNamesManifestAndFoldsIntoFingerprint)
{
    CompositionSpec spec = twoTenantSpec(tempPath("pa.c3dt"),
                                         tempPath("pb.c3dt"));
    const std::string manifest = tempPath("profile.json");
    std::FILE *f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string json = compositionToJson(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);

    WorkloadProfile p;
    std::string error;
    ASSERT_TRUE(loadCompositionProfile(manifest, p, error)) << error;
    EXPECT_TRUE(p.isComposition());
    EXPECT_FALSE(p.isTrace());
    EXPECT_EQ(p.compositionPath, manifest);
    EXPECT_EQ(p.compositionHash, compositionHashOf(spec));
    EXPECT_EQ(p.seed, spec.seed);
    EXPECT_EQ(p.name,
              compositionWorkloadName(manifest, p.compositionHash));

    exp::SweepGrid grid;
    grid.workloads = {p};
    grid.designs = {Design::Baseline};
    grid.sockets = {2};
    const std::string fp = exp::gridFingerprint(grid.expand());

    // Same manifest: stable fingerprint.
    WorkloadProfile p2;
    ASSERT_TRUE(loadCompositionProfile(manifest, p2, error)) << error;
    grid.workloads = {p2};
    EXPECT_EQ(fp, exp::gridFingerprint(grid.expand()));

    // A re-recorded member changes the composition hash, hence the
    // fingerprint -- resume/merge refuse the stale journal.
    writeTrace(spec.tenants[0].tracePath, /*salt=*/9);
    std::FILE *f2 = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f2, nullptr);
    CompositionSpec repinned = spec;
    repinned.tenants[0].traceHash =
        writeTrace(spec.tenants[0].tracePath, /*salt=*/9).contentHash;
    const std::string json2 = compositionToJson(repinned);
    std::fwrite(json2.data(), 1, json2.size(), f2);
    std::fclose(f2);
    WorkloadProfile p3;
    ASSERT_TRUE(loadCompositionProfile(manifest, p3, error)) << error;
    grid.workloads = {p3};
    EXPECT_NE(fp, exp::gridFingerprint(grid.expand()));

    std::remove(manifest.c_str());
    removeTenants(spec);
}

/** Drain @p n ops from @p core of a fresh workload built over spec. */
std::vector<TraceOp>
drain(const CompositionSpec &spec, std::uint64_t seed,
      std::uint32_t total_cores, std::uint32_t core, std::size_t n)
{
    ComposedWorkload wl(spec, seed, total_cores);
    std::vector<TraceOp> ops;
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back(wl.next(core));
    return ops;
}

bool
sameOps(const std::vector<TraceOp> &a, const std::vector<TraceOp> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].gap != b[i].gap || a[i].op != b[i].op ||
            a[i].addr != b[i].addr)
            return false;
    return true;
}

TEST(ComposedWorkloadTest, StreamsAreDeterministicPerSeed)
{
    setQuiet(true);
    CompositionSpec spec = twoTenantSpec(tempPath("da.c3dt"),
                                         tempPath("db.c3dt"));
    spec.arrival = ArrivalProcess::Poisson;
    spec.arrivalMeanGap = 32;

    // Same (spec, seed, core): identical streams across instances.
    EXPECT_TRUE(sameOps(drain(spec, 42, 4, 0, 50),
                        drain(spec, 42, 4, 0, 50)));
    EXPECT_TRUE(sameOps(drain(spec, 42, 4, 3, 50),
                        drain(spec, 42, 4, 3, 50)));

    // A different seed reseeds the Poisson arrivals: the first op's
    // gap moves, the reference addresses do not.
    const std::vector<TraceOp> s42 = drain(spec, 42, 4, 0, 50);
    const std::vector<TraceOp> s43 = drain(spec, 43, 4, 0, 50);
    EXPECT_EQ(s42[0].addr, s43[0].addr);
    EXPECT_EQ(s42[10].addr, s43[10].addr);
    EXPECT_EQ(s42[1].gap, s43[1].gap); // only the first op differs

    removeTenants(spec);
}

TEST(ComposedWorkloadTest, BlockAndInterleaveAssignCoresAsDocumented)
{
    setQuiet(true);
    CompositionSpec spec = twoTenantSpec(tempPath("aa.c3dt"),
                                         tempPath("ab.c3dt"));

    {
        ComposedWorkload wl(spec, 1, 4);
        EXPECT_EQ(wl.tenantCount(), 2u);
        // Block: tenant 0 gets cores 0..1 (its trace has 2 lanes),
        // tenant 1 the next two.
        const std::vector<std::int32_t> &ct = wl.coreTenants();
        ASSERT_EQ(ct.size(), 4u);
        EXPECT_EQ(ct[0], 0);
        EXPECT_EQ(ct[1], 0);
        EXPECT_EQ(ct[2], 1);
        EXPECT_EQ(ct[3], 1);
        EXPECT_EQ(wl.activeCores(4), 4u);

        const std::vector<std::string> names = wl.tenantNames();
        ASSERT_EQ(names.size(), 2u);
        EXPECT_EQ(names[0].rfind("t0:", 0), 0u);
        EXPECT_EQ(names[1].rfind("t1:", 0), 0u);
        EXPECT_NE(names[0].find("aa.c3dt@"), std::string::npos);
    }
    {
        spec.assignment = AssignPolicy::Interleave;
        ComposedWorkload wl(spec, 1, 4);
        const std::vector<std::int32_t> &ct = wl.coreTenants();
        EXPECT_EQ(ct[0], 0);
        EXPECT_EQ(ct[1], 1);
        EXPECT_EQ(ct[2], 0);
        EXPECT_EQ(ct[3], 1);
    }
    {
        // More cores than lanes: surplus cores stay idle.
        ComposedWorkload wl(spec, 1, 8);
        EXPECT_EQ(wl.activeCores(8), 4u);
        EXPECT_EQ(wl.coreTenants()[4], -1);
    }

    removeTenants(spec);
}

TEST(ComposedWorkloadTest, StaggeredArrivalDelaysOnlyTheFirstOp)
{
    setQuiet(true);
    CompositionSpec spec = twoTenantSpec(tempPath("sa.c3dt"),
                                         tempPath("sb.c3dt"));
    spec.arrival = ArrivalProcess::Staggered;
    spec.staggerGap = 500;

    // Block assignment: core 0 is tenant 0 (no delay), core 2 is
    // tenant 1 (one staggerGap late, encoded as extra compute on the
    // first op only).
    CompositionSpec fixed = spec;
    fixed.arrival = ArrivalProcess::Fixed;
    const std::vector<TraceOp> t0 = drain(spec, 1, 4, 0, 20);
    const std::vector<TraceOp> t1 = drain(spec, 1, 4, 2, 20);
    const std::vector<TraceOp> t1f = drain(fixed, 1, 4, 2, 20);
    EXPECT_EQ(t0[0].gap, t1f[0].gap + 0u); // tenant 0: no stagger
    EXPECT_EQ(t1[0].gap, t1f[0].gap + 500u);
    for (std::size_t i = 1; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].gap, t1f[i].gap);
        EXPECT_EQ(t1[i].addr, t1f[i].addr);
    }

    removeTenants(spec);
}

TEST(ComposedWorkloadTest, PhaseMixingSkipsRecordsAtEachBoundary)
{
    setQuiet(true);
    CompositionSpec spec = twoTenantSpec(tempPath("fa.c3dt"),
                                         tempPath("fb.c3dt"));
    CompositionSpec phased = spec;
    phased.tenants[0].phasePeriodOps = 10;
    phased.tenants[0].phaseSkipOps = 3;

    const std::vector<TraceOp> plain = drain(spec, 1, 4, 0, 30);
    const std::vector<TraceOp> mixed = drain(phased, 1, 4, 0, 30);

    // First period matches; at op 10 the phased stream has jumped 3
    // records ahead of the plain one.
    EXPECT_TRUE(sameOps({plain.begin(), plain.begin() + 10},
                        {mixed.begin(), mixed.begin() + 10}));
    EXPECT_EQ(mixed[10].addr, plain[13].addr);
    EXPECT_EQ(mixed[19].addr, plain[22].addr);
    // Second boundary: cumulative skip of 6.
    EXPECT_EQ(mixed[20].addr, plain[26].addr);

    // Phase mixing is deterministic too.
    EXPECT_TRUE(sameOps(mixed, drain(phased, 1, 4, 0, 30)));

    removeTenants(spec);
}

} // namespace
} // namespace c3d
