/**
 * @file
 * Unit tests for the trace CPU: store queue, forwarding, barriers.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/barrier.hh"
#include "cpu/trace_cpu.hh"
#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyConfig;

/** A scripted workload serving a fixed list of ops to core 0. */
class ScriptedWorkload : public Workload
{
  public:
    explicit ScriptedWorkload(std::vector<TraceOp> ops)
        : script(std::move(ops))
    {}

    const std::string &name() const override { return wlName; }

    TraceOp
    next(CoreId core) override
    {
        if (core != 0 || cursor >= script.size())
            return TraceOp{1, MemOp::Read, 0};
        return script[cursor++];
    }

    std::uint32_t activeCores(std::uint32_t) const override
    {
        return 1;
    }

  private:
    std::string wlName = "scripted";
    std::vector<TraceOp> script;
    std::size_t cursor = 0;
};

TEST(TraceCpu, ExecutesQuotaAndStops)
{
    Machine m(tinyConfig(Design::Baseline, 2, 1));
    std::vector<TraceOp> ops;
    for (int i = 0; i < 20; ++i)
        ops.push_back({2, MemOp::Read, static_cast<Addr>(i) * 64});
    ScriptedWorkload wl(ops);
    TraceCpu cpu(m, 0, wl, &m.stats());
    bool warm = false, done = false;
    cpu.start(5, 15, [&] { warm = true; }, [&] { done = true; });
    m.eventQueue().run();
    EXPECT_TRUE(warm);
    EXPECT_TRUE(done);
    EXPECT_EQ(cpu.opsIssued(), 20u);
    EXPECT_TRUE(cpu.finished());
}

TEST(TraceCpu, CountsInstructionsAfterWarmup)
{
    Machine m(tinyConfig(Design::Baseline, 2, 1));
    std::vector<TraceOp> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back({4, MemOp::Read, static_cast<Addr>(i) * 64});
    ScriptedWorkload wl(ops);
    TraceCpu cpu(m, 0, wl, &m.stats());
    cpu.start(4, 6, nullptr, nullptr);
    m.eventQueue().run();
    // 6 measured ops x (4 gap + 1 mem) instructions.
    EXPECT_EQ(cpu.instructions(), 30u);
}

TEST(TraceCpu, ZeroOpsFinishesImmediately)
{
    Machine m(tinyConfig(Design::Baseline, 2, 1));
    ScriptedWorkload wl({});
    TraceCpu cpu(m, 0, wl, &m.stats());
    bool done = false;
    cpu.start(0, 0, nullptr, [&] { done = true; });
    m.eventQueue().run();
    EXPECT_TRUE(done);
}

TEST(TraceCpu, StoreForwardingServesLoads)
{
    Machine m(tinyConfig(Design::Baseline, 2, 1));
    // Store then immediately load the same block: the load forwards
    // from the store queue instead of going to the cache.
    std::vector<TraceOp> ops = {
        {0, MemOp::Write, 0x9000},
        {0, MemOp::Read, 0x9020}, // same 64 B block
    };
    ScriptedWorkload wl(ops);
    TraceCpu cpu(m, 0, wl, &m.stats());
    cpu.start(0, 2, nullptr, nullptr);
    m.eventQueue().run();
    EXPECT_EQ(m.stats().valueOf("cpu0.forwarded_loads"), 1u);
}

TEST(TraceCpu, StoreQueueBackpressureStalls)
{
    SystemConfig cfg = tinyConfig(Design::Baseline, 2, 1);
    cfg.storeQueueEntries = 2; // tiny queue
    Machine m(cfg);
    std::vector<TraceOp> ops;
    // A burst of stores to distinct remote blocks backs up the queue.
    for (int i = 0; i < 16; ++i)
        ops.push_back({0, MemOp::Write,
                       0x10000 + static_cast<Addr>(i) * 64});
    ScriptedWorkload wl(ops);
    TraceCpu cpu(m, 0, wl, &m.stats());
    cpu.start(0, 16, nullptr, nullptr);
    m.eventQueue().run();
    EXPECT_GT(m.stats().valueOf("cpu0.sq_stalls"), 0u);
    EXPECT_TRUE(cpu.finished());
}

TEST(TraceCpu, FinishWaitsForStoreQueueDrain)
{
    Machine m(tinyConfig(Design::Baseline, 2, 1));
    std::vector<TraceOp> ops = {{0, MemOp::Write, 0x9000}};
    ScriptedWorkload wl(ops);
    TraceCpu cpu(m, 0, wl, &m.stats());
    Tick done_at = 0;
    cpu.start(0, 1, nullptr,
              [&] { done_at = m.eventQueue().now(); });
    m.eventQueue().run();
    // The store itself takes far longer than the 1-cycle issue.
    EXPECT_GT(done_at, 10u);
}

TEST(Barrier, ReleasesWhenAllArrive)
{
    StatGroup g("t");
    Barrier b;
    b.init(3, &g, "b");
    int released = 0;
    b.arrive(0, [&] { ++released; });
    b.arrive(0, [&] { ++released; });
    EXPECT_EQ(released, 0);
    b.arrive(0, [&] { ++released; });
    EXPECT_EQ(released, 3);
}

TEST(Barrier, Reusable)
{
    StatGroup g("t");
    Barrier b;
    b.init(2, &g, "b");
    int released = 0;
    b.arrive(0, [&] { ++released; });
    b.arrive(0, [&] { ++released; });
    b.arrive(0, [&] { ++released; });
    b.arrive(0, [&] { ++released; });
    EXPECT_EQ(released, 4);
}

TEST(Barrier, RetireUnblocksWaiters)
{
    StatGroup g("t");
    Barrier b;
    b.init(3, &g, "b");
    int released = 0;
    b.arrive(0, [&] { ++released; });
    b.arrive(0, [&] { ++released; });
    // Third party finishes its quota instead of arriving.
    b.retire();
    EXPECT_EQ(released, 2);
    EXPECT_EQ(b.parties(), 2u);
}

TEST(Barrier, CpusSynchronizeThroughBarrier)
{
    // Two cores with very different memory behaviour still track
    // each other when a barrier is attached.
    SystemConfig cfg = tinyConfig(Design::Baseline, 2, 1);
    Machine m(cfg);

    class TwoSpeedWorkload : public Workload
    {
      public:
        const std::string &name() const override { return n; }
        TraceOp
        next(CoreId core) override
        {
            TraceOp op;
            op.gap = core == 0 ? 0 : 50; // core 1 is much slower
            op.op = MemOp::Read;
            op.addr = 0x100000 + (core * 0x10000) +
                (cursor[core]++ % 64) * BlockBytes;
            return op;
        }
        std::string n = "two-speed";
        std::uint64_t cursor[2] = {0, 0};
    } wl;

    TraceCpu cpu0(m, 0, wl, &m.stats());
    TraceCpu cpu1(m, 1, wl, &m.stats());
    Barrier barrier;
    barrier.init(2, &m.stats(), "b");
    cpu0.setBarrier(&barrier, 10);
    cpu1.setBarrier(&barrier, 10);
    Tick f0 = 0, f1 = 0;
    cpu0.start(0, 100, nullptr, [&] { f0 = m.eventQueue().now(); });
    cpu1.start(0, 100, nullptr, [&] { f1 = m.eventQueue().now(); });
    m.eventQueue().run();
    ASSERT_GT(f0, 0u);
    ASSERT_GT(f1, 0u);
    // Within one barrier interval of each other.
    const double ratio = static_cast<double>(std::max(f0, f1)) /
        static_cast<double>(std::min(f0, f1));
    EXPECT_LT(ratio, 1.25);
}

TEST(TraceCpu, TlbTrapsChargedWhenClassifying)
{
    SystemConfig cfg = tinyConfig(Design::C3D, 2, 1);
    cfg.tlbPageClassification = true;
    Machine m(cfg);
    std::vector<TraceOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back({0, MemOp::Read,
                       static_cast<Addr>(i) * PageBytes});
    ScriptedWorkload wl(ops);
    TraceCpu cpu(m, 0, wl, &m.stats());
    cpu.start(0, 8, nullptr, nullptr);
    m.eventQueue().run();
    // Eight first touches -> eight traps.
    EXPECT_EQ(m.stats().valueOf("cpu0.tlb_traps"), 8u);
}

} // namespace
} // namespace c3d
