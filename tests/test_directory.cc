/**
 * @file
 * Unit tests for directory storage (sparse + full) and the blocking
 * table.
 */

#include <gtest/gtest.h>

#include <string>

#include "coherence/blocking.hh"
#include "coherence/directory.hh"
#include "common/sim_error.hh"

namespace c3d
{
namespace
{

TEST(SparseDirectory, AllocateFindErase)
{
    StatGroup g("t");
    SparseDirectory dir(1024, 32, 4, &g, "d");
    DirRecall recall;
    DirEntry *e = dir.allocate(0x1000, recall);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(recall.valid);
    e->state = DirState::Modified;
    e->owner = 2;
    DirEntry *f = dir.find(0x1000);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->state, DirState::Modified);
    EXPECT_EQ(f->owner, 2u);
    dir.erase(0x1000);
    EXPECT_EQ(dir.find(0x1000), nullptr);
}

TEST(SparseDirectory, SubBlockLookup)
{
    StatGroup g("t");
    SparseDirectory dir(1024, 32, 4, &g, "d");
    DirRecall recall;
    dir.allocate(0x1000, recall);
    EXPECT_NE(dir.find(0x1020), nullptr);
    EXPECT_EQ(dir.find(0x1040), nullptr);
}

TEST(SparseDirectory, ConflictRecallsLruVictim)
{
    StatGroup g("t");
    // 2 entries, 2 ways: a single set.
    SparseDirectory dir(2, 2, 4, &g, "d");
    DirRecall recall;
    DirEntry *a = dir.allocate(0 * BlockBytes, recall);
    a->state = DirState::Shared;
    a->addSharer(1);
    dir.allocate(1 * BlockBytes, recall);
    EXPECT_FALSE(recall.valid);
    // Third allocation in the same set recalls block 0 (LRU).
    dir.allocate(2 * BlockBytes, recall);
    ASSERT_TRUE(recall.valid);
    EXPECT_EQ(recall.addr, 0u);
    EXPECT_EQ(recall.entry.state, DirState::Shared);
    EXPECT_TRUE(recall.entry.isSharer(1));
    EXPECT_EQ(dir.recallCount(), 1u);
}

TEST(SparseDirectory, TrackedBlocksCount)
{
    StatGroup g("t");
    SparseDirectory dir(64, 8, 4, &g, "d");
    DirRecall recall;
    for (Addr i = 0; i < 10; ++i)
        dir.allocate(i * BlockBytes, recall);
    EXPECT_EQ(dir.trackedBlocks(), 10u);
}

TEST(SparseDirectory, StorageBitsScaleWithEntries)
{
    StatGroup g("t");
    SparseDirectory small(1024, 32, 4, &g, "s");
    SparseDirectory big(4096, 32, 4, &g, "b");
    EXPECT_EQ(big.storageBits(), 4 * small.storageBits());
}

TEST(FullDirectory, NoRecallsEver)
{
    StatGroup g("t");
    FullDirectory dir(4, &g, "d");
    DirRecall recall;
    for (Addr i = 0; i < 100000; ++i) {
        dir.allocate(i * BlockBytes, recall);
        ASSERT_FALSE(recall.valid);
    }
    EXPECT_EQ(dir.trackedBlocks(), 100000u);
}

TEST(FullDirectory, EraseUntracks)
{
    StatGroup g("t");
    FullDirectory dir(4, &g, "d");
    DirRecall recall;
    dir.allocate(0x40, recall);
    dir.erase(0x40);
    EXPECT_EQ(dir.find(0x40), nullptr);
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(DirEntry, SharerVectorOps)
{
    DirEntry e;
    e.addSharer(0);
    e.addSharer(3);
    EXPECT_TRUE(e.isSharer(0));
    EXPECT_FALSE(e.isSharer(1));
    EXPECT_TRUE(e.isSharer(3));
    EXPECT_EQ(e.sharerCount(), 2u);
    e.removeSharer(0);
    EXPECT_FALSE(e.isSharer(0));
    EXPECT_EQ(e.sharerCount(), 1u);
}

TEST(DirCostModel, MatchesPaperNumbers)
{
    // §III-B: 256 MB cache -> 16 MB at 1x, 32 MB at 2x; 1 GB at 2x
    // -> 128 MB.
    EXPECT_EQ(sparseDirectoryBytes(256ull << 20, 1), 16ull << 20);
    EXPECT_EQ(sparseDirectoryBytes(256ull << 20, 2), 32ull << 20);
    EXPECT_EQ(sparseDirectoryBytes(1024ull << 20, 2), 128ull << 20);
}

TEST(BlockingTable, FirstAcquireRunsInline)
{
    StatGroup g("t");
    BlockingTable bt;
    bt.init(&g, "bt");
    bool ran = false;
    bt.acquire(0x1000, [&] { ran = true; });
    EXPECT_TRUE(ran);
    EXPECT_TRUE(bt.isBusy(0x1000));
}

TEST(BlockingTable, ConflictQueuesUntilRelease)
{
    StatGroup g("t");
    BlockingTable bt;
    bt.init(&g, "bt");
    std::vector<int> order;
    bt.acquire(0x1000, [&] { order.push_back(1); });
    bt.acquire(0x1000, [&] { order.push_back(2); });
    bt.acquire(0x1000, [&] { order.push_back(3); });
    EXPECT_EQ(order, (std::vector<int>{1}));
    bt.release(0x1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    bt.release(0x1000);
    bt.release(0x1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(bt.isBusy(0x1000));
    EXPECT_EQ(bt.blockedCount(), 2u);
}

TEST(BlockingTable, DifferentBlocksIndependent)
{
    StatGroup g("t");
    BlockingTable bt;
    bt.init(&g, "bt");
    bool a = false, b = false;
    bt.acquire(0x1000, [&] { a = true; });
    bt.acquire(0x2000, [&] { b = true; });
    EXPECT_TRUE(a);
    EXPECT_TRUE(b);
    EXPECT_EQ(bt.blockedCount(), 0u);
}

TEST(BlockingTable, SameBlockDifferentOffsets)
{
    StatGroup g("t");
    BlockingTable bt;
    bt.init(&g, "bt");
    bool second = false;
    bt.acquire(0x1000, [] {});
    bt.acquire(0x1020, [&] { second = true; }); // same 64 B block
    EXPECT_FALSE(second);
    bt.release(0x1000);
    EXPECT_TRUE(second);
}

TEST(BlockingTablePanicTest, ReleaseWithoutAcquireThrows)
{
    StatGroup g("t");
    BlockingTable bt;
    bt.init(&g, "bt");
    try {
        bt.release(0x1000);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("unlocked"),
                  std::string::npos);
    }
}

} // namespace
} // namespace c3d
