/**
 * @file
 * Unit tests for the DRAM cache and its miss predictor.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/sim_error.hh"
#include "dramcache/dram_cache.hh"
#include "dramcache/miss_predictor.hh"
#include "sim/event_queue.hh"

namespace c3d
{
namespace
{

SystemConfig
dcConfig(Design design = Design::C3D, bool exact_predictor = true)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.dramCacheBytes = 1 << 20; // small for tests
    cfg.missPredictorExact = exact_predictor;
    return cfg;
}

TEST(MissPredictor, NeverHidesAPresentBlock)
{
    StatGroup g("t");
    MissPredictor p;
    p.init(64, 4096, &g, "p"); // tiny table: heavy aliasing
    Rng rng(5);
    std::vector<Addr> inserted;
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.below(1u << 28) & ~Addr(63);
        p.onInsert(a);
        inserted.push_back(a);
    }
    // Property: everything inserted must be predicted present.
    for (Addr a : inserted)
        EXPECT_TRUE(p.mayBePresent(a));
}

TEST(MissPredictor, RemovalEnablesAbsentPredictions)
{
    StatGroup g("t");
    MissPredictor p;
    p.init(4096, 4096, &g, "p");
    const Addr a = 0x123000;
    p.onInsert(a);
    EXPECT_TRUE(p.mayBePresent(a));
    p.onRemove(a);
    EXPECT_FALSE(p.mayBePresent(a));
    EXPECT_GT(p.absentPredictions(), 0u);
}

TEST(MissPredictor, RegionGranularity)
{
    StatGroup g("t");
    MissPredictor p;
    p.init(4096, 4096, &g, "p");
    p.onInsert(0x1000);
    // Same 4 KB region: predicted present (conservative).
    EXPECT_TRUE(p.mayBePresent(0x1040));
    EXPECT_TRUE(p.mayBePresent(0x1FC0));
}

TEST(DramCache, ProbeMissFastViaPredictor)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig();
    DramCache dc(eq, cfg, 0, &g);
    Tick done = 0;
    bool present = true;
    dc.probe(0x4000, [&](DramCacheProbe r) {
        done = eq.now();
        present = r.present;
    });
    eq.run();
    EXPECT_FALSE(present);
    // Predicted absent: only the predictor latency, no DRAM access.
    EXPECT_EQ(done, cfg.missPredictorLatency);
}

TEST(DramCache, InsertThenProbeHits)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig();
    DramCache dc(eq, cfg, 0, &g);
    dc.insert(0x4000, false);
    bool present = false;
    Tick done = 0;
    dc.probe(0x4000, [&](DramCacheProbe r) {
        present = r.present;
        done = eq.now();
    });
    eq.run();
    EXPECT_TRUE(present);
    // A hit pays predictor + 40 ns access + channel.
    EXPECT_GE(done, cfg.missPredictorLatency + cfg.dramCacheLatency);
}

TEST(DramCache, CleanDesignRejectsDirtyInsert)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::C3D);
    DramCache dc(eq, cfg, 0, &g);
    try {
        dc.insert(0x1000, /*dirty=*/true);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("dirty"),
                  std::string::npos);
    }
}

TEST(DramCache, DirtyDesignTracksDirtyBlocks)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::FullDir);
    DramCache dc(eq, cfg, 0, &g);
    dc.insert(0x1000, true);
    EXPECT_TRUE(dc.isDirty(0x1000));
    bool dirty = false;
    dc.probe(0x1000, [&](DramCacheProbe r) { dirty = r.dirty; });
    eq.run();
    EXPECT_TRUE(dirty);
}

TEST(DramCache, DirectMappedConflictEvicts)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::FullDir);
    DramCache dc(eq, cfg, 0, &g);
    const std::uint64_t capacity = dc.capacityBlocks();
    const Addr a = 0x0;
    const Addr b = capacity * BlockBytes; // same set (direct-mapped)
    dc.insert(a, true);
    DramCacheVictim v = dc.insert(b, false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, a);
    EXPECT_TRUE(v.dirty);
    EXPECT_FALSE(dc.contains(a));
    EXPECT_TRUE(dc.contains(b));
}

TEST(DramCache, InvalidateRemovesAndReports)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::FullDir);
    DramCache dc(eq, cfg, 0, &g);
    dc.insert(0x2000, true);
    bool was_present = false, was_dirty = false;
    dc.invalidate(0x2000, [&](bool p, bool d) {
        was_present = p;
        was_dirty = d;
    });
    eq.run();
    EXPECT_TRUE(was_present);
    EXPECT_TRUE(was_dirty);
    EXPECT_FALSE(dc.contains(0x2000));
}

TEST(DramCache, InvalidateAbsentIsFast)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig();
    DramCache dc(eq, cfg, 0, &g);
    Tick done = 0;
    dc.invalidate(0x9000, [&](bool p, bool) {
        EXPECT_FALSE(p);
        done = eq.now();
    });
    eq.run();
    EXPECT_EQ(done, cfg.missPredictorLatency);
}

TEST(DramCache, UpdateCleanRefreshesDirtyBlock)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::Snoopy);
    DramCache dc(eq, cfg, 0, &g);
    dc.insert(0x3000, true);
    EXPECT_TRUE(dc.isDirty(0x3000));
    dc.updateClean(0x3000);
    EXPECT_TRUE(dc.contains(0x3000));
    EXPECT_FALSE(dc.isDirty(0x3000));
}

TEST(DramCache, UpdateCleanAllocatesWhenAbsent)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig();
    DramCache dc(eq, cfg, 0, &g);
    dc.updateClean(0x5000);
    EXPECT_TRUE(dc.contains(0x5000));
    EXPECT_FALSE(dc.isDirty(0x5000));
}

TEST(DramCache, CountingPredictorStillSafe)
{
    // With the counting filter (non-exact), a present block must
    // still always be probed -- the conservative direction.
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::C3D, /*exact=*/false);
    DramCache dc(eq, cfg, 0, &g);
    Rng rng(9);
    std::vector<Addr> blocks;
    for (int i = 0; i < 200; ++i) {
        const Addr a = (rng.below(1u << 24)) & ~Addr(63);
        dc.insert(a, false);
        blocks.push_back(a);
    }
    for (Addr a : blocks) {
        // Later inserts may have evicted earlier blocks; the property
        // is that anything still resident is always probed (never
        // hidden by the filter).
        if (!dc.contains(a))
            continue;
        bool present = false;
        dc.probe(a, [&](DramCacheProbe r) { present = r.present; });
        eq.run();
        EXPECT_TRUE(present) << std::hex << a;
    }
}

TEST(DramCache, SlowerLatencyConfigRespected)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig();
    cfg.dramCacheLatency = nsToTicks(50); // Fig. 10 sweep point
    DramCache dc(eq, cfg, 0, &g);
    dc.insert(0x100, false);
    Tick done = 0;
    dc.probe(0x100, [&](DramCacheProbe) { done = eq.now(); });
    eq.run();
    EXPECT_GE(done, nsToTicks(50));
}

TEST(DramCache, TenantAttributionAndOccupancy)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = dcConfig(Design::FullDir);
    DramCache dc(eq, cfg, 0, &g);
    dc.enableTenantTracking(2);
    ASSERT_TRUE(dc.tenantTrackingEnabled());

    // Tenant 0 fills a block and hits on it.
    dc.insert(0x1000, false, 0);
    EXPECT_EQ(dc.tenantOccupancy(0), 1u);
    EXPECT_EQ(dc.tenantOccupancy(1), 0u);
    bool present = false;
    dc.probe(0x1000, [&](DramCacheProbe r) { present = r.present; },
             false, 0);
    eq.run();
    EXPECT_TRUE(present);
    EXPECT_EQ(dc.tenantHitCount(0), 1u);
    EXPECT_EQ(dc.tenantMissCount(0), 0u);

    // Tenant 1 misses on an absent block (predictor short-circuit
    // path): the miss is attributed to tenant 1, not tenant 0.
    dc.probe(0x2000, [](DramCacheProbe) {}, false, 1);
    eq.run();
    EXPECT_EQ(dc.tenantMissCount(1), 1u);
    EXPECT_EQ(dc.tenantHitCount(1), 0u);
    EXPECT_EQ(dc.tenantMissCount(0), 0u);

    // A hit by tenant 1 on tenant 0's block re-owns it: occupancy is
    // a last-toucher gauge.
    dc.probe(0x1000, [](DramCacheProbe) {}, false, 1);
    eq.run();
    EXPECT_EQ(dc.tenantHitCount(1), 1u);
    EXPECT_EQ(dc.tenantOccupancy(0), 0u);
    EXPECT_EQ(dc.tenantOccupancy(1), 1u);

    // A conflict eviction releases the victim's occupancy as it
    // charges the inserter's.
    const Addr conflict = dc.capacityBlocks() * BlockBytes + 0x1000;
    dc.insert(conflict, false, 0);
    EXPECT_EQ(dc.tenantOccupancy(1), 0u);
    EXPECT_EQ(dc.tenantOccupancy(0), 1u);

    // Invalidation drops the owner's occupancy too.
    dc.invalidate(conflict, [](bool, bool) {});
    eq.run();
    EXPECT_EQ(dc.tenantOccupancy(0), 0u);
    EXPECT_EQ(dc.tenantOccupancy(1), 0u);
}

} // namespace
} // namespace c3d
