/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/sim_error.hh"
#include "sim/event_queue.hh"

namespace c3d
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.schedule(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, MaxTickStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = MaxTick;
    eq.schedule(17, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.run();
    eq.schedule(9, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 25u);
}

TEST(EventQueue, WheelWrapAround)
{
    // Delays beyond the wheel span park in the overflow heap; as the
    // wheel base advances past the span boundary they must migrate in
    // and still run in global (tick, sequence) order.
    EventQueue eq;
    std::vector<Tick> order;
    const Tick span = EventQueue::WheelSpan;
    eq.schedule(3 * span + 5, [&] { order.push_back(eq.now()); });
    eq.schedule(span - 1, [&] { order.push_back(eq.now()); });
    eq.schedule(span, [&] { order.push_back(eq.now()); });
    eq.schedule(span + 1, [&] { order.push_back(eq.now()); });
    eq.schedule(1, [&] { order.push_back(eq.now()); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<Tick>{1, span - 1, span, span + 1,
                                        3 * span + 5}));
}

TEST(EventQueue, FarFutureSameTickKeepsScheduleOrder)
{
    // Two events land on the same far-future tick via the overflow
    // heap, a third is scheduled directly once that tick is within
    // the wheel horizon. All three must run in schedule order.
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 2 * EventQueue::WheelSpan + 7;
    eq.scheduleAt(target, [&] { order.push_back(0); });
    eq.scheduleAt(target, [&] { order.push_back(1); });
    // An intermediate event advances the wheel base far enough that
    // `target` is inside the horizon when the third event schedules.
    eq.scheduleAt(2 * EventQueue::WheelSpan, [&] {
        eq.scheduleAt(target, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, InterleavedScheduleAndScheduleAt)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        eq.schedule(5, [&] { order.push_back(3); });     // tick 15
        eq.scheduleAt(12, [&] { order.push_back(1); });
        eq.scheduleAt(15, [&] { order.push_back(4); });  // after the
        eq.schedule(2, [&] { order.push_back(2); });     // tick 12
    });
    EXPECT_TRUE(eq.run());
    // Tick 12 runs 1 then 2 (schedule order), tick 15 runs 3 then 4.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunMaxTickBoundary)
{
    // An event exactly at maxTick runs; maxTick + 1 does not.
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(50, [&] { ++fired; });
    eq.scheduleAt(51, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.run(51));
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleAfterMaxTickStopRunsBeforeFarEvents)
{
    // Stop mid-run with a far-future event pending, then schedule an
    // earlier event: it must still run first. Regression guard for
    // the wheel base advancing past unexecuted time.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(3 * EventQueue::WheelSpan, [&] { order.push_back(2); });
    EXPECT_FALSE(eq.run(100));
    eq.scheduleAt(200, [&] { order.push_back(1); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ResetClearsFarFutureEvents)
{
    EventQueue eq;
    eq.schedule(5 * EventQueue::WheelSpan, [] { FAIL(); });
    eq.schedule(1, [] { FAIL(); });
    EXPECT_EQ(eq.pending(), 2u);
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.run());
}

TEST(EventQueue, MatchesReferenceModelOnRandomSchedule)
{
    // Differential test: execution order must equal a stable sort of
    // (tick, schedule sequence) over a random mix of near, same-tick
    // and far-future events, including events scheduled mid-run.
    EventQueue eq;
    Rng rng(12345);
    std::vector<std::pair<Tick, int>> expected; // (tick, id)
    std::vector<int> got;
    int next_id = 0;

    std::function<void(int)> spawn = [&](int depth) {
        const int n = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < n; ++i) {
            // Mix: same-tick, short, wheel-boundary and far delays.
            static const Tick kinds[] = {0, 1, 7,
                                         EventQueue::WheelSpan - 1,
                                         EventQueue::WheelSpan,
                                         EventQueue::WheelSpan + 3,
                                         3 * EventQueue::WheelSpan};
            const Tick delay = kinds[rng.below(7)];
            const int id = next_id++;
            expected.emplace_back(eq.now() + delay, id);
            eq.schedule(delay, [&, id, depth] {
                got.push_back(id);
                if (depth < 3)
                    spawn(depth + 1);
            });
        }
    };
    spawn(0);
    EXPECT_TRUE(eq.run());

    // expected was appended in schedule order, so a stable sort by
    // tick yields the (tick, sequence) reference order.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i].second) << "at event " << i;
}

TEST(EventQueue, SimulatorSizedCapturesStayInline)
{
    // The largest capture any simulator scheduler builds: a `this`
    // pointer, an address, a few scalars and one nested std::function
    // continuation. It must fit the inline budget -- the hot path
    // pays no heap allocation.
    EventQueue eq;
    struct BigCapture
    {
        void *self;
        Addr blk;
        bool a, b, c;
        std::function<void()> done;
    };
    static_assert(sizeof(BigCapture) <= InlineFunction::InlineBytes,
                  "simulator capture outgrew the inline budget");
    int fired = 0;
    BigCapture cap{&eq, 0x1234, true, false, true, [&] { ++fired; }};
    eq.schedule(1, [cap = std::move(cap)] { cap.done(); });
    EXPECT_EQ(eq.heapCallbackEvents(), 0u);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, OversizedCapturesFallBackToHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    payload[15] = 99;
    int seen = 0;
    eq.schedule(1, [payload, &seen] {
        seen = static_cast<int>(payload[15]);
    });
    EXPECT_EQ(eq.heapCallbackEvents(), 1u);
    eq.run();
    EXPECT_EQ(seen, 99);
}

TEST(EventQueue, ChunkedRunMatchesContinuousRun)
{
    // The parallel kernel advances each socket's queue in W-wide
    // cells via run(cellEnd). Pin the boundary semantics it relies
    // on: an event exactly at cellEnd runs in that chunk, one at
    // cellEnd+1 does not, and chunked execution produces exactly the
    // continuous execution log.
    constexpr Tick W = 64;
    struct Driver
    {
        EventQueue eq;
        Rng rng{991};
        std::vector<Tick> log;
        std::function<void(int)> spawn;
        Driver()
        {
            spawn = [this](int depth) {
                const int n = 1 + static_cast<int>(rng.below(3));
                for (int i = 0; i < n; ++i) {
                    const Tick delay = rng.below(3 * W);
                    eq.schedule(delay, [this, depth] {
                        log.push_back(eq.now());
                        if (depth < 4)
                            spawn(depth + 1);
                    });
                }
            };
            spawn(0);
        }
    };

    Driver cont;
    EXPECT_TRUE(cont.eq.run());

    Driver chunked;
    Tick cell_base = 0;
    while (true) {
        if (chunked.eq.run(cell_base + W - 1))
            break; // drained
        cell_base += W;
    }
    EXPECT_EQ(chunked.log, cont.log);
}

TEST(EventQueue, TwoQueueLockstepMatchesMergedModel)
{
    // Model test for the multi-queue kernel's causality contract:
    // two queues advance in lockstep W-cells; an event may inject
    // into the *other* queue only with delay >= W (the lookahead),
    // and such injections are buffered and flushed at the cell
    // boundary -- exactly the Interconnect/QueueRouter shape. The
    // outcome must match a merged single-queue execution of the same
    // event program: every event fires on the same queue at the same
    // tick, and each queue's timeline is identical.
    //
    // The program is a pure function of the event id (splitmix-style
    // hash), so both harnesses unfold the identical event tree
    // regardless of interleaving.
    constexpr Tick W = 64;
    constexpr int Fanout = 4;
    auto mix = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    struct Ev {
        std::uint64_t id;
        int q;
        int depth;
    };
    // children(ev) -> (dst queue, delay, child id); delay >= W iff
    // the child lands on the other queue.
    auto childrenOf = [&](const Ev &ev) {
        std::vector<std::tuple<int, Tick, std::uint64_t>> out;
        if (ev.depth >= 4)
            return out;
        const std::uint64_t h = mix(ev.id);
        const int n = static_cast<int>(h % 3);
        for (int i = 0; i < n; ++i) {
            const std::uint64_t hc = mix(ev.id * Fanout + 1 + i);
            const bool remote = (hc & 1) != 0;
            const int dst = remote ? 1 - ev.q : ev.q;
            const Tick delay =
                (remote ? W : 0) + static_cast<Tick>((hc >> 1) % (2 * W));
            out.emplace_back(dst, delay,
                             ev.id * Fanout + 1 + i);
        }
        return out;
    };
    using Log = std::vector<std::pair<Tick, std::uint64_t>>;

    // Harness 1: merged single queue, remote injections scheduled
    // directly (a single queue needs no lookahead buffering).
    Log merged_log[2];
    {
        EventQueue eq;
        std::function<void(Ev)> exec = [&](Ev ev) {
            merged_log[ev.q].emplace_back(eq.now(), ev.id);
            for (const auto &[dst, delay, cid] : childrenOf(ev)) {
                Ev child{cid, dst, ev.depth + 1};
                eq.schedule(delay, [&, child] { exec(child); });
            }
        };
        for (int q = 0; q < 2; ++q) {
            for (std::uint64_t r = 0; r < 3; ++r) {
                Ev root{mix(q * 1000 + r) % 1000 + 1,
                        q, 0};
                eq.scheduleAt(r * 17 + q, [&, root] { exec(root); });
            }
        }
        EXPECT_TRUE(eq.run());
    }

    // Harness 2: two queues in lockstep cells with boundary-flushed
    // cross-queue outboxes.
    Log cell_log[2];
    {
        EventQueue qs[2];
        // outbox[src]: (dst, tick, event) buffered during src's cell.
        std::vector<std::tuple<int, Tick, Ev>> outbox[2];
        std::function<void(int, Ev)> exec = [&](int self, Ev ev) {
            cell_log[ev.q].emplace_back(qs[self].now(), ev.id);
            for (const auto &[dst, delay, cid] : childrenOf(ev)) {
                const Ev child{cid, dst, ev.depth + 1};
                const Tick when = qs[self].now() + delay;
                if (dst == self) {
                    qs[self].scheduleAt(
                        when, [&, self, child] { exec(self, child); });
                } else {
                    outbox[self].emplace_back(dst, when, child);
                }
            }
        };
        for (int q = 0; q < 2; ++q) {
            for (std::uint64_t r = 0; r < 3; ++r) {
                Ev root{mix(q * 1000 + r) % 1000 + 1, q, 0};
                qs[q].scheduleAt(r * 17 + q,
                                 [&, q, root] { exec(q, root); });
            }
        }
        Tick cell_base = 0;
        while (true) {
            bool drained = true;
            for (int q = 0; q < 2; ++q)
                drained &= qs[q].run(cell_base + W - 1);
            // Causality check: nothing buffered this cell may target
            // a tick inside it (delay >= W guarantees this).
            for (int src = 0; src < 2; ++src) {
                for (auto &entry : outbox[src]) {
                    const int dst = std::get<0>(entry);
                    const Tick when = std::get<1>(entry);
                    const Ev e = std::get<2>(entry);
                    ASSERT_GE(when, cell_base + W);
                    drained = false;
                    qs[dst].scheduleAt(when,
                                       [&, dst, e] { exec(dst, e); });
                }
                outbox[src].clear();
            }
            if (drained)
                break;
            cell_base += W;
        }
    }

    // Same events at the same ticks on each queue. Same-tick order
    // within a queue can legally differ between the harnesses (the
    // merged queue serializes by global schedule time, the lockstep
    // pair by flush order), so compare canonically sorted timelines
    // and require per-queue tick monotonicity of the raw logs.
    for (int q = 0; q < 2; ++q) {
        for (std::size_t i = 1; i < cell_log[q].size(); ++i)
            EXPECT_LE(cell_log[q][i - 1].first, cell_log[q][i].first);
        Log a = merged_log[q], b = cell_log[q];
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "queue " << q;
    }
}

TEST(EventQueuePanicTest, PastSchedulingThrowsSimError)
{
    EventQueue eq;
    eq.schedule(10, [&] { eq.scheduleAt(5, [] {}); });
    try {
        eq.run();
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("past"),
                  std::string::npos);
        // run() publishes the queue clock, so the error carries
        // the simulated tick of the offending event.
        EXPECT_TRUE(e.tickKnown());
        EXPECT_EQ(e.tick(), 10u);
    }
}

} // namespace
} // namespace c3d
