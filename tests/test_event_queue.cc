/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"

namespace c3d
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.schedule(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, MaxTickStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = MaxTick;
    eq.schedule(17, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.run();
    eq.schedule(9, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 25u);
}

TEST(EventQueue, WheelWrapAround)
{
    // Delays beyond the wheel span park in the overflow heap; as the
    // wheel base advances past the span boundary they must migrate in
    // and still run in global (tick, sequence) order.
    EventQueue eq;
    std::vector<Tick> order;
    const Tick span = EventQueue::WheelSpan;
    eq.schedule(3 * span + 5, [&] { order.push_back(eq.now()); });
    eq.schedule(span - 1, [&] { order.push_back(eq.now()); });
    eq.schedule(span, [&] { order.push_back(eq.now()); });
    eq.schedule(span + 1, [&] { order.push_back(eq.now()); });
    eq.schedule(1, [&] { order.push_back(eq.now()); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<Tick>{1, span - 1, span, span + 1,
                                        3 * span + 5}));
}

TEST(EventQueue, FarFutureSameTickKeepsScheduleOrder)
{
    // Two events land on the same far-future tick via the overflow
    // heap, a third is scheduled directly once that tick is within
    // the wheel horizon. All three must run in schedule order.
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 2 * EventQueue::WheelSpan + 7;
    eq.scheduleAt(target, [&] { order.push_back(0); });
    eq.scheduleAt(target, [&] { order.push_back(1); });
    // An intermediate event advances the wheel base far enough that
    // `target` is inside the horizon when the third event schedules.
    eq.scheduleAt(2 * EventQueue::WheelSpan, [&] {
        eq.scheduleAt(target, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, InterleavedScheduleAndScheduleAt)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        eq.schedule(5, [&] { order.push_back(3); });     // tick 15
        eq.scheduleAt(12, [&] { order.push_back(1); });
        eq.scheduleAt(15, [&] { order.push_back(4); });  // after the
        eq.schedule(2, [&] { order.push_back(2); });     // tick 12
    });
    EXPECT_TRUE(eq.run());
    // Tick 12 runs 1 then 2 (schedule order), tick 15 runs 3 then 4.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunMaxTickBoundary)
{
    // An event exactly at maxTick runs; maxTick + 1 does not.
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(50, [&] { ++fired; });
    eq.scheduleAt(51, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.run(51));
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleAfterMaxTickStopRunsBeforeFarEvents)
{
    // Stop mid-run with a far-future event pending, then schedule an
    // earlier event: it must still run first. Regression guard for
    // the wheel base advancing past unexecuted time.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(3 * EventQueue::WheelSpan, [&] { order.push_back(2); });
    EXPECT_FALSE(eq.run(100));
    eq.scheduleAt(200, [&] { order.push_back(1); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ResetClearsFarFutureEvents)
{
    EventQueue eq;
    eq.schedule(5 * EventQueue::WheelSpan, [] { FAIL(); });
    eq.schedule(1, [] { FAIL(); });
    EXPECT_EQ(eq.pending(), 2u);
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.run());
}

TEST(EventQueue, MatchesReferenceModelOnRandomSchedule)
{
    // Differential test: execution order must equal a stable sort of
    // (tick, schedule sequence) over a random mix of near, same-tick
    // and far-future events, including events scheduled mid-run.
    EventQueue eq;
    Rng rng(12345);
    std::vector<std::pair<Tick, int>> expected; // (tick, id)
    std::vector<int> got;
    int next_id = 0;

    std::function<void(int)> spawn = [&](int depth) {
        const int n = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < n; ++i) {
            // Mix: same-tick, short, wheel-boundary and far delays.
            static const Tick kinds[] = {0, 1, 7,
                                         EventQueue::WheelSpan - 1,
                                         EventQueue::WheelSpan,
                                         EventQueue::WheelSpan + 3,
                                         3 * EventQueue::WheelSpan};
            const Tick delay = kinds[rng.below(7)];
            const int id = next_id++;
            expected.emplace_back(eq.now() + delay, id);
            eq.schedule(delay, [&, id, depth] {
                got.push_back(id);
                if (depth < 3)
                    spawn(depth + 1);
            });
        }
    };
    spawn(0);
    EXPECT_TRUE(eq.run());

    // expected was appended in schedule order, so a stable sort by
    // tick yields the (tick, sequence) reference order.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i].second) << "at event " << i;
}

TEST(EventQueue, SimulatorSizedCapturesStayInline)
{
    // The largest capture any simulator scheduler builds: a `this`
    // pointer, an address, a few scalars and one nested std::function
    // continuation. It must fit the inline budget -- the hot path
    // pays no heap allocation.
    EventQueue eq;
    struct BigCapture
    {
        void *self;
        Addr blk;
        bool a, b, c;
        std::function<void()> done;
    };
    static_assert(sizeof(BigCapture) <= InlineFunction::InlineBytes,
                  "simulator capture outgrew the inline budget");
    int fired = 0;
    BigCapture cap{&eq, 0x1234, true, false, true, [&] { ++fired; }};
    eq.schedule(1, [cap = std::move(cap)] { cap.done(); });
    EXPECT_EQ(eq.heapCallbackEvents(), 0u);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, OversizedCapturesFallBackToHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    payload[15] = 99;
    int seen = 0;
    eq.schedule(1, [payload, &seen] {
        seen = static_cast<int>(payload[15]);
    });
    EXPECT_EQ(eq.heapCallbackEvents(), 1u);
    eq.run();
    EXPECT_EQ(seen, 99);
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
    });
    eq.run();
}

} // namespace
} // namespace c3d
