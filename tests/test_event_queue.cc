/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace c3d
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.schedule(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, MaxTickStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = MaxTick;
    eq.schedule(17, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.run();
    eq.schedule(9, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 25u);
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
    });
    eq.run();
}

} // namespace
} // namespace c3d
