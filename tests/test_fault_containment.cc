/**
 * @file
 * Fault containment tests: every injected failure class (panic,
 * hang, livelock) is detected, contained to its row, and reported
 * with a deterministic diagnostic carrying the row's identity key
 * and the simulated tick; the sweep fail policies (abort / skip /
 * retry) behave as documented; and surviving rows of a
 * fault-contained sweep are byte-identical to a clean run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "exp/sweep_engine.hh"
#include "sim/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/watchdog.hh"

namespace c3d
{
namespace
{

/** A tiny but multi-socket run with real inter-socket traffic. */
SystemConfig
faultConfig()
{
    SystemConfig cfg;
    cfg.design = Design::C3D;
    cfg.numSockets = 4;
    cfg.coresPerSocket = 2;
    return cfg;
}

WorkloadProfile
faultProfile()
{
    return profileByName("facesim").scaled(256);
}

RunResult
runWithFault(const FaultPlan &fault, const WatchdogLimits &wd = {},
             bool parallel = false)
{
    RunOptions opts;
    opts.kernel.parallel = parallel;
    opts.watchdog = wd;
    opts.fault = fault;
    return runWorkload(faultConfig(), faultProfile(), 300, 1200,
                       opts);
}

TEST(FaultSpec, ParsesEveryKind)
{
    FaultPlan plan;
    std::string error;

    ASSERT_TRUE(parseFaultSpec("panic@5000", plan, error)) << error;
    EXPECT_EQ(plan.kind, FaultKind::Panic);
    EXPECT_EQ(plan.at, 5000u);
    EXPECT_FALSE(plan.parallelOnly);

    ASSERT_TRUE(parseFaultSpec("hang@0", plan, error)) << error;
    EXPECT_EQ(plan.kind, FaultKind::Hang);
    EXPECT_EQ(plan.at, 0u);

    ASSERT_TRUE(parseFaultSpec("stall-msg@7", plan, error)) << error;
    EXPECT_EQ(plan.kind, FaultKind::StallMsg);
    EXPECT_EQ(plan.at, 7u);

    ASSERT_TRUE(parseFaultSpec("par:panic@12", plan, error)) << error;
    EXPECT_EQ(plan.kind, FaultKind::Panic);
    EXPECT_TRUE(plan.parallelOnly);

    ASSERT_TRUE(parseFaultSpec("block@9", plan, error)) << error;
    EXPECT_EQ(plan.kind, FaultKind::Block);
    EXPECT_EQ(plan.at, 9u);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(parseFaultSpec("", plan, error));
    EXPECT_FALSE(parseFaultSpec("panic", plan, error));
    EXPECT_FALSE(parseFaultSpec("panic@", plan, error));
    EXPECT_FALSE(parseFaultSpec("panic@abc", plan, error));
    EXPECT_FALSE(parseFaultSpec("explode@5", plan, error));
    // A 0-th packet never arrives; refuse rather than never fire.
    EXPECT_FALSE(parseFaultSpec("stall-msg@0", plan, error));
}

TEST(FaultContainment, InjectedPanicThrowsWithTick)
{
    FaultPlan fault;
    fault.kind = FaultKind::Panic;
    fault.at = 0;
    try {
        runWithFault(fault);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        const std::string what = e.what();
        // The diagnostic names the CONFIGURED trigger (stable
        // across code changes) and the actual simulated tick.
        EXPECT_NE(what.find("injected fault: panic@0"),
                  std::string::npos)
            << what;
        EXPECT_TRUE(e.tickKnown());
        EXPECT_GT(e.tick(), 0u);
    }
}

TEST(FaultContainment, InjectedPanicIsDeterministic)
{
    FaultPlan fault;
    fault.kind = FaultKind::Panic;
    fault.at = 1000;
    std::string first;
    std::uint64_t first_tick = 0;
    for (int i = 0; i < 2; ++i) {
        try {
            runWithFault(fault);
            FAIL() << "expected SimError";
        } catch (const SimError &e) {
            if (i == 0) {
                first = e.what();
                first_tick = e.tick();
            } else {
                EXPECT_EQ(first, std::string(e.what()));
                EXPECT_EQ(first_tick, e.tick());
            }
        }
    }
}

TEST(FaultContainment, InjectedHangTripsLostWakeupCheck)
{
    FaultPlan fault;
    fault.kind = FaultKind::Hang;
    fault.at = 100;
    try {
        runWithFault(fault);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("lost wakeup"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultContainment, InjectedStallTripsWatchdog)
{
    FaultPlan fault;
    fault.kind = FaultKind::StallMsg;
    fault.at = 3;
    WatchdogLimits wd;
    wd.stallEvents = 5000;
    try {
        runWithFault(fault, wd);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog: no progress"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("livelock"), std::string::npos);
        EXPECT_TRUE(e.tickKnown());
    }
}

TEST(FaultContainment, EventBudgetTripsWatchdog)
{
    WatchdogLimits wd;
    wd.maxEvents = 2048; // far below what the run needs
    try {
        runWithFault(FaultPlan{}, wd);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("executed-event budget"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultContainment, WatchdogDoesNotPerturbResults)
{
    const RunResult clean = runWithFault(FaultPlan{});
    WatchdogLimits wd;
    wd.stallEvents = 2000000;
    wd.maxEvents = 1u << 30;
    const RunResult watched = runWithFault(FaultPlan{}, wd);
    EXPECT_EQ(clean.measuredTicks, watched.measuredTicks);
    EXPECT_EQ(clean.instructions, watched.instructions);
    EXPECT_EQ(clean.memReads, watched.memReads);
    EXPECT_EQ(clean.interSocketBytes, watched.interSocketBytes);
}

TEST(FaultContainment, ParallelOnlyFaultVanishesSequentially)
{
    FaultPlan fault;
    fault.kind = FaultKind::Panic;
    fault.at = 0;
    fault.parallelOnly = true;
    // Sequential run: the fault never arms.
    const RunResult seq = runWithFault(fault, {}, false);
    EXPECT_GT(seq.instructions, 0u);
    // Parallel run: it fires.
    EXPECT_THROW(runWithFault(fault, {}, true), SimError);
}

/** Two-point grid; the fault selector hits only point 1. */
exp::SweepGrid
containmentGrid()
{
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim")};
    grid.designs = {Design::Baseline, Design::C3D};
    grid.sockets = {4};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 300;
    grid.measureOps = 1200;
    return grid;
}

exp::SweepEngine::RunFn
faultyRunFn(FaultKind kind, std::size_t target,
            bool parallel_only = false)
{
    return [kind, target, parallel_only](const exp::RunSpec &spec) {
        RunOptions o;
        if (spec.index == target) {
            o.fault.kind = kind;
            o.fault.at = kind == FaultKind::StallMsg ? 3 : 0;
            o.fault.parallelOnly = parallel_only;
            o.kernel.parallel = parallel_only;
            o.watchdog.stallEvents = 5000;
        }
        return exp::SweepEngine::simulateSpec(spec, o);
    };
}

TEST(SweepFailPolicy, AbortRethrowsTheRowFailure)
{
    exp::SweepEngine engine(1);
    EXPECT_THROW(
        engine.run(containmentGrid(),
                   faultyRunFn(FaultKind::Panic, 1)),
        SimError);
}

TEST(SweepFailPolicy, SkipContainsAndSurvivorsMatchCleanRun)
{
    const exp::SweepGrid grid = containmentGrid();
    exp::SweepEngine clean_engine(1);
    const exp::ResultTable clean = clean_engine.run(grid);

    exp::SweepEngine engine(2);
    engine.setFailPolicy(exp::FailPolicy::Skip);
    std::vector<exp::RowFailure> failures;
    engine.setFailureSink([&](const exp::RowFailure &f) {
        failures.push_back(f);
    });
    const exp::ResultTable table =
        engine.run(grid, faultyRunFn(FaultKind::Panic, 1));

    // Exactly the faulted row is missing; its failure names the
    // row's identity; the survivor is byte-identical to the clean
    // run.
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].index, 1u);
    EXPECT_EQ(failures[0].identity,
              exp::specIdentityKey(grid.expand()[1]));
    EXPECT_FALSE(failures[0].recovered);
    EXPECT_NE(failures[0].error.find("injected fault"),
              std::string::npos);
    ASSERT_EQ(table.rows().size(), 1u);
    ASSERT_EQ(clean.rows().size(), 2u);
    EXPECT_TRUE(table.rows()[0].sameAs(clean.rows()[0]));
    EXPECT_EQ(table.rows()[0].identityKey(),
              clean.rows()[0].identityKey());
}

TEST(SweepFailPolicy, RetryRecoversViaSequentialFallback)
{
    const exp::SweepGrid grid = containmentGrid();
    exp::SweepEngine clean_engine(1);
    const exp::ResultTable clean = clean_engine.run(grid);

    exp::SweepEngine engine(1);
    engine.setFailPolicy(exp::FailPolicy::Retry, 1);
    // Primary fn injects a parallel-only fault on row 1; the retry
    // fn re-runs sequentially, where the fault never arms.
    engine.setRetryFn([](const exp::RunSpec &spec) {
        return exp::SweepEngine::simulateSpec(spec, RunOptions{});
    });
    std::vector<exp::RowFailure> failures;
    engine.setFailureSink([&](const exp::RowFailure &f) {
        failures.push_back(f);
    });
    const exp::ResultTable table = engine.run(
        grid, faultyRunFn(FaultKind::Panic, 1,
                          /*parallel_only=*/true));

    // The row recovered on the degraded (sequential) attempt and
    // its metrics match the clean sequential run exactly.
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_TRUE(failures[0].recovered);
    EXPECT_TRUE(failures[0].degraded);
    EXPECT_EQ(failures[0].attempts, 2u);
    ASSERT_EQ(table.rows().size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        EXPECT_TRUE(table.rows()[i].sameAs(clean.rows()[i]));
}

/** Unpark the injected Block and join the abandoned thread. */
void
releaseAndReap()
{
    // The released thread resumes its run, hits the dropped-packet
    // lost-wakeup panic, and finishes; poll until reap joins it.
    for (int i = 0; i < 2000; ++i) {
        releaseInjectedBlocks();
        if (abandonedWatchdogThreads() == 0)
            return;
        reapAbandonedWatchdogThreads();
        if (abandonedWatchdogThreads() == 0)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "abandoned watchdog thread never finished";
}

TEST(SiblingWatchdog, ContainsHardStallInsideOneEvent)
{
    // A Block fault stalls the kernel thread *inside* an event, so
    // neither the stall detector nor the in-band wall check can ever
    // run; only the sibling wall-clock watchdog reports it.
    FaultPlan fault;
    fault.kind = FaultKind::Block;
    fault.at = 0;
    WatchdogLimits wd;
    wd.wallMs = 200;
    try {
        runWithFault(fault, wd);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("sibling watchdog"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_EQ(abandonedWatchdogThreads(), 1u);
    releaseAndReap();
}

TEST(SiblingWatchdog, SkipContainsDeadlockedRow)
{
    const exp::SweepGrid grid = containmentGrid();
    exp::SweepEngine clean_engine(1);
    const exp::ResultTable clean = clean_engine.run(grid);

    exp::SweepEngine engine(2);
    engine.setFailPolicy(exp::FailPolicy::Skip);
    std::vector<exp::RowFailure> failures;
    engine.setFailureSink([&](const exp::RowFailure &f) {
        failures.push_back(f);
    });
    const exp::ResultTable table =
        engine.run(grid, [](const exp::RunSpec &spec) {
            RunOptions o;
            if (spec.index == 1) {
                o.fault.kind = FaultKind::Block;
                o.fault.at = 0;
                o.watchdog.wallMs = 200;
            }
            return exp::SweepEngine::simulateSpec(spec, o);
        });

    // The deadlocked row is contained and named; the survivor is
    // byte-identical to the clean run.
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].index, 1u);
    EXPECT_EQ(failures[0].identity,
              exp::specIdentityKey(grid.expand()[1]));
    EXPECT_NE(failures[0].error.find("sibling watchdog"),
              std::string::npos)
        << failures[0].error;
    ASSERT_EQ(table.rows().size(), 1u);
    EXPECT_TRUE(table.rows()[0].sameAs(clean.rows()[0]));
    releaseAndReap();
}

TEST(SiblingWatchdog, ArmedRunMatchesDirectRun)
{
    // Observation-only: a generous wall budget routes the run
    // through the sacrificial thread but must not perturb a single
    // metric.
    const RunResult direct = runWithFault(FaultPlan{});
    WatchdogLimits wd;
    wd.wallMs = 600000;
    const RunResult sibling = runWithFault(FaultPlan{}, wd);
    EXPECT_EQ(direct.measuredTicks, sibling.measuredTicks);
    EXPECT_EQ(direct.instructions, sibling.instructions);
    EXPECT_EQ(direct.memReads, sibling.memReads);
    EXPECT_EQ(direct.memWrites, sibling.memWrites);
    EXPECT_EQ(direct.interSocketBytes, sibling.interSocketBytes);
    EXPECT_EQ(abandonedWatchdogThreads(), 0u);
}

TEST(SweepFailPolicy, RetryExhaustionFallsBackToSkip)
{
    exp::SweepEngine engine(1);
    engine.setFailPolicy(exp::FailPolicy::Retry, 2);
    std::vector<exp::RowFailure> failures;
    engine.setFailureSink([&](const exp::RowFailure &f) {
        failures.push_back(f);
    });
    // Deterministic fault: every attempt (including retries) fails.
    const exp::ResultTable table = engine.run(
        containmentGrid(), faultyRunFn(FaultKind::Panic, 1));

    ASSERT_EQ(failures.size(), 1u);
    EXPECT_FALSE(failures[0].recovered);
    EXPECT_EQ(failures[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(table.rows().size(), 1u);
}

} // namespace
} // namespace c3d
