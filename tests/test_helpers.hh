/**
 * @file
 * Shared helpers for the c3dsim test suite: small scaled machine
 * configurations and workload profiles that keep unit/integration
 * tests fast while preserving the capacity ratios of Table II.
 */

#ifndef C3DSIM_TESTS_TEST_HELPERS_HH
#define C3DSIM_TESTS_TEST_HELPERS_HH

#include "common/config.hh"
#include "trace/workload.hh"

namespace c3d::test
{

/** Scale used by tests: 1/256 of the paper machine. */
constexpr std::uint32_t TestScale = 256;

/** A small but fully-featured machine for fast tests. */
inline SystemConfig
tinyConfig(Design design = Design::C3D, std::uint32_t sockets = 4,
           std::uint32_t cores_per_socket = 2)
{
    SystemConfig cfg;
    cfg.numSockets = sockets;
    cfg.coresPerSocket = cores_per_socket;
    cfg.design = design;
    cfg = cfg.scaled(TestScale);
    return cfg;
}

/** A small workload whose footprint matches tinyConfig's capacities. */
inline WorkloadProfile
tinyProfile(const char *name = "tiny")
{
    WorkloadProfile p;
    p.name = name;
    p.sharedHotBytes = 64 * 1024;
    p.sharedColdBytes = 768 * 1024;
    p.streamBytes = 0;
    p.migratoryBytes = 32 * 1024;
    p.privateBytesPerThread = 64 * 1024;
    p.fracSharedHot = 0.3;
    p.fracSharedCold = 0.3;
    p.fracMigratory = 0.05;
    p.writeFracShared = 0.12;
    p.writeFracSharedCold = 0.02;
    p.writeFracPrivate = 0.2;
    p.avgGap = 3;
    return p;
}

} // namespace c3d::test

#endif // C3DSIM_TESTS_TEST_HELPERS_HH
