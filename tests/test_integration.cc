/**
 * @file
 * End-to-end integration tests: full machines running synthetic
 * workloads under every evaluated design, checking the paper's
 * qualitative claims on a scaled-down system.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyConfig;
using test::tinyProfile;

RunResult
runTiny(Design design, std::uint32_t sockets = 4,
        std::uint64_t ops = 3000)
{
    SystemConfig cfg = tinyConfig(design, sockets);
    return runWorkload(cfg, tinyProfile(), ops / 3, ops);
}

TEST(Integration, BaselineRunsToCompletion)
{
    setQuiet(true);
    const RunResult r = runTiny(Design::Baseline);
    EXPECT_GT(r.measuredTicks, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.memReads, 0u);
}

TEST(Integration, AllDesignsComplete)
{
    setQuiet(true);
    for (Design d : {Design::Baseline, Design::Snoopy, Design::FullDir,
                     Design::C3D, Design::C3DFullDir}) {
        const RunResult r = runTiny(d);
        EXPECT_GT(r.measuredTicks, 0u) << designName(d);
        EXPECT_GT(r.instructions, 0u) << designName(d);
    }
}

TEST(Integration, TwoSocketMachinesComplete)
{
    setQuiet(true);
    for (Design d : {Design::Baseline, Design::C3D}) {
        const RunResult r = runTiny(d, 2);
        EXPECT_GT(r.measuredTicks, 0u) << designName(d);
    }
}

TEST(Integration, DramCacheFiltersMemoryReads)
{
    setQuiet(true);
    const RunResult base = runTiny(Design::Baseline);
    const RunResult c3d = runTiny(Design::C3D);
    // §VI-B: private DRAM caches remove a large fraction of memory
    // reads (49% of accesses on average in the paper).
    EXPECT_LT(c3d.memReads, base.memReads);
}

TEST(Integration, CleanCachePreservesWriteTraffic)
{
    setQuiet(true);
    const RunResult base = runTiny(Design::Baseline);
    const RunResult c3d = runTiny(Design::C3D);
    // §VI-B: "there is no reduction (but also no increase) in write
    // traffic ... as the DRAM caches in C3D are write through."
    // Identical reference streams make the counts comparable; allow
    // a small tolerance for measurement-window edge effects.
    const double lo = 0.85 * static_cast<double>(base.memWrites);
    const double hi = 1.15 * static_cast<double>(base.memWrites);
    EXPECT_GE(static_cast<double>(c3d.memWrites), lo);
    EXPECT_LE(static_cast<double>(c3d.memWrites), hi);
}

TEST(Integration, C3DOutperformsBaseline)
{
    setQuiet(true);
    const RunResult base = runTiny(Design::Baseline);
    const RunResult c3d = runTiny(Design::C3D);
    // The headline claim: C3D improves performance (same instruction
    // stream, fewer ticks).
    EXPECT_LT(c3d.measuredTicks, base.measuredTicks);
}

TEST(Integration, C3DReducesInterSocketTraffic)
{
    setQuiet(true);
    const RunResult base = runTiny(Design::Baseline);
    const RunResult c3d = runTiny(Design::C3D);
    EXPECT_LT(c3d.interSocketBytes, base.interSocketBytes);
}

TEST(Integration, BroadcastsOnlyInC3D)
{
    setQuiet(true);
    const RunResult base = runTiny(Design::Baseline);
    const RunResult full = runTiny(Design::FullDir);
    const RunResult c3d = runTiny(Design::C3D);
    const RunResult c3dfd = runTiny(Design::C3DFullDir);
    EXPECT_EQ(base.broadcasts, 0u);
    EXPECT_EQ(full.broadcasts, 0u);
    EXPECT_EQ(c3dfd.broadcasts, 0u);
    EXPECT_GT(c3d.broadcasts, 0u);
}

TEST(Integration, IdealizedDirectoryNoSlowerThanBroadcast)
{
    setQuiet(true);
    const RunResult c3d = runTiny(Design::C3D);
    const RunResult ideal = runTiny(Design::C3DFullDir);
    // §VI-A: c3d-full-dir eliminates broadcasts; it should be at
    // least as fast as c3d (within noise) and carry no more traffic.
    EXPECT_LE(static_cast<double>(ideal.interSocketBytes),
              static_cast<double>(c3d.interSocketBytes) * 1.02);
}

TEST(Integration, DeterministicAcrossRuns)
{
    setQuiet(true);
    const RunResult a = runTiny(Design::C3D);
    const RunResult b = runTiny(Design::C3D);
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.interSocketBytes, b.interSocketBytes);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Integration, SingleThreadedWorkloadRuns)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    WorkloadProfile p = tinyProfile("st");
    p.singleThreaded = true;
    p.sharedHotBytes = p.sharedColdBytes = p.migratoryBytes = 0;
    p.fracSharedHot = p.fracSharedCold = p.fracMigratory = 0;
    const RunResult r = runWorkload(cfg, p, 500, 1500);
    EXPECT_GT(r.measuredTicks, 0u);
    EXPECT_GT(r.instructions, 0u);
}

TEST(Integration, ZeroHopLatencySpeedsUpBaseline)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::Baseline);
    const RunResult normal = runWorkload(cfg, tinyProfile(), 1000,
                                         3000);
    cfg.zeroHopLatency = true;
    const RunResult ideal = runWorkload(cfg, tinyProfile(), 1000,
                                        3000);
    // Fig. 2: inter-socket latency dominates the NUMA bottleneck.
    EXPECT_LT(ideal.measuredTicks, normal.measuredTicks);
}

} // namespace
} // namespace c3d
