/**
 * @file
 * Unit tests for channels and the ring/P2P interconnect.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "interconnect/channel.hh"
#include "interconnect/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/queue_router.hh"

namespace c3d
{
namespace
{

TEST(Channel, SerializesBackToBackTransfers)
{
    StatGroup g("t");
    Channel ch;
    ch.init(Bandwidth::fromGBps(12.8), &g, "ch");
    const Tick t1 = ch.acquire(0, 64);
    const Tick t2 = ch.acquire(0, 64);
    EXPECT_GT(t1, 0u);
    EXPECT_EQ(t2, 2 * t1); // second waits for the first
    EXPECT_EQ(ch.bytes(), 128u);
}

TEST(Channel, IdleChannelStartsImmediately)
{
    StatGroup g("t");
    Channel ch;
    ch.init(Bandwidth::fromGBps(12.8), &g, "ch");
    ch.acquire(0, 64);
    const Tick later = 10000;
    const Tick done = ch.acquire(later, 64);
    // 64B at 12.8 GB/s is 15-16 ticks.
    EXPECT_LE(done - later, 16u);
}

TEST(Channel, InfiniteBandwidthNoOccupancy)
{
    StatGroup g("t");
    Channel ch;
    ch.init(Bandwidth(), &g, "ch");
    EXPECT_EQ(ch.acquire(5, 1 << 20), 5u);
    EXPECT_EQ(ch.acquire(5, 1 << 20), 5u);
}

class InterconnectTest : public ::testing::Test
{
  protected:
    SystemConfig
    config(std::uint32_t sockets)
    {
        SystemConfig cfg;
        cfg.numSockets = sockets;
        return cfg;
    }
};

TEST_F(InterconnectTest, RingHopCounts)
{
    EventQueue eq;
    StatGroup g("t");
    QueueRouter rt;
    rt.initSingle(eq, 4);
    Interconnect noc(rt, config(4), &g);
    EXPECT_EQ(noc.hopCount(0, 0), 0u);
    EXPECT_EQ(noc.hopCount(0, 1), 1u);
    EXPECT_EQ(noc.hopCount(0, 2), 2u); // opposite corner
    EXPECT_EQ(noc.hopCount(0, 3), 1u); // wrap-around
    EXPECT_EQ(noc.hopCount(1, 3), 2u);
    EXPECT_EQ(noc.hopCount(3, 0), 1u);
}

TEST_F(InterconnectTest, P2PSingleHop)
{
    EventQueue eq;
    StatGroup g("t");
    QueueRouter rt;
    rt.initSingle(eq, 2);
    Interconnect noc(rt, config(2), &g);
    EXPECT_EQ(noc.hopCount(0, 1), 1u);
    EXPECT_EQ(noc.hopCount(1, 0), 1u);
}

TEST_F(InterconnectTest, BaseLatencyIsHopTimesDelay)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = config(4);
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    EXPECT_EQ(noc.baseLatency(0, 1), cfg.hopLatency);
    EXPECT_EQ(noc.baseLatency(0, 2), 2 * cfg.hopLatency);
}

TEST_F(InterconnectTest, DeliveryTimeIncludesHopLatency)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = config(4);
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    Tick arrival = 0;
    noc.send(0, 2, PacketKind::Control,
             [&] { arrival = eq.now(); });
    eq.run();
    // Two hops: 2x hop latency plus two link serializations.
    EXPECT_GE(arrival, 2 * cfg.hopLatency);
    EXPECT_LE(arrival, 2 * cfg.hopLatency + 20);
}

TEST_F(InterconnectTest, LocalDeliveryIsFreeAndUncounted)
{
    EventQueue eq;
    StatGroup g("t");
    QueueRouter rt;
    rt.initSingle(eq, 4);
    Interconnect noc(rt, config(4), &g);
    bool delivered = false;
    noc.send(2, 2, PacketKind::Data, [&] { delivered = true; });
    eq.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(noc.totalBytes(), 0u);
    EXPECT_EQ(noc.packetsSent(), 0u);
}

TEST_F(InterconnectTest, PacketSizesCounted)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = config(2);
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    noc.send(0, 1, PacketKind::Control, [] {});
    noc.send(0, 1, PacketKind::Data, [] {});
    eq.run();
    EXPECT_EQ(noc.controlBytes(), cfg.controlPacketBytes);
    EXPECT_EQ(noc.dataBytes(), cfg.dataPacketBytes);
    EXPECT_EQ(noc.totalBytes(),
              cfg.controlPacketBytes + cfg.dataPacketBytes);
}

TEST_F(InterconnectTest, MultiHopChargesEveryLink)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = config(4);
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    noc.send(0, 2, PacketKind::Data, [] {});
    eq.run();
    // Hop-weighted bytes: 2 links x 80 B.
    EXPECT_EQ(noc.linkTraversalBytes(), 2u * cfg.dataPacketBytes);
    EXPECT_EQ(noc.dataBytes(), cfg.dataPacketBytes);
}

TEST_F(InterconnectTest, ZeroHopLatencyIdealization)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = config(2);
    cfg.zeroHopLatency = true;
    cfg.infiniteLinkBandwidth = true;
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    Tick arrival = MaxTick;
    noc.send(0, 1, PacketKind::Data, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 0u);
}

TEST_F(InterconnectTest, LinkCongestionDelaysPackets)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = config(2);
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    std::vector<Tick> arrivals;
    for (int i = 0; i < 200; ++i) {
        noc.send(0, 1, PacketKind::Data,
                 [&] { arrivals.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(arrivals.size(), 200u);
    // Later packets serialize behind earlier ones.
    EXPECT_GT(arrivals.back(), arrivals.front());
}

TEST_F(InterconnectTest, FifoPerLink)
{
    EventQueue eq;
    StatGroup g("t");
    QueueRouter rt;
    rt.initSingle(eq, 2);
    Interconnect noc(rt, config(2), &g);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        noc.send(0, 1, PacketKind::Control,
                 [&order, i] { order.push_back(i); });
    }
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

} // namespace
} // namespace c3d

namespace c3d
{
namespace
{

TEST(InterconnectRegression, NoPhantomFutureReservations)
{
    // Regression for the store-and-forward fix: a 2-hop packet must
    // not reserve its second link ahead of time -- a later packet
    // wanting that link *now* would otherwise queue behind a
    // reservation in the future.
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg;
    cfg.numSockets = 4;
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);

    // Packet A: 0 -> 2 (two hops through socket 1).
    Tick a_arrival = 0;
    noc.send(0, 2, PacketKind::Data, [&] { a_arrival = eq.now(); });
    // Packet B: 1 -> 2 (one hop, using A's second link) sent at the
    // same time. B reaches the 1->2 link long before A does; it must
    // not wait for A.
    Tick b_arrival = 0;
    noc.send(1, 2, PacketKind::Data, [&] { b_arrival = eq.now(); });
    eq.run();
    ASSERT_GT(a_arrival, 0u);
    ASSERT_GT(b_arrival, 0u);
    // B's single hop: hop latency plus one serialization, well under
    // A's two hops.
    EXPECT_LT(b_arrival, cfg.hopLatency + 30);
    EXPECT_GT(a_arrival, b_arrival);
}

TEST(InterconnectRegression, BackToBackHopsAccumulate)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg;
    cfg.numSockets = 4;
    QueueRouter rt;
    rt.initSingle(eq, cfg.numSockets);
    Interconnect noc(rt, cfg, &g);
    Tick two_hop = 0, one_hop = 0;
    noc.send(0, 2, PacketKind::Control, [&] { two_hop = eq.now(); });
    eq.run();
    eq.reset();
    noc.send(0, 1, PacketKind::Control, [&] { one_hop = eq.now(); });
    eq.run();
    EXPECT_GT(two_hop, one_hop);
    EXPECT_GE(two_hop, 2 * cfg.hopLatency);
}

TEST(InterconnectRegression, SameSocketDeliveryIsNeverInline)
{
    // Pin the same-socket delivery contract: send(s, s) must go
    // through a zero-delay event on s's queue, never an inline call.
    // An inline delivery would let a protocol handler that "responds
    // to itself" reenter its own block state mid-update, and under
    // the parallel kernel it is the only delivery shape that keeps
    // every callback on the owning socket's queue.
    EventQueue eq;
    QueueRouter rt;
    rt.initSingle(eq, 2);
    StatGroup g("t");
    SystemConfig cfg;
    cfg.numSockets = 2;
    Interconnect noc(rt, cfg, &g);

    bool delivered = false;
    noc.send(1, 1, PacketKind::Control, [&] { delivered = true; });
    // Not delivered inline at send time...
    EXPECT_FALSE(delivered);
    eq.run();
    // ...but at tick 0 (free and uncounted), via the event queue.
    EXPECT_TRUE(delivered);
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(noc.packetsSent(), 0u);
}

} // namespace
} // namespace c3d
