/**
 * @file
 * Property/fuzz tests for the sweep journal reader and merger: a
 * journal truncated at ANY byte must either recover cleanly (crash
 * artifact in the final line) or fail loudly (corruption anywhere
 * else); duplicates collapse only when identical; merge refuses
 * gaps, cross-grid mixes, and identity collisions -- a grid point
 * is never silently dropped.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "exp/journal.hh"
#include "exp/sweep_engine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

/** Fixed synthetic grid; rows come from a fake metrics function. */
exp::SweepGrid
journalGrid()
{
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::Baseline, Design::C3D};
    grid.sockets = {2, 4};
    grid.warmupOps = 100;
    grid.measureOps = 400;
    return grid;
}

RunResult
fakeMetrics(std::size_t index)
{
    RunResult m;
    m.measuredTicks = 1000 + 13 * index;
    m.instructions = 500 + index;
    m.memReads = 7 * index;
    m.interSocketBytes = (1ull << 54) + index; // above double precision
    m.broadcastsElided = index % 3;
    return m;
}

struct TestJournal
{
    std::vector<exp::RunSpec> specs;
    std::vector<exp::ResultRow> rows;
    std::string fingerprint;
    std::string text; //!< header + one line per row, in order
};

TestJournal
buildJournal()
{
    TestJournal j;
    j.specs = journalGrid().expand();
    j.fingerprint = exp::gridFingerprint(j.specs);
    j.text = exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    for (const exp::RunSpec &spec : j.specs) {
        j.rows.push_back(
            exp::SweepEngine::makeRow(spec, fakeMetrics(spec.index)));
        j.text += exp::journalEntryLine(spec.index, j.rows.back());
    }
    return j;
}

TEST(Journal, RoundTripsThroughWriterAndReader)
{
    const TestJournal j = buildJournal();
    const std::string path =
        testing::TempDir() + "c3d_journal_roundtrip.jsonl";

    exp::JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.create(path, j.specs.size(), j.fingerprint,
                              error)) << error;
    for (std::size_t i = 0; i < j.rows.size(); ++i)
        ASSERT_TRUE(writer.append(i, j.rows[i], error)) << error;
    writer.close();

    exp::JournalData data;
    ASSERT_TRUE(exp::readJournalFile(path, data, error)) << error;
    EXPECT_EQ(data.total, j.specs.size());
    EXPECT_EQ(data.fingerprint, j.fingerprint);
    EXPECT_FALSE(data.truncatedTail);
    ASSERT_EQ(data.entries.size(), j.rows.size());
    for (std::size_t i = 0; i < j.rows.size(); ++i) {
        EXPECT_EQ(data.entries[i].index, i);
        EXPECT_TRUE(data.entries[i].row.sameAs(j.rows[i]));
    }
    std::remove(path.c_str());
}

TEST(Journal, EveryTruncationPointRecoversOrFailsLoudly)
{
    const TestJournal j = buildJournal();
    const std::size_t header_len = j.text.find('\n') + 1;

    // Line start offsets of each entry, to count complete lines.
    std::vector<std::size_t> line_ends;
    for (std::size_t i = header_len; i < j.text.size(); ++i) {
        if (j.text[i] == '\n')
            line_ends.push_back(i + 1);
    }

    for (std::size_t len = 0; len < j.text.size(); ++len) {
        const std::string cut = j.text.substr(0, len);
        exp::JournalData data;
        std::string error;
        const bool ok = exp::parseJournal(cut, data, error);
        if (len < header_len) {
            // Header damaged: must fail loudly.
            EXPECT_FALSE(ok) << "len=" << len;
            EXPECT_FALSE(error.empty());
            continue;
        }
        ASSERT_TRUE(ok) << "len=" << len << ": " << error;

        std::size_t complete = 0;
        while (complete < line_ends.size() &&
               line_ends[complete] <= len)
            ++complete;

        // Only fully newline-terminated lines count: a mid-line
        // cut (even one that leaves parseable JSON) is dropped and
        // reported, matching what openAppend trims.
        ASSERT_EQ(data.entries.size(), complete) << "len=" << len;
        const bool at_boundary = cut.back() == '\n';
        EXPECT_EQ(data.truncatedTail, !at_boundary)
            << "len=" << len;

        // Recovered entries are never corrupted: each must equal
        // the original row at its ordinal, in file order.
        for (std::size_t i = 0; i < data.entries.size(); ++i) {
            EXPECT_EQ(data.entries[i].index, i);
            EXPECT_TRUE(data.entries[i].row.sameAs(j.rows[i]))
                << "len=" << len << " entry=" << i;
        }
    }
}

TEST(Journal, AppendAfterTornTailYieldsCleanJournal)
{
    // Crash-then-resume on the file itself: openAppend must trim
    // the torn bytes so the re-run row starts on a fresh line and
    // the journal stays parseable end to end.
    const TestJournal j = buildJournal();
    const std::string path =
        testing::TempDir() + "c3d_journal_torn.jsonl";

    exp::JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.create(path, j.specs.size(), j.fingerprint,
                              error)) << error;
    for (std::size_t i = 0; i < 4; ++i)
        ASSERT_TRUE(writer.append(i, j.rows[i], error)) << error;
    writer.close();

    // Simulate a crash mid-append of row 4.
    const std::string torn =
        exp::journalEntryLine(4, j.rows[4]).substr(0, 25);
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size(), f),
              torn.size());
    std::fclose(f);

    exp::JournalWriter resumed;
    ASSERT_TRUE(resumed.openAppend(path, error)) << error;
    for (std::size_t i = 4; i < j.rows.size(); ++i)
        ASSERT_TRUE(resumed.append(i, j.rows[i], error)) << error;
    resumed.close();

    exp::JournalData data;
    ASSERT_TRUE(exp::readJournalFile(path, data, error)) << error;
    EXPECT_FALSE(data.truncatedTail);
    ASSERT_EQ(data.entries.size(), j.rows.size());
    for (std::size_t i = 0; i < j.rows.size(); ++i) {
        EXPECT_EQ(data.entries[i].index, i);
        EXPECT_TRUE(data.entries[i].row.sameAs(j.rows[i]));
    }
    std::remove(path.c_str());
}

TEST(Journal, IdenticalDuplicateRowsCollapse)
{
    const TestJournal j = buildJournal();
    // Re-append copies of lines 2 and 5 (e.g. a retried shard).
    std::string text = j.text;
    text += exp::journalEntryLine(2, j.rows[2]);
    text += exp::journalEntryLine(5, j.rows[5]);

    exp::JournalData data;
    std::string error;
    ASSERT_TRUE(exp::parseJournal(text, data, error)) << error;
    ASSERT_EQ(data.entries.size(), j.rows.size());
    for (std::size_t i = 0; i < j.rows.size(); ++i)
        EXPECT_TRUE(data.entries[i].row.sameAs(j.rows[i]));
}

TEST(Journal, ConflictingDuplicateFailsLoudly)
{
    const TestJournal j = buildJournal();
    exp::ResultRow tampered = j.rows[4];
    tampered.metrics.instructions += 1;
    const std::string text =
        j.text + exp::journalEntryLine(4, tampered);

    exp::JournalData data;
    std::string error;
    EXPECT_FALSE(exp::parseJournal(text, data, error));
    EXPECT_NE(error.find("grid point 4"), std::string::npos)
        << error;
}

TEST(Journal, MalformedMiddleLineFailsLoudly)
{
    const TestJournal j = buildJournal();
    // Corrupt the third entry line but keep its newline: this is
    // not a crash artifact, so it must not be skipped.
    std::string text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    for (std::size_t i = 0; i < j.rows.size(); ++i) {
        if (i == 2)
            text += "{\"index\": 2, \"row\": garbage}\n";
        else
            text += exp::journalEntryLine(i, j.rows[i]);
    }
    exp::JournalData data;
    std::string error;
    EXPECT_FALSE(exp::parseJournal(text, data, error));
    EXPECT_NE(error.find("line 4"), std::string::npos) << error;
}

TEST(Journal, HeaderValidation)
{
    const TestJournal j = buildJournal();
    exp::JournalData data;
    std::string error;

    EXPECT_FALSE(exp::parseJournal("", data, error));
    EXPECT_FALSE(exp::parseJournal("not json\n", data, error));
    EXPECT_FALSE(exp::parseJournal(
        "{\"schema\": \"bogus/v9\", \"total\": 1, \"grid\": \"x\"}\n",
        data, error));
    EXPECT_FALSE(exp::parseJournal(
        "{\"schema\": \"c3d-sweep-journal/v2\", \"grid\": \"x\"}\n",
        data, error));

    // Header-only journals are valid (a sweep that crashed before
    // its first row completed) and merge to "everything missing".
    const std::string header_only =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    ASSERT_TRUE(exp::parseJournal(header_only, data, error)) << error;
    EXPECT_TRUE(data.entries.empty());
    exp::ResultTable merged;
    EXPECT_FALSE(exp::mergeJournals({data}, merged, error));
    EXPECT_NE(error.find("grid point 0 missing"), std::string::npos)
        << error;
}

TEST(Journal, MergesInterleavedShardJournals)
{
    const TestJournal j = buildJournal();
    std::vector<exp::JournalData> parts(3);
    for (unsigned k = 0; k < 3; ++k) {
        std::string text =
            exp::journalHeaderLine(j.specs.size(), j.fingerprint);
        // Emit this shard's rows in reverse completion order to
        // prove ordering comes from ordinals, not file position.
        for (std::size_t i = j.rows.size(); i-- > 0;) {
            if (i % 3 == k)
                text += exp::journalEntryLine(i, j.rows[i]);
        }
        std::string error;
        ASSERT_TRUE(exp::parseJournal(text, parts[k], error))
            << error;
    }

    exp::ResultTable merged;
    std::string error;
    ASSERT_TRUE(exp::mergeJournals(parts, merged, error)) << error;
    ASSERT_EQ(merged.size(), j.rows.size());
    for (std::size_t i = 0; i < j.rows.size(); ++i)
        EXPECT_TRUE(merged.rows()[i].sameAs(j.rows[i]));

    // The merged table serializes exactly like a table built in
    // grid order directly.
    exp::ResultTable direct;
    for (const exp::ResultRow &row : j.rows)
        direct.appendRow(row);
    EXPECT_EQ(direct.toJson(), merged.toJson());
    EXPECT_EQ(direct.toCsv(), merged.toCsv());
}

TEST(Journal, MergeAcceptsDuplicateGridPointsWithEqualRows)
{
    // A grid with a repeated axis value (e.g. --sockets=2,2) has
    // two ordinals with the same identity; the deterministic
    // simulator gives them identical rows, and merge must accept
    // that, or such grids could run single-process but never
    // distributed.
    const TestJournal j = buildJournal();
    std::string text = exp::journalHeaderLine(2, j.fingerprint);
    text += exp::journalEntryLine(0, j.rows[3]);
    text += exp::journalEntryLine(1, j.rows[3]);
    exp::JournalData data;
    std::string error;
    ASSERT_TRUE(exp::parseJournal(text, data, error)) << error;

    exp::ResultTable merged;
    ASSERT_TRUE(exp::mergeJournals({data}, merged, error)) << error;
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_TRUE(merged.rows()[0].sameAs(j.rows[3]));
    EXPECT_TRUE(merged.rows()[1].sameAs(j.rows[3]));
}

TEST(Journal, MergeRefusesMissingGridPoint)
{
    const TestJournal j = buildJournal();
    std::string text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    for (std::size_t i = 0; i < j.rows.size(); ++i) {
        if (i != 3)
            text += exp::journalEntryLine(i, j.rows[i]);
    }
    exp::JournalData data;
    std::string error;
    ASSERT_TRUE(exp::parseJournal(text, data, error)) << error;

    exp::ResultTable merged;
    EXPECT_FALSE(exp::mergeJournals({data}, merged, error));
    EXPECT_NE(error.find("grid point 3 missing"), std::string::npos)
        << error;
}

TEST(Journal, MergeRefusesCrossGridAndCollisions)
{
    const TestJournal j = buildJournal();
    exp::JournalData a, b;
    std::string error;
    ASSERT_TRUE(exp::parseJournal(j.text, a, error)) << error;

    // Different fingerprint: a journal from another grid.
    std::string other =
        exp::journalHeaderLine(j.specs.size(), "deadbeefdeadbeef");
    ASSERT_TRUE(exp::parseJournal(other, b, error)) << error;
    exp::ResultTable merged;
    EXPECT_FALSE(exp::mergeJournals({a, b}, merged, error));
    EXPECT_NE(error.find("different grids"), std::string::npos)
        << error;

    // Conflicting metrics for the same ordinal across journals.
    exp::ResultRow tampered = j.rows[6];
    tampered.metrics.measuredTicks += 1;
    std::string conflict =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    conflict += exp::journalEntryLine(6, tampered);
    ASSERT_TRUE(exp::parseJournal(conflict, b, error)) << error;
    EXPECT_FALSE(exp::mergeJournals({a, b}, merged, error));
    EXPECT_NE(error.find("grid point 6"), std::string::npos) << error;

    // Same identity with different metrics under two ordinals:
    // identity collision (two journals claim different grid points
    // measured the same identity, and disagree).
    exp::ResultRow clash = j.rows[1];
    clash.metrics.memWrites += 9;
    std::string dup_a =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    dup_a += exp::journalEntryLine(1, j.rows[1]);
    std::string dup_b =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    dup_b += exp::journalEntryLine(7, clash);
    exp::JournalData da, db;
    ASSERT_TRUE(exp::parseJournal(dup_a, da, error)) << error;
    ASSERT_TRUE(exp::parseJournal(dup_b, db, error)) << error;
    EXPECT_FALSE(exp::mergeJournals({da, db}, merged, error));
    EXPECT_NE(error.find("identity collision"), std::string::npos)
        << error;

    // Ordinal outside the grid.
    std::string range =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    range += exp::journalEntryLine(j.specs.size() + 5, j.rows[0]);
    ASSERT_TRUE(exp::parseJournal(range, b, error)) << error;
    EXPECT_FALSE(exp::mergeJournals({b}, merged, error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

exp::JournalFailure
fakeFailure(const TestJournal &j, std::size_t index,
            bool tick_known = true)
{
    exp::JournalFailure f;
    f.identity = exp::specIdentityKey(j.specs[index]);
    f.error = "src/x.cc:1: injected fault: panic@0";
    f.tick = tick_known ? 80 + index : 0; // unknown ticks are not
                                          // serialized
    f.tickKnown = tick_known;
    f.attempts = 2;
    return f;
}

TEST(Journal, FailureRecordRoundTripsThroughWriterAndReader)
{
    const TestJournal j = buildJournal();
    const std::string path =
        testing::TempDir() + "c3d_journal_failure.jsonl";

    exp::JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.create(path, j.specs.size(), j.fingerprint,
                              error)) << error;
    ASSERT_TRUE(writer.append(0, j.rows[0], error)) << error;
    const exp::JournalFailure with_tick = fakeFailure(j, 1);
    const exp::JournalFailure no_tick = fakeFailure(j, 2, false);
    ASSERT_TRUE(writer.appendFailure(1, with_tick, error)) << error;
    ASSERT_TRUE(writer.appendFailure(2, no_tick, error)) << error;
    writer.close();

    exp::JournalData data;
    ASSERT_TRUE(exp::readJournalFile(path, data, error)) << error;
    ASSERT_EQ(data.entries.size(), 3u);
    EXPECT_FALSE(data.entries[0].failed);
    ASSERT_TRUE(data.entries[1].failed);
    EXPECT_TRUE(data.entries[1].failure.sameAs(with_tick));
    ASSERT_TRUE(data.entries[2].failed);
    EXPECT_TRUE(data.entries[2].failure.sameAs(no_tick));
    EXPECT_FALSE(data.entries[2].failure.tickKnown);
    std::remove(path.c_str());
}

TEST(Journal, SuccessSupersedesFailure)
{
    // The retry audit trail: a failure line then a success line for
    // the same ordinal parse to one successful entry.
    const TestJournal j = buildJournal();
    std::string text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    text += exp::journalFailureLine(3, fakeFailure(j, 3));
    text += exp::journalEntryLine(3, j.rows[3]);

    exp::JournalData data;
    std::string error;
    ASSERT_TRUE(exp::parseJournal(text, data, error)) << error;
    ASSERT_EQ(data.entries.size(), 1u);
    EXPECT_FALSE(data.entries[0].failed);
    EXPECT_TRUE(data.entries[0].row.sameAs(j.rows[3]));

    // A later failure also replaces an earlier one (re-failed).
    text = exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    text += exp::journalFailureLine(3, fakeFailure(j, 3));
    exp::JournalFailure again = fakeFailure(j, 3);
    again.attempts = 3;
    text += exp::journalFailureLine(3, again);
    ASSERT_TRUE(exp::parseJournal(text, data, error)) << error;
    ASSERT_EQ(data.entries.size(), 1u);
    ASSERT_TRUE(data.entries[0].failed);
    EXPECT_EQ(data.entries[0].failure.attempts, 3u);
}

TEST(Journal, FailureAfterSuccessFailsLoudly)
{
    const TestJournal j = buildJournal();
    std::string text = j.text;
    text += exp::journalFailureLine(3, fakeFailure(j, 3));

    exp::JournalData data;
    std::string error;
    EXPECT_FALSE(exp::parseJournal(text, data, error));
    EXPECT_NE(error.find("failure record after a success"),
              std::string::npos)
        << error;
}

TEST(Journal, SupersedeWithWrongIdentityFailsLoudly)
{
    const TestJournal j = buildJournal();
    std::string text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    text += exp::journalFailureLine(3, fakeFailure(j, 3));
    // A "recovery" carrying a different row's identity: cross-grid
    // contamination, not a retry.
    text += exp::journalEntryLine(3, j.rows[5]);

    exp::JournalData data;
    std::string error;
    EXPECT_FALSE(exp::parseJournal(text, data, error));
    EXPECT_NE(error.find("different identity"), std::string::npos)
        << error;
}

TEST(Journal, MergeRefusesFailureSuccessCollision)
{
    const TestJournal j = buildJournal();
    std::string error;

    // Same ordinal: one journal completed it, the other failed it.
    exp::JournalData ok_part, failed_part;
    ASSERT_TRUE(exp::parseJournal(j.text, ok_part, error)) << error;
    std::string failed_text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    failed_text += exp::journalFailureLine(2, fakeFailure(j, 2));
    ASSERT_TRUE(exp::parseJournal(failed_text, failed_part, error))
        << error;
    exp::ResultTable merged;
    EXPECT_FALSE(
        exp::mergeJournals({ok_part, failed_part}, merged, error));
    EXPECT_NE(error.find("failure/success collision"),
              std::string::npos)
        << error;

    // Same identity under different ordinals, mixed outcomes.
    std::string a_text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    a_text += exp::journalEntryLine(1, j.rows[1]);
    std::string b_text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    exp::JournalFailure same_id = fakeFailure(j, 1);
    b_text += exp::journalFailureLine(7, same_id);
    exp::JournalData a, b;
    ASSERT_TRUE(exp::parseJournal(a_text, a, error)) << error;
    ASSERT_TRUE(exp::parseJournal(b_text, b, error)) << error;
    EXPECT_FALSE(exp::mergeJournals({a, b}, merged, error));
    EXPECT_NE(error.find("failure/success collision"),
              std::string::npos)
        << error;
}

TEST(Journal, MergeRefusesUnresolvedFailure)
{
    const TestJournal j = buildJournal();
    std::string text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    for (std::size_t i = 0; i < j.rows.size(); ++i) {
        if (i == 5)
            text += exp::journalFailureLine(5, fakeFailure(j, 5));
        else
            text += exp::journalEntryLine(i, j.rows[i]);
    }
    exp::JournalData data;
    std::string error;
    ASSERT_TRUE(exp::parseJournal(text, data, error)) << error;

    exp::ResultTable merged;
    EXPECT_FALSE(exp::mergeJournals({data}, merged, error));
    EXPECT_NE(error.find("grid point 5 failed"), std::string::npos)
        << error;
    EXPECT_NE(error.find("re-run"), std::string::npos) << error;
}

TEST(Journal, TruncationFuzzWithFailureRecords)
{
    // The every-byte truncation property must hold for journals
    // holding failure records and a recovery (failure-then-success
    // supersession) too.
    const TestJournal j = buildJournal();
    std::string text =
        exp::journalHeaderLine(j.specs.size(), j.fingerprint);
    const std::size_t header_len = text.size();

    // Even ordinals succeed; odd ordinals fail (tick known only for
    // index % 4 == 1); ordinal 1 recovers in a final success line.
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < j.specs.size(); ++i) {
        if (i % 2 == 0)
            lines.push_back(exp::journalEntryLine(i, j.rows[i]));
        else
            lines.push_back(exp::journalFailureLine(
                i, fakeFailure(j, i, i % 4 == 1)));
    }
    lines.push_back(exp::journalEntryLine(1, j.rows[1]));

    std::vector<std::size_t> line_ends;
    std::size_t off = header_len;
    for (const std::string &l : lines) {
        text += l;
        off += l.size();
        line_ends.push_back(off);
    }

    for (std::size_t len = 0; len <= text.size(); ++len) {
        const std::string cut = text.substr(0, len);
        exp::JournalData data;
        std::string error;
        const bool ok = exp::parseJournal(cut, data, error);
        if (len < header_len) {
            EXPECT_FALSE(ok) << "len=" << len;
            continue;
        }
        ASSERT_TRUE(ok) << "len=" << len << ": " << error;

        std::size_t complete = 0;
        while (complete < line_ends.size() &&
               line_ends[complete] <= len)
            ++complete;
        const bool recovered = complete > j.specs.size();
        ASSERT_EQ(data.entries.size(),
                  std::min(complete, j.specs.size()))
            << "len=" << len;
        EXPECT_EQ(data.truncatedTail, cut.back() != '\n')
            << "len=" << len;

        for (const exp::JournalEntry &entry : data.entries) {
            const std::size_t i =
                static_cast<std::size_t>(entry.index);
            if (i % 2 == 0 || (i == 1 && recovered)) {
                EXPECT_FALSE(entry.failed) << "len=" << len;
                EXPECT_TRUE(entry.row.sameAs(j.rows[i]))
                    << "len=" << len << " entry=" << i;
            } else {
                ASSERT_TRUE(entry.failed) << "len=" << len;
                EXPECT_EQ(entry.failure.identity,
                          exp::specIdentityKey(j.specs[i]))
                    << "len=" << len;
                EXPECT_EQ(entry.failure.tickKnown, i % 4 == 1)
                    << "len=" << len;
            }
        }
    }
}

} // namespace
} // namespace c3d
