/**
 * @file
 * AMAT-ordering tests: the fundamental latency hierarchy the paper's
 * argument rests on. Each access path is measured on an otherwise
 * idle machine and compared against its Table II composition, and
 * against the paths it must beat (§II-B, §III, §IV-A).
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

/** Measure one load on an idle machine. */
Tick
timedLoad(Machine &m, SocketId s, Addr addr, std::uint32_t core = 0)
{
    bool done = false;
    const Tick start = m.eventQueue().now();
    m.socket(s).load(core, addr, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    const Tick t = m.eventQueue().now() - start;
    m.eventQueue().run();
    return t;
}

/** Build a machine with deterministic interleaved homes. */
SystemConfig
pathConfig(Design d)
{
    SystemConfig cfg = test::tinyConfig(d, 4, 2);
    cfg.mapping = MappingPolicy::Interleave;
    return cfg;
}

/** Evict @p addr from socket @p s's LLC via conflicting loads. */
void
evictFromLlc(Machine &m, SocketId s, Addr addr)
{
    const SystemConfig &cfg = m.config();
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    // Load same-set conflicters until the block is displaced (bounded;
    // earlier conflicters may themselves be cached and not refresh
    // LLC recency, so a fixed count is not reliable).
    for (std::uint32_t w = 1; w <= 4 * cfg.llcWays; ++w) {
        if (m.socket(s).llcState(addr) == CacheState::Invalid)
            return;
        timedLoad(m, s, addr + (w + 100) * sets * BlockBytes);
    }
    ASSERT_EQ(m.socket(s).llcState(addr), CacheState::Invalid);
}

constexpr Addr Home0 = 0x0C0;  // page 0 -> socket 0 (interleave)
constexpr Addr Home1 = 0x10C0; // page 1 -> socket 1

TEST(LatencyPaths, HierarchyOrdering)
{
    Machine m(pathConfig(Design::C3D));

    // Remote cold miss (socket 0 reading socket-1-homed data).
    const Tick remote_mem = timedLoad(m, 0, Home1);
    // Local cold miss.
    const Tick local_mem = timedLoad(m, 0, Home0);
    // LLC hit (sibling core: its L1 misses, the shared LLC hits).
    const Tick llc_hit = timedLoad(m, 0, Home0, /*core=*/1);
    // L1 hit (repeat load from the same core).
    const Tick l1_hit = timedLoad(m, 0, Home0, /*core=*/1);

    // DRAM-cache hit: evict from LLC, reload.
    evictFromLlc(m, 0, Home0);
    const Tick dc_hit = timedLoad(m, 0, Home0);

    EXPECT_LT(l1_hit, llc_hit);
    EXPECT_LT(llc_hit, dc_hit);
    EXPECT_LT(dc_hit, local_mem);
    EXPECT_LT(local_mem, remote_mem);
}

TEST(LatencyPaths, L1HitIsThreeCycles)
{
    Machine m(pathConfig(Design::C3D));
    timedLoad(m, 0, Home0);
    timedLoad(m, 0, Home0); // ensure L1 residence
    EXPECT_EQ(timedLoad(m, 0, Home0), m.config().l1Latency);
}

TEST(LatencyPaths, DramCacheHitCompositionMatchesTableII)
{
    SystemConfig cfg = pathConfig(Design::C3D);
    Machine m(cfg);
    timedLoad(m, 0, Home0);
    evictFromLlc(m, 0, Home0);
    const Tick dc_hit = timedLoad(m, 0, Home0);
    // L1 + LLC tag + predictor + 40 ns access + channel burst.
    const Tick floor = cfg.l1Latency + cfg.llcTagLatency +
        cfg.missPredictorLatency + cfg.dramCacheLatency;
    EXPECT_GE(dc_hit, floor);
    EXPECT_LE(dc_hit, floor + 40); // channel + event slack
}

TEST(LatencyPaths, RemoteMissCarriesTwoHopsOnRing)
{
    SystemConfig cfg = pathConfig(Design::Baseline);
    Machine m(cfg);
    // Socket 0 to opposite-corner socket 2 (page 2): 2 hops each way.
    const Addr home2 = 2 * PageBytes + 0xC0;
    const Tick t = timedLoad(m, 0, home2);
    const Tick floor = cfg.l1Latency + cfg.llcTagLatency +
        4 * cfg.hopLatency + cfg.globalDirLatency + cfg.memLatency;
    EXPECT_GE(t, floor);
}

TEST(LatencyPaths, SlowRemoteHitPathologyIsVisible)
{
    // §III-B: in full-dir, reading a block dirty in a remote DRAM
    // cache is slower than the same machine reading it from memory
    // (measured as c3d's path).
    SystemConfig cfg_fd = pathConfig(Design::FullDir);
    Machine fd(cfg_fd);
    {
        bool done = false;
        fd.socket(1).store(0, Home0, false, [&] { done = true; });
        while (!done && fd.eventQueue().step()) {
        }
        fd.eventQueue().run();
    }
    evictFromLlc(fd, 1, Home0); // dirty block now in socket 1 DRAM$
    ASSERT_TRUE(fd.socket(1).dramCache()->isDirty(Home0));
    // Requester at socket 3: the forward path home(0) -> owner(1) ->
    // requester(3) spans three hops plus the remote DRAM-cache
    // access (Fig. 4).
    const Tick slow_hit = timedLoad(fd, 3, Home0);

    Machine c3d(pathConfig(Design::C3D));
    {
        bool done = false;
        c3d.socket(1).store(0, Home0, false, [&] { done = true; });
        while (!done && c3d.eventQueue().step()) {
        }
        c3d.eventQueue().run();
    }
    evictFromLlc(c3d, 1, Home0); // clean copy + fresh memory
    const Tick mem_serve = timedLoad(c3d, 3, Home0);

    EXPECT_GT(slow_hit, mem_serve);
}

TEST(LatencyPaths, CleanCacheKeepsLocalHitRateAfterWriteThrough)
{
    // §IV-A: writing through does NOT cost the local socket its
    // DRAM-cache hit -- the clean copy stays.
    Machine m(pathConfig(Design::C3D));
    bool done = false;
    m.socket(1).store(0, Home0, false, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    m.eventQueue().run();
    evictFromLlc(m, 1, Home0);
    ASSERT_TRUE(m.socket(1).dramCache()->contains(Home0));
    const Tick local_dc_hit = timedLoad(m, 1, Home0);
    // Far cheaper than a fresh remote access to the same block.
    const Tick remote = timedLoad(m, 3, Home0);
    EXPECT_LT(local_dc_hit, remote);
}

TEST(LatencyPaths, ZeroQpiLatencyCollapsesRemotePenalty)
{
    SystemConfig cfg = pathConfig(Design::Baseline);
    cfg.zeroHopLatency = true;
    Machine m(cfg);
    const Tick remote = timedLoad(m, 0, Home1);
    const Tick local = timedLoad(m, 3, Home1 + BlockBytes * 4096);
    (void)local;
    // Without hop latency the remote path is just dir + memory.
    EXPECT_LE(remote, cfg.l1Latency + cfg.llcTagLatency +
                          cfg.missPredictorLatency +
                          cfg.dramCacheLatency +
                          cfg.globalDirLatency + cfg.memLatency + 40);
}

} // namespace
} // namespace c3d
