/**
 * @file
 * Unit tests for page mapping policies and the TLB page classifier.
 */

#include <gtest/gtest.h>

#include "mapping/page_classifier.hh"
#include "mapping/page_mapper.hh"

namespace c3d
{
namespace
{

TEST(PageMapper, InterleaveRoundRobins)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::Interleave, 4, &g);
    EXPECT_EQ(m.homeOf(0 * PageBytes, 3), 0u);
    EXPECT_EQ(m.homeOf(1 * PageBytes, 3), 1u);
    EXPECT_EQ(m.homeOf(2 * PageBytes, 3), 2u);
    EXPECT_EQ(m.homeOf(3 * PageBytes, 3), 3u);
    EXPECT_EQ(m.homeOf(4 * PageBytes, 3), 0u);
}

TEST(PageMapper, InterleaveIgnoresToucher)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::Interleave, 4, &g);
    EXPECT_EQ(m.homeOf(8 * PageBytes, 1), m.homeOf(8 * PageBytes, 3));
}

TEST(PageMapper, FirstTouchPinsToToucher)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::FirstTouch2, 4, &g);
    EXPECT_EQ(m.homeOf(0x5000, 2), 2u);
    // Later touches from other sockets keep the original home.
    EXPECT_EQ(m.homeOf(0x5000, 0), 2u);
    EXPECT_EQ(m.homeOf(0x5040, 3), 2u); // same page
}

TEST(PageMapper, FT1HonorsPreTouch)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::FirstTouch1, 4, &g);
    // Serial init phase touches from socket 0.
    m.preTouch(0x7000, 0);
    EXPECT_EQ(m.homeOf(0x7000, 3), 0u);
}

TEST(PageMapper, FT2IgnoresPreTouch)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::FirstTouch2, 4, &g);
    m.preTouch(0x7000, 0); // no effect under FT2
    EXPECT_EQ(m.homeOf(0x7000, 3), 3u);
}

TEST(PageMapper, CountsPagesPerSocket)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::FirstTouch2, 2, &g);
    m.homeOf(0 * PageBytes, 0);
    m.homeOf(1 * PageBytes, 0);
    m.homeOf(2 * PageBytes, 1);
    EXPECT_EQ(m.mappedPages(), 3u);
    EXPECT_EQ(m.pagesAt(0), 2u);
    EXPECT_EQ(m.pagesAt(1), 1u);
}

TEST(PageMapper, HomeOfExistingDoesNotMap)
{
    StatGroup g("t");
    PageMapper m(MappingPolicy::FirstTouch2, 4, &g);
    m.homeOfExisting(0x9000);
    EXPECT_EQ(m.mappedPages(), 0u);
}

TEST(PageClassifier, FirstTouchIsPrivate)
{
    StatGroup g("t");
    PageClassifier c(&g);
    bool trapped = false;
    EXPECT_TRUE(c.accessAndClassify(0x1000, 5, trapped));
    EXPECT_TRUE(trapped); // first touch traps
    EXPECT_TRUE(c.isPrivateTo(0x1000, 5));
}

TEST(PageClassifier, SameOwnerStaysPrivateNoTrap)
{
    StatGroup g("t");
    PageClassifier c(&g);
    bool trapped = false;
    c.accessAndClassify(0x1000, 5, trapped);
    EXPECT_TRUE(c.accessAndClassify(0x1040, 5, trapped));
    EXPECT_FALSE(trapped);
}

TEST(PageClassifier, SharingReclassifies)
{
    StatGroup g("t");
    PageClassifier c(&g);
    bool trapped = false;
    c.accessAndClassify(0x1000, 5, trapped);
    EXPECT_FALSE(c.accessAndClassify(0x1000, 6, trapped));
    EXPECT_TRUE(trapped); // private -> shared transition traps
    EXPECT_FALSE(c.isPrivateTo(0x1000, 5));
    EXPECT_FALSE(c.isPrivateTo(0x1000, 6));
    EXPECT_EQ(c.reclassifications(), 1u);
}

TEST(PageClassifier, SharedStaysSharedForever)
{
    StatGroup g("t");
    PageClassifier c(&g);
    bool trapped = false;
    c.accessAndClassify(0x1000, 1, trapped);
    c.accessAndClassify(0x1000, 2, trapped);
    // Even the original owner no longer sees it private.
    EXPECT_FALSE(c.accessAndClassify(0x1000, 1, trapped));
    EXPECT_FALSE(trapped); // no more traps once shared
}

TEST(PageClassifier, PageGranularity)
{
    StatGroup g("t");
    PageClassifier c(&g);
    bool trapped = false;
    c.accessAndClassify(0x1000, 1, trapped);
    // A different page is independent.
    EXPECT_TRUE(c.accessAndClassify(0x2000, 2, trapped));
    EXPECT_TRUE(c.isPrivateTo(0x1000, 1));
    EXPECT_TRUE(c.isPrivateTo(0x2000, 2));
}

TEST(PageClassifier, PrivatePageAccounting)
{
    StatGroup g("t");
    PageClassifier c(&g);
    bool trapped = false;
    for (Addr p = 0; p < 10; ++p)
        c.accessAndClassify(p * PageBytes, 0, trapped);
    c.accessAndClassify(0, 1, trapped); // share one
    EXPECT_EQ(c.privatePages(), 9u);
}

} // namespace
} // namespace c3d
