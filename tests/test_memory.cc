/**
 * @file
 * Unit tests for the main-memory timing model.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/memory_controller.hh"
#include "sim/event_queue.hh"

namespace c3d
{
namespace
{

SystemConfig
memConfig()
{
    SystemConfig cfg;
    return cfg;
}

TEST(Memory, ReadLatencyIsAccessPlusSerialization)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = memConfig();
    MemoryController mem(eq, cfg, 0, &g);
    Tick done = 0;
    mem.read(0x1000, false, [&] { done = eq.now(); });
    eq.run();
    // 50 ns = 150 ticks plus 64 B at 12.8 GB/s (~15 ticks).
    EXPECT_GE(done, cfg.memLatency);
    EXPECT_LE(done, cfg.memLatency + 20);
}

TEST(Memory, CountsReadsAndWrites)
{
    EventQueue eq;
    StatGroup g("t");
    MemoryController mem(eq, memConfig(), 0, &g);
    mem.read(0, false, [] {});
    mem.read(64, true, [] {});
    mem.write(128, true);
    mem.write(192, false);
    eq.run();
    EXPECT_EQ(mem.reads(), 2u);
    EXPECT_EQ(mem.writes(), 2u);
    EXPECT_EQ(mem.remoteReads(), 1u);
    EXPECT_EQ(mem.remoteWrites(), 1u);
}

TEST(Memory, ChannelInterleavingByBlock)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = memConfig();
    MemoryController mem(eq, cfg, 0, &g);
    // Blocks 0 and 1 land on different channels (2-channel config),
    // so two parallel reads to them complete at the same time.
    Tick t0 = 0, t1 = 0;
    mem.read(0, false, [&] { t0 = eq.now(); });
    mem.read(64, false, [&] { t1 = eq.now(); });
    eq.run();
    EXPECT_EQ(t0, t1);
}

TEST(Memory, SameChannelContention)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = memConfig();
    MemoryController mem(eq, cfg, 0, &g);
    // Blocks 0 and 2 share a channel in the 2-channel config.
    Tick t0 = 0, t1 = 0;
    mem.read(0, false, [&] { t0 = eq.now(); });
    mem.read(128, false, [&] { t1 = eq.now(); });
    eq.run();
    EXPECT_GT(t1, t0);
}

TEST(Memory, InfiniteBandwidthRemovesContention)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = memConfig();
    cfg.infiniteMemBandwidth = true;
    MemoryController mem(eq, cfg, 0, &g);
    std::vector<Tick> times;
    for (int i = 0; i < 64; ++i) {
        mem.read(static_cast<Addr>(i) * 128, false,
                 [&] { times.push_back(eq.now()); });
    }
    eq.run();
    for (Tick t : times)
        EXPECT_EQ(t, cfg.memLatency);
}

TEST(Memory, PostedWritesOccupyBandwidth)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = memConfig();
    MemoryController mem(eq, cfg, 0, &g);
    // A burst of writes to one channel delays a subsequent read.
    for (int i = 0; i < 32; ++i)
        mem.write(0, false);
    Tick read_done = 0;
    mem.read(0, false, [&] { read_done = eq.now(); });
    eq.run();
    EXPECT_GT(read_done, cfg.memLatency + 20);
}

TEST(Memory, HigherMemLatencyConfigRespected)
{
    EventQueue eq;
    StatGroup g("t");
    SystemConfig cfg = memConfig();
    cfg.memLatency = nsToTicks(100);
    MemoryController mem(eq, cfg, 0, &g);
    Tick done = 0;
    mem.read(0, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_GE(done, nsToTicks(100));
}

} // namespace
} // namespace c3d
