/**
 * @file
 * Tests for the explicit-state protocol checker (§IV-C verification)
 * and the randomized differential harness over the snoopy-family
 * variant state machines (docs/coherence.md): MESI, MESIF, MOESI and
 * Dragon run the same seeded random traces through an abstract
 * versioned-memory model driven by the production SnoopVariant
 * tables, checking data freshness, single-dirty, update consistency
 * and final-memory-image agreement across all variants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "check/model_checker.hh"
#include "coherence/snoopy_variants.hh"

namespace c3d
{
namespace
{

TEST(ModelChecker, C3DTwoSocketsCoherent)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3D;
    cfg.numSockets = 2;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_TRUE(r.ok) << r.violation;
    EXPECT_GT(r.statesExplored, 100u);
}

TEST(ModelChecker, C3DThreeSocketsCoherent)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3D;
    cfg.numSockets = 3;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_TRUE(r.ok) << r.violation;
    // Three sockets explore a much larger space.
    EXPECT_GT(r.statesExplored, 10000u);
}

TEST(ModelChecker, C3DFullDirCoherent)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3DFullDir;
    cfg.numSockets = 3;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelChecker, DroppingBroadcastBreaksCoherence)
{
    // §IV-C: writes to untracked blocks must broadcast; without it an
    // untracked DRAM-cache copy survives a remote write.
    CheckConfig cfg;
    cfg.variant = ModelVariant::BugNoBroadcast;
    cfg.numSockets = 2;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.violation.empty());
}

TEST(ModelChecker, DroppingWriteThroughBreaksCleanProperty)
{
    // §IV-A: without the write-through, memory goes stale while the
    // directory is untracked -- the clean-cache invariant fails.
    CheckConfig cfg;
    cfg.variant = ModelVariant::BugNoWriteThrough;
    cfg.numSockets = 2;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("clean"), std::string::npos)
        << r.violation;
}

TEST(ModelChecker, DeterministicStateCounts)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3D;
    cfg.numSockets = 2;
    const CheckResult a = checkProtocol(cfg);
    const CheckResult b = checkProtocol(cfg);
    EXPECT_EQ(a.statesExplored, b.statesExplored);
    EXPECT_EQ(a.transitionsFired, b.transitionsFired);
}

TEST(ModelChecker, DeeperWriteBoundExploresMore)
{
    CheckConfig shallow;
    shallow.numSockets = 2;
    shallow.maxVersion = 1;
    CheckConfig deep;
    deep.numSockets = 2;
    deep.maxVersion = 3;
    const CheckResult a = checkProtocol(shallow);
    const CheckResult b = checkProtocol(deep);
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(b.ok);
    EXPECT_GT(b.statesExplored, a.statesExplored);
}

// ---- randomized snoopy-variant differential harness -----------------
//
// An abstract machine with versioned data: every write to a line
// bumps its version, so "the requester received current data" is the
// check `supplied version == write count`. The model mirrors the
// generic broadcast engine's semantics (snoopy_protocol.cc) -- probe
// supply rules, supplier fallback, reflective writes, updates --
// while all protocol-specific decisions come from the production
// SnoopVariant plan/complete/evicted tables. Clean copies drop
// silently (never telling the home), exactly the staleness the real
// engine must tolerate.

struct AbstractCopy
{
    bool present = false;
    bool dirty = false;
    std::uint64_t version = 0;
};

struct AbstractLine
{
    std::uint64_t mem = 0;    //!< version memory holds
    std::uint64_t writes = 0; //!< latest version in existence
    HomeLineState home;
    std::vector<AbstractCopy> copy;
};

class AbstractSnoopMachine
{
  public:
    AbstractSnoopMachine(Protocol p, int sockets, int lines)
        : variant(makeSnoopVariant(p)), proto(p)
    {
        line.resize(static_cast<std::size_t>(lines));
        for (AbstractLine &l : line)
            l.copy.resize(static_cast<std::size_t>(sockets));
    }

    const std::string &firstViolation() const { return violation; }

    std::uint64_t memImage(int li) const
    {
        return line[static_cast<std::size_t>(li)].mem;
    }

    void
    access(int s, int li, bool is_write)
    {
        AbstractLine &l = line[static_cast<std::size_t>(li)];
        AbstractCopy &rc = l.copy[static_cast<std::size_t>(s)];

        if (!is_write && rc.present) {
            // Local read hit: no transaction; the copy must be
            // current (a stale survivor means a broken plan).
            expect(rc.version == l.writes, li,
                   "read hit on stale copy");
            return;
        }
        if (is_write && rc.dirty && soleCopy(l, s)) {
            // Exclusive write hit: silent local version bump.
            rc.version = ++l.writes;
            audit(l, li);
            return;
        }
        transact(l, li, s, is_write);
        audit(l, li);
    }

    /** Random eviction; dirty copies write back and notify home. */
    void
    evict(int s, int li)
    {
        AbstractLine &l = line[static_cast<std::size_t>(li)];
        AbstractCopy &c = l.copy[static_cast<std::size_t>(s)];
        if (!c.present)
            return;
        if (c.dirty) {
            l.mem = c.version;
            variant->evicted(l.home, static_cast<SocketId>(s));
        }
        // Clean copies die silently: the home keeps believing.
        c = AbstractCopy{};
    }

    /** Write every dirty copy back; the surviving memory image. */
    void
    flush()
    {
        for (std::size_t li = 0; li < line.size(); ++li) {
            for (std::size_t s = 0; s < line[li].copy.size(); ++s) {
                if (line[li].copy[s].dirty)
                    evict(static_cast<int>(s), static_cast<int>(li));
            }
            expect(line[li].mem == line[li].writes,
                   static_cast<int>(li),
                   "flushed memory image lost a write");
        }
    }

  private:
    bool
    soleCopy(const AbstractLine &l, int s) const
    {
        for (std::size_t t = 0; t < l.copy.size(); ++t) {
            if (static_cast<int>(t) != s && l.copy[t].present)
                return false;
        }
        return true;
    }

    void
    transact(AbstractLine &l, int li, int s, bool is_write)
    {
        AbstractCopy &rc = l.copy[static_cast<std::size_t>(s)];
        const bool has_shared = rc.present && !rc.dirty;
        const SnoopPlan plan = variant->plan(
            l.home, static_cast<SocketId>(s), is_write, has_shared);

        // Probe phase: dirty holders always supply; the planned
        // supplier forwards clean or triggers the fallback memory
        // read; invalidating plans strip every other copy.
        bool have_data = rc.present; // upgrades carry their own data
        std::uint64_t data = rc.present ? rc.version : 0;
        for (std::size_t t = 0; t < l.copy.size(); ++t) {
            if (static_cast<int>(t) == s)
                continue;
            AbstractCopy &c = l.copy[t];
            const bool planned_supplier =
                plan.supplier == static_cast<std::int32_t>(t);
            if (c.present && c.dirty) {
                have_data = true;
                data = std::max(data, c.version);
                if (plan.reflectiveWrite)
                    l.mem = c.version;
                if (plan.invalidateOthers)
                    c = AbstractCopy{};
                else if (!plan.supplierRetainsDirty)
                    c.dirty = false;
            } else if (c.present) {
                if (planned_supplier) {
                    have_data = true;
                    data = std::max(data, c.version);
                }
                if (plan.invalidateOthers)
                    c = AbstractCopy{};
            } else if (planned_supplier) {
                // Stale home state: deterministic fallback read.
                have_data = true;
                data = std::max(data, l.mem);
            }
        }
        if (plan.withMemoryRead && !have_data) {
            have_data = true;
            data = l.mem;
        }

        expect(have_data, li, "transaction with no data source");
        expect(data == l.writes, li, "stale data supplied");

        // Update phase (Dragon): every believed copy still held gets
        // the new version in place.
        const std::uint64_t new_version =
            is_write ? l.writes + 1 : data;
        if (is_write && plan.updateCopies) {
            for (std::size_t t = 0; t < l.copy.size(); ++t) {
                if (static_cast<int>(t) == s || !l.copy[t].present)
                    continue;
                expect(l.home.holds(static_cast<SocketId>(t)), li,
                       "live copy unknown to home missed an update");
                l.copy[t].version = new_version;
                l.copy[t].dirty = false;
            }
        }

        rc.present = true;
        rc.dirty = is_write;
        rc.version = new_version;
        if (is_write)
            l.writes = new_version;

        variant->complete(l.home, static_cast<SocketId>(s),
                          is_write);
    }

    void
    audit(const AbstractLine &l, int li)
    {
        int dirty = 0;
        int holders = 0;
        for (const AbstractCopy &c : l.copy) {
            if (!c.present)
                continue;
            ++holders;
            dirty += c.dirty;
            // Freshness: invalidation or update must have reached
            // every surviving copy.
            expect(c.version == l.writes, li, "stale copy survived");
        }
        expect(dirty <= 1, li, "two dirty copies");
        // SWMR structure: invalidating protocols leave a dirty copy
        // alone; MOESI's owned state and Dragon's update sharing
        // legitimately pair a dirty owner with clean sharers.
        if (dirty == 1 && proto != Protocol::Moesi &&
            proto != Protocol::Dragon)
            expect(holders == 1, li, "dirty copy with sharers");
    }

    void
    expect(bool ok, int li, const char *what)
    {
        if (ok || !violation.empty())
            return;
        violation = std::string(what) + " (line " +
            std::to_string(li) + ", " + variant->name() + ")";
    }

    std::unique_ptr<SnoopVariant> variant;
    Protocol proto;
    std::vector<AbstractLine> line;
    std::string violation;
};

constexpr Protocol AllProtocols[] = {Protocol::Mesi, Protocol::Mesif,
                                     Protocol::Moesi,
                                     Protocol::Dragon};

TEST(SnoopVariantDifferential, RandomTracesHoldInvariants)
{
    constexpr int Sockets = 4;
    constexpr int Lines = 3;
    constexpr int Ops = 4000;

    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
        // One trace per seed, replayed through every variant.
        std::vector<std::uint64_t> image[4];
        for (std::size_t v = 0; v < 4; ++v) {
            AbstractSnoopMachine m(AllProtocols[v], Sockets, Lines);
            std::mt19937 rng(seed);
            for (int i = 0; i < Ops; ++i) {
                const int s = static_cast<int>(rng() % Sockets);
                const int li = static_cast<int>(rng() % Lines);
                const std::uint32_t roll = rng() % 10;
                if (roll < 4)
                    m.access(s, li, /*is_write=*/false);
                else if (roll < 8)
                    m.access(s, li, /*is_write=*/true);
                else
                    m.evict(s, li);
            }
            m.flush();
            EXPECT_EQ(m.firstViolation(), "")
                << protocolName(AllProtocols[v]) << " seed " << seed;
            for (int li = 0; li < Lines; ++li)
                image[v].push_back(m.memImage(li));
        }
        // Differential: every variant ends with the same memory
        // image for the same trace.
        for (std::size_t v = 1; v < 4; ++v) {
            EXPECT_EQ(image[0], image[v])
                << "memory image diverged: "
                << protocolName(AllProtocols[0]) << " vs "
                << protocolName(AllProtocols[v]) << " seed " << seed;
        }
    }
}

TEST(SnoopVariantDifferential, StaleHomeStateIsRecovered)
{
    // Force the stale-forwarder path: a clean copy drops silently,
    // then a read planned to be served by it must still get current
    // data via the fallback memory read.
    for (const Protocol p :
         {Protocol::Mesif, Protocol::Moesi, Protocol::Dragon}) {
        AbstractSnoopMachine m(p, 3, 1);
        m.access(0, 0, true);  // socket 0 writes (v1)
        m.access(1, 0, false); // socket 1 reads; believed supplier
        m.evict(1, 0);         // ... drops its clean copy silently
        m.evict(0, 0);         // owner writes back
        m.access(2, 0, false); // must recover v1 from memory
        EXPECT_EQ(m.firstViolation(), "") << protocolName(p);
    }
}

TEST(ModelChecker, VariantNames)
{
    EXPECT_STREQ(modelVariantName(ModelVariant::C3D), "c3d");
    EXPECT_STREQ(modelVariantName(ModelVariant::C3DFullDir),
                 "c3d-full-dir");
    EXPECT_STREQ(modelVariantName(ModelVariant::BugNoBroadcast),
                 "bug-no-broadcast");
    EXPECT_STREQ(modelVariantName(ModelVariant::BugNoWriteThrough),
                 "bug-no-write-through");
}

} // namespace
} // namespace c3d
