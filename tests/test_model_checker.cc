/**
 * @file
 * Tests for the explicit-state protocol checker (§IV-C verification).
 */

#include <gtest/gtest.h>

#include "check/model_checker.hh"

namespace c3d
{
namespace
{

TEST(ModelChecker, C3DTwoSocketsCoherent)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3D;
    cfg.numSockets = 2;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_TRUE(r.ok) << r.violation;
    EXPECT_GT(r.statesExplored, 100u);
}

TEST(ModelChecker, C3DThreeSocketsCoherent)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3D;
    cfg.numSockets = 3;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_TRUE(r.ok) << r.violation;
    // Three sockets explore a much larger space.
    EXPECT_GT(r.statesExplored, 10000u);
}

TEST(ModelChecker, C3DFullDirCoherent)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3DFullDir;
    cfg.numSockets = 3;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelChecker, DroppingBroadcastBreaksCoherence)
{
    // §IV-C: writes to untracked blocks must broadcast; without it an
    // untracked DRAM-cache copy survives a remote write.
    CheckConfig cfg;
    cfg.variant = ModelVariant::BugNoBroadcast;
    cfg.numSockets = 2;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.violation.empty());
}

TEST(ModelChecker, DroppingWriteThroughBreaksCleanProperty)
{
    // §IV-A: without the write-through, memory goes stale while the
    // directory is untracked -- the clean-cache invariant fails.
    CheckConfig cfg;
    cfg.variant = ModelVariant::BugNoWriteThrough;
    cfg.numSockets = 2;
    const CheckResult r = checkProtocol(cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("clean"), std::string::npos)
        << r.violation;
}

TEST(ModelChecker, DeterministicStateCounts)
{
    CheckConfig cfg;
    cfg.variant = ModelVariant::C3D;
    cfg.numSockets = 2;
    const CheckResult a = checkProtocol(cfg);
    const CheckResult b = checkProtocol(cfg);
    EXPECT_EQ(a.statesExplored, b.statesExplored);
    EXPECT_EQ(a.transitionsFired, b.transitionsFired);
}

TEST(ModelChecker, DeeperWriteBoundExploresMore)
{
    CheckConfig shallow;
    shallow.numSockets = 2;
    shallow.maxVersion = 1;
    CheckConfig deep;
    deep.numSockets = 2;
    deep.maxVersion = 3;
    const CheckResult a = checkProtocol(shallow);
    const CheckResult b = checkProtocol(deep);
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(b.ok);
    EXPECT_GT(b.statesExplored, a.statesExplored);
}

TEST(ModelChecker, VariantNames)
{
    EXPECT_STREQ(modelVariantName(ModelVariant::C3D), "c3d");
    EXPECT_STREQ(modelVariantName(ModelVariant::C3DFullDir),
                 "c3d-full-dir");
    EXPECT_STREQ(modelVariantName(ModelVariant::BugNoBroadcast),
                 "bug-no-broadcast");
    EXPECT_STREQ(modelVariantName(ModelVariant::BugNoWriteThrough),
                 "bug-no-write-through");
}

} // namespace
} // namespace c3d
