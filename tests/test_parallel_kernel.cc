/**
 * @file
 * Differential tests for the parallel per-socket kernel: for every
 * eligible configuration the multi-queue kernel run with N worker
 * threads must reproduce the 1-thread sequential oracle byte for
 * byte at the sweep-emitter level (JSON and CSV), across all five
 * designs, synthetic and composed multi-tenant workloads, and both
 * socket counts. Determinism here is by construction -- the cell
 * schedule (which events run in which W-cell, and their (tick, seq)
 * order within a socket's queue) does not depend on the worker
 * count -- so any divergence is a real ordering bug, not noise.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "exp/sweep_engine.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"
#include "trace/trace_file.hh"
#include "workload/composition.hh"

namespace c3d
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "c3d_parkernel_" + name;
}

/** All five designs x two profiles x {2,4} sockets, seconds-scale. */
exp::SweepGrid
fullDesignGrid()
{
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::Baseline, Design::Snoopy,
                    Design::FullDir, Design::C3D,
                    Design::C3DFullDir};
    grid.sockets = {2, 4};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 300;
    grid.measureOps = 1200;
    return grid;
}

/** Run @p grid with the given kernel options, single sweep worker. */
exp::ResultTable
runGrid(const exp::SweepGrid &grid, KernelOptions kernel)
{
    exp::SweepEngine engine(1);
    engine.setKernelOptions(kernel);
    return engine.run(grid);
}

TEST(ParallelKernel, AllDesignsMatchSequentialOracleByteForByte)
{
    const exp::SweepGrid grid = fullDesignGrid();

    KernelOptions oracle; // parallel=false: 1-thread multi-queue
    const exp::ResultTable ref = runGrid(grid, oracle);

    KernelOptions two;
    two.parallel = true;
    two.threads = 2;
    const exp::ResultTable t2 = runGrid(grid, two);
    EXPECT_EQ(ref.toJson(), t2.toJson());
    EXPECT_EQ(ref.toCsv(), t2.toCsv());

    KernelOptions four;
    four.parallel = true;
    four.threads = 4;
    const exp::ResultTable t4 = runGrid(grid, four);
    EXPECT_EQ(ref.toJson(), t4.toJson());
    EXPECT_EQ(ref.toCsv(), t4.toCsv());
}

TEST(ParallelKernel, AllProtocolVariantsMatchSequentialOracle)
{
    // The protocol axis crossed with the parallel kernel: every
    // snoopy variant (including Dragon's update fan-out and the
    // store write buffer) must be byte-identical to the 1-thread
    // oracle at the emitter level.
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::Snoopy};
    grid.protocols = {Protocol::Mesi, Protocol::Mesif,
                      Protocol::Moesi, Protocol::Dragon};
    grid.sockets = {2, 4};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 300;
    grid.measureOps = 1200;

    KernelOptions oracle;
    const exp::ResultTable ref = runGrid(grid, oracle);

    KernelOptions four;
    four.parallel = true;
    four.threads = 4;
    const exp::ResultTable t4 = runGrid(grid, four);
    EXPECT_EQ(ref.toJson(), t4.toJson());
    EXPECT_EQ(ref.toCsv(), t4.toCsv());
}

/** Record a small deterministic 2-core trace; @p salt perturbs it. */
TraceFileInfo
writeTrace(const std::string &path, Addr salt = 0)
{
    TraceFileWriter w(path, 2);
    for (std::uint32_t i = 0; i < 200; ++i) {
        for (std::uint16_t c = 0; c < 2; ++c) {
            const Addr base = (i * 13 + c * 101 + salt) % 256;
            w.append({c, static_cast<std::uint16_t>(i % 4),
                      i % 5 == 0 ? MemOp::Write : MemOp::Read,
                      base * 64});
        }
    }
    w.close();
    TraceFileInfo info;
    std::string error;
    EXPECT_TRUE(scanTraceFile(path, info, error)) << error;
    return info;
}

TEST(ParallelKernel, ComposedTenantRowsMatchIncludingQosColumns)
{
    // Two-tenant composition: per-tenant latency percentiles come
    // from histograms that every socket thread updates concurrently,
    // so this exercises the atomic stats path end to end.
    const std::string trace_a = tempPath("tena.c3dt");
    const std::string trace_b = tempPath("tenb.c3dt");
    CompositionSpec spec;
    spec.name = "parmix";
    spec.seed = 42;
    spec.tenants.push_back(
        {trace_a, writeTrace(trace_a).contentHash, 0, 0});
    spec.tenants.push_back(
        {trace_b, writeTrace(trace_b, /*salt=*/7).contentHash, 0, 0});

    const std::string manifest = tempPath("parmix.json");
    std::FILE *f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string json = compositionToJson(spec);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);

    WorkloadProfile composed;
    std::string error;
    ASSERT_TRUE(loadCompositionProfile(manifest, composed, error))
        << error;

    exp::SweepGrid grid;
    grid.workloads = {composed};
    grid.designs = {Design::Baseline, Design::C3D};
    grid.sockets = {2, 4};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 50;
    grid.measureOps = 300;

    const exp::ResultTable ref = runGrid(grid, KernelOptions{});

    KernelOptions four;
    four.parallel = true;
    four.threads = 4;
    const exp::ResultTable par = runGrid(grid, four);

    EXPECT_EQ(ref.toJson(), par.toJson());
    EXPECT_EQ(ref.toCsv(), par.toCsv());

    std::remove(manifest.c_str());
    std::remove(trace_a.c_str());
    std::remove(trace_b.c_str());
}

TEST(ParallelKernel, IneligibleConfigsFallBackToSingleQueue)
{
    // Single-socket machines have no cross-socket lookahead to
    // exploit; requesting the parallel kernel must quietly run the
    // classic single-queue kernel rather than fail.
    SystemConfig cfg = test::tinyConfig(Design::C3D, /*sockets=*/1,
                                        /*cores_per_socket=*/2);
    ASSERT_FALSE(Machine::parallelKernelEligible(cfg));
    WorkloadProfile prof = test::tinyProfile("fallback");

    KernelOptions par;
    par.parallel = true;
    par.threads = 4;
    const RunResult a =
        runWorkload(cfg, prof, 100, 400, KernelOptions{});
    const RunResult b = runWorkload(cfg, prof, 100, 400, par);
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);

    // Zero hop latency collapses the lookahead window to nothing;
    // also ineligible.
    SystemConfig zero = test::tinyConfig(Design::C3D, 4, 2);
    zero.zeroHopLatency = true;
    EXPECT_FALSE(Machine::parallelKernelEligible(zero));
}

TEST(ParallelKernel, ThreadCountDoesNotChangeEligibleRunResults)
{
    // Direct runWorkload-level check (no sweep emitters in the
    // loop): every metric the runner extracts is identical across
    // 1, 2, 3 and 8 threads -- including a thread count that does
    // not divide the socket count and one that exceeds it.
    SystemConfig cfg = test::tinyConfig(Design::C3DFullDir, 4, 2);
    ASSERT_TRUE(Machine::parallelKernelEligible(cfg));
    WorkloadProfile prof = test::tinyProfile("threads");

    const RunResult ref =
        runWorkload(cfg, prof, 200, 800, KernelOptions{});
    for (unsigned t : {2u, 3u, 8u}) {
        KernelOptions k;
        k.parallel = true;
        k.threads = t;
        const RunResult r = runWorkload(cfg, prof, 200, 800, k);
        EXPECT_EQ(ref.measuredTicks, r.measuredTicks) << t;
        EXPECT_EQ(ref.instructions, r.instructions) << t;
        EXPECT_EQ(ref.memReads, r.memReads) << t;
        EXPECT_EQ(ref.memWrites, r.memWrites) << t;
        EXPECT_EQ(ref.remoteMemReads, r.remoteMemReads) << t;
        EXPECT_EQ(ref.remoteMemWrites, r.remoteMemWrites) << t;
        EXPECT_EQ(ref.dramCacheHits, r.dramCacheHits) << t;
        EXPECT_EQ(ref.dramCacheMisses, r.dramCacheMisses) << t;
        EXPECT_EQ(ref.llcMisses, r.llcMisses) << t;
        EXPECT_EQ(ref.interSocketBytes, r.interSocketBytes) << t;
        EXPECT_EQ(ref.broadcasts, r.broadcasts) << t;
    }
}

} // namespace
} // namespace c3d
