/**
 * @file
 * Unit and differential tests for the DRAM-cache admission
 * predictors (docs/predictors.md).
 *
 * Covers the perceptron's weight saturation and convergence on
 * crafted streaming-vs-reuse streams, ghost-buffer aliasing and
 * self-clear behavior, byte-identical training under the parallel
 * kernel, and a golden-file differential pinning `predictor=region`
 * sweep rows to the output of the pre-predictor build (column
 * intersection: new columns are excluded, shared columns must match
 * byte for byte).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "dramcache/perceptron_predictor.hh"
#include "exp/sweep_engine.hh"
#include "trace/workload.hh"

#ifndef C3D_TEST_SOURCE_DIR
#error "C3D_TEST_SOURCE_DIR must point at the tests/ directory"
#endif

namespace c3d
{
namespace
{

SystemConfig
perceptronConfig()
{
    SystemConfig cfg;
    cfg.predictorKind = PredictorKind::Perceptron;
    return cfg;
}

/** A configured perceptron over @p cfg with a fresh stat group. */
struct Fixture
{
    StatGroup stats{"t"};
    PerceptronPredictor p;

    explicit Fixture(const SystemConfig &cfg)
    {
        p.configure(cfg, &stats, "p");
    }
};

TEST(PerceptronPredictor, WeightsSaturateAtBounds)
{
    // A huge train margin keeps every probe inside the reinforcement
    // band, so training never stops and the weights must saturate.
    SystemConfig cfg = perceptronConfig();
    cfg.perceptronTrainMargin = 1 << 20;
    Fixture f(cfg);

    // The region and tenant features have stable indices and must
    // pin at the bound; the history feature's index moves with the
    // path fold, so its contribution stays anywhere inside
    // [lo, weightMax] -- the sum may never escape 2x-pinned plus one
    // free feature. (hi = +weightMax, lo = -weightMax - 1, the
    // two's-complement-style asymmetric bound.)
    const std::int32_t hi = cfg.perceptronWeightMax;
    const std::int32_t lo = -cfg.perceptronWeightMax - 1;

    const Addr a = 0x40000;
    for (int i = 0; i < 1000; ++i)
        f.p.trainOnProbe(a, 0, true);
    EXPECT_GE(f.p.weightSum(a, 0), 2 * hi + lo);
    EXPECT_LE(f.p.weightSum(a, 0), 3 * hi);

    for (int i = 0; i < 1000; ++i)
        f.p.trainOnProbe(a, 0, false);
    EXPECT_LE(f.p.weightSum(a, 0), 2 * lo + hi);
    EXPECT_GE(f.p.weightSum(a, 0), 3 * lo);
}

TEST(PerceptronPredictor, ConvergesToBypassOnStreamingTraffic)
{
    Fixture f(perceptronConfig());

    // Streaming: every probe of the region misses and nothing was
    // ever cached, so there are no ghost hits to argue for caching.
    const Addr region = 0x9000000;
    for (int i = 0; i < 64; ++i)
        f.p.trainOnProbe(region + Addr(i) * 64, 0, false);

    EXPECT_LT(f.p.weightSum(region, 0), 0);
    EXPECT_FALSE(f.p.admit(region + 0x40, 0));
    EXPECT_GT(f.p.bypassEvents(), 0u);
}

TEST(PerceptronPredictor, ConvergesToCachingOnReuseTraffic)
{
    Fixture f(perceptronConfig());

    // Reuse: repeated hits in the region vote for caching its kind.
    const Addr region = 0x5000000;
    for (int i = 0; i < 64; ++i)
        f.p.trainOnProbe(region + Addr(i % 8) * 64, 0, true);

    EXPECT_GE(f.p.weightSum(region, 0), 0);
    EXPECT_TRUE(f.p.admit(region + 0x80, 0));
    EXPECT_GT(f.p.trainEvents(), 0u);
}

TEST(PerceptronPredictor, GhostHitConvertsMissIntoCachingVote)
{
    Fixture f(perceptronConfig());

    // Drive the region's weights firmly negative...
    const Addr a = 0x7000000;
    for (int i = 0; i < 64; ++i)
        f.p.trainOnProbe(a + Addr(i) * 64, 0, false);
    ASSERT_LT(f.p.weightSum(a, 0), 0);

    // ...then evict a line of that region (enters the ghost buffer).
    f.p.onInsert(a);
    f.p.onRemove(a);
    ASSERT_TRUE(f.p.ghostContains(a));

    // A subsequent miss on the evicted line is reuse-after-eviction:
    // it counts as a ghost hit and trains toward caching.
    const std::uint64_t before = f.p.ghostHits();
    f.p.trainOnProbe(a, 0, false);
    EXPECT_EQ(f.p.ghostHits(), before + 1);

    std::int32_t last = f.p.weightSum(a, 0);
    for (int i = 0; i < 256 && last < 0; ++i) {
        f.p.trainOnProbe(a, 0, false);
        last = f.p.weightSum(a, 0);
    }
    EXPECT_GE(last, 0) << "ghost hits never recovered the region";
}

TEST(PerceptronPredictor, GhostBufferHasNoFalseNegativesBeforeReset)
{
    // Tiny filter (64 bits) and addresses chosen to alias heavily:
    // false positives are allowed, false negatives are not.
    SystemConfig cfg = perceptronConfig();
    cfg.ghostBufferBits = 64;
    cfg.ghostBufferResetEvictions = 1000;
    Fixture f(cfg);

    std::vector<Addr> evicted;
    for (int i = 0; i < 24; ++i) {
        const Addr a = 0x1000 + Addr(i) * 0x10040;
        f.p.onInsert(a);
        f.p.onRemove(a);
        evicted.push_back(a);
    }
    for (Addr a : evicted)
        EXPECT_TRUE(f.p.ghostContains(a));
}

TEST(PerceptronPredictor, GhostBufferSelfClearsAfterResetCount)
{
    SystemConfig cfg = perceptronConfig();
    cfg.ghostBufferResetEvictions = 8;
    Fixture f(cfg);

    const Addr first = 0x2000;
    f.p.onInsert(first);
    f.p.onRemove(first);
    ASSERT_TRUE(f.p.ghostContains(first));

    // Eight more recorded evictions push the insert count past the
    // reset threshold; the clear drops the first line's bits.
    for (int i = 1; i <= 8; ++i) {
        const Addr a = 0x2000 + Addr(i) * 0x40000;
        f.p.onInsert(a);
        f.p.onRemove(a);
    }
    EXPECT_FALSE(f.p.ghostContains(first));
}

/** facesim+canneal on c3d, both socket counts, perceptron gate. */
exp::SweepGrid
perceptronGrid()
{
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::C3D, Design::Snoopy};
    grid.predictors = {PredictorKind::Region,
                       PredictorKind::Perceptron};
    grid.sockets = {2, 4};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 500;
    grid.measureOps = 2000;
    return grid;
}

TEST(PerceptronPredictor, ParallelKernelTrainingIsDeterministic)
{
    // Perceptron state is per-socket and only ever touched from the
    // socket's own event queue, so the parallel kernel must produce
    // byte-identical weights, decisions, and therefore rows.
    const exp::SweepGrid grid = perceptronGrid();

    exp::SweepEngine seq(1);
    const exp::ResultTable ref = seq.run(grid);

    KernelOptions kernel;
    kernel.parallel = true;
    kernel.threads = 4;
    exp::SweepEngine par(1);
    par.setKernelOptions(kernel);
    const exp::ResultTable got = par.run(grid);

    EXPECT_EQ(ref.toJson(), got.toJson());
    EXPECT_EQ(ref.toCsv(), got.toCsv());
}

TEST(PerceptronPredictor, PerceptronChangesBehaviorSomewhere)
{
    // Sanity that the sweep axis is live: at least one grid point
    // must report bypasses, and region rows must report none.
    exp::SweepEngine engine(1);
    const exp::ResultTable table = engine.run(perceptronGrid());
    std::uint64_t region_bypasses = 0, perceptron_bypasses = 0;
    for (const exp::ResultRow &row : table.rows()) {
        if (row.predictor == "perceptron")
            perceptron_bypasses += row.metrics.predictorBypasses;
        else
            region_bypasses += row.metrics.predictorBypasses;
    }
    EXPECT_EQ(region_bypasses, 0u);
    EXPECT_GT(perceptron_bypasses, 0u);
}

// ---- golden-file differential ---------------------------------------

/** Parse CSV text into header + rows of cells (no quoting in ours). */
void
parseCsv(const std::string &text, std::vector<std::string> &header,
         std::vector<std::vector<std::string>> &rows)
{
    std::istringstream in(text);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::string cell;
        std::istringstream ls(line);
        while (std::getline(ls, cell, ','))
            cells.push_back(cell);
        if (line.back() == ',')
            cells.push_back("");
        if (first) {
            header = cells;
            first = false;
        } else {
            rows.push_back(cells);
        }
    }
}

TEST(PredictorDifferential, RegionRowsMatchPrePredictorGolden)
{
    // The golden file is the committed output of the build *before*
    // the predictor axis existed, over this exact grid. Region rows
    // must reproduce it byte-for-byte on every shared column -- the
    // new predictor/counter columns are the only allowed delta.
    std::ifstream gf(std::string(C3D_TEST_SOURCE_DIR) +
                     "/golden/pre_pr10_region.csv");
    ASSERT_TRUE(gf.good()) << "missing tests/golden file";
    std::stringstream gbuf;
    gbuf << gf.rdbuf();

    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::Baseline, Design::Snoopy, Design::C3D};
    grid.sockets = {2, 4};
    grid = exp::quickPreset(std::move(grid));
    exp::SweepEngine engine(1);
    const std::string csv = engine.run(grid).toCsv();

    std::vector<std::string> ghdr, nhdr;
    std::vector<std::vector<std::string>> grows, nrows;
    parseCsv(gbuf.str(), ghdr, grows);
    parseCsv(csv, nhdr, nrows);
    ASSERT_EQ(grows.size(), nrows.size());

    std::map<std::string, std::size_t> ncol;
    for (std::size_t i = 0; i < nhdr.size(); ++i)
        ncol[nhdr[i]] = i;
    // Every pre-PR column must still exist: dropping one would break
    // downstream readers, not just change bytes.
    for (const std::string &name : ghdr)
        ASSERT_TRUE(ncol.count(name)) << "column vanished: " << name;

    for (std::size_t r = 0; r < grows.size(); ++r) {
        for (std::size_t c = 0; c < ghdr.size(); ++c) {
            EXPECT_EQ(grows[r][c], nrows[r][ncol[ghdr[c]]])
                << "row " << r << " column " << ghdr[c];
        }
    }
}

} // namespace
} // namespace c3d
