/**
 * @file
 * Parameterized property tests: invariants that must hold for every
 * design, socket count, and latency point.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/log.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyConfig;
using test::tinyProfile;

// ---------------------------------------------------------------------
// Design x socket-count sweep
// ---------------------------------------------------------------------

class DesignSocketSweep
    : public ::testing::TestWithParam<std::tuple<Design, std::uint32_t>>
{
};

TEST_P(DesignSocketSweep, RunCompletesAndConserves)
{
    setQuiet(true);
    const auto [design, sockets] = GetParam();
    SystemConfig cfg = tinyConfig(design, sockets);
    SyntheticWorkload wl(tinyProfile(), cfg.totalCores(),
                         cfg.coresPerSocket);
    Runner r(cfg, wl);
    const RunResult res = r.run(800, 2400);

    // Liveness: everything retires.
    for (const auto &cpu : r.cores())
        EXPECT_TRUE(cpu->finished());

    // Conservation: every memory access is a read or a write, remote
    // never exceeds total.
    EXPECT_LE(res.remoteMemReads, res.memReads);
    EXPECT_LE(res.remoteMemWrites, res.memWrites);
    EXPECT_GT(res.memReads, 0u);

    // The kernel queues fully drained (no lost transactions).
    EXPECT_EQ(r.machine().totalPendingEvents(), 0u);
}

TEST_P(DesignSocketSweep, SwmrHoldsOnSampledBlocks)
{
    setQuiet(true);
    const auto [design, sockets] = GetParam();
    SystemConfig cfg = tinyConfig(design, sockets);
    SyntheticWorkload wl(tinyProfile(), cfg.totalCores(),
                         cfg.coresPerSocket);
    Runner r(cfg, wl);
    r.run(500, 2000);

    // Structural SWMR check over the whole footprint: a block
    // Modified in one socket's LLC must not be valid anywhere else.
    Machine &m = r.machine();
    const std::uint64_t footprint = wl.footprintBytes();
    for (Addr a = 0; a < footprint; a += BlockBytes * 7) {
        SocketId owner = InvalidSocket;
        for (SocketId s = 0; s < cfg.numSockets; ++s) {
            if (m.socket(s).llcState(a) == CacheState::Modified)
                owner = s;
        }
        if (owner == InvalidSocket)
            continue;
        for (SocketId s = 0; s < cfg.numSockets; ++s) {
            if (s == owner)
                continue;
            EXPECT_EQ(m.socket(s).llcState(a), CacheState::Invalid)
                << "block " << std::hex << a << " modified at "
                << owner << " but valid at " << s;
            if (m.socket(s).dramCache()) {
                EXPECT_FALSE(m.socket(s).dramCache()->contains(a))
                    << "block " << std::hex << a
                    << " modified at " << owner
                    << " but in DRAM cache of " << s;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignSocketSweep,
    ::testing::Combine(::testing::Values(Design::Baseline,
                                         Design::Snoopy,
                                         Design::FullDir, Design::C3D,
                                         Design::C3DFullDir),
                       ::testing::Values(2u, 4u)),
    [](const auto &info) {
        std::string name = designName(std::get<0>(info.param));
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_" + std::to_string(std::get<1>(info.param)) +
            "s";
    });

// ---------------------------------------------------------------------
// Clean-cache property sweep
// ---------------------------------------------------------------------

class CleanDesignSweep : public ::testing::TestWithParam<Design>
{
};

TEST_P(CleanDesignSweep, DramCachesNeverDirty)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(GetParam());
    SyntheticWorkload wl(tinyProfile(), cfg.totalCores(),
                         cfg.coresPerSocket);
    Runner r(cfg, wl);
    r.run(500, 2500);
    Machine &m = r.machine();
    // §IV-A: the clean property -- no dirty block anywhere in any
    // DRAM cache, ever. Scan the whole footprint.
    const std::uint64_t footprint = wl.footprintBytes();
    for (SocketId s = 0; s < cfg.numSockets; ++s) {
        ASSERT_NE(m.socket(s).dramCache(), nullptr);
        for (Addr a = 0; a < footprint; a += BlockBytes) {
            ASSERT_FALSE(m.socket(s).dramCache()->isDirty(a))
                << "dirty block in clean DRAM cache, socket " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(CleanDesigns, CleanDesignSweep,
                         ::testing::Values(Design::C3D,
                                           Design::C3DFullDir),
                         [](const auto &info) {
                             return info.param == Design::C3D
                                 ? "c3d" : "c3d_full_dir";
                         });

// ---------------------------------------------------------------------
// Mapping-policy sweep
// ---------------------------------------------------------------------

class MappingSweep : public ::testing::TestWithParam<MappingPolicy>
{
};

TEST_P(MappingSweep, AllPoliciesCompleteWithSameWork)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    cfg.mapping = GetParam();
    const RunResult r = runWorkload(cfg, tinyProfile(), 600, 1800);
    EXPECT_GT(r.measuredTicks, 0u);
    // Identical instruction streams regardless of placement.
    const RunResult again = runWorkload(cfg, tinyProfile(), 600, 1800);
    EXPECT_EQ(r.instructions, again.instructions);
}

INSTANTIATE_TEST_SUITE_P(Policies, MappingSweep,
                         ::testing::Values(MappingPolicy::Interleave,
                                           MappingPolicy::FirstTouch1,
                                           MappingPolicy::FirstTouch2),
                         [](const auto &info) {
                             return std::string(
                                 mappingPolicyName(info.param));
                         });

// ---------------------------------------------------------------------
// Latency-sensitivity monotonicity (Fig. 10 / Fig. 11 shape)
// ---------------------------------------------------------------------

class HopLatencySweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HopLatencySweep, BaselineSlowsWithHopLatency)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::Baseline);
    cfg.hopLatency = nsToTicks(GetParam());
    const RunResult r = runWorkload(cfg, tinyProfile(), 600, 1800);
    // Store for cross-parameter comparison via static state.
    static std::uint64_t last_latency = 0;
    static Tick last_ticks = 0;
    if (last_latency && GetParam() > last_latency)
        EXPECT_GE(r.measuredTicks, last_ticks);
    last_latency = GetParam();
    last_ticks = r.measuredTicks;
}

INSTANTIATE_TEST_SUITE_P(Fig11Points, HopLatencySweep,
                         ::testing::Values(5u, 10u, 20u, 30u));

// ---------------------------------------------------------------------
// Workload-profile sweep: every paper profile runs on the tiny box
// ---------------------------------------------------------------------

class ProfileSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ProfileSweep, ScaledProfileRunsUnderC3D)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    const WorkloadProfile p =
        profileByName(GetParam()).scaled(test::TestScale);
    const RunResult r = runWorkload(cfg, p, 400, 1200);
    EXPECT_GT(r.measuredTicks, 0u);
    EXPECT_GT(r.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperProfiles, ProfileSweep,
    ::testing::Values("facesim", "streamcluster", "freqmine",
                      "fluidanimate", "canneal", "tunkrank", "nutch",
                      "cassandra", "classification", "mcf"),
    [](const auto &info) { return std::string(info.param); });

} // namespace
} // namespace c3d
