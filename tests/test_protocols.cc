/**
 * @file
 * Protocol-level tests: drive cross-socket access sequences through
 * each design and check states, data paths, and traffic properties
 * against the paper's protocol descriptions (§III, §IV-C).
 */

#include <gtest/gtest.h>

#include "coherence/directory_protocols.hh"
#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyConfig;

void
load(Machine &m, SocketId s, Addr addr)
{
    bool done = false;
    m.socket(s).load(0, addr, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    m.eventQueue().run();
}

void
store(Machine &m, SocketId s, Addr addr, bool priv = false)
{
    bool done = false;
    m.socket(s).store(0, addr, priv, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    m.eventQueue().run();
}

DirectoryProtocol &
dirProto(Machine &m)
{
    return static_cast<DirectoryProtocol &>(m.protocol());
}

// Address homed at socket 0 under FT2 when socket 0 touches first;
// use explicit interleave for deterministic homes instead.
SystemConfig
cfgWith(Design d)
{
    SystemConfig cfg = tinyConfig(d);
    cfg.mapping = MappingPolicy::Interleave;
    return cfg;
}

/** Page 0 is homed at socket 0 under interleave. */
constexpr Addr HomedAt0 = 0x0C0;

TEST(ProtocolBaseline, GetSFromRemoteMemory)
{
    Machine m(cfgWith(Design::Baseline));
    load(m, 1, HomedAt0);
    EXPECT_EQ(m.socket(1).llcState(HomedAt0), CacheState::Shared);
    EXPECT_EQ(m.socket(0).memory().reads(), 1u);
    EXPECT_EQ(m.socket(0).memory().remoteReads(), 1u);
    // Baseline tracks the reader.
    DirEntry *e = dirProto(m).directory(0).find(HomedAt0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_TRUE(e->isSharer(1));
}

TEST(ProtocolBaseline, GetXInvalidatesRemoteSharers)
{
    Machine m(cfgWith(Design::Baseline));
    load(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    store(m, 3, HomedAt0);
    EXPECT_EQ(m.socket(1).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_EQ(m.socket(2).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_EQ(m.socket(3).llcState(HomedAt0), CacheState::Modified);
    DirEntry *e = dirProto(m).directory(0).find(HomedAt0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Modified);
    EXPECT_EQ(e->owner, 3u);
}

TEST(ProtocolBaseline, GetSForwardsFromModifiedOwner)
{
    Machine m(cfgWith(Design::Baseline));
    store(m, 1, HomedAt0);
    const std::uint64_t fwd_before =
        m.stats().valueOf("proto.forwards");
    load(m, 2, HomedAt0);
    EXPECT_EQ(m.stats().valueOf("proto.forwards"), fwd_before + 1);
    EXPECT_EQ(m.socket(1).llcState(HomedAt0), CacheState::Shared);
    EXPECT_EQ(m.socket(2).llcState(HomedAt0), CacheState::Shared);
    // Reflective writeback refreshed memory.
    EXPECT_GE(m.socket(0).memory().writes(), 1u);
}

TEST(ProtocolC3D, ReadsStayUntracked)
{
    Machine m(cfgWith(Design::C3D));
    load(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    // §IV-B: no directory allocation for reads to untracked blocks.
    EXPECT_EQ(dirProto(m).directory(0).find(HomedAt0), nullptr);
    EXPECT_EQ(m.socket(1).llcState(HomedAt0), CacheState::Shared);
    EXPECT_EQ(m.socket(2).llcState(HomedAt0), CacheState::Shared);
}

TEST(ProtocolC3D, UntrackedWriteBroadcasts)
{
    Machine m(cfgWith(Design::C3D));
    load(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    const std::uint64_t bcast_before =
        m.stats().valueOf("proto.broadcasts");
    store(m, 3, HomedAt0);
    EXPECT_EQ(m.stats().valueOf("proto.broadcasts"), bcast_before + 1);
    // The untracked copies are gone: coherence maintained.
    EXPECT_EQ(m.socket(1).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_EQ(m.socket(2).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_EQ(m.socket(3).llcState(HomedAt0), CacheState::Modified);
}

TEST(ProtocolC3D, WritesAreTracked)
{
    Machine m(cfgWith(Design::C3D));
    store(m, 2, HomedAt0);
    DirEntry *e = dirProto(m).directory(0).find(HomedAt0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Modified);
    EXPECT_EQ(e->owner, 2u);
}

TEST(ProtocolC3D, ModifiedToSharedOnRemoteGetS)
{
    Machine m(cfgWith(Design::C3D));
    store(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    DirEntry *e = dirProto(m).directory(0).find(HomedAt0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_TRUE(e->isSharer(1));
    EXPECT_TRUE(e->isSharer(2));
    // Fig. 5: write-through on downgrade keeps memory fresh.
    EXPECT_GE(m.socket(0).memory().writes(), 1u);
}

TEST(ProtocolC3D, SharedStateUsesVectorNotBroadcast)
{
    Machine m(cfgWith(Design::C3D));
    store(m, 1, HomedAt0); // M{1}
    load(m, 2, HomedAt0);  // S{1,2}
    const std::uint64_t bcast_before =
        m.stats().valueOf("proto.broadcasts");
    const std::uint64_t invs_before =
        m.stats().valueOf("proto.invalidations");
    store(m, 2, HomedAt0); // upgrade in S: invalidate vector only
    EXPECT_EQ(m.stats().valueOf("proto.broadcasts"), bcast_before);
    // Only socket 1 needed an invalidation.
    EXPECT_EQ(m.stats().valueOf("proto.invalidations"),
              invs_before + 1);
}

TEST(ProtocolC3D, CleanWriteThroughOnDirtyEviction)
{
    SystemConfig cfg = cfgWith(Design::C3D);
    Machine m(cfg);
    store(m, 1, HomedAt0);
    const std::uint64_t writes_before = m.socket(0).memory().writes();
    // Evict the dirty block from socket 1's LLC by conflicts.
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        load(m, 1, HomedAt0 + w * sets * BlockBytes);
    m.eventQueue().run();
    // §IV-A: dirty eviction writes through to memory...
    EXPECT_GT(m.socket(0).memory().writes(), writes_before);
    // ...while the local DRAM cache retains a clean copy.
    EXPECT_TRUE(m.socket(1).dramCache()->contains(HomedAt0));
    EXPECT_FALSE(m.socket(1).dramCache()->isDirty(HomedAt0));
    // ...and the directory entry is gone (non-inclusive).
    EXPECT_EQ(dirProto(m).directory(0).find(HomedAt0), nullptr);
}

TEST(ProtocolC3D, NoRemoteDramCacheProbeOnReadMiss)
{
    // The defining C3D property: a read miss is served by memory,
    // never by a remote DRAM cache, even when one holds the block.
    SystemConfig cfg = cfgWith(Design::C3D);
    Machine m(cfg);
    store(m, 1, HomedAt0);
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        load(m, 1, HomedAt0 + w * sets * BlockBytes);
    m.eventQueue().run();
    ASSERT_TRUE(m.socket(1).dramCache()->contains(HomedAt0));
    const std::uint64_t s1_dc_hits =
        m.socket(1).dramCache()->hitCount();
    const std::uint64_t mem_reads = m.socket(0).memory().reads();
    load(m, 2, HomedAt0);
    // Socket 2's miss went to memory; socket 1's DRAM cache was not
    // read.
    EXPECT_EQ(m.socket(0).memory().reads(), mem_reads + 1);
    EXPECT_EQ(m.socket(1).dramCache()->hitCount(), s1_dc_hits);
}

TEST(ProtocolC3D, PrivatePageElidesBroadcast)
{
    SystemConfig cfg = cfgWith(Design::C3D);
    cfg.tlbPageClassification = true;
    Machine m(cfg);
    const std::uint64_t before =
        m.stats().valueOf("proto.broadcasts_elided");
    store(m, 1, HomedAt0, /*priv=*/true);
    EXPECT_EQ(m.stats().valueOf("proto.broadcasts_elided"),
              before + 1);
    EXPECT_EQ(m.stats().valueOf("proto.broadcasts"), 0u);
}

TEST(ProtocolFullDir, ReadsAreTracked)
{
    Machine m(cfgWith(Design::FullDir));
    load(m, 1, HomedAt0);
    DirEntry *e = dirProto(m).directory(0).find(HomedAt0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_TRUE(e->isSharer(1));
}

TEST(ProtocolFullDir, NoBroadcastsEver)
{
    Machine m(cfgWith(Design::FullDir));
    load(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    store(m, 3, HomedAt0);
    store(m, 1, HomedAt0);
    EXPECT_EQ(m.stats().valueOf("proto.broadcasts"), 0u);
}

TEST(ProtocolFullDir, DirtyBlockLivesInDramCache)
{
    SystemConfig cfg = cfgWith(Design::FullDir);
    Machine m(cfg);
    store(m, 1, HomedAt0);
    const std::uint64_t writes_before = m.socket(0).memory().writes();
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        load(m, 1, HomedAt0 + w * sets * BlockBytes);
    m.eventQueue().run();
    // Dirty design: the block sinks into the DRAM cache dirty, no
    // memory write-through.
    EXPECT_TRUE(m.socket(1).dramCache()->isDirty(HomedAt0));
    EXPECT_EQ(m.socket(0).memory().writes(), writes_before);
}

TEST(ProtocolFullDir, SlowRemoteHitServedByOwnerDramCache)
{
    // §III-B Fig. 4: a dirty block in a remote DRAM cache forces the
    // three-hop forward path instead of memory.
    SystemConfig cfg = cfgWith(Design::FullDir);
    Machine m(cfg);
    store(m, 1, HomedAt0);
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        load(m, 1, HomedAt0 + w * sets * BlockBytes);
    m.eventQueue().run();
    ASSERT_TRUE(m.socket(1).dramCache()->isDirty(HomedAt0));
    const std::uint64_t mem_reads_before =
        m.socket(0).memory().reads();
    const std::uint64_t fwds_before =
        m.stats().valueOf("proto.forwards");
    load(m, 2, HomedAt0);
    // Served by owner, not memory.
    EXPECT_EQ(m.stats().valueOf("proto.forwards"), fwds_before + 1);
    EXPECT_EQ(m.socket(0).memory().reads(), mem_reads_before);
    // After the forward the block is clean everywhere.
    EXPECT_FALSE(m.socket(1).dramCache()->isDirty(HomedAt0));
}

TEST(ProtocolC3DFullDir, PutXKeepsEvictingSocketTracked)
{
    SystemConfig cfg = cfgWith(Design::C3DFullDir);
    Machine m(cfg);
    store(m, 1, HomedAt0);
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        load(m, 1, HomedAt0 + w * sets * BlockBytes);
    m.eventQueue().run();
    // §V-A: "modified blocks transition to the shared state after
    // receiving a writeback."
    DirEntry *e = dirProto(m).directory(0).find(HomedAt0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_TRUE(e->isSharer(1));
}

TEST(ProtocolSnoopy, RemoteDirtySuppliedBySnoop)
{
    SystemConfig cfg = cfgWith(Design::Snoopy);
    Machine m(cfg);
    store(m, 1, HomedAt0);
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        load(m, 1, HomedAt0 + w * sets * BlockBytes);
    m.eventQueue().run();
    ASSERT_TRUE(m.socket(1).dramCache()->isDirty(HomedAt0));
    const std::uint64_t dirty_before =
        m.stats().valueOf("proto.snoop_dirty_hits");
    load(m, 2, HomedAt0);
    EXPECT_EQ(m.stats().valueOf("proto.snoop_dirty_hits"),
              dirty_before + 1);
    EXPECT_FALSE(m.socket(1).dramCache()->isDirty(HomedAt0));
}

TEST(ProtocolSnoopy, EverySocketProbedOnMiss)
{
    Machine m(cfgWith(Design::Snoopy));
    const std::uint64_t snoops_before =
        m.stats().valueOf("proto.snoops");
    load(m, 1, HomedAt0);
    // 3 remote sockets probed in the quad-socket machine.
    EXPECT_EQ(m.stats().valueOf("proto.snoops"), snoops_before + 3);
}

TEST(ProtocolSnoopy, WriteInvalidatesEverywhere)
{
    Machine m(cfgWith(Design::Snoopy));
    load(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    store(m, 3, HomedAt0);
    EXPECT_EQ(m.socket(1).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_EQ(m.socket(2).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_EQ(m.socket(3).llcState(HomedAt0), CacheState::Modified);
}

SystemConfig
snoopyWith(Protocol p)
{
    SystemConfig cfg = cfgWith(Design::Snoopy);
    cfg.protocol = p;
    return cfg;
}

TEST(ProtocolSnoopyMesif, CleanForwardSparesMemory)
{
    Machine m(snoopyWith(Protocol::Mesif));
    load(m, 1, HomedAt0); // memory read; socket 1 becomes forwarder
    const std::uint64_t reads = m.socket(0).memory().reads();
    const std::uint64_t fwds =
        m.stats().valueOf("proto.snoop_clean_forwards");
    load(m, 2, HomedAt0);
    // The F-state holder supplied the clean block cache-to-cache;
    // the home memory was never read again.
    EXPECT_EQ(m.stats().valueOf("proto.snoop_clean_forwards"),
              fwds + 1);
    EXPECT_EQ(m.socket(0).memory().reads(), reads);
    // Forwardership migrated to the newest reader: a third read is
    // served by socket 2, again without memory.
    load(m, 3, HomedAt0);
    EXPECT_EQ(m.stats().valueOf("proto.snoop_clean_forwards"),
              fwds + 2);
    EXPECT_EQ(m.socket(0).memory().reads(), reads);
}

TEST(ProtocolSnoopyMoesi, DirtySupplierRetainsOwnership)
{
    Machine m(snoopyWith(Protocol::Moesi));
    store(m, 1, HomedAt0);
    const std::uint64_t writes = m.socket(0).memory().writes();
    const std::uint64_t dirty =
        m.stats().valueOf("proto.snoop_dirty_hits");
    load(m, 2, HomedAt0);
    // The owner supplied the dirty block directly (O state): no
    // reflective writeback, memory stays stale by design.
    EXPECT_EQ(m.stats().valueOf("proto.snoop_dirty_hits"), dirty + 1);
    EXPECT_EQ(m.socket(0).memory().writes(), writes);
    // The retained owner keeps supplying later readers too.
    load(m, 3, HomedAt0);
    EXPECT_EQ(m.stats().valueOf("proto.snoop_dirty_hits"), dirty + 2);
    EXPECT_EQ(m.socket(0).memory().writes(), writes);
}

TEST(ProtocolSnoopyDragon, WriteUpdatesSharersInPlace)
{
    Machine m(snoopyWith(Protocol::Dragon));
    load(m, 1, HomedAt0);
    load(m, 2, HomedAt0);
    const std::uint64_t updates =
        m.stats().valueOf("proto.snoop_updates");
    store(m, 3, HomedAt0);
    // Update-based: both believed sharers received a data update and
    // their copies remain valid -- nothing was invalidated.
    EXPECT_EQ(m.stats().valueOf("proto.snoop_updates"), updates + 2);
    EXPECT_NE(m.socket(1).llcState(HomedAt0), CacheState::Invalid);
    EXPECT_NE(m.socket(2).llcState(HomedAt0), CacheState::Invalid);
}

TEST(ProtocolAll, LocalAccessGeneratesNoTraffic)
{
    for (Design d : {Design::Baseline, Design::Snoopy, Design::FullDir,
                     Design::C3D, Design::C3DFullDir}) {
        Machine m(cfgWith(d));
        // Address homed at socket 0, accessed by socket 0.
        load(m, 0, HomedAt0);
        if (d == Design::Snoopy) {
            // Snoopy broadcasts even for local misses -- the
            // pathology the paper highlights.
            EXPECT_GT(m.interSocketBytes(), 0u) << designName(d);
        } else {
            EXPECT_EQ(m.interSocketBytes(), 0u) << designName(d);
        }
    }
}

TEST(ProtocolAll, SecondLocalReadHitsWithoutTraffic)
{
    for (Design d : {Design::Baseline, Design::FullDir, Design::C3D,
                     Design::C3DFullDir}) {
        Machine m(cfgWith(d));
        load(m, 2, HomedAt0);
        const std::uint64_t bytes = m.interSocketBytes();
        load(m, 2, HomedAt0); // LLC hit
        EXPECT_EQ(m.interSocketBytes(), bytes) << designName(d);
    }
}

} // namespace
} // namespace c3d
