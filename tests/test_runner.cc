/**
 * @file
 * Tests for the Runner: warm-up/measurement windows, metrics, and
 * multi-run isolation.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyConfig;
using test::tinyProfile;

TEST(Runner, ProducesNonTrivialMetrics)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    SyntheticWorkload wl(tinyProfile(), cfg.totalCores(),
                         cfg.coresPerSocket);
    Runner r(cfg, wl);
    const RunResult res = r.run(500, 1500);
    EXPECT_GT(res.measuredTicks, 0u);
    EXPECT_GT(res.instructions, 1500u * cfg.totalCores());
    EXPECT_GT(res.memReads, 0u);
    EXPECT_GT(res.ipc(), 0.0);
    EXPECT_LT(res.ipc(), static_cast<double>(cfg.totalCores()));
}

TEST(Runner, NoCallbackHeapFallbacksInAnyDesign)
{
    // Perf contract (docs/perf.md): every continuation the simulator
    // schedules fits the event's inline-capture budget. A capture
    // that outgrows it still runs correctly but silently costs a
    // heap allocation per event -- this test turns that into a
    // failure for each coherence design's scheduling paths.
    setQuiet(true);
    for (const Design d :
         {Design::Baseline, Design::Snoopy, Design::FullDir,
          Design::C3D, Design::C3DFullDir}) {
        SystemConfig cfg = tinyConfig(d);
        SyntheticWorkload wl(tinyProfile(), cfg.totalCores(),
                             cfg.coresPerSocket);
        Runner r(cfg, wl);
        r.run(300, 1200);
        EXPECT_EQ(r.machine().totalHeapCallbackEvents(), 0u)
            << "design " << designName(d);
    }
}

TEST(Runner, WarmupExcludedFromWindow)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::Baseline);
    // Same measurement quota, different warm-up: measured reads stay
    // in the same ballpark (the warm-up accesses are not counted).
    const RunResult a = runWorkload(cfg, tinyProfile(), 200, 2000);
    const RunResult b = runWorkload(cfg, tinyProfile(), 2000, 2000);
    const double ratio = static_cast<double>(a.memReads) /
        static_cast<double>(b.memReads);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.5);
}

TEST(Runner, LongerWarmupImprovesDramCacheHitRate)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    const RunResult cold = runWorkload(cfg, tinyProfile(), 100, 2000);
    const RunResult warm = runWorkload(cfg, tinyProfile(), 5000, 2000);
    const double cold_rate = static_cast<double>(cold.dramCacheHits) /
        (cold.dramCacheHits + cold.dramCacheMisses + 1);
    const double warm_rate = static_cast<double>(warm.dramCacheHits) /
        (warm.dramCacheHits + warm.dramCacheMisses + 1);
    EXPECT_GE(warm_rate, cold_rate);
}

TEST(Runner, MeasureScalesWithQuota)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::Baseline);
    const RunResult small = runWorkload(cfg, tinyProfile(), 500, 1000);
    const RunResult big = runWorkload(cfg, tinyProfile(), 500, 4000);
    const double ratio = static_cast<double>(big.instructions) /
        static_cast<double>(small.instructions);
    EXPECT_NEAR(ratio, 4.0, 0.3);
}

TEST(Runner, SingleThreadedRunsOnlyCoreZero)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    WorkloadProfile p = tinyProfile("st");
    p.singleThreaded = true;
    SyntheticWorkload wl(p, cfg.totalCores(), cfg.coresPerSocket);
    Runner r(cfg, wl);
    const RunResult res = r.run(200, 800);
    EXPECT_GT(res.measuredTicks, 0u);
    EXPECT_EQ(r.cores()[0]->opsIssued(), 1000u);
    for (std::size_t c = 1; c < r.cores().size(); ++c)
        EXPECT_EQ(r.cores()[c]->opsIssued(), 0u);
}

TEST(Runner, BarriersBoundCoreSkew)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::Baseline);
    WorkloadProfile p = tinyProfile();
    p.barrierOps = 500;
    SyntheticWorkload wl(p, cfg.totalCores(), cfg.coresPerSocket);
    Runner r(cfg, wl);
    r.run(1000, 3000);
    Tick fmin = MaxTick, fmax = 0;
    for (const auto &c : r.cores()) {
        fmin = std::min(fmin, c->finishAt());
        fmax = std::max(fmax, c->finishAt());
    }
    EXPECT_LT(static_cast<double>(fmax - fmin),
              0.2 * static_cast<double>(fmax));
}

TEST(Runner, RunWorkloadConvenienceMatchesManual)
{
    setQuiet(true);
    SystemConfig cfg = tinyConfig(Design::C3D);
    const RunResult a = runWorkload(cfg, tinyProfile(), 500, 1500);
    SyntheticWorkload wl(tinyProfile(), cfg.totalCores(),
                         cfg.coresPerSocket);
    Runner r(cfg, wl);
    const RunResult b = r.run(500, 1500);
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
    EXPECT_EQ(a.memReads, b.memReads);
}

} // namespace
} // namespace c3d
