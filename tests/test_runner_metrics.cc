/**
 * @file
 * Property checks on RunResult: structural invariants that must hold
 * for every machine configuration, verified across a deterministic
 * random sample of the design space (design x sockets x mapping x
 * predictor x TLB-classification), plus exact run-to-run
 * reproducibility.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyProfile;
using test::TestScale;

constexpr std::uint64_t WarmupOps = 300;
constexpr std::uint64_t MeasureOps = 1200;

/** Draw a random but valid machine configuration. */
SystemConfig
sampleConfig(Rng &rng)
{
    static const Design designs[] = {Design::Baseline, Design::Snoopy,
                                     Design::FullDir, Design::C3D,
                                     Design::C3DFullDir};
    static const MappingPolicy mappings[] = {
        MappingPolicy::Interleave, MappingPolicy::FirstTouch1,
        MappingPolicy::FirstTouch2};

    SystemConfig cfg;
    cfg.numSockets = rng.chance(0.5) ? 2 : 4;
    cfg.coresPerSocket = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.design = designs[rng.below(5)];
    cfg.mapping = mappings[rng.below(3)];
    cfg.missPredictorEnabled = rng.chance(0.75);
    cfg.missPredictorExact = rng.chance(0.5);
    cfg.tlbPageClassification = rng.chance(0.3);
    return cfg.scaled(TestScale);
}

void
checkInvariants(const SystemConfig &cfg, const RunResult &r,
                std::uint32_t active_cores)
{
    // The measurement window is real and the cores made progress.
    EXPECT_GT(r.measuredTicks, 0u);
    EXPECT_GE(r.instructions, MeasureOps * active_cores);

    // IPC is finite, positive, and bounded by the issue width (1 per
    // core per tick).
    const double ipc = r.ipc();
    EXPECT_TRUE(std::isfinite(ipc));
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, static_cast<double>(cfg.totalCores()));

    // Remote accesses are a subset of all memory accesses.
    EXPECT_LE(r.remoteMemAccesses(), r.memAccesses());
    EXPECT_LE(r.remoteMemReads, r.memReads);
    EXPECT_LE(r.remoteMemWrites, r.memWrites);

    // DRAM caches are only consulted when the design has them.
    if (!cfg.designUsesDramCache()) {
        EXPECT_EQ(r.dramCacheHits, 0u);
        EXPECT_EQ(r.dramCacheMisses, 0u);
    } else if (cfg.cleanDramCache()) {
        // Clean caches are only looked up locally, on LLC misses
        // (the +active_cores slack covers lookups in flight when
        // the window closed).
        EXPECT_LE(r.dramCacheHits + r.dramCacheMisses,
                  r.llcMisses + active_cores);
    } else {
        // Dirty caches additionally absorb LLC writebacks and take
        // remote probes (snoopy probes every socket), so lookups
        // are bounded by the probe amplification, not by misses.
        EXPECT_LE(r.dramCacheHits + r.dramCacheMisses,
                  static_cast<std::uint64_t>(cfg.numSockets) *
                          (r.llcMisses + r.memWrites) +
                      active_cores);
    }

    // The broadcast filter only fires when the TLB classification
    // is enabled (and only C3D designs broadcast invalidations).
    if (!cfg.tlbPageClassification)
        EXPECT_EQ(r.broadcastsElided, 0u);
    if (!cfg.cleanDramCache())
        EXPECT_EQ(r.broadcastsElided, 0u);

    // Memory traffic is bounded by work performed: each reference
    // is one instruction, and writebacks can at most double it.
    EXPECT_LE(r.memAccesses(), 2 * r.instructions);
}

TEST(RunnerMetrics, InvariantsAcrossRandomConfigSample)
{
    setQuiet(true);
    Rng rng(0xC3D5EED);
    for (int sample = 0; sample < 8; ++sample) {
        const SystemConfig cfg = sampleConfig(rng);
        WorkloadProfile profile = tinyProfile("prop");
        profile.seed = 0xC3D0 + sample;

        SyntheticWorkload wl(profile, cfg.totalCores(),
                             cfg.coresPerSocket);
        Runner runner(cfg, wl);
        const RunResult r = runner.run(WarmupOps, MeasureOps);

        SCOPED_TRACE(testing::Message()
                     << "sample " << sample << ": "
                     << designName(cfg.design) << " sockets="
                     << cfg.numSockets << " cores/socket="
                     << cfg.coresPerSocket << " mapping="
                     << mappingPolicyName(cfg.mapping));
        checkInvariants(cfg, r,
                        wl.activeCores(cfg.totalCores()));
    }
}

TEST(RunnerMetrics, SingleThreadedWorkloadInvariants)
{
    setQuiet(true);
    SystemConfig cfg = test::tinyConfig(Design::C3D);
    WorkloadProfile profile = tinyProfile("st");
    profile.singleThreaded = true;
    const RunResult r =
        runWorkload(cfg, profile, WarmupOps, MeasureOps);
    checkInvariants(cfg, r, 1);
    // One active core cannot exceed an IPC of 1.
    EXPECT_LE(r.ipc(), 1.0);
}

TEST(RunnerMetrics, ExactlyReproducible)
{
    setQuiet(true);
    Rng rng(0xC3DD1CE);
    const SystemConfig cfg = sampleConfig(rng);
    const RunResult a =
        runWorkload(cfg, tinyProfile(), WarmupOps, MeasureOps);
    const RunResult b =
        runWorkload(cfg, tinyProfile(), WarmupOps, MeasureOps);
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.remoteMemReads, b.remoteMemReads);
    EXPECT_EQ(a.remoteMemWrites, b.remoteMemWrites);
    EXPECT_EQ(a.dramCacheHits, b.dramCacheHits);
    EXPECT_EQ(a.dramCacheMisses, b.dramCacheMisses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.interSocketBytes, b.interSocketBytes);
    EXPECT_EQ(a.broadcasts, b.broadcasts);
}

TEST(RunnerMetrics, DerivedAccessorsSum)
{
    RunResult r;
    r.memReads = 10;
    r.memWrites = 5;
    r.remoteMemReads = 4;
    r.remoteMemWrites = 2;
    r.measuredTicks = 100;
    r.instructions = 250;
    EXPECT_EQ(r.memAccesses(), 15u);
    EXPECT_EQ(r.remoteMemAccesses(), 6u);
    EXPECT_DOUBLE_EQ(r.ipc(), 2.5);

    const RunResult zero;
    EXPECT_EQ(zero.ipc(), 0.0);
    EXPECT_TRUE(std::isfinite(zero.ipc()));
}

} // namespace
} // namespace c3d
