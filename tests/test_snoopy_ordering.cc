/**
 * @file
 * Snoopy-specific ordering tests: the home socket is the ordering
 * point (home-snoop), so concurrent conflicting transactions
 * serialize and leave exactly one owner. The ordering properties are
 * checked for every protocol variant of the family (MESI, MESIF,
 * MOESI, Dragon), and the store write buffer's total-FIFO drain is
 * pinned here too.
 */

#include <gtest/gtest.h>

#include "coherence/store_buffer.hh"
#include "common/log.hh"
#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

SystemConfig
snoopyConfig(Protocol p = Protocol::Mesi)
{
    SystemConfig cfg = test::tinyConfig(Design::Snoopy, 4, 1);
    cfg.mapping = MappingPolicy::Interleave;
    cfg.protocol = p;
    return cfg;
}

constexpr Protocol AllProtocols[] = {Protocol::Mesi, Protocol::Mesif,
                                     Protocol::Moesi,
                                     Protocol::Dragon};

constexpr Addr Blk = 0x0C0; // homed at socket 0

TEST(SnoopyOrdering, ConcurrentWritesLeaveOneOwner)
{
    setQuiet(true);
    for (const Protocol p : AllProtocols) {
        Machine m(snoopyConfig(p));
        int done = 0;
        // All four sockets store the same block at the same tick.
        for (SocketId s = 0; s < 4; ++s)
            m.socket(s).store(0, Blk, false, [&] { ++done; });
        m.eventQueue().run();
        EXPECT_EQ(done, 4) << protocolName(p);
        int owners = 0, holders = 0;
        for (SocketId s = 0; s < 4; ++s) {
            const CacheState st = m.socket(s).llcState(Blk);
            owners += st == CacheState::Modified;
            holders += st != CacheState::Invalid;
        }
        if (p == Protocol::Dragon) {
            // Update-based: nobody is invalidated; the home still
            // serialized the four writes into a total order.
            EXPECT_GE(holders, 1) << protocolName(p);
        } else {
            EXPECT_EQ(owners, 1) << protocolName(p);
        }
    }
}

TEST(SnoopyOrdering, ConcurrentReadWriteMix)
{
    setQuiet(true);
    for (const Protocol p : AllProtocols) {
        Machine m(snoopyConfig(p));
        int done = 0;
        m.socket(1).load(0, Blk, [&] { ++done; });
        m.socket(2).store(0, Blk, false, [&] { ++done; });
        m.socket(3).load(0, Blk, [&] { ++done; });
        m.socket(0).store(0, Blk, false, [&] { ++done; });
        m.eventQueue().run();
        EXPECT_EQ(done, 4) << protocolName(p);
        // SWMR audit (Dragon pairs an owner with updated sharers).
        int owners = 0, sharers = 0;
        for (SocketId s = 0; s < 4; ++s) {
            const CacheState st = m.socket(s).llcState(Blk);
            owners += st == CacheState::Modified;
            sharers += st == CacheState::Shared;
        }
        if (p == Protocol::Dragon)
            continue;
        if (owners == 1)
            EXPECT_EQ(sharers, 0) << protocolName(p);
        else
            EXPECT_EQ(owners, 0) << protocolName(p);
    }
}

TEST(SnoopyOrdering, DirtySupplierCleansItself)
{
    setQuiet(true);
    Machine m(snoopyConfig());
    bool done = false;
    m.socket(2).store(0, Blk, false, [&] { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
    // Remote read: the owner supplies and downgrades to Shared.
    done = false;
    m.socket(3).load(0, Blk, [&] { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(m.socket(2).llcState(Blk), CacheState::Shared);
    EXPECT_EQ(m.socket(3).llcState(Blk), CacheState::Shared);
    // Reflective writeback reached the home memory.
    EXPECT_GE(m.socket(0).memory().writes(), 1u);
}

TEST(SnoopyOrdering, UpgradeNeedsNoMemoryRead)
{
    setQuiet(true);
    Machine m(snoopyConfig());
    bool done = false;
    m.socket(1).load(0, Blk, [&] { done = true; });
    m.eventQueue().run();
    const std::uint64_t reads = m.socket(0).memory().reads();
    done = false;
    m.socket(1).store(0, Blk, false, [&] { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
    // The upgrade invalidates remotely but does not read memory.
    EXPECT_EQ(m.socket(0).memory().reads(), reads);
}

TEST(SnoopyOrdering, EverySnoopPaysTheDramCacheAccess)
{
    // §III-A: even sockets with no copy burn a DRAM-cache access on
    // each snoop -- the slow-remote-hit pathology's root cause.
    setQuiet(true);
    SystemConfig cfg = snoopyConfig();
    Machine m(cfg);
    bool done = false;
    const Tick start = m.eventQueue().now();
    m.socket(1).load(0, Blk, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    const Tick lat = m.eventQueue().now() - start;
    m.eventQueue().run();
    // The furthest probe (2 ring hops away) plus its DRAM-cache
    // access bounds the completion from below.
    EXPECT_GE(lat, 4 * cfg.hopLatency + cfg.dramCacheLatency);
}

// ---------------------------------------------------------------------------
// Store write buffer: total FIFO, paced drain, lossless force-drain.

struct BufferRig
{
    EventQueue eq;
    SystemConfig cfg = test::tinyConfig(Design::Snoopy, 4, 1);
    MemoryController mem{eq, cfg, 0, nullptr};
    Counter enq, drn, stalls;
    StoreBuffer buf;

    explicit BufferRig(std::uint32_t depth, Tick latency)
    {
        buf.init(&eq, &mem, depth, latency, &enq, &drn, &stalls);
    }
};

TEST(StoreBufferModel, DepthZeroIsPassthrough)
{
    setQuiet(true);
    BufferRig rig(0, 10);
    for (int i = 0; i < 5; ++i)
        rig.buf.push(0x40 * i, false);
    // Bypass: writes hit the controller immediately, nothing queues,
    // no buffer counter ever ticks.
    EXPECT_EQ(rig.buf.pending(), 0u);
    EXPECT_EQ(rig.mem.writes(), 5u);
    EXPECT_EQ(rig.enq.value(), 0u);
    EXPECT_EQ(rig.drn.value(), 0u);
}

TEST(StoreBufferModel, DrainsOnePerLatency)
{
    setQuiet(true);
    BufferRig rig(8, 10);
    for (int i = 0; i < 4; ++i)
        rig.buf.push(0x40 * i, false);
    EXPECT_EQ(rig.buf.pending(), 4u);
    // Sample occupancy between drain events: one entry leaves every
    // ten ticks, never a burst.
    std::vector<std::size_t> samples;
    for (const Tick t : {9, 11, 21, 31, 41})
        rig.eq.schedule(t, [&] { samples.push_back(rig.buf.pending()); });
    rig.eq.run();
    const std::vector<std::size_t> expect = {4, 3, 2, 1, 0};
    EXPECT_EQ(samples, expect);
    EXPECT_EQ(rig.drn.value(), 4u);
    EXPECT_EQ(rig.mem.writes(), 4u);
    EXPECT_EQ(rig.stalls.value(), 0u);
}

TEST(StoreBufferModel, FullBufferForceDrainsOldest)
{
    setQuiet(true);
    BufferRig rig(2, 10);
    for (int i = 0; i < 4; ++i) {
        rig.buf.push(0x40 * i, false);
        EXPECT_LE(rig.buf.pending(), 2u);
    }
    // Pushes three and four each found the buffer full: the oldest
    // entry was forced out at once instead of being dropped.
    EXPECT_EQ(rig.stalls.value(), 2u);
    EXPECT_EQ(rig.mem.writes(), 2u);
    rig.eq.run();
    EXPECT_EQ(rig.buf.pending(), 0u);
    EXPECT_EQ(rig.mem.writes(), 4u);
    EXPECT_EQ(rig.drn.value(), 4u);
}

TEST(StoreBufferModel, SameAddressStoresAreConserved)
{
    // The FIFO never merges, reorders, or drops same-address stores:
    // N pushes reach the controller as exactly N writes even when the
    // buffer wraps through full several times.
    setQuiet(true);
    BufferRig rig(3, 5);
    constexpr int N = 32;
    for (int i = 0; i < N; ++i)
        rig.buf.push(0x0C0, i % 2 == 0);
    rig.eq.run();
    EXPECT_EQ(rig.buf.pending(), 0u);
    EXPECT_EQ(rig.enq.value(), static_cast<std::uint64_t>(N));
    EXPECT_EQ(rig.drn.value(), static_cast<std::uint64_t>(N));
    EXPECT_EQ(rig.mem.writes(), static_cast<std::uint64_t>(N));
}

} // namespace
} // namespace c3d
