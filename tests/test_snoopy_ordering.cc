/**
 * @file
 * Snoopy-specific ordering tests: the home socket is the ordering
 * point (home-snoop), so concurrent conflicting transactions
 * serialize and leave exactly one owner.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

SystemConfig
snoopyConfig()
{
    SystemConfig cfg = test::tinyConfig(Design::Snoopy, 4, 1);
    cfg.mapping = MappingPolicy::Interleave;
    return cfg;
}

constexpr Addr Blk = 0x0C0; // homed at socket 0

TEST(SnoopyOrdering, ConcurrentWritesLeaveOneOwner)
{
    setQuiet(true);
    Machine m(snoopyConfig());
    int done = 0;
    // All four sockets store the same block at the same tick.
    for (SocketId s = 0; s < 4; ++s)
        m.socket(s).store(0, Blk, false, [&] { ++done; });
    m.eventQueue().run();
    EXPECT_EQ(done, 4);
    int owners = 0;
    for (SocketId s = 0; s < 4; ++s) {
        if (m.socket(s).llcState(Blk) == CacheState::Modified)
            ++owners;
    }
    EXPECT_EQ(owners, 1);
}

TEST(SnoopyOrdering, ConcurrentReadWriteMix)
{
    setQuiet(true);
    Machine m(snoopyConfig());
    int done = 0;
    m.socket(1).load(0, Blk, [&] { ++done; });
    m.socket(2).store(0, Blk, false, [&] { ++done; });
    m.socket(3).load(0, Blk, [&] { ++done; });
    m.socket(0).store(0, Blk, false, [&] { ++done; });
    m.eventQueue().run();
    EXPECT_EQ(done, 4);
    // SWMR audit.
    int owners = 0, sharers = 0;
    for (SocketId s = 0; s < 4; ++s) {
        const CacheState st = m.socket(s).llcState(Blk);
        owners += st == CacheState::Modified;
        sharers += st == CacheState::Shared;
    }
    if (owners == 1)
        EXPECT_EQ(sharers, 0);
    else
        EXPECT_EQ(owners, 0);
}

TEST(SnoopyOrdering, DirtySupplierCleansItself)
{
    setQuiet(true);
    Machine m(snoopyConfig());
    bool done = false;
    m.socket(2).store(0, Blk, false, [&] { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
    // Remote read: the owner supplies and downgrades to Shared.
    done = false;
    m.socket(3).load(0, Blk, [&] { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(m.socket(2).llcState(Blk), CacheState::Shared);
    EXPECT_EQ(m.socket(3).llcState(Blk), CacheState::Shared);
    // Reflective writeback reached the home memory.
    EXPECT_GE(m.socket(0).memory().writes(), 1u);
}

TEST(SnoopyOrdering, UpgradeNeedsNoMemoryRead)
{
    setQuiet(true);
    Machine m(snoopyConfig());
    bool done = false;
    m.socket(1).load(0, Blk, [&] { done = true; });
    m.eventQueue().run();
    const std::uint64_t reads = m.socket(0).memory().reads();
    done = false;
    m.socket(1).store(0, Blk, false, [&] { done = true; });
    m.eventQueue().run();
    ASSERT_TRUE(done);
    // The upgrade invalidates remotely but does not read memory.
    EXPECT_EQ(m.socket(0).memory().reads(), reads);
}

TEST(SnoopyOrdering, EverySnoopPaysTheDramCacheAccess)
{
    // §III-A: even sockets with no copy burn a DRAM-cache access on
    // each snoop -- the slow-remote-hit pathology's root cause.
    setQuiet(true);
    SystemConfig cfg = snoopyConfig();
    Machine m(cfg);
    bool done = false;
    const Tick start = m.eventQueue().now();
    m.socket(1).load(0, Blk, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    const Tick lat = m.eventQueue().now() - start;
    m.eventQueue().run();
    // The furthest probe (2 ring hops away) plus its DRAM-cache
    // access bounds the completion from below.
    EXPECT_GE(lat, 4 * cfg.hopLatency + cfg.dramCacheLatency);
}

} // namespace
} // namespace c3d
