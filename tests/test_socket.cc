/**
 * @file
 * Unit tests for the intra-socket path: L1/LLC states, fills,
 * evictions, and remote-side probes, driven through a real Machine.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

using test::tinyConfig;

/** Run one access to completion and return its latency. */
Tick
doLoad(Machine &m, SocketId s, std::uint32_t core, Addr addr)
{
    bool done = false;
    const Tick start = m.eventQueue().now();
    m.socket(s).load(core, addr, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    EXPECT_TRUE(done);
    const Tick lat = m.eventQueue().now() - start;
    m.eventQueue().run();
    return lat;
}

Tick
doStore(Machine &m, SocketId s, std::uint32_t core, Addr addr)
{
    bool done = false;
    const Tick start = m.eventQueue().now();
    m.socket(s).store(core, addr, false, [&] { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    EXPECT_TRUE(done);
    const Tick lat = m.eventQueue().now() - start;
    m.eventQueue().run();
    return lat;
}

TEST(Socket, ColdLoadFillsL1AndLlc)
{
    Machine m(tinyConfig(Design::Baseline));
    doLoad(m, 0, 0, 0x1000);
    EXPECT_EQ(m.socket(0).llcState(0x1000), CacheState::Shared);
    EXPECT_EQ(m.socket(0).l1State(0, 0x1000), CacheState::Shared);
}

TEST(Socket, L1HitIsFast)
{
    Machine m(tinyConfig(Design::Baseline));
    doLoad(m, 0, 0, 0x1000);
    const Tick lat = doLoad(m, 0, 0, 0x1000);
    EXPECT_EQ(lat, m.config().l1Latency);
}

TEST(Socket, LlcHitServesOtherCore)
{
    SystemConfig cfg = tinyConfig(Design::Baseline);
    Machine m(cfg);
    doLoad(m, 0, 0, 0x1000);
    const Tick lat = doLoad(m, 0, 1, 0x1000);
    EXPECT_EQ(lat, cfg.l1Latency + cfg.llcTagLatency +
                       cfg.llcDataLatency);
    EXPECT_EQ(m.socket(0).l1State(1, 0x1000), CacheState::Shared);
}

TEST(Socket, StoreMakesBlockModified)
{
    Machine m(tinyConfig(Design::Baseline));
    doStore(m, 0, 0, 0x2000);
    EXPECT_EQ(m.socket(0).llcState(0x2000), CacheState::Modified);
    EXPECT_EQ(m.socket(0).l1State(0, 0x2000), CacheState::Modified);
}

TEST(Socket, StoreHitInModifiedL1IsFast)
{
    Machine m(tinyConfig(Design::Baseline));
    doStore(m, 0, 0, 0x2000);
    const Tick lat = doStore(m, 0, 0, 0x2000);
    EXPECT_EQ(lat, m.config().l1Latency);
}

TEST(Socket, StoreInvalidatesSiblingL1Copies)
{
    Machine m(tinyConfig(Design::Baseline));
    doLoad(m, 0, 0, 0x3000);
    doLoad(m, 0, 1, 0x3000);
    EXPECT_EQ(m.socket(0).l1State(1, 0x3000), CacheState::Shared);
    doStore(m, 0, 0, 0x3000);
    EXPECT_EQ(m.socket(0).l1State(0, 0x3000), CacheState::Modified);
    EXPECT_EQ(m.socket(0).l1State(1, 0x3000), CacheState::Invalid);
}

TEST(Socket, LocalStoreAfterLoadUpgrades)
{
    Machine m(tinyConfig(Design::Baseline));
    doLoad(m, 0, 0, 0x4000);
    doStore(m, 0, 0, 0x4000);
    EXPECT_EQ(m.socket(0).llcState(0x4000), CacheState::Modified);
}

TEST(Socket, ProbeInvalidateClearsAllLevels)
{
    Machine m(tinyConfig(Design::C3D));
    doLoad(m, 0, 0, 0x5000);
    bool dirty = true;
    bool done = false;
    m.socket(0).probeInvalidate(0x5000, [&](bool d) {
        dirty = d;
        done = true;
    });
    while (!done && m.eventQueue().step()) {
    }
    EXPECT_FALSE(dirty);
    EXPECT_EQ(m.socket(0).llcState(0x5000), CacheState::Invalid);
    EXPECT_EQ(m.socket(0).l1State(0, 0x5000), CacheState::Invalid);
}

TEST(Socket, ProbeInvalidateReportsDirty)
{
    Machine m(tinyConfig(Design::C3D));
    doStore(m, 0, 0, 0x5000);
    bool dirty = false;
    bool done = false;
    m.socket(0).probeInvalidate(0x5000, [&](bool d) {
        dirty = d;
        done = true;
    });
    while (!done && m.eventQueue().step()) {
    }
    EXPECT_TRUE(dirty);
}

TEST(Socket, ProbeDowngradeKeepsSharedCopy)
{
    Machine m(tinyConfig(Design::C3D));
    doStore(m, 0, 0, 0x6000);
    bool dirty = false;
    bool done = false;
    m.socket(0).probeDowngrade(0x6000, [&](bool d) {
        dirty = d;
        done = true;
    });
    while (!done && m.eventQueue().step()) {
    }
    EXPECT_TRUE(dirty);
    EXPECT_EQ(m.socket(0).llcState(0x6000), CacheState::Shared);
}

TEST(Socket, DowngradeRefreshesDramCacheCopy)
{
    // §IV-C: downgrades write through the DRAM cache so a later
    // silent LLC eviction cannot expose stale data.
    Machine m(tinyConfig(Design::C3D));
    doStore(m, 0, 0, 0x6000);
    bool done = false;
    m.socket(0).probeDowngrade(0x6000, [&](bool) { done = true; });
    while (!done && m.eventQueue().step()) {
    }
    m.eventQueue().run();
    ASSERT_NE(m.socket(0).dramCache(), nullptr);
    EXPECT_TRUE(m.socket(0).dramCache()->contains(0x6000));
    EXPECT_FALSE(m.socket(0).dramCache()->isDirty(0x6000));
}

TEST(Socket, LlcEvictionSinksIntoDramCache)
{
    SystemConfig cfg = tinyConfig(Design::C3D);
    Machine m(cfg);
    // Fill one LLC set past associativity to force an eviction.
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    const Addr first = 0x0;
    doLoad(m, 0, 0, first);
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        doLoad(m, 0, 0, first + w * sets * BlockBytes);
    m.eventQueue().run();
    EXPECT_EQ(m.socket(0).llcState(first), CacheState::Invalid);
    EXPECT_TRUE(m.socket(0).dramCache()->contains(first));
}

TEST(Socket, DramCacheHitAfterEviction)
{
    SystemConfig cfg = tinyConfig(Design::C3D);
    Machine m(cfg);
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    const Addr first = 0x0;
    const Tick cold = doLoad(m, 0, 0, first);
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        doLoad(m, 0, 0, first + w * sets * BlockBytes);
    // Re-load: the block now comes from the local DRAM cache; it is
    // slower than an LLC hit but much faster than the cold remote
    // access path.
    const Tick dc_hit = doLoad(m, 0, 0, first);
    EXPECT_LT(dc_hit, cold);
    EXPECT_GE(dc_hit, cfg.dramCacheLatency);
}

TEST(Socket, WriteFillInvalidatesStaleDramCacheCopy)
{
    SystemConfig cfg = tinyConfig(Design::C3D);
    Machine m(cfg);
    const std::uint64_t sets = cfg.llcBytes / BlockBytes / cfg.llcWays;
    const Addr first = 0x0;
    doLoad(m, 0, 0, first);
    for (std::uint32_t w = 1; w <= cfg.llcWays; ++w)
        doLoad(m, 0, 0, first + w * sets * BlockBytes);
    ASSERT_TRUE(m.socket(0).dramCache()->contains(first));
    // Writing the block makes the DRAM-cache copy stale; the fill
    // path must kill it.
    doStore(m, 0, 0, first);
    m.eventQueue().run();
    EXPECT_FALSE(m.socket(0).dramCache()->contains(first));
}

TEST(Socket, ReadMissesMergeIntoOneGetS)
{
    SystemConfig cfg = tinyConfig(Design::Baseline);
    Machine m(cfg);
    int completed = 0;
    m.socket(0).load(0, 0x7000, [&] { ++completed; });
    m.socket(0).load(1, 0x7000, [&] { ++completed; });
    m.eventQueue().run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(m.stats().valueOf("socket0.gets"), 1u);
    EXPECT_EQ(m.stats().valueOf("socket0.merged_reads"), 1u);
    EXPECT_EQ(m.socket(0).l1State(0, 0x7000), CacheState::Shared);
    EXPECT_EQ(m.socket(0).l1State(1, 0x7000), CacheState::Shared);
}

TEST(Socket, SnoopProbeFindsNothingQuickly)
{
    Machine m(tinyConfig(Design::Snoopy));
    bool done = false;
    SnoopResult res;
    m.socket(1).snoopProbe(0x8000, false, [&](SnoopResult r) {
        res = r;
        done = true;
    });
    while (!done && m.eventQueue().step()) {
    }
    EXPECT_FALSE(res.present);
    EXPECT_FALSE(res.suppliedDirty);
}

} // namespace
} // namespace c3d
