/**
 * @file
 * Tests for the stats plumbing used by every bench: group adoption,
 * dump format, histogram lookup, and the watch/trace debug facility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "common/stats.hh"

namespace c3d
{
namespace
{

TEST(StatsInfra, DumpIsNameValueDesc)
{
    StatGroup g("grp");
    Counter c;
    c.init(&g, "a.counter", "what it counts");
    c += 7;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a.counter"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("what it counts"), std::string::npos);
}

TEST(StatsInfra, AdoptMergesRegistrations)
{
    StatGroup parent("p"), child("c");
    Counter a, b;
    a.init(&parent, "a");
    b.init(&child, "b");
    parent.adopt(child);
    EXPECT_TRUE(parent.has("b"));
    b += 3;
    EXPECT_EQ(parent.valueOf("b"), 3u);
    parent.resetAll();
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatsInfra, HistogramLookupByName)
{
    StatGroup g("g");
    Histogram h;
    h.init(&g, "lat");
    h.sample(5);
    const Histogram *found = g.histogramOf("lat");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->count(), 1u);
    EXPECT_EQ(g.histogramOf("nope"), nullptr);
}

TEST(StatsInfra, HistogramBucketsArePowersOfTwo)
{
    StatGroup g("g");
    Histogram h;
    h.init(&g, "b");
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(1024);
    // Bucket 0 holds the zero sample; value 1 -> bucket 1;
    // 2..3 -> bucket 2; 1024 -> bucket 11.
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(11), 1u);
}

TEST(StatsInfra, PercentileEdgeCasesAreDefined)
{
    Histogram h;
    // Empty histogram: every percentile query returns 0, never NaN
    // or a crash (tenant QoS extraction runs unconditionally).
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(0), 0u);
    EXPECT_EQ(h.percentile(100), 0u);

    // Single sample: every percentile IS that sample.
    h.sample(37);
    EXPECT_EQ(h.percentile(0), 37u);
    EXPECT_EQ(h.percentile(50), 37u);
    EXPECT_EQ(h.percentile(99), 37u);
    EXPECT_EQ(h.percentile(100), 37u);

    // Out-of-range p clamps to min/max.
    h.sample(100);
    EXPECT_EQ(h.percentile(-5), 37u);
    EXPECT_EQ(h.percentile(250), 100u);
}

TEST(StatsInfra, PercentileTracksDistribution)
{
    Histogram h;
    // 100 samples of 8 and one of 4096: p50 sits in the 8-bucket,
    // p99 below the outlier, p100 at it.
    for (int i = 0; i < 100; ++i)
        h.sample(8);
    h.sample(4096);
    const std::uint64_t p50 = h.percentile(50);
    EXPECT_GE(p50, 8u);
    EXPECT_LT(p50, 16u);
    EXPECT_LT(h.percentile(99), 4096u);
    EXPECT_EQ(h.percentile(100), 4096u);

    // Results never leave [min, max].
    EXPECT_GE(h.percentile(1), h.min());
    EXPECT_LE(h.percentile(99.9), h.max());

    // All-zero samples stay at zero.
    Histogram z;
    z.sample(0);
    z.sample(0);
    EXPECT_EQ(z.percentile(50), 0u);
    EXPECT_EQ(z.percentile(99), 0u);
}

TEST(StatsInfra, UnregisteredCounterStandsAlone)
{
    Counter c;
    c.init(nullptr, "orphan");
    ++c;
    EXPECT_EQ(c.value(), 1u);
}

TEST(StatsInfraDeathTest, ValueOfUnknownIsFatal)
{
    StatGroup g("g");
    EXPECT_DEATH(g.valueOf("missing"), "no counter");
}

TEST(WatchInfra, MatchesOnlyTheWatchedBlock)
{
    setWatchBlock(0x1000);
    EXPECT_TRUE(watchingBlock(0x1000));
    EXPECT_TRUE(watchingBlock(0x1020)); // same 64 B block
    EXPECT_FALSE(watchingBlock(0x1040));
    setWatchBlock(~0ull); // disable
    EXPECT_FALSE(watchingBlock(0x1000));
}

} // namespace
} // namespace c3d
