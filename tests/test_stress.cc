/**
 * @file
 * Randomized cross-socket stress tests: hammer a tiny address pool
 * from every core under every design to maximize protocol races
 * (recalls, forwards, broadcasts, upgrade races, writeback races),
 * then audit structural invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/machine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

/** Drive random loads/stores from all cores concurrently. */
class StressDriver
{
  public:
    StressDriver(Machine &m, std::uint64_t pool_blocks,
                 std::uint64_t ops_per_core, double write_frac,
                 std::uint64_t seed)
        : m(m), poolBlocks(pool_blocks), opsPerCore(ops_per_core),
          writeFrac(write_frac)
    {
        const std::uint32_t total = m.config().totalCores();
        rngs.reserve(total);
        remaining.assign(total, ops_per_core);
        for (std::uint32_t c = 0; c < total; ++c)
            rngs.emplace_back(seed * 77 + c);
    }

    void
    run()
    {
        const std::uint32_t total = m.config().totalCores();
        for (CoreId c = 0; c < total; ++c)
            next(c);
        m.eventQueue().run();
        for (std::uint32_t c = 0; c < total; ++c)
            EXPECT_EQ(remaining[c], 0u) << "core " << c << " stuck";
    }

  private:
    void
    next(CoreId c)
    {
        if (remaining[c] == 0)
            return;
        --remaining[c];
        const SocketId s = c / m.config().coresPerSocket;
        const std::uint32_t local = c % m.config().coresPerSocket;
        const Addr addr = rngs[c].below(poolBlocks) * BlockBytes;
        if (rngs[c].chance(writeFrac)) {
            m.socket(s).store(local, addr, false,
                              [this, c] { next(c); });
        } else {
            m.socket(s).load(local, addr, [this, c] { next(c); });
        }
    }

    Machine &m;
    const std::uint64_t poolBlocks;
    const std::uint64_t opsPerCore;
    const double writeFrac;
    std::vector<Rng> rngs;
    std::vector<std::uint64_t> remaining;
};

/** Audit SWMR + clean-cache invariants over the pool. */
void
auditInvariants(Machine &m, std::uint64_t pool_blocks)
{
    const SystemConfig &cfg = m.config();
    for (std::uint64_t b = 0; b < pool_blocks; ++b) {
        const Addr a = b * BlockBytes;
        SocketId owner = InvalidSocket;
        for (SocketId s = 0; s < cfg.numSockets; ++s) {
            if (m.socket(s).llcState(a) == CacheState::Modified) {
                ASSERT_EQ(owner, InvalidSocket)
                    << "two Modified owners for block " << b;
                owner = s;
            }
        }
        if (owner != InvalidSocket) {
            for (SocketId s = 0; s < cfg.numSockets; ++s) {
                if (s == owner)
                    continue;
                EXPECT_EQ(m.socket(s).llcState(a),
                          CacheState::Invalid)
                    << "block " << b << " valid beside owner";
                if (m.socket(s).dramCache()) {
                    EXPECT_FALSE(m.socket(s).dramCache()->contains(a))
                        << "block " << b
                        << " in a remote DRAM cache beside owner";
                }
            }
        }
        if (cfg.cleanDramCache()) {
            for (SocketId s = 0; s < cfg.numSockets; ++s) {
                if (m.socket(s).dramCache()) {
                    EXPECT_FALSE(m.socket(s).dramCache()->isDirty(a))
                        << "dirty block in clean DRAM cache";
                }
            }
        }
    }
}

class StressSweep
    : public ::testing::TestWithParam<std::tuple<Design, double>>
{
};

TEST_P(StressSweep, HotPoolHammering)
{
    setQuiet(true);
    const auto [design, write_frac] = GetParam();
    SystemConfig cfg = test::tinyConfig(design, 4, 2);
    cfg.mapping = MappingPolicy::Interleave;
    Machine m(cfg);
    // 48 blocks across 8 cores: heavy same-block contention.
    constexpr std::uint64_t Pool = 48;
    StressDriver driver(m, Pool, 400, write_frac, 0x5EED);
    driver.run();
    auditInvariants(m, Pool);
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndWriteMixes, StressSweep,
    ::testing::Combine(::testing::Values(Design::Baseline,
                                         Design::Snoopy,
                                         Design::FullDir, Design::C3D,
                                         Design::C3DFullDir),
                       ::testing::Values(0.1, 0.5, 0.9)),
    [](const auto &info) {
        std::string name = designName(std::get<0>(info.param));
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        const int pct =
            static_cast<int>(std::get<1>(info.param) * 100);
        return name + "_w" + std::to_string(pct);
    });

TEST(Stress, TinyDirectoryForcesRecalls)
{
    // A deliberately minuscule sparse directory: every allocation
    // recalls. The protocol must stay coherent through constant
    // recall-invalidation storms.
    setQuiet(true);
    SystemConfig cfg = test::tinyConfig(Design::C3D, 2, 2);
    cfg.mapping = MappingPolicy::Interleave;
    cfg.sparseDirFactor = 1;
    cfg.sparseDirWays = 2;
    cfg.llcBytes = 16 * 1024; // tiny LLC: tiny directory
    Machine m(cfg);
    constexpr std::uint64_t Pool = 512;
    StressDriver driver(m, Pool, 600, 0.4, 0xABCD);
    driver.run();
    EXPECT_GT(m.stats().sumMatching(".recalls"), 0u);
    auditInvariants(m, Pool);
}

TEST(Stress, SingleBlockTotalContention)
{
    // Every core loads and stores the same block: the blocking
    // directory serializes a long dependence chain; everything must
    // drain with one final owner.
    setQuiet(true);
    for (Design d : {Design::Baseline, Design::C3D, Design::Snoopy}) {
        SystemConfig cfg = test::tinyConfig(d, 4, 2);
        cfg.mapping = MappingPolicy::Interleave;
        Machine m(cfg);
        StressDriver driver(m, 1, 200, 0.5, 7);
        driver.run();
        auditInvariants(m, 1);
    }
}

} // namespace
} // namespace c3d
