/**
 * @file
 * Tests for the experiment subsystem: grid expansion (count,
 * ordering, config resolution), thread-pool determinism (the same
 * grid yields identical result rows whatever the worker count), and
 * JSON/CSV round-trips.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/log.hh"
#include "exp/json.hh"
#include "exp/sweep_engine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

/** A fast two-workload grid: seconds-scale even at --jobs 1. */
exp::SweepGrid
smallGrid()
{
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::Baseline, Design::C3D};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 300;
    grid.measureOps = 1200;
    return grid;
}

TEST(SweepGrid, ExpansionCountMatchesAxisProduct)
{
    exp::SweepGrid grid = smallGrid();
    grid.sockets = {2, 4};
    grid.dramCacheMb = {0, 256};
    grid.mappings = {MappingPolicy::Interleave,
                     MappingPolicy::FirstTouch2};
    EXPECT_EQ(grid.size(), 2u * 2 * 2 * 2 * 2);
    const std::vector<exp::RunSpec> specs = grid.expand();
    ASSERT_EQ(specs.size(), grid.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(specs[i].index, i);
}

TEST(SweepGrid, ExpansionOrderIsNestedLoops)
{
    exp::SweepGrid grid = smallGrid();
    grid.designs = {Design::Baseline, Design::Snoopy, Design::C3D};
    grid.sockets = {2, 4};
    const std::vector<exp::RunSpec> specs = grid.expand();
    ASSERT_EQ(specs.size(), 2u * 3 * 2);

    // Workload is the outermost axis, sockets the innermost here;
    // the expansion is a plain nested loop over (w, d, s).
    std::size_t i = 0;
    for (std::size_t w = 0; w < 2; ++w) {
        for (std::size_t d = 0; d < 3; ++d) {
            for (std::size_t s = 0; s < 2; ++s, ++i) {
                EXPECT_EQ(specs[i].workloadIdx, w);
                EXPECT_EQ(specs[i].designIdx, d);
                EXPECT_EQ(specs[i].socketIdx, s);
                EXPECT_EQ(specs[i].cfg.design, grid.designs[d]);
                EXPECT_EQ(specs[i].cfg.numSockets, grid.sockets[s]);
                EXPECT_EQ(specs[i].profile.name,
                          grid.workloads[w].name);
            }
        }
    }
}

TEST(SweepGrid, ResolvesConfigKnobs)
{
    exp::SweepGrid grid = smallGrid();
    grid.coresPerSocket = 0; // paper rule
    grid.sockets = {2, 4};
    grid.dramCacheMb = {512};
    grid.variants = {
        {"slow-hop",
         [](SystemConfig &c) { c.hopLatency = nsToTicks(99); }}};
    const std::vector<exp::RunSpec> specs = grid.expand();
    ASSERT_EQ(specs.size(), 2u * 2 * 2);
    for (const exp::RunSpec &spec : specs) {
        EXPECT_EQ(spec.cfg.coresPerSocket,
                  spec.cfg.numSockets == 2 ? 16u : 8u);
        // The 512 MB axis value is divided by the capacity scale.
        EXPECT_EQ(spec.cfg.dramCacheBytes,
                  std::max<std::uint64_t>((512ull << 20) / grid.scale,
                                          1 << 20));
        EXPECT_EQ(spec.cfg.hopLatency, nsToTicks(99));
        EXPECT_EQ(spec.variantName, "slow-hop");
        EXPECT_EQ(spec.dramCacheMb, 512u);
    }
}

TEST(SweepGrid, SeedOverrideAndAutoWarmup)
{
    exp::SweepGrid grid = smallGrid();
    grid.seed = 1234;
    grid.warmupOps = 0; // auto
    const std::vector<exp::RunSpec> specs = grid.expand();
    for (const exp::RunSpec &spec : specs) {
        EXPECT_EQ(spec.profile.seed, 1234u);
        EXPECT_EQ(spec.warmupOps,
                  exp::autoWarmupOps(spec.profile));
    }

    WorkloadProfile scan = profileByName("streamcluster");
    EXPECT_GT(exp::autoWarmupOps(scan), exp::autoWarmupOps(
        profileByName("facesim")));
}

TEST(SweepEngine, DeterministicAcrossWorkerCounts)
{
    setQuiet(true);
    const exp::SweepGrid grid = smallGrid();
    const exp::ResultTable serial = exp::SweepEngine(1).run(grid);
    const exp::ResultTable pool4 = exp::SweepEngine(4).run(grid);
    const exp::ResultTable pool8 = exp::SweepEngine(8).run(grid);

    EXPECT_TRUE(serial.sameRows(pool4));
    EXPECT_TRUE(serial.sameRows(pool8));
    // Byte-identical serialization, not just equal metrics.
    EXPECT_EQ(serial.toJson(), pool8.toJson());
    EXPECT_EQ(serial.toCsv(), pool8.toCsv());
}

TEST(SweepEngine, MatchesDirectRunnerCall)
{
    setQuiet(true);
    exp::SweepGrid grid = smallGrid();
    grid.workloads.resize(1);
    grid.designs = {Design::C3D};
    const exp::ResultTable table = exp::SweepEngine(2).run(grid);
    ASSERT_EQ(table.size(), 1u);

    const exp::RunSpec spec = grid.expand().at(0);
    const RunResult direct =
        runWorkload(spec.cfg, spec.profile.scaled(spec.scale),
                    spec.warmupOps, spec.measureOps);
    const RunResult &viaEngine = table.rows()[0].metrics;
    EXPECT_EQ(direct.measuredTicks, viaEngine.measuredTicks);
    EXPECT_EQ(direct.instructions, viaEngine.instructions);
    EXPECT_EQ(direct.memReads, viaEngine.memReads);
    EXPECT_EQ(direct.interSocketBytes, viaEngine.interSocketBytes);
}

TEST(SweepEngine, CustomRunFunctionKeepsGridOrder)
{
    exp::SweepGrid grid = smallGrid();
    grid.designs = {Design::Baseline, Design::Snoopy, Design::C3D};
    const auto fake = [](const exp::RunSpec &spec) {
        RunResult m;
        m.measuredTicks = 1000 + spec.index;
        m.instructions = spec.index;
        return m;
    };
    const exp::ResultTable table = exp::SweepEngine(8).run(grid, fake);
    ASSERT_EQ(table.size(), grid.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(table.rows()[i].metrics.measuredTicks, 1000 + i);
        EXPECT_EQ(table.rows()[i].metrics.instructions, i);
    }
}

TEST(SweepEngine, ProgressReportsEveryRun)
{
    exp::SweepGrid grid = smallGrid();
    const auto fake = [](const exp::RunSpec &) { return RunResult{}; };
    exp::SweepEngine engine(4);
    std::size_t calls = 0, last_total = 0;
    engine.setProgress([&](const exp::RunSpec &, std::size_t,
                           std::size_t total) {
        ++calls;
        last_total = total;
    });
    engine.run(grid, fake);
    EXPECT_EQ(calls, grid.size());
    EXPECT_EQ(last_total, grid.size());
}

TEST(ResultTable, JsonRoundTrip)
{
    exp::SweepGrid grid = smallGrid();
    const auto fake = [](const exp::RunSpec &spec) {
        RunResult m;
        m.measuredTicks = 3 * spec.index + 7;
        m.instructions = 11 * spec.index;
        m.memReads = spec.index;
        m.dramCacheHits = spec.index / 2;
        m.broadcastsElided = spec.index % 3;
        return m;
    };
    const exp::ResultTable table = exp::SweepEngine(1).run(grid, fake);

    const std::string json = table.toJson();
    exp::ResultTable parsed;
    std::string error;
    ASSERT_TRUE(exp::ResultTable::fromJson(json, parsed, error))
        << error;
    EXPECT_TRUE(table.sameRows(parsed));
    EXPECT_EQ(parsed.toJson(), json);
}

TEST(ResultTable, CsvRoundTrip)
{
    exp::SweepGrid grid = smallGrid();
    const auto fake = [](const exp::RunSpec &spec) {
        RunResult m;
        m.measuredTicks = spec.index + 1;
        m.instructions = 5 * spec.index + 2;
        return m;
    };
    const exp::ResultTable table = exp::SweepEngine(1).run(grid, fake);

    const std::string csv = table.toCsv();
    exp::ResultTable parsed;
    std::string error;
    ASSERT_TRUE(exp::ResultTable::fromCsv(csv, parsed, error))
        << error;
    EXPECT_TRUE(table.sameRows(parsed));
    EXPECT_EQ(parsed.toCsv(), csv);
}

TEST(ResultTable, RejectsMalformedInput)
{
    exp::ResultTable parsed;
    std::string error;
    EXPECT_FALSE(exp::ResultTable::fromJson("{", parsed, error));
    EXPECT_FALSE(exp::ResultTable::fromJson("[]", parsed, error));
    EXPECT_FALSE(exp::ResultTable::fromJson(
        "{\"schema\": \"bogus/v9\", \"rows\": []}", parsed, error));
    EXPECT_FALSE(exp::ResultTable::fromCsv("not,a,sweep\n1,2,3\n",
                                           parsed, error));

    // Numeric CSV fields must be plain digit strings: empty and
    // negative values are corrupt rows, not zeros / wrapped u64s.
    // (The trailing empty field is the tenants column.)
    const std::string header = exp::ResultTable().toCsv();
    const std::string good =
        "w,,c3d,mesi,region,FT2,4,8,32,0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,1.0,";
    EXPECT_TRUE(exp::ResultTable::fromCsv(header + good + "\n",
                                          parsed, error)) << error;
    std::string empty_field = good;
    empty_field.replace(empty_field.find(",4,"), 3, ",,");
    EXPECT_FALSE(exp::ResultTable::fromCsv(
        header + empty_field + "\n", parsed, error));
    std::string negative = good;
    negative.replace(negative.find(",4,"), 3, ",-4,");
    EXPECT_FALSE(exp::ResultTable::fromCsv(header + negative + "\n",
                                           parsed, error));
}

TEST(ResultTable, CsvRoundTripsQuotedSpecials)
{
    // Emitters quote fields containing commas, quotes, and
    // newlines; the parser must accept exactly what was emitted
    // (including a record that spans physical lines), or journals
    // could never round-trip such names.
    exp::ResultRow row;
    row.workload = "name,with,commas";
    row.variant = "multi\nline \"quoted\"";
    row.design = "c3d";
    row.mapping = "FT2";
    row.sockets = 4;
    row.metrics.instructions = 10;
    row.metrics.measuredTicks = 5;
    exp::ResultTable table;
    table.appendRow(row);

    const std::string csv = table.toCsv();
    exp::ResultTable parsed;
    std::string error;
    ASSERT_TRUE(exp::ResultTable::fromCsv(csv, parsed, error))
        << error;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed.rows()[0].workload, row.workload);
    EXPECT_EQ(parsed.rows()[0].variant, row.variant);
    EXPECT_TRUE(table.sameRows(parsed));
    EXPECT_EQ(parsed.toCsv(), csv);

    const std::string json = table.toJson();
    ASSERT_TRUE(exp::ResultTable::fromJson(json, parsed, error))
        << error;
    EXPECT_TRUE(table.sameRows(parsed));
    EXPECT_EQ(parsed.toJson(), json);
}

TEST(ResultTable, RejectsBadIpcColumn)
{
    exp::ResultTable parsed;
    std::string error;

    // CSV: the derived ipc column is recomputed on emit, but a
    // non-numeric token or a renamed header is not our schema.
    const std::string header = exp::ResultTable().toCsv();
    const std::string good =
        "w,,c3d,mesi,region,FT2,4,8,32,0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,1.0,";
    ASSERT_TRUE(exp::ResultTable::fromCsv(header + good + "\n",
                                          parsed, error)) << error;
    std::string bad_field = good;
    bad_field.replace(bad_field.rfind(",1.0,"), 5, ",oops,");
    EXPECT_FALSE(exp::ResultTable::fromCsv(header + bad_field + "\n",
                                           parsed, error));
    std::string bad_header = header;
    bad_header.replace(bad_header.find(",ipc"), 4, ",abc");
    EXPECT_FALSE(exp::ResultTable::fromCsv(bad_header + good + "\n",
                                           parsed, error));

    // JSON: a row object without a numeric ipc member is rejected.
    exp::ResultTable table;
    exp::ResultRow row;
    row.design = "c3d";
    table.appendRow(row);
    std::string json = table.toJson();
    const std::size_t at = json.find(", \"ipc\": 0}");
    ASSERT_NE(at, std::string::npos);
    json.replace(at, std::strlen(", \"ipc\": 0"), "");
    EXPECT_FALSE(exp::ResultTable::fromJson(json, parsed, error));
    EXPECT_NE(error.find("ipc"), std::string::npos) << error;
}

TEST(ResultTable, RoundTripsCountersAboveDoublePrecision)
{
    // u64 counters above 2^53 are not representable as doubles; the
    // JSON path must recover them losslessly from the source token.
    exp::SweepGrid grid = smallGrid();
    grid.workloads.resize(1);
    grid.designs = {Design::C3D};
    const std::uint64_t big = (1ull << 53) + 3;
    const auto fake = [big](const exp::RunSpec &) {
        RunResult m;
        m.measuredTicks = big;
        m.interSocketBytes = UINT64_MAX;
        m.instructions = 1;
        return m;
    };
    const exp::ResultTable table = exp::SweepEngine(1).run(grid, fake);

    exp::ResultTable parsed;
    std::string error;
    ASSERT_TRUE(exp::ResultTable::fromJson(table.toJson(), parsed,
                                           error)) << error;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed.rows()[0].metrics.measuredTicks, big);
    EXPECT_EQ(parsed.rows()[0].metrics.interSocketBytes, UINT64_MAX);
    EXPECT_TRUE(table.sameRows(parsed));
}

TEST(Json, ParsesAndEscapes)
{
    exp::JsonValue v;
    std::string error;
    ASSERT_TRUE(exp::parseJson(
        "{\"a\": [1, 2.5, -3], \"b\": \"x\\ny\", \"c\": true, "
        "\"d\": null}",
        v, error)) << error;
    ASSERT_TRUE(v.isObject());
    ASSERT_TRUE(v.member("a")->isArray());
    EXPECT_EQ(v.member("a")->array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.member("a")->array()[1].number(), 2.5);
    EXPECT_EQ(v.member("b")->string(), "x\ny");
    EXPECT_TRUE(v.member("c")->boolean());
    EXPECT_TRUE(v.member("d")->isNull());

    EXPECT_FALSE(exp::parseJson("{\"a\": }", v, error));
    EXPECT_FALSE(exp::parseJson("[1, 2", v, error));
    EXPECT_FALSE(exp::parseJson("42 garbage", v, error));

    EXPECT_EQ(exp::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

} // namespace
} // namespace c3d
