/**
 * @file
 * Differential determinism tests for distributed sweep execution:
 * sharded, journaled, merged, and interrupted-then-resumed runs must
 * reproduce the single-process sweep byte for byte (JSON and CSV),
 * for any worker count. Also pins the spec-identity contract that
 * journals rely on (specIdentityKey == ResultRow::identityKey).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>

#include "common/log.hh"
#include "exp/journal.hh"
#include "exp/sweep_engine.hh"
#include "test_helpers.hh"

namespace c3d
{
namespace
{

/** Three-axis grid (workload x design x sockets), seconds-scale. */
exp::SweepGrid
shardGrid()
{
    exp::SweepGrid grid;
    grid.workloads = {profileByName("facesim"),
                      profileByName("canneal")};
    grid.designs = {Design::Baseline, Design::C3D};
    grid.sockets = {2, 4};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 300;
    grid.measureOps = 1200;
    return grid;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "c3d_shard_" + name;
}

/** Run one shard, journaling every row to @p path. */
exp::ResultTable
runShardJournaled(const exp::SweepGrid &grid, unsigned shard_idx,
                  unsigned shard_cnt, unsigned jobs,
                  const std::string &path)
{
    const std::vector<exp::RunSpec> specs = grid.expand();
    exp::JournalWriter writer;
    std::string error;
    EXPECT_TRUE(writer.create(path, specs.size(),
                              exp::gridFingerprint(specs), error))
        << error;

    exp::SweepEngine engine(jobs);
    EXPECT_TRUE(engine.setShard(shard_idx, shard_cnt));
    engine.setRowSink([&](const exp::RunSpec &spec,
                          const exp::ResultRow &row) {
        std::string werr;
        EXPECT_TRUE(writer.append(spec.index, row, werr)) << werr;
    });
    return engine.run(grid);
}

TEST(SweepShard, FilterIsDisjointAndExhaustive)
{
    exp::SweepGrid grid = shardGrid();
    const auto fake = [](const exp::RunSpec &spec) {
        RunResult m;
        m.measuredTicks = 100 + spec.index;
        m.instructions = spec.index + 1;
        return m;
    };

    const std::size_t total = grid.size();
    std::set<std::uint64_t> seen;
    std::size_t row_count = 0;
    for (unsigned k = 0; k < 3; ++k) {
        exp::SweepEngine engine(2);
        ASSERT_TRUE(engine.setShard(k, 3));
        const exp::ResultTable shard = engine.run(grid, fake);
        row_count += shard.size();
        for (const exp::ResultRow &row : shard.rows()) {
            // measuredTicks encodes the spec ordinal: each ordinal
            // must land in exactly one shard, and only in the shard
            // its modulo assigns.
            EXPECT_TRUE(seen.insert(row.metrics.measuredTicks)
                            .second);
            EXPECT_EQ((row.metrics.measuredTicks - 100) % 3, k);
        }
    }
    EXPECT_EQ(row_count, total);
    EXPECT_EQ(seen.size(), total);
}

TEST(SweepShard, RejectsBadShardArguments)
{
    exp::SweepEngine engine(1);
    EXPECT_FALSE(engine.setShard(0, 0));
    EXPECT_FALSE(engine.setShard(3, 3));
    EXPECT_TRUE(engine.setShard(2, 3));
    EXPECT_EQ(engine.shardIndex(), 2u);
    EXPECT_EQ(engine.shardCount(), 3u);
}

TEST(SweepShard, ShardedMergeMatchesWholeByteForByte)
{
    setQuiet(true);
    const exp::SweepGrid grid = shardGrid();

    // Whole run is itself --jobs independent (pinned here so the
    // sharded comparison below is against a trusted baseline).
    const exp::ResultTable whole = exp::SweepEngine(1).run(grid);
    EXPECT_EQ(whole.toJson(), exp::SweepEngine(4).run(grid).toJson());

    std::vector<exp::JournalData> parts;
    for (unsigned k = 0; k < 3; ++k) {
        const std::string path =
            tempPath("merge_s" + std::to_string(k) + ".jsonl");
        // Worker count varies per shard: merge output must not care.
        runShardJournaled(grid, k, 3, k + 1, path);
        exp::JournalData data;
        std::string error;
        ASSERT_TRUE(exp::readJournalFile(path, data, error)) << error;
        EXPECT_FALSE(data.truncatedTail);
        parts.push_back(std::move(data));
        std::remove(path.c_str());
    }

    exp::ResultTable merged;
    std::string error;
    ASSERT_TRUE(exp::mergeJournals(parts, merged, error)) << error;
    EXPECT_EQ(whole.toJson(), merged.toJson());
    EXPECT_EQ(whole.toCsv(), merged.toCsv());
}

TEST(SweepShard, InterruptedThenResumedMatchesWhole)
{
    setQuiet(true);
    const exp::SweepGrid grid = shardGrid();
    const std::vector<exp::RunSpec> specs = grid.expand();
    const exp::ResultTable whole = exp::SweepEngine(1).run(grid);
    const std::string path = tempPath("resume.jsonl");

    // Phase 1: journal, then "crash" after 3 completed rows (the
    // stop hook fires before each claim; with one worker the count
    // is exact).
    {
        exp::JournalWriter writer;
        std::string error;
        ASSERT_TRUE(writer.create(path, specs.size(),
                                  exp::gridFingerprint(specs),
                                  error)) << error;
        exp::SweepEngine engine(1);
        std::atomic<std::size_t> completed{0};
        engine.setRowSink([&](const exp::RunSpec &spec,
                              const exp::ResultRow &row) {
            std::string werr;
            ASSERT_TRUE(writer.append(spec.index, row, werr)) << werr;
            ++completed;
        });
        engine.setStopRequest([&] { return completed >= 3; });
        const exp::ResultTable partial = engine.run(grid);
        EXPECT_EQ(partial.size(), 3u);
    }

    // Phase 2: resume from the journal; only the remaining five
    // specs may execute.
    exp::JournalData data;
    std::string error;
    ASSERT_TRUE(exp::readJournalFile(path, data, error)) << error;
    ASSERT_EQ(data.entries.size(), 3u);
    EXPECT_EQ(data.total, specs.size());
    EXPECT_EQ(data.fingerprint, exp::gridFingerprint(specs));

    std::unordered_map<std::size_t, exp::ResultRow> pre;
    for (exp::JournalEntry &entry : data.entries) {
        ASSERT_LT(entry.index, specs.size());
        EXPECT_EQ(entry.row.identityKey(),
                  exp::specIdentityKey(specs[entry.index]));
        pre.emplace(entry.index, std::move(entry.row));
    }

    exp::JournalWriter writer;
    ASSERT_TRUE(writer.openAppend(path, error)) << error;
    exp::SweepEngine engine(4);
    engine.setPrefilled(std::move(pre));
    std::atomic<std::size_t> executed{0};
    engine.setRowSink([&](const exp::RunSpec &spec,
                          const exp::ResultRow &row) {
        std::string werr;
        ASSERT_TRUE(writer.append(spec.index, row, werr)) << werr;
        ++executed;
    });
    const exp::ResultTable resumed = engine.run(grid);
    writer.close();
    EXPECT_EQ(executed, specs.size() - 3);

    // The resumed table and the fully-journaled merge are both
    // byte-identical to the single-process run.
    EXPECT_EQ(whole.toJson(), resumed.toJson());
    EXPECT_EQ(whole.toCsv(), resumed.toCsv());

    exp::JournalData full;
    ASSERT_TRUE(exp::readJournalFile(path, full, error)) << error;
    exp::ResultTable merged;
    ASSERT_TRUE(exp::mergeJournals({full}, merged, error)) << error;
    EXPECT_EQ(whole.toJson(), merged.toJson());
    std::remove(path.c_str());
}

TEST(SweepShard, PrefilledRowsSkipExecution)
{
    exp::SweepGrid grid = shardGrid();
    std::atomic<std::size_t> calls{0};
    const auto fake = [&calls](const exp::RunSpec &spec) {
        ++calls;
        RunResult m;
        m.measuredTicks = 1000 + spec.index;
        return m;
    };

    // Prefill grid points 0 and 5 with recognizable metrics.
    const std::vector<exp::RunSpec> specs = grid.expand();
    std::unordered_map<std::size_t, exp::ResultRow> pre;
    for (const std::size_t i : {std::size_t(0), std::size_t(5)}) {
        RunResult m;
        m.measuredTicks = 77;
        pre.emplace(i, exp::SweepEngine::makeRow(specs[i], m));
    }

    exp::SweepEngine engine(2);
    engine.setPrefilled(std::move(pre));
    const exp::ResultTable table = engine.run(grid, fake);
    ASSERT_EQ(table.size(), specs.size());
    EXPECT_EQ(calls, specs.size() - 2);
    EXPECT_EQ(table.rows()[0].metrics.measuredTicks, 77u);
    EXPECT_EQ(table.rows()[5].metrics.measuredTicks, 77u);
    EXPECT_EQ(table.rows()[1].metrics.measuredTicks, 1001u);
    // Axis indices are restored from the spec, not the prefill.
    EXPECT_EQ(table.rows()[5].workloadIdx, specs[5].workloadIdx);
    EXPECT_EQ(table.rows()[5].socketIdx, specs[5].socketIdx);
}

TEST(SweepShard, StopBeforeFirstClaimYieldsEmptyTable)
{
    exp::SweepGrid grid = shardGrid();
    std::atomic<std::size_t> calls{0};
    const auto fake = [&calls](const exp::RunSpec &) {
        ++calls;
        return RunResult{};
    };
    exp::SweepEngine engine(4);
    engine.setStopRequest([] { return true; });
    const exp::ResultTable table = engine.run(grid, fake);
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(calls, 0u);
}

TEST(SweepShard, SpecIdentityKeyMatchesRowKeyAndIsUnique)
{
    exp::SweepGrid grid = shardGrid();
    grid.dramCacheMb = {0, 256};
    grid.mappings = {MappingPolicy::Interleave,
                     MappingPolicy::FirstTouch2};
    const std::vector<exp::RunSpec> specs = grid.expand();

    std::set<std::string> keys;
    for (const exp::RunSpec &spec : specs) {
        const exp::ResultRow row =
            exp::SweepEngine::makeRow(spec, RunResult{});
        EXPECT_EQ(exp::specIdentityKey(spec), row.identityKey());
        EXPECT_TRUE(keys.insert(row.identityKey()).second)
            << "duplicate identity: " << row.identityKey();
    }
    EXPECT_EQ(keys.size(), specs.size());
}

TEST(SweepShard, FingerprintTracksGridShape)
{
    exp::SweepGrid grid = shardGrid();
    const std::string base = exp::gridFingerprint(grid.expand());
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, exp::gridFingerprint(grid.expand()));

    exp::SweepGrid other = shardGrid();
    other.measureOps += 1;
    EXPECT_NE(base, exp::gridFingerprint(other.expand()));

    exp::SweepGrid fewer = shardGrid();
    fewer.sockets = {2};
    EXPECT_NE(base, exp::gridFingerprint(fewer.expand()));
}

} // namespace
} // namespace c3d
