/**
 * @file
 * Unit tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "cache/tag_array.hh"

namespace c3d
{
namespace
{

Addr
blockAddr(std::uint64_t n)
{
    return n * BlockBytes;
}

TEST(TagArray, Geometry)
{
    TagArray t;
    t.init(64 * 1024, 8);
    EXPECT_EQ(t.capacityBlocks(), 1024u);
    EXPECT_EQ(t.associativity(), 8u);
    EXPECT_EQ(t.numSets(), 128u);
}

TEST(TagArray, NonPowerOfTwoSetsKeepExactGeometry)
{
    // Power-of-two set counts take the mask fast path; odd set
    // counts (reachable via c3d-sweep --scale or --dram-cache-mb)
    // must keep the requested capacity and the exact modulo mapping
    // -- never a silent round-up.
    TagArray t;
    t.init(3 * 4 * BlockBytes, 4); // 3 sets, 4 ways
    EXPECT_EQ(t.numSets(), 3u);
    EXPECT_EQ(t.capacityBlocks(), 12u);
    // Blocks 0..2 map to distinct sets; 3 aliases into block 0's set
    // but its own way (4-way set).
    for (std::uint64_t n = 0; n < 4; ++n)
        t.allocate(blockAddr(n), CacheState::Shared);
    for (std::uint64_t n = 0; n < 4; ++n)
        EXPECT_NE(t.find(blockAddr(n)), nullptr) << n;
    // One set holds at most `ways` blocks: a fifth conflicting block
    // in set 0 must evict one of {0, 3, 6, 9}-style residents.
    t.allocate(blockAddr(6), CacheState::Shared);
    t.allocate(blockAddr(9), CacheState::Shared);
    AllocResult ar = t.allocate(blockAddr(12), CacheState::Shared);
    EXPECT_TRUE(ar.evictedValid);
}

TEST(TagArray, ConstFindMatchesMutableFind)
{
    TagArray t;
    t.init(4096, 4);
    t.allocate(blockAddr(9), CacheState::Modified);
    const TagArray &ct = t;
    const TagEntry *ce = ct.find(blockAddr(9));
    ASSERT_NE(ce, nullptr);
    EXPECT_EQ(ce, t.find(blockAddr(9)));
    EXPECT_EQ(ct.find(blockAddr(10)), nullptr);
}

TEST(TagArray, AllocateHitDoesNotEvict)
{
    // Re-allocating a resident block must reuse its entry even when
    // the set is full of older candidates the fused scan also sees.
    TagArray t;
    t.init(2 * BlockBytes, 2); // one set, two ways
    t.allocate(blockAddr(1), CacheState::Shared);
    t.allocate(blockAddr(2), CacheState::Shared);
    AllocResult ar = t.allocate(blockAddr(1), CacheState::Modified);
    EXPECT_FALSE(ar.evictedValid);
    EXPECT_EQ(ar.entry->state, CacheState::Modified);
    EXPECT_NE(t.find(blockAddr(2)), nullptr);
}

TEST(TagArray, MissThenHit)
{
    TagArray t;
    t.init(4096, 4);
    EXPECT_EQ(t.find(blockAddr(5)), nullptr);
    t.allocate(blockAddr(5), CacheState::Shared);
    TagEntry *e = t.find(blockAddr(5));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, CacheState::Shared);
}

TEST(TagArray, SubBlockAddressesAlias)
{
    TagArray t;
    t.init(4096, 4);
    t.allocate(blockAddr(3), CacheState::Modified);
    EXPECT_NE(t.find(blockAddr(3) + 1), nullptr);
    EXPECT_NE(t.find(blockAddr(3) + 63), nullptr);
    EXPECT_EQ(t.find(blockAddr(4)), nullptr);
}

TEST(TagArray, LruEviction)
{
    TagArray t;
    t.init(2 * BlockBytes, 2); // one set, two ways
    t.allocate(blockAddr(1), CacheState::Shared);
    t.allocate(blockAddr(2), CacheState::Shared);
    // Touch 1 so 2 becomes LRU.
    t.touch(t.find(blockAddr(1)));
    AllocResult ar = t.allocate(blockAddr(3), CacheState::Shared);
    EXPECT_TRUE(ar.evictedValid);
    EXPECT_EQ(ar.victimAddr, blockAddr(2));
    EXPECT_NE(t.find(blockAddr(1)), nullptr);
    EXPECT_EQ(t.find(blockAddr(2)), nullptr);
}

TEST(TagArray, EvictionReportsVictimState)
{
    TagArray t;
    t.init(BlockBytes, 1); // direct-mapped, single entry
    t.allocate(blockAddr(0), CacheState::Modified);
    AllocResult ar = t.allocate(blockAddr(1), CacheState::Shared);
    EXPECT_TRUE(ar.evictedValid);
    EXPECT_EQ(ar.victimState, CacheState::Modified);
    EXPECT_EQ(ar.victimAddr, blockAddr(0));
}

TEST(TagArray, ReallocateExistingBlockDoesNotEvict)
{
    TagArray t;
    t.init(BlockBytes * 2, 2);
    t.allocate(blockAddr(1), CacheState::Shared);
    t.allocate(blockAddr(2), CacheState::Shared);
    AllocResult ar = t.allocate(blockAddr(1), CacheState::Modified);
    EXPECT_FALSE(ar.evictedValid);
    EXPECT_EQ(t.find(blockAddr(1))->state, CacheState::Modified);
    EXPECT_NE(t.find(blockAddr(2)), nullptr);
}

TEST(TagArray, InvalidateRemovesBlock)
{
    TagArray t;
    t.init(4096, 4);
    t.allocate(blockAddr(9), CacheState::Shared);
    EXPECT_TRUE(t.invalidate(blockAddr(9)));
    EXPECT_EQ(t.find(blockAddr(9)), nullptr);
    EXPECT_FALSE(t.invalidate(blockAddr(9)));
}

TEST(TagArray, InvalidSlotsReusedBeforeEviction)
{
    TagArray t;
    t.init(BlockBytes * 2, 2);
    t.allocate(blockAddr(1), CacheState::Shared);
    t.allocate(blockAddr(2), CacheState::Shared);
    t.invalidate(blockAddr(1));
    AllocResult ar = t.allocate(blockAddr(3), CacheState::Shared);
    EXPECT_FALSE(ar.evictedValid);
    EXPECT_NE(t.find(blockAddr(2)), nullptr);
    EXPECT_NE(t.find(blockAddr(3)), nullptr);
}

TEST(TagArray, ValidBlockCount)
{
    TagArray t;
    t.init(64 * 1024, 8);
    EXPECT_EQ(t.validBlocks(), 0u);
    for (std::uint64_t i = 0; i < 100; ++i)
        t.allocate(blockAddr(i), CacheState::Shared);
    EXPECT_EQ(t.validBlocks(), 100u);
    t.invalidate(blockAddr(50));
    EXPECT_EQ(t.validBlocks(), 99u);
}

TEST(TagArray, DirectMappedConflicts)
{
    TagArray t;
    t.init(8 * BlockBytes, 1); // 8 sets, direct-mapped
    t.allocate(blockAddr(0), CacheState::Shared);
    // Block 8 maps to the same set in an 8-set array.
    AllocResult ar = t.allocate(blockAddr(8), CacheState::Shared);
    EXPECT_TRUE(ar.evictedValid);
    EXPECT_EQ(ar.victimAddr, blockAddr(0));
    // Different sets do not conflict.
    AllocResult ar2 = t.allocate(blockAddr(1), CacheState::Shared);
    EXPECT_FALSE(ar2.evictedValid);
}

TEST(TagArray, AuxWordSurvivesTouch)
{
    TagArray t;
    t.init(4096, 4);
    AllocResult ar = t.allocate(blockAddr(2), CacheState::Shared);
    ar.entry->aux = 0xabcd;
    t.touch(ar.entry);
    EXPECT_EQ(t.find(blockAddr(2))->aux, 0xabcdu);
    // But a new allocation of the slot resets aux.
    t.invalidate(blockAddr(2));
    AllocResult ar2 = t.allocate(blockAddr(2), CacheState::Shared);
    EXPECT_EQ(ar2.entry->aux, 0u);
}

TEST(TagArray, CapacityWorkingSetFits)
{
    // A working set equal to capacity must not thrash under LRU when
    // accessed cyclically set-aligned.
    TagArray t;
    t.init(256 * BlockBytes, 4);
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t i = 0; i < 256; ++i) {
            if (pass > 0)
                EXPECT_NE(t.find(blockAddr(i)), nullptr)
                    << "block " << i << " pass " << pass;
            t.allocate(blockAddr(i), CacheState::Shared);
        }
    }
    EXPECT_EQ(t.validBlocks(), 256u);
}

} // namespace
} // namespace c3d
