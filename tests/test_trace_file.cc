/**
 * @file
 * Unit tests for the binary trace file format: writer/reader round
 * trips, the streaming per-core lanes, and every scanTraceFile
 * rejection path (truncation, bad magic/version, core mismatches,
 * zero-record files).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/rng.hh"
#include "trace/trace_file.hh"

namespace c3d
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "c3dsim_trace_test.bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    /** Write a tiny valid trace: @p per_core records per core. */
    void
    writeValid(std::uint32_t cores, std::uint32_t per_core)
    {
        TraceFileWriter w(path, cores);
        for (std::uint32_t i = 0; i < per_core; ++i) {
            for (std::uint16_t c = 0; c < cores; ++c) {
                w.append({c, static_cast<std::uint16_t>(i), MemOp::Read,
                          0x1000ull + i * 64 + c});
            }
        }
        w.close();
    }

    /** Overwrite @p count bytes at @p offset. */
    void
    patchBytes(long offset, const void *bytes, std::size_t count)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, offset, SEEK_SET);
        ASSERT_EQ(std::fwrite(bytes, 1, count, f), count);
        std::fclose(f);
    }

    /** Truncate the file to @p bytes. */
    void
    chopTo(std::uint64_t bytes)
    {
        ASSERT_EQ(truncate(path.c_str(),
                           static_cast<off_t>(bytes)), 0);
    }

    std::string path;
};

TEST_F(TraceFileTest, RoundTrip)
{
    {
        TraceFileWriter w(path, 2);
        w.append({0, 3, MemOp::Read, 0x1000});
        w.append({1, 0, MemOp::Write, 0x2040});
        w.append({0, 7, MemOp::Read, 0x3000});
        w.close();
    }
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.fileCores(), 2u);
    EXPECT_EQ(wl.records(), 3u);

    const TraceOp a = wl.next(0);
    EXPECT_EQ(a.addr, 0x1000u);
    EXPECT_EQ(a.gap, 3u);
    EXPECT_EQ(a.op, MemOp::Read);

    const TraceOp b = wl.next(1);
    EXPECT_EQ(b.addr, 0x2040u);
    EXPECT_EQ(b.op, MemOp::Write);
}

TEST_F(TraceFileTest, PerCoreStreamsWrapAround)
{
    {
        TraceFileWriter w(path, 1);
        w.append({0, 0, MemOp::Read, 0xA0});
        w.append({0, 0, MemOp::Read, 0xB0});
        w.close();
    }
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.next(0).addr, 0xA0u);
    EXPECT_EQ(wl.next(0).addr, 0xB0u);
    EXPECT_EQ(wl.next(0).addr, 0xA0u); // wrapped
}

TEST_F(TraceFileTest, ActiveCoresClampedToFile)
{
    writeValid(3, 1);
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.activeCores(32), 3u);
    EXPECT_EQ(wl.activeCores(2), 2u);
}

TEST_F(TraceFileTest, WriterCountsRecords)
{
    TraceFileWriter w(path, 1);
    for (int i = 0; i < 100; ++i)
        w.append({0, 0, MemOp::Read, static_cast<Addr>(i) * 64});
    EXPECT_EQ(w.recordsWritten(), 100u);
    w.close();
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.records(), 100u);
}

// ---------------------------------------------------------------------
// scanTraceFile: stats, hashing, and every rejection path
// ---------------------------------------------------------------------

TEST_F(TraceFileTest, ScanReportsStatsAndHash)
{
    {
        TraceFileWriter w(path, 2);
        w.append({0, 1, MemOp::Read, 0x40});
        w.append({1, 2, MemOp::Write, 0x80});
        w.append({0, 3, MemOp::Write, 0xC0});
        w.close();
    }
    TraceFileInfo info;
    std::string error;
    ASSERT_TRUE(scanTraceFile(path, info, error)) << error;
    EXPECT_EQ(info.numCores, 2u);
    EXPECT_EQ(info.records, 3u);
    EXPECT_EQ(info.reads, 1u);
    EXPECT_EQ(info.writes, 2u);
    ASSERT_EQ(info.perCoreRecords.size(), 2u);
    EXPECT_EQ(info.perCoreRecords[0], 2u);
    EXPECT_EQ(info.perCoreRecords[1], 1u);
    EXPECT_EQ(info.fileBytes, 24u + 3 * 16u);
    EXPECT_NE(info.contentHash, 0u);

    // Any single changed byte must change the content hash.
    const std::uint64_t before = info.contentHash;
    const unsigned char flip = 0xFF;
    patchBytes(24 + 8, &flip, 1); // record 0's address
    TraceFileInfo changed;
    ASSERT_TRUE(scanTraceFile(path, changed, error)) << error;
    EXPECT_NE(changed.contentHash, before);
}

TEST_F(TraceFileTest, ScanRejectsTruncatedMidRecord)
{
    writeValid(2, 4);
    chopTo(24 + 5 * 16 + 7); // half of record 5
    TraceFileInfo info;
    std::string error;
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("truncated mid-record"), std::string::npos)
        << error;
}

TEST_F(TraceFileTest, ScanRejectsHeaderRecordCountMismatch)
{
    writeValid(2, 4);
    chopTo(24 + 6 * 16); // drop two whole records
    TraceFileInfo info;
    std::string error;
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("header names"), std::string::npos) << error;

    // Extra appended records (valid core ids) are also a mismatch.
    writeValid(2, 4);
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const unsigned char extra[16] = {0};
    ASSERT_EQ(std::fwrite(extra, 1, 16, f), 16u);
    std::fclose(f);
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("header names"), std::string::npos) << error;
}

TEST_F(TraceFileTest, ScanRejectsBadMagicAndVersion)
{
    writeValid(1, 2);
    TraceFileInfo info;
    std::string error;

    const char bad_magic[4] = {'N', 'O', 'P', 'E'};
    patchBytes(0, bad_magic, 4);
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

    writeValid(1, 2);
    const std::uint32_t bad_version = 99;
    patchBytes(4, &bad_version, 4);
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(TraceFileTest, ScanRejectsCoreCountMismatches)
{
    // A record naming a core beyond the header's core count.
    writeValid(2, 2);
    const std::uint16_t rogue_core = 5;
    patchBytes(24 + 16, &rogue_core, 2); // record 1's core field
    TraceFileInfo info;
    std::string error;
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("names core 5"), std::string::npos) << error;

    // A header core count out of range.
    writeValid(2, 2);
    const std::uint32_t rogue_count = 0;
    patchBytes(8, &rogue_count, 4);
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST_F(TraceFileTest, ScanRejectsZeroRecordFile)
{
    {
        TraceFileWriter w(path, 2);
        w.close(); // header only, zero records
    }
    TraceFileInfo info;
    std::string error;
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("no records"), std::string::npos) << error;
}

TEST_F(TraceFileTest, ScanRejectsEmptyCoreLane)
{
    {
        TraceFileWriter w(path, 3);
        w.append({0, 0, MemOp::Read, 0x40});
        w.append({2, 0, MemOp::Read, 0x80}); // core 1 never appears
        w.close();
    }
    TraceFileInfo info;
    std::string error;
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("no records for core 1"), std::string::npos)
        << error;
}

TEST_F(TraceFileTest, ScanRejectsShortHeader)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("C3DT", f); // magic only
    std::fclose(f);
    TraceFileInfo info;
    std::string error;
    EXPECT_FALSE(scanTraceFile(path, info, error));
    EXPECT_NE(error.find("too short"), std::string::npos) << error;
}

TEST_F(TraceFileTest, RejectsGarbageFile)
{
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("not a trace file at all, sorry", f);
        std::fclose(f);
    }
    EXPECT_DEATH({ TraceFileWorkload wl(path); }, "");
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_DEATH({ TraceFileWorkload wl("/nonexistent/x.trace"); },
                 "");
}

TEST_F(TraceFileTest, WorkloadRejectsTruncatedFile)
{
    writeValid(2, 4);
    chopTo(24 + 3 * 16 + 5);
    EXPECT_DEATH({ TraceFileWorkload wl(path); }, "");
}

// ---------------------------------------------------------------------
// Streaming reader: lanes, refills, wrap-around
// ---------------------------------------------------------------------

/**
 * Writer -> reader round-trip property: for a randomized multi-core
 * interleaving far larger than one lane buffer (forcing multiple
 * buffered refills per core) and spanning several read chunks, every
 * core's replayed stream equals its records in file order, including
 * wrap-around back to the first record.
 */
TEST_F(TraceFileTest, RandomizedRoundTripStreamsPerCoreInOrder)
{
    constexpr std::uint32_t Cores = 5;
    constexpr std::size_t Records = 9000; // > one 4096-record chunk
    Rng rng(0xC3DF11E5);

    std::vector<std::vector<TraceOp>> expected(Cores);
    {
        TraceFileWriter w(path, Cores);
        for (std::size_t i = 0; i < Records; ++i) {
            TraceRecord rec;
            // Leading round-robin guarantees every lane is nonempty.
            rec.core = static_cast<std::uint16_t>(
                i < Cores ? i : rng.below(Cores));
            rec.gap = static_cast<std::uint16_t>(rng.below(16));
            rec.op = rng.below(4) == 0 ? MemOp::Write : MemOp::Read;
            rec.addr = rng.below(1u << 20) * 64;
            w.append(rec);
            TraceOp op;
            op.gap = rec.gap;
            op.op = rec.op;
            op.addr = rec.addr;
            expected[rec.core].push_back(op);
        }
        w.close();
    }

    TraceFileReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, error)) << error;
    EXPECT_EQ(reader.numCores(), Cores);
    EXPECT_EQ(reader.records(), Records);

    // Read every lane past its end: 1.5 cycles each, interleaved so
    // lane state cannot leak across cores.
    std::vector<std::size_t> cursor(Cores, 0);
    for (std::uint32_t c = 0; c < Cores; ++c) {
        const std::size_t lane_len = expected[c].size();
        const std::size_t want = lane_len + lane_len / 2;
        for (std::size_t i = 0; i < want; ++i) {
            const TraceOp got = reader.next(c);
            const TraceOp &exp = expected[c][i % lane_len];
            ASSERT_EQ(got.addr, exp.addr)
                << "core " << c << " op " << i;
            ASSERT_EQ(got.gap, exp.gap) << "core " << c << " op " << i;
            ASSERT_EQ(got.op, exp.op) << "core " << c << " op " << i;
        }
    }
}

TEST_F(TraceFileTest, SparseLaneCyclesWithoutRescan)
{
    // Core 1 has just two records in a file dominated by core 0:
    // its lane caches the whole period after one scan and cycles it
    // (wrapping correctly), instead of re-scanning the file per op.
    {
        TraceFileWriter w(path, 2);
        w.append({1, 9, MemOp::Write, 0xF00});
        for (std::uint32_t i = 0; i < 6000; ++i)
            w.append({0, 0, MemOp::Read, 0x1000ull + i * 64});
        w.append({1, 4, MemOp::Read, 0xF40});
        w.close();
    }
    TraceFileReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, error)) << error;
    for (int cycle = 0; cycle < 500; ++cycle) {
        const TraceOp a = reader.next(1);
        EXPECT_EQ(a.addr, 0xF00u);
        EXPECT_EQ(a.op, MemOp::Write);
        const TraceOp b = reader.next(1);
        EXPECT_EQ(b.addr, 0xF40u);
        EXPECT_EQ(b.gap, 4u);
    }
    // The dense lane still replays in order alongside.
    EXPECT_EQ(reader.next(0).addr, 0x1000u);
    EXPECT_EQ(reader.next(0).addr, 0x1040u);
}

TEST_F(TraceFileTest, InterleavedLaneReadsAreIndependent)
{
    constexpr std::uint32_t Cores = 3;
    constexpr std::uint32_t PerCore = 2600; // > LaneOps refill size
    writeValid(Cores, PerCore);

    TraceFileReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, error)) << error;

    // Round-robin across lanes: each lane must still see its own
    // stream in order, regardless of the other lanes' refills.
    for (std::uint32_t i = 0; i < PerCore; ++i) {
        for (std::uint32_t c = 0; c < Cores; ++c) {
            const TraceOp op = reader.next(c);
            ASSERT_EQ(op.addr, 0x1000ull + i * 64 + c)
                << "core " << c << " op " << i;
            ASSERT_EQ(op.gap, static_cast<std::uint16_t>(i));
        }
    }
}

TEST_F(TraceFileTest, TruncateCopiesPrefixAndRefusesFootguns)
{
    writeValid(2, 10); // 20 records
    std::string error;
    TraceFileInfo out_info;

    // In-place truncation (writer would destroy the input mid-read)
    // refuses up front and leaves the input untouched.
    EXPECT_FALSE(truncateTraceFile(path, path, 5, error));
    EXPECT_NE(error.find("in-place"), std::string::npos) << error;
    TraceFileInfo info;
    ASSERT_TRUE(scanTraceFile(path, info, error)) << error;
    EXPECT_EQ(info.records, 20u);

    // A proper prefix copy revalidates and reports the new shape.
    const std::string out = path + ".short";
    ASSERT_TRUE(truncateTraceFile(path, out, 6, error, &out_info))
        << error;
    EXPECT_EQ(out_info.records, 6u);
    EXPECT_EQ(out_info.numCores, 2u);
    TraceFileWorkload wl(out);
    EXPECT_EQ(wl.records(), 6u);

    // keep >= input records is not a truncation.
    EXPECT_FALSE(truncateTraceFile(path, out, 20, error));
    EXPECT_NE(error.find("does not truncate"), std::string::npos)
        << error;
    std::remove(out.c_str());
}

// ---------------------------------------------------------------------
// Trace profiles (sweep-grid integration surface)
// ---------------------------------------------------------------------

TEST_F(TraceFileTest, LoadTraceProfileCarriesIdentity)
{
    writeValid(4, 8);
    WorkloadProfile p;
    std::string error;
    ASSERT_TRUE(loadTraceProfile(path, p, error)) << error;
    EXPECT_TRUE(p.isTrace());
    EXPECT_EQ(p.tracePath, path);
    EXPECT_EQ(p.name.rfind("trace:", 0), 0u);
    EXPECT_EQ(p.barrierOps, 0u);

    TraceFileInfo info;
    ASSERT_TRUE(scanTraceFile(path, info, error)) << error;
    EXPECT_EQ(p.traceHash, info.contentHash);
    // The name carries a content-hash suffix, so two corpus files
    // sharing a basename stay distinct in identity keys.
    EXPECT_EQ(p.name, traceWorkloadName(path, info.contentHash));
    EXPECT_NE(p.name.find('@'), std::string::npos);

    // scaled() must preserve the trace identity (the engine scales
    // every profile before running it).
    const WorkloadProfile s = p.scaled(256);
    EXPECT_TRUE(s.isTrace());
    EXPECT_EQ(s.tracePath, p.tracePath);
    EXPECT_EQ(s.traceHash, p.traceHash);
}

TEST_F(TraceFileTest, LoadTraceProfileRejectsBadFile)
{
    WorkloadProfile p;
    std::string error;
    EXPECT_FALSE(loadTraceProfile("/nonexistent/x.c3dt", p, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(p.isTrace());
}

TEST_F(TraceFileTest, ReaderRefusesMismatchedExpectedHash)
{
    writeValid(2, 4);
    TraceFileInfo info;
    std::string error;
    ASSERT_TRUE(scanTraceFile(path, info, error)) << error;

    // The right hash opens; a stale hash (the file changed after
    // the grid was built) refuses with a loud diagnostic.
    {
        TraceFileReader reader;
        ASSERT_TRUE(reader.open(path, error, &info.contentHash))
            << error;
    }
    const std::uint64_t stale = info.contentHash ^ 1;
    TraceFileReader reader;
    EXPECT_FALSE(reader.open(path, error, &stale));
    EXPECT_NE(error.find("changed since the grid was built"),
              std::string::npos)
        << error;

    // The fatal-on-error workload path reports it too.
    EXPECT_DEATH({ TraceFileWorkload wl(path, stale); }, "");
}

} // namespace
} // namespace c3d
