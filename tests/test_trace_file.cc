/**
 * @file
 * Unit tests for the binary trace file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace_file.hh"

namespace c3d
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "c3dsim_trace_test.bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceFileTest, RoundTrip)
{
    {
        TraceFileWriter w(path, 2);
        w.append({0, 3, MemOp::Read, 0x1000});
        w.append({1, 0, MemOp::Write, 0x2040});
        w.append({0, 7, MemOp::Read, 0x3000});
        w.close();
    }
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.fileCores(), 2u);
    EXPECT_EQ(wl.records(), 3u);

    const TraceOp a = wl.next(0);
    EXPECT_EQ(a.addr, 0x1000u);
    EXPECT_EQ(a.gap, 3u);
    EXPECT_EQ(a.op, MemOp::Read);

    const TraceOp b = wl.next(1);
    EXPECT_EQ(b.addr, 0x2040u);
    EXPECT_EQ(b.op, MemOp::Write);
}

TEST_F(TraceFileTest, PerCoreStreamsWrapAround)
{
    {
        TraceFileWriter w(path, 1);
        w.append({0, 0, MemOp::Read, 0xA0});
        w.append({0, 0, MemOp::Read, 0xB0});
        w.close();
    }
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.next(0).addr, 0xA0u);
    EXPECT_EQ(wl.next(0).addr, 0xB0u);
    EXPECT_EQ(wl.next(0).addr, 0xA0u); // wrapped
}

TEST_F(TraceFileTest, ActiveCoresClampedToFile)
{
    {
        TraceFileWriter w(path, 3);
        for (std::uint16_t c = 0; c < 3; ++c)
            w.append({c, 0, MemOp::Read, c * 0x100ull});
        w.close();
    }
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.activeCores(32), 3u);
    EXPECT_EQ(wl.activeCores(2), 2u);
}

TEST_F(TraceFileTest, WriterCountsRecords)
{
    TraceFileWriter w(path, 1);
    for (int i = 0; i < 100; ++i)
        w.append({0, 0, MemOp::Read, static_cast<Addr>(i) * 64});
    EXPECT_EQ(w.recordsWritten(), 100u);
    w.close();
    TraceFileWorkload wl(path);
    EXPECT_EQ(wl.records(), 100u);
}

TEST_F(TraceFileTest, RejectsGarbageFile)
{
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("not a trace file at all, sorry", f);
        std::fclose(f);
    }
    EXPECT_DEATH({ TraceFileWorkload wl(path); }, "");
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_DEATH({ TraceFileWorkload wl("/nonexistent/x.trace"); },
                 "");
}

} // namespace
} // namespace c3d
