/**
 * @file
 * Trace workloads as sweep citizens: grids naming `trace:` profiles
 * must keep every determinism contract the synthetic grids have
 * (byte-identical output for any worker count, sharded+merged ==
 * whole), and the grid fingerprint must track the trace file's
 * contents -- not its path -- so journals refuse modified traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include <unistd.h>

#include "common/log.hh"
#include "exp/journal.hh"
#include "exp/sweep_engine.hh"
#include "trace/trace_file.hh"

namespace c3d
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "c3d_trace_sweep_" + name;
}

/**
 * Record a small deterministic 4-core trace. @p salt perturbs one
 * address so tests can produce "the same grid against different
 * trace contents".
 */
void
writeTrace(const std::string &path, Addr salt = 0)
{
    TraceFileWriter w(path, 4);
    for (std::uint32_t i = 0; i < 400; ++i) {
        for (std::uint16_t c = 0; c < 4; ++c) {
            const Addr base = (i * 29 + c * 7919) % 512;
            w.append({c, static_cast<std::uint16_t>(i % 5),
                      (i + c) % 7 == 0 ? MemOp::Write : MemOp::Read,
                      base * 64 + (i == 3 && c == 1 ? salt : 0)});
        }
    }
    w.close();
}

exp::SweepGrid
traceGrid(const std::string &trace_path)
{
    WorkloadProfile p;
    std::string error;
    EXPECT_TRUE(loadTraceProfile(trace_path, p, error)) << error;

    exp::SweepGrid grid;
    grid.workloads = {std::move(p)};
    grid.designs = {Design::Baseline, Design::C3D};
    grid.sockets = {2};
    grid.scale = 256;
    grid.coresPerSocket = 2;
    grid.warmupOps = 200;
    grid.measureOps = 800;
    return grid;
}

TEST(TraceSweep, ByteIdenticalForAnyWorkerCount)
{
    setQuiet(true);
    const std::string path = tempPath("det.c3dt");
    writeTrace(path);
    const exp::SweepGrid grid = traceGrid(path);

    const exp::ResultTable one = exp::SweepEngine(1).run(grid);
    const exp::ResultTable four = exp::SweepEngine(4).run(grid);
    ASSERT_EQ(one.size(), grid.size());
    EXPECT_EQ(one.toJson(), four.toJson());
    EXPECT_EQ(one.toCsv(), four.toCsv());

    // The run actually simulated something.
    for (const exp::ResultRow &row : one.rows()) {
        EXPECT_EQ(row.workload, grid.workloads[0].name);
        EXPECT_GT(row.metrics.instructions, 0u);
        EXPECT_GT(row.metrics.memAccesses(), 0u);
    }
    std::remove(path.c_str());
}

TEST(TraceSweep, MixedSyntheticAndTraceGridRuns)
{
    setQuiet(true);
    const std::string path = tempPath("mixed.c3dt");
    writeTrace(path);

    exp::SweepGrid grid = traceGrid(path);
    grid.workloads.push_back(profileByName("facesim"));
    const exp::ResultTable table = exp::SweepEngine(2).run(grid);
    ASSERT_EQ(table.size(), grid.size());
    EXPECT_EQ(table.rows()[0].workload, grid.workloads[0].name);
    EXPECT_EQ(table.rows()[grid.designs.size()].workload, "facesim");
    for (const exp::ResultRow &row : table.rows())
        EXPECT_GT(row.metrics.instructions, 0u);
    std::remove(path.c_str());
}

TEST(TraceSweep, SpecIdentityKeyMatchesRowKey)
{
    const std::string path = tempPath("identity.c3dt");
    writeTrace(path);
    const exp::SweepGrid grid = traceGrid(path);

    std::set<std::string> keys;
    for (const exp::RunSpec &spec : grid.expand()) {
        const exp::ResultRow row =
            exp::SweepEngine::makeRow(spec, RunResult{});
        EXPECT_EQ(exp::specIdentityKey(spec), row.identityKey());
        EXPECT_TRUE(keys.insert(row.identityKey()).second);
    }
    EXPECT_EQ(keys.size(), grid.size());
    std::remove(path.c_str());
}

TEST(TraceSweep, SameBasenameDifferentContentsStayDistinct)
{
    // Two corpus files sharing a basename but not contents must not
    // collide in row identity (the name carries a content-hash
    // suffix) -- otherwise their grid's own shard journals would
    // refuse to merge as an "identity collision".
    const std::string dir_a = tempPath("corpusA");
    const std::string dir_b = tempPath("corpusB");
    ASSERT_EQ(std::system(("mkdir -p '" + dir_a + "' '" + dir_b +
                           "'").c_str()), 0);
    const std::string path_a = dir_a + "/app.c3dt";
    const std::string path_b = dir_b + "/app.c3dt";
    writeTrace(path_a);
    writeTrace(path_b, /*salt=*/64);

    exp::SweepGrid grid = traceGrid(path_a);
    WorkloadProfile other;
    std::string error;
    ASSERT_TRUE(loadTraceProfile(path_b, other, error)) << error;
    grid.workloads.push_back(std::move(other));
    EXPECT_NE(grid.workloads[0].name, grid.workloads[1].name);

    std::set<std::string> keys;
    for (const exp::RunSpec &spec : grid.expand())
        EXPECT_TRUE(keys.insert(exp::specIdentityKey(spec)).second);
    EXPECT_EQ(keys.size(), grid.size());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    rmdir(dir_a.c_str());
    rmdir(dir_b.c_str());
}

TEST(TraceSweep, FingerprintTracksTraceContentsNotPath)
{
    const std::string path = tempPath("fp.c3dt");
    writeTrace(path);
    const std::string base =
        exp::gridFingerprint(traceGrid(path).expand());
    EXPECT_EQ(base.size(), 16u);

    // Same contents, same grid: stable.
    EXPECT_EQ(base, exp::gridFingerprint(traceGrid(path).expand()));

    // One changed address: same path, different fingerprint -- this
    // is what makes --resume/merge refuse a modified trace.
    writeTrace(path, /*salt=*/64);
    EXPECT_NE(base, exp::gridFingerprint(traceGrid(path).expand()));

    // Identical contents reached via a different directory (same
    // basename, so the workload name matches): same fingerprint --
    // shard workers may mount the corpus anywhere.
    const std::string dir = tempPath("fpdir");
    ASSERT_EQ(std::remove(path.c_str()), 0);
    writeTrace(path);
    std::string cmd = "mkdir -p '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    // Same basename: the workload *name* is "trace:<basename>", so
    // only the directory may differ for the identity to match.
    const std::string copy =
        dir + path.substr(path.find_last_of('/'));
    cmd = "cp '" + path + "' '" + copy + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    EXPECT_EQ(exp::gridFingerprint(traceGrid(path).expand()),
              exp::gridFingerprint(traceGrid(copy).expand()));
    std::remove(copy.c_str());
    rmdir(dir.c_str());
    std::remove(path.c_str());
}

TEST(TraceSweep, ShardedMergeMatchesWholeByteForByte)
{
    setQuiet(true);
    const std::string path = tempPath("shard.c3dt");
    writeTrace(path);
    const exp::SweepGrid grid = traceGrid(path);
    const std::vector<exp::RunSpec> specs = grid.expand();
    const std::string fingerprint = exp::gridFingerprint(specs);

    const exp::ResultTable whole = exp::SweepEngine(1).run(grid);

    std::vector<exp::JournalData> parts;
    for (unsigned k = 0; k < 2; ++k) {
        const std::string journal =
            tempPath("shard" + std::to_string(k) + ".jsonl");
        exp::JournalWriter writer;
        std::string error;
        ASSERT_TRUE(writer.create(journal, specs.size(), fingerprint,
                                  error)) << error;
        exp::SweepEngine engine(k + 1);
        ASSERT_TRUE(engine.setShard(k, 2));
        engine.setRowSink([&](const exp::RunSpec &spec,
                              const exp::ResultRow &row) {
            std::string werr;
            ASSERT_TRUE(writer.append(spec.index, row, werr)) << werr;
        });
        engine.run(grid);
        writer.close();

        exp::JournalData data;
        std::string rerr;
        ASSERT_TRUE(exp::readJournalFile(journal, data, rerr))
            << rerr;
        EXPECT_EQ(data.fingerprint, fingerprint);
        parts.push_back(std::move(data));
        std::remove(journal.c_str());
    }

    exp::ResultTable merged;
    std::string error;
    ASSERT_TRUE(exp::mergeJournals(parts, merged, error)) << error;
    EXPECT_EQ(whole.toJson(), merged.toJson());
    EXPECT_EQ(whole.toCsv(), merged.toCsv());

    // A journal against the original trace does not merge with, or
    // resume against, the grid of a modified trace: the fingerprints
    // already disagree, which is exactly what the CLI checks.
    writeTrace(path, /*salt=*/64);
    EXPECT_NE(exp::gridFingerprint(traceGrid(path).expand()),
              fingerprint);
    std::remove(path.c_str());
}

} // namespace
} // namespace c3d
